#!/usr/bin/env python3
"""GDPR-compliant storage node (SDP) on a ShEF-shielded FPGA.

This reproduces the paper's end-to-end design example (Section 6.2.3): a
storage company deploys smart Storage Nodes built from a key-value engine plus
the Shield.  A central Controller Node attests each node before provisioning
per-user keys and access policies; application and storage traffic are then
encrypted and authenticated at line rate by the two engine sets, and the
company can explore Table 2's configuration space to hit its throughput target
at minimum area.

Run with:  python examples/gdpr_storage_node.py
"""

from __future__ import annotations

import numpy as np

from repro.accelerators import SdpStorageNodeAccelerator, ShieldMemoryAdapter
from repro.core.area import shield_utilization
from repro.core.timing import TimingModel
from repro.errors import SimulationError
from repro.sim.experiments import TABLE2_DESIGNS
from repro.workflow import deploy_accelerator


def pick_configuration(node: SdpStorageNodeAccelerator, overhead_budget_percent: float) -> tuple:
    """The IP Vendor's design-space exploration over Table 2's candidates."""
    model = TimingModel()
    profile = node.profile()
    for label, variant in TABLE2_DESIGNS:
        config = node.build_shield_config(aes_key_bits=128, **variant)
        overhead = (model.overhead(profile, config) - 1.0) * 100.0
        area = shield_utilization(config)
        print(f"  {label:22s}  overhead {overhead:7.1f}%   LUT {area['LUT']:.1f}%")
        if overhead <= overhead_budget_percent:
            return label, config
    raise SimulationError("no configuration meets the overhead budget")


def main() -> None:
    node = SdpStorageNodeAccelerator(storage_bytes=128 * 1024, tls_bytes=32 * 1024, auth_block=4096)

    print("design-space exploration (Table 2), overhead budget 30%:")
    label, runtime_config = pick_configuration(node, overhead_budget_percent=30.0)
    print(f"selected configuration: {label}\n")

    # Deploy the storage node; the Controller Node plays the Data Owner role.
    deployment = deploy_accelerator(
        "sdp-storage-node", runtime_config, vendor_name="storage-company",
        owner_name="controller-node",
    )
    memory = ShieldMemoryAdapter(deployment.shield)

    # The Controller Node provisions users and access policies after attestation.
    node.provision_user("alice", ["genome.vcf", "mri.dat"])
    node.provision_user("bob", ["invoices.csv"])

    rng = np.random.default_rng(99)
    files = {
        ("alice", "genome.vcf"): rng.integers(0, 256, 6000, dtype=np.uint8).tobytes(),
        ("alice", "mri.dat"): rng.integers(0, 256, 9000, dtype=np.uint8).tobytes(),
        ("bob", "invoices.csv"): b"date,amount\n" * 700,
    }
    for (user, name), data in files.items():
        node.put(memory, user, name, data)
    print(f"stored {node.log.puts} files ({node.log.bytes_stored} bytes) with encryption at rest")

    # Users fetch their own files (served via the TLS-side engine set).
    for (user, name), data in files.items():
        assert node.get(memory, user, name) == data
    print(f"served {node.log.gets} files correctly")

    # GDPR access control: Bob cannot fetch Alice's genome.
    try:
        node.get(memory, "bob", "genome.vcf")
    except SimulationError:
        print("access control enforced: bob was denied alice's genome.vcf")

    # Encryption at rest: the raw storage device content is ciphertext.
    deployment.shield.flush()
    raw_storage = deployment.board.device_memory.tamper_read(0, node.storage_bytes)
    assert files[("alice", "genome.vcf")][:64] not in raw_storage
    assert b"date,amount" not in raw_storage
    print("raw storage holds only ciphertext (GDPR encryption-at-rest)")

    area = shield_utilization(runtime_config)
    print(
        f"\nselected Shield area: BRAM {area['BRAM']:.1f}%  LUT {area['LUT']:.1f}%  "
        f"REG {area['REG']:.1f}%  (paper's final SDP design: 4.3 / 5.0 / 2.5)"
    )


if __name__ == "__main__":
    main()
