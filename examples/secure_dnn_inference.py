#!/usr/bin/env python3
"""Secure DNN inference: DNNWeaver behind a bespoke Shield.

Scenario from the paper's introduction: a hospital (the Data Owner) wants to
run diagnostic DNN inference on a cloud FPGA without trusting the cloud
provider, its Shell logic, or the host software.  The model vendor (the IP
Vendor) ships a DNNWeaver-style accelerator wrapped in a Shield configured for
its two very different memory regions -- large streamed weight chunks and
small, replay-protected feature-map chunks -- and the hospital's images only
ever leave its premises encrypted under a key provisioned after attestation.

Run with:  python examples/secure_dnn_inference.py
"""

from __future__ import annotations

import numpy as np

from repro.accelerators import DirectMemoryAdapter, DnnWeaverAccelerator, ShieldMemoryAdapter
from repro.core.timing import TimingModel
from repro.hw.board import BoardModel, make_board
from repro.workflow import deploy_accelerator


def main() -> None:
    accelerator = DnnWeaverAccelerator(input_size=12, conv_channels=(3, 4), fc_units=16, classes=5)
    shield_config = accelerator.build_shield_config(aes_key_bits=128, sbox_parallelism=16)
    print("Shield configuration for DNNWeaver (Section 6.2.4):")
    for engine_set in shield_config.engine_sets:
        print(
            f"  engine set {engine_set.name:8s}: {engine_set.num_aes_engines} AES engines, "
            f"{engine_set.mac_algorithm}, buffer {engine_set.buffer_bytes // 1024} KB"
        )
    for region in shield_config.regions:
        protection = "counters" if region.replay_protected else "no replay protection"
        print(f"  region {region.name:13s}: C_mem {region.chunk_size} B, {protection}")

    # Deploy on a simulated F1 instance.
    deployment = deploy_accelerator("dnnweaver", shield_config, vendor_name="model-vendor",
                                    owner_name="hospital")
    owner = deployment.data_owner

    # The hospital seals the model weights it licensed and its patient image.
    inputs = accelerator.prepare_inputs(seed=2026)
    for region_name, plaintext in inputs.items():
        staged = owner.seal_input(
            deployment.shield_config, region_name, plaintext,
            shield_id=deployment.shield_config.shield_id,
        )
        deployment.host_runtime.upload_region(staged)

    shielded_result = accelerator.run(ShieldMemoryAdapter(deployment.shield))
    deployment.shield.flush()
    print(f"\nshielded inference prediction: class {shielded_result.outputs['prediction']}")

    # Reference run on an unshielded board (what an insecure deployment computes).
    reference_board = make_board(BoardModel.AWS_F1, serial="reference")
    for region_name, plaintext in inputs.items():
        reference_board.device_memory.write(
            deployment.shield_config.region(region_name).base_address, plaintext
        )
    reference_result = accelerator.run(DirectMemoryAdapter(reference_board.device_memory))
    assert np.array_equal(reference_result.outputs["logits"], shielded_result.outputs["logits"])
    print("bit-identical to the unshielded reference run")

    # The cloud provider's view: only ciphertext in DRAM.
    dram = deployment.board.device_memory.tamper_read(0, 4096)
    assert inputs["weights"][:64] not in dram
    print("device DRAM holds only encrypted weights and feature maps")

    # What did security cost?  The analytical model reproduces Figure 6's story:
    model = TimingModel()
    profile = accelerator.profile()
    hmac_config = DnnWeaverAccelerator().build_shield_config(sbox_parallelism=16)
    pmac_config = DnnWeaverAccelerator().build_shield_config(sbox_parallelism=16, pmac_weights=True)
    print(
        f"\nmodelled overhead at paper scale: "
        f"{model.overhead(profile, hmac_config):.2f}x with HMAC, "
        f"{model.overhead(profile, pmac_config):.2f}x after the PMAC substitution"
    )


if __name__ == "__main__":
    main()
