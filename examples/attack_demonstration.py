#!/usr/bin/env python3
"""Attack demonstration: what the ShEF threat model defends against.

Every adversary capability from Section 2.5 is exercised against a live
deployment -- a malicious Shell snooping all interfaces, physical attacks on
device DRAM (spoofing, splicing, replay), a malicious host replaying register
commands, and a man-in-the-middle on the attestation channel -- and every one
of them is either blinded by encryption or detected by an integrity check.

Run with:  python examples/attack_demonstration.py
"""

from __future__ import annotations

from repro.attacks import (
    ReplayRecorder,
    SnoopingShellAttack,
    corrupt_report_hook,
    read_chunk_raw,
    replay_chunk,
    splice_chunks,
    spoof_chunk,
)
from repro.attestation import DataOwner, HostProxiedChannel, IpVendor, run_remote_attestation
from repro.boot import Manufacturer, install_security_kernel, perform_secure_boot
from repro.core import EngineSetConfig, RegionConfig, ShieldConfig
from repro.errors import AttestationError, IntegrityError
from repro.hw import Bitstream, BoardModel, make_board
from repro.workflow import deploy_accelerator


def shield_config() -> ShieldConfig:
    return ShieldConfig(
        shield_id="victim-shield",
        engine_sets=[
            EngineSetConfig(name="es-in", buffer_bytes=2048),
            EngineSetConfig(name="es-out", buffer_bytes=2048),
        ],
        regions=[
            RegionConfig("input", 0, 8192, 512, "es-in"),
            RegionConfig("output", 8192, 8192, 512, "es-out", replay_protected=True),
        ],
    )


def expect_detection(description: str, action) -> None:
    try:
        action()
    except IntegrityError as error:
        print(f"  DETECTED  {description}: {error}")
    else:
        raise AssertionError(f"attack was not detected: {description}")


def main() -> None:
    config = shield_config()
    deployment = deploy_accelerator("victim", config)
    shield = deployment.shield
    board = deployment.board
    owner = deployment.data_owner

    # A malicious Shell records every burst, register access, and DMA transfer.
    snoop = SnoopingShellAttack(board.shell)

    secret = b"ACCOUNT-9441-BALANCE-USD" * 64  # 3 KiB of sensitive records
    staged = owner.seal_input(config, "input", secret, shield_id=config.shield_id)
    deployment.host_runtime.upload_region(staged)
    assert shield.memory_read(0, len(secret)) == secret
    shield.memory_write(8192, secret[:1024])
    shield.flush()

    print("1. malicious Shell / bus snooping")
    assert not snoop.saw_plaintext([secret, secret[:32]])
    print(f"  BLINDED   the Shell observed {len(snoop.records)} transfers, none containing plaintext")

    print("2. physical attacks on device DRAM")
    expect_detection(
        "spoofed ciphertext in the input region",
        lambda: (spoof_chunk(board.device_memory, config, "input", 1),
                 shield.pipeline("input").buffer.invalidate(),
                 shield.memory_read(512, 512)),
    )
    expect_detection(
        "spliced chunk moved to a different address",
        lambda: (splice_chunks(board.device_memory, config, "input", 0, 3),
                 shield.pipeline("input").buffer.invalidate(),
                 shield.memory_read(3 * 512, 512)),
    )
    snapshot = read_chunk_raw(board.device_memory, config, "output", 0)
    shield.memory_write(8192, b"\x77" * 512)
    shield.flush()
    expect_detection(
        "replayed stale output chunk",
        lambda: (replay_chunk(board.device_memory, config, snapshot),
                 shield.pipeline("output").buffer.invalidate(),
                 shield.memory_read(8192, 512)),
    )

    print("3. malicious host replaying register commands")
    client = owner.register_channel(config, shield_id=config.shield_id)
    blob = client.seal_write(3, b"\x00\x00\x00\x2a")
    assert deployment.host_runtime.send_register_command(blob) == 1
    assert deployment.host_runtime.send_register_command(blob) == 2  # replay rejected
    print("  DETECTED  replayed sealed register command rejected by sequence check")

    print("4. man-in-the-middle on the attestation channel")
    board2 = make_board(BoardModel.AWS_F1, serial="victim-2")
    manufacturer = Manufacturer(seed=5)
    provisioned = manufacturer.provision_device(board2)
    install_security_kernel(board2)
    kernel = perform_secure_boot(board2).kernel
    vendor = IpVendor("victim-vendor", seed=6)
    vendor.trust_security_kernel(kernel.kernel_hash)
    package = vendor.package_accelerator("victim", {"kind": "victim"}, config.to_dict())
    kernel.launch_shell(Bitstream("shell", "csp"))
    kernel.stage_encrypted_bitstream(package.encrypted_bitstream)

    channel = HostProxiedChannel()
    channel.install_tamper_hook(corrupt_report_hook)
    try:
        run_remote_attestation(
            vendor, DataOwner(seed=7), kernel, "victim",
            provisioned.device_certificate, manufacturer.certificate_authority.root_public_key,
            channel=channel, shield_id=config.shield_id,
        )
    except AttestationError as error:
        print(f"  DETECTED  tampered attestation report: {error}")

    recorder = ReplayRecorder()
    clean = HostProxiedChannel()
    clean.install_tamper_hook(recorder.record_hook)
    run_remote_attestation(
        vendor, DataOwner(seed=8), kernel, "victim",
        provisioned.device_certificate, manufacturer.certificate_authority.root_public_key,
        channel=clean, shield_id=config.shield_id,
    )
    replaying = HostProxiedChannel()
    replaying.install_tamper_hook(recorder.replay_hook)
    try:
        run_remote_attestation(
            vendor, DataOwner(seed=9), kernel, "victim",
            provisioned.device_certificate, manufacturer.certificate_authority.root_public_key,
            channel=replaying, shield_id=config.shield_id,
        )
    except AttestationError as error:
        print(f"  DETECTED  replayed stale attestation report: {error}")

    print("\nall modelled attacks were blinded or detected")


if __name__ == "__main__":
    main()
