#!/usr/bin/env python3
"""Quickstart: deploy a shielded accelerator end to end and run it on sealed data.

This walks the whole ShEF workflow from Figure 2 of the paper in a few dozen
lines: the Manufacturer provisions a (simulated) FPGA, the IP Vendor packages
a vector-add accelerator with its Shield, secure boot and remote attestation
run, the Data Owner seals its inputs, and the accelerator computes on them
behind the Shield while device DRAM and the host only ever see ciphertext.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import deploy_accelerator
from repro.accelerators import ShieldMemoryAdapter, VectorAddAccelerator


def main() -> None:
    # 1. The IP Vendor's design: a vector-add accelerator and its Shield
    #    configuration (4 engine sets per direction, 512-byte chunks).
    accelerator = VectorAddAccelerator(vector_bytes=8 * 1024)
    shield_config = accelerator.build_shield_config(aes_key_bits=128, sbox_parallelism=16)

    # 2. Run the complete workflow: manufacturing, packaging, secure boot,
    #    remote attestation, bitstream load, and Load-Key provisioning.
    deployment = deploy_accelerator("vector_add", shield_config)
    print(f"secure boot completed in        {deployment.boot_result.total_seconds:.1f} s (modelled)")
    print(f"attestation transcript messages {deployment.attestation.transcript_length}")
    print(f"shield operational              {deployment.shield.operational}")

    # 3. The Data Owner seals its input vectors and the untrusted host DMAs
    #    the ciphertext into device memory.
    inputs = accelerator.prepare_inputs(seed=7)
    for region_name, plaintext in inputs.items():
        staged = deployment.data_owner.seal_input(
            deployment.shield_config, region_name, plaintext,
            shield_id=deployment.shield_config.shield_id,
        )
        deployment.host_runtime.upload_region(staged)

    # 4. The accelerator runs behind the Shield.
    result = accelerator.run(ShieldMemoryAdapter(deployment.shield))
    deployment.shield.flush()

    # 5. Check the math and the security property.
    a0 = np.frombuffer(inputs["a0"], dtype=np.int32)
    b0 = np.frombuffer(inputs["b0"], dtype=np.int32)
    assert np.array_equal(result.outputs["c0"], a0 + b0)
    dram = deployment.board.device_memory.tamper_read(0, 8 * 1024)
    assert inputs["a0"][:64] not in dram
    print("result verified: c = a + b, and device DRAM holds only ciphertext")

    stats = deployment.shield.stats()
    print(
        f"shield traffic: {stats.accel_bytes_read} plaintext bytes read by the accelerator, "
        f"{stats.dram_bytes_read} ciphertext+tag bytes fetched from DRAM"
    )


if __name__ == "__main__":
    main()
