#!/usr/bin/env python3
"""Design-space exploration: ShEF's customizability as a first-class feature.

The paper's core argument is that a one-size-fits-all TEE either wastes area
or misses throughput targets, while the Shield lets each accelerator buy
exactly the protection it needs.  This example sweeps the configuration space
(S-box parallelism, key size, HMAC vs PMAC, engine counts, chunk size, replay
protection) for every evaluation workload using the analytical timing and area
models, and prints the Pareto-style summary an IP Vendor would use to choose.

Run with:  python examples/shield_design_space.py
"""

from __future__ import annotations

from repro.accelerators import (
    AffineTransformAccelerator,
    BitcoinAccelerator,
    ConvolutionAccelerator,
    DigitRecognitionAccelerator,
    DnnWeaverAccelerator,
    SdpStorageNodeAccelerator,
)
from repro.core.area import shield_utilization
from repro.core.merkle import merkle_extra_dram_bytes
from repro.core.timing import TimingModel
from repro.sim.reporting import format_table

WORKLOADS = (
    ("convolution", ConvolutionAccelerator(), {}),
    ("digit_recognition", DigitRecognitionAccelerator(), {}),
    ("affine", AffineTransformAccelerator(), {}),
    ("dnnweaver", DnnWeaverAccelerator(), {}),
    ("dnnweaver+PMAC", DnnWeaverAccelerator(), {"pmac_weights": True}),
    ("bitcoin", BitcoinAccelerator(), {}),
    ("sdp (8xPMAC)", SdpStorageNodeAccelerator(), {
        "num_aes_engines": 8, "mac_algorithm": "PMAC", "num_mac_engines": 8,
    }),
)


def paper_config(accelerator, **variant):
    if hasattr(accelerator, "paper_shield_config"):
        return accelerator.paper_shield_config(**variant)
    return accelerator.build_shield_config(**variant)


def main() -> None:
    model = TimingModel()
    rows = []
    for label, accelerator, extra in WORKLOADS:
        profile = accelerator.profile()
        for sbox in (4, 16):
            for key_bits in (128, 256):
                try:
                    config = paper_config(
                        accelerator, aes_key_bits=key_bits, sbox_parallelism=sbox, **extra
                    )
                except TypeError:
                    config = accelerator.build_shield_config(
                        aes_key_bits=key_bits, sbox_parallelism=sbox, **extra
                    )
                area = shield_utilization(config)
                rows.append(
                    {
                        "workload": label,
                        "config": f"AES-{key_bits}/{sbox}x",
                        "normalized_time": round(model.overhead(profile, config), 3),
                        "lut_percent": round(area["LUT"], 2),
                        "bram_percent": round(area["BRAM"], 2),
                    }
                )
    print("Shield design space across the evaluation workloads:\n")
    print(format_table(rows))

    # The cheapest configuration that keeps overhead under 1.5x for each workload.
    print("\ncheapest configuration meeting a 1.5x overhead budget:")
    by_workload = {}
    for row in rows:
        by_workload.setdefault(row["workload"], []).append(row)
    for workload, candidates in by_workload.items():
        feasible = [c for c in candidates if c["normalized_time"] <= 1.5]
        if feasible:
            best = min(feasible, key=lambda c: c["lut_percent"])
            print(f"  {workload:18s} -> {best['config']}  ({best['normalized_time']}x, {best['lut_percent']}% LUT)")
        else:
            cheapest = min(candidates, key=lambda c: c["normalized_time"])
            print(
                f"  {workload:18s} -> no config meets 1.5x; best is {cheapest['config']} "
                f"at {cheapest['normalized_time']}x (needs more engines or PMAC)"
            )

    # Replay-protection ablation: counters vs Merkle tree for a 1 MB region of 64 B chunks.
    chunks = (1 << 20) // 64
    print(
        f"\nreplay protection for a 1 MiB / 64 B-chunk region: "
        f"ShEF counters cost {4 * chunks // 1024} KiB on-chip and 0 extra DRAM bytes per access; "
        f"a Bonsai Merkle tree costs ~{merkle_extra_dram_bytes(chunks):.0f} extra DRAM bytes per access"
    )


if __name__ == "__main__":
    main()
