"""Engine, baseline, reporter, and CLI tests for repro.analysis."""

import json
from pathlib import Path

from repro.analysis.__main__ import main as analysis_main
from repro.analysis.baseline import apply_baseline, load_baseline, save_baseline
from repro.analysis.engine import SourceFile
from repro.analysis.findings import Finding
from repro.analysis.reporters import render_json, render_text

FIXTURES = Path(__file__).parent / "fixtures"


class TestSourceFile:
    def test_suppression_parsing(self):
        file = SourceFile(
            "x.py",
            "a = 1  # lint: allow[secret-flow]\n"
            "b = 2  # lint: allow[hot-copy, loop-confinement]\n"
            "c = 3  # lint: allow[*]\n"
            "d = 4\n",
        )
        assert file.suppressed("secret-flow", 1)
        assert not file.suppressed("hot-copy", 1)
        assert file.suppressed("hot-copy", 2)
        assert file.suppressed("loop-confinement", 2)
        assert file.suppressed("anything", 3)
        assert not file.suppressed("secret-flow", 4)

    def test_scope_qualnames(self):
        file = SourceFile(
            "x.py",
            "class Outer:\n"
            "    def method(self):\n"
            "        pass\n"
            "def top():\n"
            "    pass\n",
        )
        names = {file.qualname(node) for node in file.functions()}
        assert names == {"Outer.method", "top"}

    def test_module_name_inside_repro(self):
        file = SourceFile("src/repro/core/sealing.py", "x = 1\n")
        assert file.module == "repro.core.sealing"

    def test_module_name_for_fixture(self):
        file = SourceFile(str(FIXTURES / "parity_good.py"), "x = 1\n")
        assert file.module == "parity_good"


class TestFindingModel:
    def make(self, **overrides):
        values = dict(
            checker="secret-flow",
            path="src/repro/x.py",
            line=10,
            col=5,
            message="bad",
            symbol="X.f",
        )
        values.update(overrides)
        return Finding(**values)

    def test_fingerprint_ignores_line_numbers(self):
        assert self.make(line=10).fingerprint == self.make(line=99).fingerprint

    def test_fingerprint_distinguishes_checker_and_symbol(self):
        base = self.make().fingerprint
        assert self.make(checker="hot-copy").fingerprint != base
        assert self.make(symbol="Y.g").fingerprint != base

    def test_render(self):
        assert self.make().render() == "src/repro/x.py:10:5: secret-flow: bad"


class TestBaseline:
    def test_round_trip(self, tmp_path):
        findings = [
            Finding("hot-copy", "a.py", 1, 1, "copy in hot path", "f"),
            Finding("secret-flow", "b.py", 2, 1, "leak", "g"),
        ]
        path = tmp_path / "baseline.json"
        save_baseline(str(path), findings)
        accepted = load_baseline(str(path))
        assert accepted == {f.fingerprint for f in findings}
        marked = apply_baseline(findings, accepted)
        assert all(f.baselined for f in marked)

    def test_missing_file_is_empty(self, tmp_path):
        assert load_baseline(str(tmp_path / "absent.json")) == set()

    def test_new_finding_not_baselined(self, tmp_path):
        old = Finding("hot-copy", "a.py", 1, 1, "old", "f")
        path = tmp_path / "baseline.json"
        save_baseline(str(path), [old])
        fresh = Finding("hot-copy", "a.py", 5, 1, "new message", "f")
        marked = apply_baseline([fresh], load_baseline(str(path)))
        assert not marked[0].baselined


class TestReporters:
    def test_json_report_shape(self):
        finding = Finding("fast-parity", "a.py", 3, 1, "msg", "f")
        payload = json.loads(render_json([finding], files_scanned=4))
        assert payload["files_scanned"] == 4
        assert payload["counts"] == {"total": 1, "fresh": 1, "baselined": 0}
        assert payload["findings"][0]["checker"] == "fast-parity"
        assert payload["findings"][0]["fingerprint"] == finding.fingerprint

    def test_text_report_summary(self):
        text = render_text([], files_scanned=2)
        assert "2 file(s) scanned: 0 finding(s), 0 baselined" in text


class TestCli:
    def test_bad_fixture_fails(self, capsys):
        code = analysis_main(
            [str(FIXTURES / "secret_bad.py"), "--tests-dir", "none"]
        )
        assert code == 1
        assert "secret-flow" in capsys.readouterr().out

    def test_good_fixture_passes(self, capsys):
        code = analysis_main(
            [str(FIXTURES / "secret_good.py"), "--tests-dir", "none"]
        )
        assert code == 0

    def test_write_baseline_then_clean(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        fixture = str(FIXTURES / "secret_bad.py")
        assert (
            analysis_main(
                [fixture, "--tests-dir", "none", "--baseline", str(baseline), "--write-baseline"]
            )
            == 0
        )
        capsys.readouterr()
        code = analysis_main(
            [fixture, "--tests-dir", "none", "--baseline", str(baseline)]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "[baselined]" in out

    def test_json_format(self, capsys):
        code = analysis_main(
            [str(FIXTURES / "parity_bad.py"), "--tests-dir", "none", "--format", "json"]
        )
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["counts"]["fresh"] == 2


def test_repo_source_tree_is_clean():
    """The shipped tree must lint clean (modulo the checked-in baseline)."""
    repo_root = Path(__file__).resolve().parents[2]
    src = repo_root / "src"
    baseline = repo_root / "analysis-baseline.json"
    args = [str(src), "--tests-dir", str(repo_root / "tests")]
    if baseline.is_file():
        args += ["--baseline", str(baseline)]
    assert analysis_main(args) == 0
