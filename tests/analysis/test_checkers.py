"""Checker tests over the known-good / known-bad fixture files.

Each test loads a fixture *syntactically* (the fixtures are never imported)
and asserts the exact finding locations, plus that the matching good fixture
is silent and that ``# lint: allow[...]`` suppressions hold.
"""

from pathlib import Path

from repro.analysis.checkers import default_checkers
from repro.analysis.checkers.aliasing import HotCopyChecker
from repro.analysis.checkers.confinement import LoopConfinementChecker
from repro.analysis.checkers.parity import FastScalarParityChecker
from repro.analysis.checkers.secret_hygiene import SecretFlowChecker
from repro.analysis.engine import load_project, run_checkers

FIXTURES = Path(__file__).parent / "fixtures"


def findings_for(fixture: str, checker_id: str | None = None):
    project = load_project([str(FIXTURES / fixture)])
    findings = run_checkers(project, default_checkers())
    if checker_id is not None:
        findings = [f for f in findings if f.checker == checker_id]
    return findings


class TestSecretFlowChecker:
    def test_bad_fixture_locations(self):
        findings = findings_for("secret_bad.py", SecretFlowChecker.id)
        by_line = {f.line: f.message for f in findings}
        assert "logging call .info() in leaks_to_log()" in by_line[21]
        assert "f-string in leaks_via_fstring()" in by_line[26]
        assert "exception message in leaks_attribute()" in by_line[32]
        assert "print() in leaks_param()" in by_line[36]
        assert "metrics label in .counter() in leaks_metrics_label()" in by_line[41]
        assert "BadKeyHolder" in by_line[61]  # dataclass auto-repr
        assert len(findings) == 6

    def test_good_fixture_is_clean(self):
        assert findings_for("secret_good.py", SecretFlowChecker.id) == []

    def test_suppression_comment_holds(self):
        # secret_bad.suppressed_leak carries `# lint: allow[secret-flow]`.
        findings = findings_for("secret_bad.py", SecretFlowChecker.id)
        assert not any("suppressed_leak" in f.message for f in findings)

    def test_declassifiers_clear_taint(self):
        findings = findings_for("secret_bad.py", SecretFlowChecker.id)
        assert not any("declassified_is_fine" in f.message for f in findings)


class TestLoopConfinementChecker:
    def test_bad_fixture_locations(self):
        findings = findings_for("confinement_bad.py", LoopConfinementChecker.id)
        assert [f.line for f in findings] == [28, 29, 30, 37]
        by_line = {f.line: f.message for f in findings}
        assert "loop-owned method .evict()" in by_line[28]
        assert "self._teardown()" in by_line[29]  # one-hop laundering
        assert "self.scheduler._queue" in by_line[30]
        assert "self._free_boards" in by_line[37]

    def test_good_fixture_is_clean(self):
        assert findings_for("confinement_good.py", LoopConfinementChecker.id) == []

    def test_suppression_comment_holds(self):
        findings = findings_for("confinement_bad.py", LoopConfinementChecker.id)
        assert not any(f.line == 41 for f in findings)


class TestHotCopyChecker:
    def test_bad_fixture_locations(self):
        findings = findings_for("aliasing_bad.py", HotCopyChecker.id)
        assert [f.line for f in findings] == [12, 17, 22, 27, 34]
        by_line = {f.line: f.message for f in findings}
        assert "bytes()" in by_line[12]
        assert ".copy()" in by_line[17]
        assert ".tobytes()" in by_line[22]
        assert "np.array()" in by_line[27]
        assert "after exporting memoryview" in by_line[34]

    def test_good_fixture_is_clean(self):
        assert findings_for("aliasing_good.py", HotCopyChecker.id) == []

    def test_fill_before_export_is_allowed(self):
        # aliasing_good.fills_then_exports writes rows *before* exporting
        # views; only writes after the export are aliasing bugs.
        findings = findings_for("aliasing_good.py", HotCopyChecker.id)
        assert findings == []

    def test_suppression_comment_holds(self):
        findings = findings_for("aliasing_bad.py", HotCopyChecker.id)
        assert not any(f.line == 39 for f in findings)


class TestFastScalarParityChecker:
    def test_bad_fixture_locations(self):
        findings = findings_for("parity_bad.py", FastScalarParityChecker.id)
        assert [f.line for f in findings] == [15, 20]
        assert "has no @scalar_reference" in findings[0].message
        assert "does not resolve" in findings[1].message

    def test_good_fixture_is_clean(self):
        assert findings_for("parity_good.py", FastScalarParityChecker.id) == []

    def test_tests_corpus_requirement(self):
        # With a test corpus that never mentions transform_many, even a
        # resolving reference is not enough.
        project = load_project(
            [str(FIXTURES / "parity_good.py")], tests_dir=None
        )
        project.tests_text = "def test_unrelated(): pass"
        findings = [
            f
            for f in run_checkers(project, default_checkers())
            if f.checker == FastScalarParityChecker.id
        ]
        assert len(findings) == 1
        assert "not exercised by any test" in findings[0].message

    def test_tests_corpus_mention_satisfies(self):
        project = load_project([str(FIXTURES / "parity_good.py")])
        project.tests_text = "result = transform_many([1, 2])"
        findings = [
            f
            for f in run_checkers(project, default_checkers())
            if f.checker == FastScalarParityChecker.id
        ]
        assert findings == []
