"""Runtime sanitizer tests: aliasing freeze, thread ownership, copy counter.

These are the dynamic twins of the static checkers: with the sanitizer
enabled, a write to a shared backing array raises, a cross-thread call to a
``@loop_owned`` method raises, and hot paths that allocate show up in the
copy counter.
"""

import threading

import numpy as np
import pytest

from repro.analysis import sanitizer
from repro.analysis.annotations import loop_owned
from repro.core.config import EngineSetConfig, RegionConfig
from repro.core.sealing import RegionSealer


@pytest.fixture
def sanitize():
    sanitizer.enable()
    yield
    sanitizer.disable()


def _sealer(fast=True):
    region = RegionConfig(
        name="r0", base_address=0, size_bytes=512, chunk_size=64, engine_set="es"
    )
    engine_config = EngineSetConfig(name="es", fast_crypto=fast)
    return RegionSealer(b"\x42" * 32, region, engine_config)


def _chunk_rows(n=4, length=64, seed=5):
    rng = np.random.default_rng(seed)
    return rng.integers(0, 256, size=(n, length), dtype=np.uint8)


class TestAliasingFreeze:
    def test_seeded_aliasing_write_is_caught(self, sanitize):
        """Writing through a live SealedChunk row's backing buffer must raise."""
        sealer = _sealer()
        sealed = sealer.seal_chunks_array([0, 1, 2, 3], _chunk_rows())
        assert isinstance(sealed[0].ciphertext, memoryview)
        with pytest.raises(TypeError):
            sealed[0].ciphertext[0] = 0

    def test_unseal_rows_are_frozen(self, sanitize):
        sealer = _sealer()
        sealed = sealer.seal_chunks_array([0, 1, 2, 3], _chunk_rows(seed=6))
        plaintexts = sealer.unseal_chunks(
            [c.chunk_index for c in sealed],
            [c.ciphertext for c in sealed],
            [c.tag for c in sealed],
        )
        with pytest.raises(TypeError):
            plaintexts[0][0] = 0

    def test_rows_still_readable_and_correct(self, sanitize):
        sealer = _sealer()
        rows = _chunk_rows(seed=7)
        sealed = sealer.seal_chunks_array([0, 1, 2, 3], rows)
        plaintexts = sealer.unseal_chunks(
            [c.chunk_index for c in sealed],
            [c.ciphertext for c in sealed],
            [c.tag for c in sealed],
        )
        for row in range(4):
            assert bytes(plaintexts[row]) == rows[row].tobytes()

    def test_rows_stay_writable_when_disabled(self):
        sealer = _sealer()
        sealed = sealer.seal_chunks_array([0, 1], _chunk_rows(n=2, seed=8))
        sealed[0].ciphertext[0] = 0  # no sanitizer: buffer untouched, still writable
        array = np.zeros(4, dtype=np.uint8)
        sanitizer.freeze(array)
        array[0] = 1  # freeze() is a no-op when disabled


class LoopOwnedProbe:
    def __init__(self):
        self.calls = 0

    @loop_owned
    def touch(self):
        self.calls += 1


class TestThreadOwnership:
    def test_same_thread_calls_pass(self, sanitize):
        probe = LoopOwnedProbe()
        probe.touch()
        probe.touch()
        assert probe.calls == 2

    def test_cross_thread_call_raises(self, sanitize):
        probe = LoopOwnedProbe()
        probe.touch()  # binds ownership to this thread
        failures = []

        def cross_call():
            try:
                probe.touch()
            except sanitizer.SanitizerError as exc:
                failures.append(exc)

        thread = threading.Thread(target=cross_call)
        thread.start()
        thread.join()
        assert len(failures) == 1
        assert "touch" in str(failures[0])

    def test_disabled_sanitizer_allows_cross_thread(self):
        probe = LoopOwnedProbe()
        probe.touch()
        thread = threading.Thread(target=probe.touch)
        thread.start()
        thread.join()
        assert probe.calls == 2

    def test_release_owner_rebinds(self, sanitize):
        probe = LoopOwnedProbe()
        probe.touch()
        sanitizer.release_owner(probe)
        done = []
        thread = threading.Thread(target=lambda: (probe.touch(), done.append(True)))
        thread.start()
        thread.join()
        assert done == [True]


class TestCopyCounter:
    def test_counts_scalar_fallback_copies(self, sanitize):
        # A scalar-engine sealer cannot take the array path, so unseal_chunks
        # reports its fallback copies into any open counter.
        sealer = _sealer(fast=False)
        rows = _chunk_rows(n=2, seed=9)
        sealed = [sealer.seal_chunk(i, rows[i].tobytes()) for i in range(2)]
        with sanitizer.counting_copies() as counter:
            plaintexts = sealer.unseal_chunks(
                [c.chunk_index for c in sealed],
                [c.ciphertext for c in sealed],
                [c.tag for c in sealed],
            )
        assert [bytes(p) for p in plaintexts] == [r.tobytes() for r in rows]
        assert counter.copies >= 1
        assert "unseal_chunks.scalar_fallback" in counter.sites

    def test_fast_path_is_copy_free(self, sanitize):
        sealer = _sealer()
        rows = _chunk_rows(seed=10)
        with sanitizer.counting_copies() as counter:
            sealed = sealer.seal_chunks_array([0, 1, 2, 3], rows)
            sealer.unseal_chunks(
                [c.chunk_index for c in sealed],
                [c.ciphertext for c in sealed],
                [c.tag for c in sealed],
            )
        assert counter.copies == 0

    def test_note_copy_without_counter_is_free(self):
        sanitizer.note_copy("nowhere", 128)  # must not raise
