"""Known-good fixture for the secret-flow checker (never imported)."""

from dataclasses import dataclass, field

import logging

log = logging.getLogger(__name__)


def secret(func):
    return func


@secret
def derive_key(seed: bytes) -> bytes:
    return seed * 2


def uses_key_quietly():
    key = derive_key(b"seed")
    ciphertext = encrypt_chunk(key)
    log.info("sealed %d bytes", len(ciphertext))
    return ciphertext


def encrypt_chunk(data: bytes) -> bytes:
    return bytes(reversed(data))


def reassignment_clears_taint():
    value = derive_key(b"seed")
    value = b"public"
    log.info("value %s", value)


@dataclass
class GoodKeyHolder:
    material: bytes = field(repr=False)
    label: str = ""


@dataclass
class CustomReprHolder:
    material: bytes

    def __repr__(self) -> str:
        return f"CustomReprHolder(label={self.label!r})"

    label: str = ""
