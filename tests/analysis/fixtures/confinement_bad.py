"""Known-bad fixture for the loop-confinement checker (never imported)."""


def loop_owned(func):
    return func


def executor_side(func):
    return func


class Scheduler:
    @loop_owned
    def release(self, job):
        pass

    @loop_owned
    def evict(self, board):
        pass


class Service:
    def __init__(self):
        self.scheduler = Scheduler()

    @executor_side
    def execute(self, job, slot):
        self.scheduler.evict(slot)  # BAD line 28: loop-owned call
        self._teardown(slot)  # BAD line 29: helper touches scheduler
        self.scheduler._queue = []  # BAD line 30: scheduler state store

    def _teardown(self, slot):
        self.scheduler.release(slot)

    @executor_side
    def body_with_direct_store(self, job):
        self._free_boards = []  # BAD line 37: loop-owned field store

    @executor_side
    def suppressed(self, slot):
        self.scheduler.evict(slot)  # lint: allow[loop-confinement]
