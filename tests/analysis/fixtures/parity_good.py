"""Known-good fixture for the fast-parity checker (never imported)."""


def scalar_reference(target):
    def register(func):
        return func

    return register


def transform(data):
    return data


@scalar_reference("transform")
def transform_many(items):
    return [transform(item) for item in items]


def _private_helper_many(items):
    # Private helpers carry no parity contract of their own.
    return items
