"""Known-good fixture for the hot-copy checker (never imported)."""

import numpy as np


def hot_path(func):
    return func


@hot_path
def exports_views(array, chunk_size):
    flat = array.reshape(-1).data
    return [flat[i : i + chunk_size] for i in range(0, len(flat), chunk_size)]


@hot_path
def fills_then_exports(n, chunk_size):
    array = np.empty((n, chunk_size), dtype=np.uint8)
    for row in range(n):
        array[row] = row  # fine: no views exported yet
    flat = array.reshape(-1).data
    return [flat[i : i + chunk_size] for i in range(0, len(flat), chunk_size)]


def cold_path_copies(rows):
    # Not annotated @hot_path: copies are unconstrained here.
    return [bytes(row) for row in rows]
