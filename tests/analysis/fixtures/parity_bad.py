"""Known-bad fixture for the fast-parity checker (never imported)."""


def scalar_reference(target):
    def register(func):
        return func

    return register


def transform(data):
    return data


def transform_many(items):  # BAD line 14: no @scalar_reference
    return [transform(item) for item in items]


@scalar_reference("nonexistent_scalar")
def hash_many(items):  # BAD line 19: reference does not resolve
    return items
