"""Known-bad fixture for the hot-copy checker (never imported)."""

import numpy as np


def hot_path(func):
    return func


@hot_path
def copies_rows(rows):
    return [bytes(row) for row in rows]  # BAD line 12: bytes() copy


@hot_path
def copies_array(array):
    return array.copy()  # BAD line 17: .copy()


@hot_path
def materializes(array):
    return array.tobytes()  # BAD line 22: .tobytes()


@hot_path
def np_array_copy(array):
    return np.array(array)  # BAD line 27: np.array default-copies


@hot_path
def writes_after_export(array, chunk_size):
    flat = array.reshape(-1).data
    views = [flat[i : i + chunk_size] for i in range(0, len(flat), chunk_size)]
    array[0] = 0  # BAD line 34: store after export
    return views


@hot_path
def suppressed_fallback(rows):
    return [bytes(row) for row in rows]  # lint: allow[hot-copy]
