"""Known-bad fixture for the secret-flow checker (never imported)."""

from dataclasses import dataclass

import logging

log = logging.getLogger(__name__)


def secret(func):
    return func


@secret
def derive_key(seed: bytes) -> bytes:
    return seed * 2


def leaks_to_log():
    key = derive_key(b"seed")
    log.info("derived key %s", key)  # BAD line 21: log sink


def leaks_via_fstring():
    key = derive_key(b"seed")
    banner = f"key={key}"  # BAD line 26: f-string sink
    return banner


def leaks_attribute(container):
    material = container.material
    raise ValueError(material)  # BAD line 31: exception sink


def leaks_param(plaintext: bytes):
    print(plaintext)  # BAD line 35: print sink


def leaks_metrics_label(metrics):
    key = derive_key(b"seed")
    metrics.counter("ops", key=key)  # BAD line 40: metrics label sink


def declassified_is_fine(plaintext: bytes):
    log.info("sealing %d bytes", len(plaintext))  # OK: len() declassifies
    sealed = encrypt_chunk(plaintext)
    log.info("sealed %s", sealed)  # OK: ciphertext is public


def encrypt_chunk(data: bytes) -> bytes:
    return bytes(reversed(data))


def suppressed_leak():
    key = derive_key(b"seed")
    log.info("key %s", key)  # lint: allow[secret-flow]


@dataclass
class BadKeyHolder:
    material: bytes  # BAD line 60: auto-repr prints a secret field
    label: str = ""
