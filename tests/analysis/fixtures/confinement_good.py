"""Known-good fixture for the loop-confinement checker (never imported)."""


def loop_owned(func):
    return func


def executor_side(func):
    return func


class Scheduler:
    @loop_owned
    def release(self, job):
        pass


class Service:
    def __init__(self):
        self.scheduler = Scheduler()

    @loop_owned
    def finish(self, job):
        # Loop-side code may touch the scheduler freely.
        self.scheduler.release(job)

    @executor_side
    def execute(self, job, slot):
        # Executor code touches only the job and its slot.
        slot.shield = None
        job.result = self._run(job)

    def _run(self, job):
        return job
