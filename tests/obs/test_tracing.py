"""The span tracer: clocks, event kinds, filters, and lifecycle signatures."""

from __future__ import annotations

import repro.obs as obs_api
from repro.obs.tracing import (
    JOB_STAGES,
    LIFECYCLE_STAGES,
    MARK,
    SECURITY,
    SPAN,
    NullTracer,
    ObsEvent,
    Tracer,
    lifecycle_signature,
)


class FakeClock:
    """A hand-cranked clock so span durations are exact in tests."""

    def __init__(self):
        self.t = 100.0

    def advance(self, seconds: float) -> None:
        self.t += seconds

    def __call__(self) -> float:
        return self.t


def test_lifecycle_stage_constants():
    assert LIFECYCLE_STAGES[0] == "admit"
    assert JOB_STAGES == LIFECYCLE_STAGES[1:]
    assert "execute" in JOB_STAGES


def test_tracer_clock_is_relative_to_creation():
    clock = FakeClock()
    tracer = Tracer(clock=clock)
    assert tracer.now() == 0.0
    clock.advance(2.5)
    assert tracer.now() == 2.5


def test_span_context_manager_measures_duration_and_attrs():
    clock = FakeClock()
    tracer = Tracer(clock=clock)
    clock.advance(1.0)
    with tracer.span("execute", tenant="alice", board="board-0") as span:
        clock.advance(3.0)
        span.set(bytes=4096)
    [event] = tracer.events
    assert event.kind == SPAN
    assert event.name == "execute"
    assert event.ts == 1.0
    assert event.dur_s == 3.0
    assert event.tenant == "alice"
    assert event.board == "board-0"
    assert event.attrs == {"bytes": 4096}


def test_span_records_even_when_body_raises():
    tracer = Tracer(clock=FakeClock())
    try:
        with tracer.span("execute"):
            raise RuntimeError("boom")
    except RuntimeError:
        pass
    assert [e.name for e in tracer.events] == ["execute"]


def test_record_span_mark_and_security_with_explicit_timestamps():
    tracer = Tracer(clock=FakeClock())
    tracer.record_span("queue", 1.0, 0.5, tenant="alice", job="job-1")
    tracer.mark("rejected", ts=2.0, tenant="bob")
    tracer.security("mac_failure", ts=3.0, tenant="bob", region="a0")
    kinds = [e.kind for e in tracer.events]
    assert kinds == [SPAN, MARK, SECURITY]
    assert tracer.events[1].dur_s is None
    assert tracer.events[2].attrs == {"region": "a0"}


def test_span_and_security_filters():
    tracer = Tracer(clock=FakeClock())
    tracer.record_span("queue", 0.0, 0.1)
    tracer.record_span("execute", 0.1, 0.2)
    tracer.security("dma_tap")
    tracer.security("eviction")
    assert [e.name for e in tracer.spans()] == ["queue", "execute"]
    assert [e.name for e in tracer.spans("execute")] == ["execute"]
    assert len(tracer.security_events()) == 2
    assert [e.name for e in tracer.security_events("dma_tap")] == ["dma_tap"]
    tracer.clear()
    assert tracer.events == []


def test_event_dict_round_trip_omits_unset_axes():
    event = ObsEvent(1.5, SPAN, "execute", 0.25, tenant="alice")
    payload = event.to_dict()
    assert payload == {
        "ts": 1.5,
        "kind": "span",
        "name": "execute",
        "dur_s": 0.25,
        "tenant": "alice",
    }
    assert ObsEvent.from_dict(payload) == event


def test_null_tracer_is_inert():
    tracer = NullTracer()
    assert tracer.enabled is False
    assert tracer.now() == 0.0
    with tracer.span("execute") as span:
        span.set(bytes=1)
    tracer.record_span("queue", 0.0, 1.0)
    tracer.mark("rejected")
    tracer.security("dma_tap")
    assert tracer.spans() == []
    assert tracer.security_events() == []
    assert len(tracer.events) == 0


def test_lifecycle_signature_keeps_stage_order_and_warm_flags():
    tracer = Tracer(clock=FakeClock())
    tracer.record_span("admit", 0.0, 0.0, tenant="alice")  # not a JOB_STAGE
    tracer.record_span("queue", 0.0, 0.1, tenant="alice")
    tracer.record_span("shield_load", 0.1, 6.2, tenant="alice", warm=False)
    tracer.record_span("execute", 6.3, 1.0, tenant="alice")
    tracer.security("dma_tap", tenant="alice")  # non-spans are excluded
    tracer.record_span("custom_stage", 7.3, 0.1, tenant="alice")  # unknown stage
    assert lifecycle_signature(tracer.events) == [
        ("queue", "alice", None),
        ("shield_load", "alice", False),
        ("execute", "alice", None),
    ]


# ---------------------------------------------------------------------------
# The process-wide handle
# ---------------------------------------------------------------------------


def test_default_handle_is_the_null_backend():
    assert obs_api.current() is obs_api.NULL_OBS
    assert obs_api.NULL_OBS.enabled is False


def test_scoped_installs_and_restores():
    before = obs_api.current()
    with obs_api.scoped(clock=FakeClock()) as handle:
        assert obs_api.current() is handle
        assert handle.enabled
        assert handle.metrics.enabled and handle.tracer.enabled
    assert obs_api.current() is before


def test_configure_halves_independently():
    try:
        handle = obs_api.configure(metrics=True, tracing=False)
        assert handle.metrics.enabled
        assert not handle.tracer.enabled
        assert handle.enabled  # one live half is enough
    finally:
        obs_api.reset()
    assert obs_api.current() is obs_api.NULL_OBS
