"""Exporters: JSONL round-trip + validation, chrome://tracing, Prometheus text."""

from __future__ import annotations

import json

import pytest

from repro.obs.exporters import (
    chrome_trace_dict,
    events_to_jsonl,
    prometheus_text,
    read_jsonl,
    validate_event,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import ObsEvent


def _events() -> list:
    return [
        ObsEvent(0.0, "span", "queue", 0.5, "alice", "sess-1", "job-1", "board-0"),
        ObsEvent(
            0.5, "span", "shield_load", 6.2, "alice", "sess-1", "job-1", "board-0",
            {"warm": False},
        ),
        ObsEvent(7.0, "mark", "rejected", None, "bob", "sess-2"),
        ObsEvent(8.0, "security", "dma_tap", None, "alice", board="board-0"),
    ]


# ---------------------------------------------------------------------------
# JSONL
# ---------------------------------------------------------------------------


def test_jsonl_round_trip(tmp_path):
    path = tmp_path / "trace.jsonl"
    events = _events()
    write_jsonl(events, path)
    assert read_jsonl(path) == events


def test_jsonl_lines_are_valid_schema():
    for line in events_to_jsonl(_events()).splitlines():
        assert validate_event(json.loads(line)) == []


def test_read_jsonl_skips_blank_lines(tmp_path):
    path = tmp_path / "trace.jsonl"
    path.write_text('{"ts": 0.0, "kind": "span", "name": "queue"}\n\n')
    assert len(read_jsonl(path)) == 1


def test_read_jsonl_strict_names_line_and_problem(tmp_path):
    path = tmp_path / "trace.jsonl"
    path.write_text(
        '{"ts": 0.0, "kind": "span", "name": "queue"}\n'
        '{"ts": "later", "kind": "nope", "name": ""}\n'
    )
    with pytest.raises(ValueError, match=r"trace\.jsonl:2"):
        read_jsonl(path)
    # Non-strict keeps going, skipping the unparsable line.
    assert len(read_jsonl(path, strict=False)) == 1


def test_validate_event_enumerates_problems():
    problems = validate_event({"kind": "span"})
    assert any("ts" in p for p in problems)
    assert any("name" in p for p in problems)
    assert validate_event({"ts": 0, "kind": "bogus", "name": "x"}) != []
    assert validate_event({"ts": 0, "kind": "span", "name": "x", "dur_s": "slow"}) != []
    assert validate_event({"ts": 0, "kind": "span", "name": "x", "tenant": 7}) != []
    assert validate_event({"ts": 0, "kind": "span", "name": "x", "attrs": []}) != []


# ---------------------------------------------------------------------------
# chrome://tracing
# ---------------------------------------------------------------------------


def test_chrome_trace_layout(tmp_path):
    trace = chrome_trace_dict(_events())
    entries = trace["traceEvents"]
    assert len(entries) == 4
    span = entries[0]
    # Spans are complete events on a tenant process / board thread, in µs.
    assert span["ph"] == "X"
    assert span["pid"] == "alice"
    assert span["tid"] == "board-0"
    assert span["ts"] == 0.0
    assert span["dur"] == 0.5e6
    assert span["args"]["session"] == "sess-1"
    # Marks/security events become instants; unattributed axes fall back.
    mark = entries[2]
    assert mark["ph"] == "i"
    assert mark["tid"] == "sess-2"
    security = entries[3]
    assert security["cat"] == "security"

    path = tmp_path / "trace.json"
    write_chrome_trace(_events(), path)
    assert json.loads(path.read_text())["traceEvents"] == entries


def test_chrome_trace_unattributed_event_lands_on_fleet_process():
    [entry] = chrome_trace_dict([ObsEvent(0.0, "mark", "tick")])["traceEvents"]
    assert entry["pid"] == "fleet"
    assert entry["tid"] == "service"


# ---------------------------------------------------------------------------
# Prometheus text
# ---------------------------------------------------------------------------


def test_prometheus_text_renders_all_instrument_kinds():
    registry = MetricsRegistry()
    registry.counter("cloud.jobs_completed", board="board-0").inc(3)
    registry.gauge("cloud.queue_depth").set(2)
    histogram = registry.histogram("cloud.stage_seconds", stage="execute")
    for value in (0.1, 0.2, 0.3):
        histogram.observe(value)
    text = prometheus_text(registry)
    assert "# TYPE cloud_jobs_completed_total counter" in text
    assert 'cloud_jobs_completed_total{board="board-0"} 3' in text
    assert "# TYPE cloud_queue_depth gauge" in text
    assert "cloud_queue_depth 2" in text
    assert "# TYPE cloud_stage_seconds summary" in text
    assert 'cloud_stage_seconds{quantile="0.5",stage="execute"} 0.2' in text
    assert 'cloud_stage_seconds_count{stage="execute"} 3' in text
    assert 'cloud_stage_seconds_sum{stage="execute"} 0.6' in text


def test_prometheus_text_of_empty_registry_is_empty():
    assert prometheus_text(MetricsRegistry()) == ""
