"""The metrics registry: instruments, labels, reservoirs, and the null backend."""

from __future__ import annotations

import pytest

from repro.obs.metrics import (
    NULL_INSTRUMENT,
    Histogram,
    MetricsRegistry,
    NullMetricsRegistry,
)


# ---------------------------------------------------------------------------
# Counters and gauges
# ---------------------------------------------------------------------------


def test_counter_increments_and_rejects_decrease():
    registry = MetricsRegistry()
    counter = registry.counter("jobs")
    counter.inc()
    counter.inc(2.5)
    assert counter.value == 3.5
    with pytest.raises(ValueError):
        counter.inc(-1.0)


def test_gauge_moves_both_ways():
    gauge = MetricsRegistry().gauge("depth")
    gauge.set(4)
    gauge.inc()
    gauge.dec(2.0)
    assert gauge.value == 3.0


def test_registry_caches_instruments_by_name_and_labels():
    registry = MetricsRegistry()
    a = registry.counter("loads", board="board-0")
    b = registry.counter("loads", board="board-0")
    c = registry.counter("loads", board="board-1")
    assert a is b
    assert a is not c
    a.inc(2)
    c.inc(3)
    assert registry.counter_total("loads") == 5.0
    assert registry.counters_by_label("loads", "board") == {
        "board-0": 2.0,
        "board-1": 3.0,
    }


def test_counter_total_of_absent_name_is_zero():
    assert MetricsRegistry().counter_total("nope") == 0.0


# ---------------------------------------------------------------------------
# Histograms
# ---------------------------------------------------------------------------


def test_histogram_is_exact_below_reservoir_capacity():
    histogram = Histogram("lat", {}, reservoir_size=100)
    for value in range(10):
        histogram.observe(float(value))
    summary = histogram.summary()
    assert summary["count"] == 10
    assert summary["total"] == 45.0
    assert summary["min"] == 0.0
    assert summary["max"] == 9.0
    assert summary["p50"] == 4.5


def test_histogram_keeps_exact_aggregates_past_capacity():
    histogram = Histogram("lat", {}, reservoir_size=16)
    for value in range(1000):
        histogram.observe(float(value))
    assert histogram.count == 1000
    assert histogram.total == sum(range(1000))
    assert histogram.min == 0.0
    assert histogram.max == 999.0
    assert len(histogram._reservoir) == 16
    # The reservoir is a uniform sample, so its percentiles stay in range.
    assert 0.0 <= histogram.percentile(50.0) <= 999.0


def test_identically_fed_histograms_report_identical_percentiles():
    def build():
        histogram = Histogram("lat", {"stage": "execute"}, reservoir_size=32)
        for value in range(500):
            histogram.observe(float(value * 7 % 500))
        return histogram

    assert build().summary() == build().summary()


def test_histogram_rejects_non_positive_reservoir():
    with pytest.raises(ValueError):
        Histogram("lat", {}, reservoir_size=0)


def test_empty_histogram_summary_shape():
    summary = MetricsRegistry().histogram("lat").summary()
    assert summary["count"] == 0
    assert summary["p50"] is None
    assert summary["mean"] is None


# ---------------------------------------------------------------------------
# Snapshots and the null backend
# ---------------------------------------------------------------------------


def test_snapshot_contains_every_instrument():
    registry = MetricsRegistry()
    registry.counter("jobs", tenant="alice").inc(4)
    registry.gauge("depth").set(2)
    registry.histogram("lat", stage="execute").observe(0.5)
    snapshot = registry.snapshot()
    assert snapshot["counters"] == [
        {"name": "jobs", "labels": {"tenant": "alice"}, "value": 4.0}
    ]
    assert snapshot["gauges"] == [{"name": "depth", "labels": {}, "value": 2.0}]
    [histogram] = snapshot["histograms"]
    assert histogram["name"] == "lat"
    assert histogram["count"] == 1
    assert histogram["p50"] == 0.5


def test_null_registry_is_inert_and_shared():
    registry = NullMetricsRegistry()
    assert registry.enabled is False
    assert registry.counter("x") is NULL_INSTRUMENT
    assert registry.gauge("x") is NULL_INSTRUMENT
    assert registry.histogram("x") is NULL_INSTRUMENT
    registry.counter("x").inc(5)
    registry.histogram("x").observe(1.0)
    assert registry.counter("x").value == 0.0
    assert registry.counter_total("x") == 0.0
    assert registry.counters_by_label("x", "board") == {}
    assert registry.snapshot() == {"counters": [], "gauges": [], "histograms": []}
    assert registry.histogram("x").summary()["count"] == 0
