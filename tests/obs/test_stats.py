"""The shared percentile/summary math: every edge case spelled out once.

These are the semantics all three consumers (metrics histograms,
``trace-report``, the simulator's experiment metadata) rely on -- empty
series, single samples, and interpolation behave identically everywhere
because there is exactly one implementation.
"""

from __future__ import annotations

import pytest

from repro.obs.stats import SUMMARY_QUANTILES, mean, percentile, percentiles, summarize


# ---------------------------------------------------------------------------
# percentile
# ---------------------------------------------------------------------------


def test_empty_series_has_no_percentile():
    assert percentile([], 50.0) is None


def test_single_sample_is_every_percentile():
    for q in (0.0, 50.0, 99.0, 100.0):
        assert percentile([7.5], q) == 7.5


def test_linear_interpolation_between_samples():
    assert percentile([1.0, 2.0], 50.0) == 1.5
    assert percentile([0.0, 10.0], 25.0) == 2.5


def test_endpoints_are_min_and_max():
    data = [5.0, 1.0, 3.0]
    assert percentile(data, 0.0) == 1.0
    assert percentile(data, 100.0) == 5.0


def test_input_need_not_be_sorted_and_is_not_mutated():
    data = [3.0, 1.0, 2.0]
    assert percentile(data, 50.0) == 2.0
    assert data == [3.0, 1.0, 2.0]


def test_out_of_range_q_raises():
    with pytest.raises(ValueError):
        percentile([1.0], -0.1)
    with pytest.raises(ValueError):
        percentile([1.0], 100.1)


# ---------------------------------------------------------------------------
# percentiles / mean / summarize
# ---------------------------------------------------------------------------


def test_percentiles_keys_are_stable_even_when_empty():
    block = percentiles([])
    assert set(block) == {f"p{q:g}" for q in SUMMARY_QUANTILES}
    assert all(value is None for value in block.values())


def test_percentiles_match_single_calls():
    data = list(range(100))
    block = percentiles(data)
    assert block["p50"] == percentile(data, 50.0)
    assert block["p95"] == percentile(data, 95.0)
    assert block["p99"] == percentile(data, 99.0)


def test_mean_of_empty_series_is_none():
    assert mean([]) is None
    assert mean([2.0, 4.0]) == 3.0


def test_summarize_empty_series_shape():
    block = summarize([])
    assert block["count"] == 0
    assert block["total"] == 0.0
    for key in ("min", "mean", "max", "p50", "p95", "p99"):
        assert block[key] is None


def test_summarize_regular_series():
    block = summarize([1.0, 2.0, 3.0, 4.0])
    assert block["count"] == 4
    assert block["total"] == 10.0
    assert block["min"] == 1.0
    assert block["max"] == 4.0
    assert block["mean"] == 2.5
    assert block["p50"] == 2.5
