"""``trace-report`` rendering: per-stage latency and per-tenant totals."""

from __future__ import annotations

from repro.obs.report import render_trace_report, stage_summaries, tenant_breakdown
from repro.obs.tracing import ObsEvent


def _stream() -> list:
    return [
        ObsEvent(0.0, "span", "queue", 1.0, "alice", "sess-1", "job-1", "board-0"),
        ObsEvent(1.0, "span", "execute", 2.0, "alice", "sess-1", "job-1", "board-0"),
        ObsEvent(0.0, "span", "job", 3.0, "alice", "sess-1", "job-1", "board-0"),
        ObsEvent(3.0, "span", "queue", 3.0, "bob", "sess-2", "job-2", "board-0"),
        ObsEvent(6.0, "span", "execute", 1.0, "bob", "sess-2", "job-2", "board-0"),
        ObsEvent(3.0, "span", "job", 1.0, "bob", "sess-2", "job-2", "board-0"),
        ObsEvent(6.5, "security", "dma_tap", None, "bob", board="board-0"),
        ObsEvent(6.6, "security", "dma_tap", None, "bob", board="board-0"),
    ]


def test_stage_summaries_orders_lifecycle_stages_first():
    summaries = stage_summaries(_stream())
    # "queue"/"execute" come in lifecycle order; the "job" envelope sorts after.
    assert list(summaries) == ["queue", "execute", "job"]
    assert summaries["queue"]["count"] == 2
    assert summaries["queue"]["p50"] == 2.0
    assert summaries["execute"]["total"] == 3.0


def test_tenant_breakdown_counts_jobs_busy_time_and_security_events():
    breakdown = tenant_breakdown(_stream())
    assert breakdown["alice"] == {
        "jobs": 1,
        "busy_s": 3.0,
        "security_events": 0,
        "busy_share": 0.75,
    }
    assert breakdown["bob"]["jobs"] == 1
    assert breakdown["bob"]["security_events"] == 2
    assert breakdown["bob"]["busy_share"] == 0.25


def test_tenant_breakdown_of_empty_stream_is_empty():
    assert tenant_breakdown([]) == {}


def test_render_trace_report_contains_both_tables_and_security_counts():
    text = render_trace_report(_stream())
    assert "== trace report: 8 event(s) ==" in text
    assert "per-stage latency (seconds):" in text
    assert "per-tenant totals:" in text
    assert "security events:" in text
    assert "dma_tap: 2" in text
    assert "alice" in text and "bob" in text


def test_render_trace_report_of_empty_stream():
    assert render_trace_report([]) == "== trace report: 0 event(s) =="
