"""MAC tests: HMAC (RFC 4231), CMAC (RFC 4493), PMAC properties, dispatch."""

import hashlib
import hmac as std_hmac

import pytest

from repro.crypto.mac import (
    MAC_ALGORITHMS,
    MAC_TAG_SIZES,
    aes_cmac,
    aes_pmac,
    compute_mac,
    constant_time_equal,
    hmac_sha256,
    verify_aes_cmac,
    verify_aes_pmac,
    verify_hmac_sha256,
    verify_mac,
)
from repro.errors import IntegrityError

RFC4493_KEY = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")


def test_hmac_rfc4231_case_1():
    key = b"\x0b" * 20
    expected = "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
    assert hmac_sha256(key, b"Hi There").hex() == expected


def test_hmac_rfc4231_case_2():
    expected = "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
    assert hmac_sha256(b"Jefe", b"what do ya want for nothing?").hex() == expected


@pytest.mark.parametrize("key_len", [0, 1, 32, 64, 65, 200])
def test_hmac_matches_stdlib_for_any_key_length(key_len):
    key = bytes(range(key_len % 256))[:key_len] or b""
    message = b"shield register command"
    assert hmac_sha256(key, message) == std_hmac.new(key, message, hashlib.sha256).digest()


def test_hmac_verify_accepts_and_rejects():
    tag = hmac_sha256(b"k", b"m")
    verify_hmac_sha256(b"k", b"m", tag)
    with pytest.raises(IntegrityError):
        verify_hmac_sha256(b"k", b"m2", tag)


CMAC_VECTORS = [
    (b"", "bb1d6929e95937287fa37d129b756746"),
    (bytes.fromhex("6bc1bee22e409f96e93d7e117393172a"), "070a16b46b4d4144f79bdd9dd04a287c"),
    (
        bytes.fromhex(
            "6bc1bee22e409f96e93d7e117393172aae2d8a571e03ac9c9eb76fac45af8e51"
            "30c81c46a35ce411"
        ),
        "dfa66747de9ae63030ca32611497c827",
    ),
    (
        bytes.fromhex(
            "6bc1bee22e409f96e93d7e117393172aae2d8a571e03ac9c9eb76fac45af8e51"
            "30c81c46a35ce411e5fbc1191a0a52eff69f2445df4f9b17ad2b417be66c3710"
        ),
        "51f0bebf7e3b9d92fc49741779363cfe",
    ),
]


@pytest.mark.parametrize("message,expected", CMAC_VECTORS)
def test_cmac_rfc4493_vectors(message, expected):
    assert aes_cmac(RFC4493_KEY, message).hex() == expected


def test_cmac_verify():
    tag = aes_cmac(RFC4493_KEY, b"firmware image")
    verify_aes_cmac(RFC4493_KEY, b"firmware image", tag)
    with pytest.raises(IntegrityError):
        verify_aes_cmac(RFC4493_KEY, b"firmware image!", tag)


@pytest.mark.parametrize("length", [0, 1, 15, 16, 17, 32, 100, 257])
def test_pmac_roundtrip_various_lengths(length):
    key = b"p" * 16
    message = bytes((i * 11) % 256 for i in range(length))
    tag = aes_pmac(key, message)
    assert len(tag) == 16
    verify_aes_pmac(key, message, tag)


def test_pmac_detects_modification():
    key = b"p" * 16
    tag = aes_pmac(key, b"weights chunk data")
    with pytest.raises(IntegrityError):
        verify_aes_pmac(key, b"weights chunk dat!", tag)


def test_pmac_distinguishes_block_order():
    key = b"p" * 16
    a, b = b"A" * 16, b"B" * 16
    assert aes_pmac(key, a + b) != aes_pmac(key, b + a)


def test_pmac_key_sensitivity():
    assert aes_pmac(b"k" * 16, b"msg") != aes_pmac(b"j" * 16, b"msg")


def test_mac_dispatch_table_consistency():
    assert set(MAC_ALGORITHMS) == set(MAC_TAG_SIZES) == {"HMAC", "PMAC", "CMAC"}
    for name in MAC_ALGORITHMS:
        tag = compute_mac(name, b"k" * 16, b"message")
        assert len(tag) == MAC_TAG_SIZES[name]
        verify_mac(name, b"k" * 16, b"message", tag)


def test_mac_dispatch_unknown_algorithm():
    with pytest.raises(IntegrityError):
        compute_mac("GMAC", b"k" * 16, b"m")


def test_verify_mac_rejects_wrong_tag():
    with pytest.raises(IntegrityError):
        verify_mac("PMAC", b"k" * 16, b"m", b"\x00" * 16)


def test_constant_time_equal():
    assert constant_time_equal(b"same", b"same")
    assert not constant_time_equal(b"same", b"diff")
    assert not constant_time_equal(b"short", b"longer")
