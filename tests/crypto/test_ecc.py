"""P-256 elliptic-curve tests: curve arithmetic, ECDSA, ECDH."""

import pytest

from repro.crypto.ecc import (
    GENERATOR,
    INFINITY,
    N,
    EcPrivateKey,
    EcPublicKey,
    Point,
    derive_session_key,
    ecdh_shared_secret,
    ecdsa_sign,
    ecdsa_verify,
    ecdsa_verify_strict,
    is_on_curve,
    point_add,
    scalar_multiply,
)
from repro.errors import InvalidKeyError, SignatureError


def test_generator_is_on_curve():
    assert is_on_curve(GENERATOR)


def test_infinity_is_on_curve_and_identity():
    assert is_on_curve(INFINITY)
    assert point_add(GENERATOR, INFINITY) == GENERATOR
    assert point_add(INFINITY, GENERATOR) == GENERATOR


def test_scalar_multiply_small_values_consistent_with_addition():
    two_g = point_add(GENERATOR, GENERATOR)
    three_g = point_add(two_g, GENERATOR)
    assert scalar_multiply(2, GENERATOR) == two_g
    assert scalar_multiply(3, GENERATOR) == three_g
    assert is_on_curve(three_g)


def test_scalar_multiply_by_group_order_is_infinity():
    assert scalar_multiply(N, GENERATOR).is_infinity


def test_scalar_multiply_distributes():
    # (a + b) * G == a*G + b*G
    a, b = 123456789, 987654321
    left = scalar_multiply(a + b, GENERATOR)
    right = point_add(scalar_multiply(a, GENERATOR), scalar_multiply(b, GENERATOR))
    assert left == right


def test_point_encoding_roundtrip():
    point = scalar_multiply(42, GENERATOR)
    assert Point.decode(point.encode()) == point
    assert Point.decode(INFINITY.encode()).is_infinity


def test_point_decode_rejects_off_curve_and_garbage():
    with pytest.raises(InvalidKeyError):
        Point.decode(b"\x04" + b"\x01" * 64)
    with pytest.raises(InvalidKeyError):
        Point.decode(b"\x02" + b"\x00" * 64)


def test_keypair_generation_and_fingerprint(rng):
    key = EcPrivateKey.generate(rng)
    assert is_on_curve(key.public_key.point)
    assert len(key.public_key.fingerprint()) == 32
    assert EcPublicKey.decode(key.public_key.encode()) == key.public_key


def test_from_seed_is_deterministic():
    assert EcPrivateKey.from_seed(b"seed").scalar == EcPrivateKey.from_seed(b"seed").scalar
    assert EcPrivateKey.from_seed(b"seed").scalar != EcPrivateKey.from_seed(b"other").scalar


def test_ecdsa_sign_verify(ec_key):
    signature = ecdsa_sign(ec_key, b"attestation report alpha")
    assert len(signature) == 64
    assert ecdsa_verify(ec_key.public_key, b"attestation report alpha", signature)


def test_ecdsa_signature_is_deterministic(ec_key):
    assert ecdsa_sign(ec_key, b"msg") == ecdsa_sign(ec_key, b"msg")


def test_ecdsa_rejects_modified_message(ec_key):
    signature = ecdsa_sign(ec_key, b"original")
    assert not ecdsa_verify(ec_key.public_key, b"tampered", signature)


def test_ecdsa_rejects_modified_signature(ec_key):
    signature = bytearray(ecdsa_sign(ec_key, b"msg"))
    signature[10] ^= 0x01
    assert not ecdsa_verify(ec_key.public_key, b"msg", bytes(signature))


def test_ecdsa_rejects_wrong_key(ec_key, rng):
    other = EcPrivateKey.generate(rng)
    signature = ecdsa_sign(ec_key, b"msg")
    assert not ecdsa_verify(other.public_key, b"msg", signature)


def test_ecdsa_rejects_malformed_signature(ec_key):
    assert not ecdsa_verify(ec_key.public_key, b"msg", b"short")
    assert not ecdsa_verify(ec_key.public_key, b"msg", b"\x00" * 64)


def test_ecdsa_verify_strict_raises(ec_key):
    with pytest.raises(SignatureError):
        ecdsa_verify_strict(ec_key.public_key, b"msg", b"\x01" * 64)


def test_ecdh_agreement(rng):
    alice = EcPrivateKey.generate(rng)
    bob = EcPrivateKey.generate(rng)
    assert ecdh_shared_secret(alice, bob.public_key) == ecdh_shared_secret(bob, alice.public_key)


def test_ecdh_distinct_pairs_distinct_secrets(rng):
    alice = EcPrivateKey.generate(rng)
    bob = EcPrivateKey.generate(rng)
    carol = EcPrivateKey.generate(rng)
    assert ecdh_shared_secret(alice, bob.public_key) != ecdh_shared_secret(alice, carol.public_key)


def test_ecdh_rejects_infinity():
    key = EcPrivateKey.from_seed(b"k")
    with pytest.raises(InvalidKeyError):
        ecdh_shared_secret(key, EcPublicKey(INFINITY))


def test_derive_session_key_symmetry_and_context(rng):
    kernel = EcPrivateKey.generate(rng)
    vendor = EcPrivateKey.generate(rng)
    assert derive_session_key(kernel, vendor.public_key) == derive_session_key(
        vendor, kernel.public_key
    )
    assert derive_session_key(kernel, vendor.public_key, context=b"a") != derive_session_key(
        kernel, vendor.public_key, context=b"b"
    )
