"""Differential conformance: the batched MAC fast path vs the scalar references.

Mirrors ``test_fast_path_equivalence`` for the authentication side: the
vectorized multi-message SHA-256 / HMAC / PMAC / CMAC in
:mod:`repro.crypto.fasthash` are only allowed to exist because they are
byte-identical to the scalar implementations in :mod:`repro.crypto.hashes`
and :mod:`repro.crypto.mac`.  Seeded random loops sweep message counts,
lengths (including ragged batches), key lengths, and tamperings so every
failure replays deterministically.
"""

from __future__ import annotations

import random

import pytest

from repro.core.config import EngineSetConfig, RegionConfig
from repro.core.engines import MacEngine
from repro.core.sealing import RegionSealer
from repro.crypto.fasthash import (
    fast_aes_cmac_many,
    fast_aes_pmac_many,
    fast_hmac_sha256_many,
    fast_mac_many,
    sha256_many,
)
from repro.crypto.fastpath import fast_path
from repro.crypto.hashes import sha256
from repro.crypto.mac import aes_cmac, aes_pmac, compute_mac, hmac_sha256
from repro.errors import CryptoError, IntegrityError


def _rand_bytes(rnd: random.Random, length: int) -> bytes:
    return bytes(rnd.randrange(256) for _ in range(length))


# ---------------------------------------------------------------------------
# Multi-message SHA-256
# ---------------------------------------------------------------------------


def test_sha256_many_matches_scalar_on_padding_boundaries():
    rnd = random.Random(200)
    # 55/56/63/64 straddle the one-vs-two-padding-block boundary of FIPS 180-4.
    for length in (0, 1, 54, 55, 56, 63, 64, 65, 119, 120, 128, 1000):
        messages = [_rand_bytes(rnd, length) for _ in range(7)]
        assert sha256_many(messages) == [sha256(m) for m in messages]


def test_sha256_many_random_sweep():
    rnd = random.Random(201)
    for _ in range(20):
        length = rnd.randrange(0, 600)
        count = rnd.randrange(1, 20)
        messages = [_rand_bytes(rnd, length) for _ in range(count)]
        assert sha256_many(messages) == [sha256(m) for m in messages]


def test_sha256_many_rejects_ragged_batches_and_accepts_empty():
    assert sha256_many([]) == []
    with pytest.raises(CryptoError):
        sha256_many([b"a", b"ab"])


# ---------------------------------------------------------------------------
# Batched MACs vs scalar references (property-style sweeps)
# ---------------------------------------------------------------------------


def test_batched_hmac_matches_scalar_across_key_and_message_lengths():
    rnd = random.Random(202)
    for _ in range(25):
        # Keys longer than the SHA-256 block are themselves hashed first.
        key = _rand_bytes(rnd, rnd.choice([0, 1, 16, 32, 64, 65, 200]))
        count = rnd.randrange(1, 12)
        messages = [_rand_bytes(rnd, rnd.randrange(0, 400)) for _ in range(count)]
        assert fast_hmac_sha256_many(key, messages) == [
            hmac_sha256(key, m) for m in messages
        ]


@pytest.mark.parametrize("key_len", [16, 24, 32])
def test_batched_pmac_matches_scalar_for_every_key_size(key_len):
    rnd = random.Random(300 + key_len)
    key = _rand_bytes(rnd, key_len)
    for _ in range(15):
        count = rnd.randrange(1, 10)
        messages = [_rand_bytes(rnd, rnd.randrange(0, 300)) for _ in range(count)]
        assert fast_aes_pmac_many(key, messages) == [aes_pmac(key, m) for m in messages]


def test_batched_pmac_block_boundaries():
    # 0 / partial / exactly-one / exactly-many blocks hit all PMAC branches.
    rnd = random.Random(204)
    key = _rand_bytes(rnd, 16)
    lengths = [0, 1, 15, 16, 17, 31, 32, 33, 48, 160]
    messages = [_rand_bytes(rnd, length) for length in lengths]
    assert fast_aes_pmac_many(key, messages) == [aes_pmac(key, m) for m in messages]


def test_batched_cmac_matches_scalar():
    rnd = random.Random(205)
    key = _rand_bytes(rnd, 16)
    lengths = [0, 1, 15, 16, 17, 32, 33, 64, 100]
    messages = [_rand_bytes(rnd, length) for length in lengths]
    assert fast_aes_cmac_many(key, messages) == [aes_cmac(key, m) for m in messages]
    for _ in range(10):
        batch = [_rand_bytes(rnd, rnd.randrange(0, 200)) for _ in range(rnd.randrange(1, 9))]
        assert fast_aes_cmac_many(key, batch) == [aes_cmac(key, m) for m in batch]


@pytest.mark.parametrize("algorithm", ["HMAC", "PMAC", "CMAC"])
def test_fast_mac_many_dispatch_matches_compute_mac(algorithm):
    rnd = random.Random(206)
    key = _rand_bytes(rnd, 32 if algorithm == "HMAC" else 16)
    messages = [_rand_bytes(rnd, rnd.randrange(0, 250)) for _ in range(8)]
    assert fast_mac_many(algorithm, key, messages) == [
        compute_mac(algorithm, key, m) for m in messages
    ]


def test_fast_mac_many_rejects_unknown_algorithm():
    with pytest.raises(CryptoError):
        fast_mac_many("GMAC", bytes(16), [b"x"])


@pytest.mark.parametrize("algorithm", ["HMAC", "PMAC", "CMAC"])
def test_batched_mac_state_is_reusable_across_ragged_batches(algorithm):
    """A cached BatchedMac (what MacEngine holds) stays scalar-identical over
    repeated batches of varying lengths, including the lazily grown PMAC
    offset sequence (short batch first, longer batch after)."""
    from repro.crypto.fasthash import BatchedMac

    rnd = random.Random(213)
    key = _rand_bytes(rnd, 32 if algorithm == "HMAC" else 16)
    batched = BatchedMac(algorithm, key)
    for lengths in ([5, 17], [160, 0, 31], [320, 16, 160], [48]):
        messages = [_rand_bytes(rnd, length) for length in lengths]
        assert batched.tag_many(messages) == [
            compute_mac(algorithm, key, m) for m in messages
        ]


# ---------------------------------------------------------------------------
# Engine level: tag_many / verify_many across both paths
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("algorithm", ["HMAC", "PMAC", "CMAC"])
def test_engine_tag_many_identical_between_paths(algorithm):
    rnd = random.Random(207)
    key = _rand_bytes(rnd, 32)
    scalar_engine = MacEngine(key, algorithm, fast_crypto=False)
    fast_engine = MacEngine(key, algorithm, fast_crypto=True)
    messages = [_rand_bytes(rnd, rnd.randrange(0, 300)) for _ in range(9)]
    scalar_tags = scalar_engine.tag_many(messages)
    fast_tags = fast_engine.tag_many(messages)
    assert scalar_tags == fast_tags
    # Batched tags equal per-message tag() (truncated to 16 bytes) on both paths.
    assert fast_tags == [scalar_engine.tag(m) for m in messages]
    assert all(len(tag) == 16 for tag in fast_tags)
    # Cross-path verification: tags from one path verify on the other.
    scalar_engine.verify_many(messages, fast_tags)
    fast_engine.verify_many(messages, scalar_tags)


def test_engine_tag_many_inherits_process_wide_switch():
    rnd = random.Random(208)
    engine = MacEngine(_rand_bytes(rnd, 32))
    messages = [_rand_bytes(rnd, 100) for _ in range(4)]
    with fast_path(False):
        scalar_tags = engine.tag_many(messages)
        assert not engine.uses_fast_path
    with fast_path(True):
        assert engine.uses_fast_path
        assert engine.tag_many(messages) == scalar_tags


@pytest.mark.parametrize("fast", [False, True])
def test_engine_verify_many_rejects_tampering(fast):
    rnd = random.Random(209)
    engine = MacEngine(_rand_bytes(rnd, 32), "HMAC", fast_crypto=fast)
    messages = [_rand_bytes(rnd, 128) for _ in range(6)]
    tags = engine.tag_many(messages)
    for victim in (0, 3, 5):
        bad_tags = list(tags)
        flipped = bytearray(bad_tags[victim])
        flipped[rnd.randrange(16)] ^= 1 << rnd.randrange(8)
        bad_tags[victim] = bytes(flipped)
        with pytest.raises(IntegrityError):
            engine.verify_many(messages, bad_tags)
    with pytest.raises(IntegrityError):
        engine.verify_many(messages, tags[:-1])
    engine.verify_many(messages, tags)  # untampered batch still verifies
    engine.verify_many([], [])  # empty batch is trivially valid


# ---------------------------------------------------------------------------
# Sealer level: a whole region's chunk MACs in one batch
# ---------------------------------------------------------------------------


def _sealer(fast: bool | None, mac_algorithm: str) -> RegionSealer:
    region = RegionConfig(
        name="mac-conformance", base_address=0, size_bytes=8192, chunk_size=512,
        engine_set="es",
    )
    engine_config = EngineSetConfig(
        name="es", mac_algorithm=mac_algorithm, fast_crypto=fast
    )
    return RegionSealer(b"\x77" * 32, region, engine_config)


@pytest.mark.parametrize("mac_algorithm", ["HMAC", "PMAC", "CMAC"])
def test_batched_region_seal_tags_identical_between_paths(mac_algorithm):
    rnd = random.Random(210)
    plaintext = _rand_bytes(rnd, 8192 - 123)  # exercises tail padding
    scalar = _sealer(False, mac_algorithm).seal_region_data(plaintext)
    fast = _sealer(True, mac_algorithm).seal_region_data(plaintext)
    assert [c.tag for c in scalar] == [c.tag for c in fast]
    assert [c.ciphertext for c in scalar] == [c.ciphertext for c in fast]
    # Cross-path round-trips: sealed on one path, unsealed on the other.
    assert _sealer(False, mac_algorithm).unseal_region_data(fast, len(plaintext)) == plaintext
    assert _sealer(True, mac_algorithm).unseal_region_data(scalar, len(plaintext)) == plaintext


def test_batched_unseal_rejects_tampered_chunk_on_both_paths():
    rnd = random.Random(211)
    sealed = _sealer(True, "HMAC").seal_region_data(_rand_bytes(rnd, 4096))
    victim = rnd.randrange(len(sealed))
    bad_tag = bytearray(sealed[victim].tag)
    bad_tag[rnd.randrange(16)] ^= 0x40
    sealed[victim].tag = bytes(bad_tag)
    for path in (False, True):
        with pytest.raises(IntegrityError):
            _sealer(path, "HMAC").unseal_region_data(sealed)


def test_batched_unseal_with_versions_identical_between_paths():
    rnd = random.Random(212)
    versions = [rnd.randrange(5) for _ in range(4)]
    plaintexts = [_rand_bytes(rnd, 512) for _ in range(4)]
    scalar_sealer = _sealer(False, "HMAC")
    fast_sealer = _sealer(True, "HMAC")
    sealed = scalar_sealer.seal_chunks(list(range(4)), plaintexts, versions)
    assert sealed == fast_sealer.seal_chunks(list(range(4)), plaintexts, versions)
    recovered = fast_sealer.unseal_region_data(sealed, versions=versions)
    assert recovered == b"".join(plaintexts)
    with pytest.raises(IntegrityError):
        fast_sealer.unseal_region_data(sealed, versions=[v + 1 for v in versions])
