"""SHA-256 tests: NIST vectors, hashlib equivalence, incremental hashing."""

import hashlib

import pytest

from repro.crypto.hashes import SHA256, sha256, sha256_hex, truncated_hash


def test_empty_message_vector():
    assert sha256_hex(b"") == (
        "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
    )


def test_abc_vector():
    assert sha256_hex(b"abc") == (
        "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
    )


def test_two_block_vector():
    message = b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
    assert sha256_hex(message) == (
        "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
    )


@pytest.mark.parametrize("length", [0, 1, 55, 56, 57, 63, 64, 65, 127, 128, 1000])
def test_matches_hashlib_at_padding_boundaries(length):
    message = bytes((i * 13 + 7) % 256 for i in range(length))
    assert sha256(message) == hashlib.sha256(message).digest()


def test_incremental_update_equals_one_shot():
    message = b"the security kernel measures every boot component" * 20
    incremental = SHA256()
    for offset in range(0, len(message), 17):
        incremental.update(message[offset : offset + 17])
    assert incremental.digest() == sha256(message)


def test_digest_does_not_consume_state():
    hasher = SHA256(b"part one")
    first = hasher.digest()
    assert hasher.digest() == first
    hasher.update(b" part two")
    assert hasher.digest() == sha256(b"part one part two")


def test_copy_is_independent():
    original = SHA256(b"shared prefix")
    clone = original.copy()
    clone.update(b" plus suffix")
    assert original.digest() == sha256(b"shared prefix")
    assert clone.digest() == sha256(b"shared prefix plus suffix")


def test_update_returns_self_for_chaining():
    assert SHA256().update(b"a").update(b"b").digest() == sha256(b"ab")


def test_truncated_hash():
    assert truncated_hash(b"device", 8) == sha256(b"device")[:8]
    with pytest.raises(ValueError):
        truncated_hash(b"device", 0)
    with pytest.raises(ValueError):
        truncated_hash(b"device", 33)


def test_distinct_messages_distinct_digests():
    assert sha256(b"bitstream-a") != sha256(b"bitstream-b")
