"""AES block-cipher tests against FIPS-197 vectors and structural properties."""

import pytest

from repro.crypto.aes import AES, BLOCK_SIZE, SBOX, INV_SBOX, gf_multiply
from repro.errors import InvalidKeyError

FIPS_VECTORS = [
    # (key hex, plaintext hex, ciphertext hex) from FIPS-197 Appendix C.
    (
        "000102030405060708090a0b0c0d0e0f",
        "00112233445566778899aabbccddeeff",
        "69c4e0d86a7b0430d8cdb78070b4c55a",
    ),
    (
        "000102030405060708090a0b0c0d0e0f1011121314151617",
        "00112233445566778899aabbccddeeff",
        "dda97ca4864cdfe06eaf70a0ec0d7191",
    ),
    (
        "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f",
        "00112233445566778899aabbccddeeff",
        "8ea2b7ca516745bfeafc49904b496089",
    ),
]


@pytest.mark.parametrize("key_hex,pt_hex,ct_hex", FIPS_VECTORS)
def test_fips_197_encrypt(key_hex, pt_hex, ct_hex):
    cipher = AES(bytes.fromhex(key_hex))
    assert cipher.encrypt_block(bytes.fromhex(pt_hex)).hex() == ct_hex


@pytest.mark.parametrize("key_hex,pt_hex,ct_hex", FIPS_VECTORS)
def test_fips_197_decrypt(key_hex, pt_hex, ct_hex):
    cipher = AES(bytes.fromhex(key_hex))
    assert cipher.decrypt_block(bytes.fromhex(ct_hex)).hex() == pt_hex


@pytest.mark.parametrize("key_len,rounds", [(16, 10), (24, 12), (32, 14)])
def test_round_counts(key_len, rounds):
    assert AES(b"\x01" * key_len).rounds == rounds


def test_key_bits_property():
    assert AES(b"k" * 16).key_bits == 128
    assert AES(b"k" * 32).key_bits == 256


@pytest.mark.parametrize("bad_len", [0, 1, 15, 17, 31, 33, 64])
def test_invalid_key_lengths_rejected(bad_len):
    with pytest.raises(InvalidKeyError):
        AES(b"x" * bad_len)


def test_non_bytes_key_rejected():
    with pytest.raises(InvalidKeyError):
        AES("0123456789abcdef")  # type: ignore[arg-type]


def test_invalid_block_sizes_rejected():
    cipher = AES(b"k" * 16)
    with pytest.raises(ValueError):
        cipher.encrypt_block(b"short")
    with pytest.raises(ValueError):
        cipher.decrypt_block(b"x" * 17)


def test_encrypt_decrypt_roundtrip_many_blocks():
    cipher = AES(b"roundtrip-key-01")
    for i in range(64):
        block = bytes([(i * 7 + j) % 256 for j in range(BLOCK_SIZE)])
        assert cipher.decrypt_block(cipher.encrypt_block(block)) == block


def test_different_keys_give_different_ciphertexts():
    block = b"A" * BLOCK_SIZE
    assert AES(b"k" * 16).encrypt_block(block) != AES(b"j" * 16).encrypt_block(block)


def test_sbox_is_a_permutation():
    assert sorted(SBOX) == list(range(256))
    assert sorted(INV_SBOX) == list(range(256))
    for value in range(256):
        assert INV_SBOX[SBOX[value]] == value


def test_sbox_known_values():
    # Canonical corners of the AES S-box.
    assert SBOX[0x00] == 0x63
    assert SBOX[0x01] == 0x7C
    assert SBOX[0x53] == 0xED
    assert SBOX[0xFF] == 0x16


def test_gf_multiply_known_products():
    assert gf_multiply(0x57, 0x83) == 0xC1
    assert gf_multiply(0x57, 0x13) == 0xFE
    assert gf_multiply(0x01, 0xAB) == 0xAB
    assert gf_multiply(0x00, 0xAB) == 0x00


def test_ciphertext_is_not_plaintext():
    cipher = AES(b"k" * 16)
    block = b"\x00" * BLOCK_SIZE
    assert cipher.encrypt_block(block) != block
