"""Tests for ECB/CBC/CTR modes of operation."""

import pytest

from repro.crypto.aes import AES
from repro.crypto.modes import (
    cbc_decrypt,
    cbc_encrypt,
    ctr_decrypt,
    ctr_encrypt,
    ctr_keystream,
    ecb_decrypt,
    ecb_encrypt,
    xor_bytes,
)
from repro.errors import CryptoError, PaddingError


@pytest.fixture()
def cipher():
    return AES(b"mode-test-key-16")


def test_xor_bytes():
    assert xor_bytes(b"\x0f\xf0", b"\xff\xff") == b"\xf0\x0f"
    with pytest.raises(CryptoError):
        xor_bytes(b"\x00", b"\x00\x00")


def test_ecb_roundtrip(cipher):
    plaintext = bytes(range(64))
    assert ecb_decrypt(cipher, ecb_encrypt(cipher, plaintext)) == plaintext


def test_ecb_requires_block_multiple(cipher):
    with pytest.raises(CryptoError):
        ecb_encrypt(cipher, b"not a multiple")
    with pytest.raises(CryptoError):
        ecb_decrypt(cipher, b"short")


def test_ecb_reveals_repeated_blocks(cipher):
    # The classic ECB weakness -- identical blocks encrypt identically.  This
    # is why the Shield never uses ECB for data.
    ciphertext = ecb_encrypt(cipher, b"A" * 16 + b"A" * 16)
    assert ciphertext[:16] == ciphertext[16:]


@pytest.mark.parametrize("length", [0, 1, 15, 16, 17, 100, 255])
def test_cbc_roundtrip_various_lengths(cipher, length):
    plaintext = bytes((i * 3) % 256 for i in range(length))
    iv = b"\x42" * 16
    assert cbc_decrypt(cipher, iv, cbc_encrypt(cipher, iv, plaintext)) == plaintext


def test_cbc_hides_repeated_blocks(cipher):
    ciphertext = cbc_encrypt(cipher, b"\x01" * 16, b"A" * 32)
    assert ciphertext[:16] != ciphertext[16:32]


def test_cbc_rejects_bad_iv(cipher):
    with pytest.raises(CryptoError):
        cbc_encrypt(cipher, b"short-iv", b"data")
    with pytest.raises(CryptoError):
        cbc_decrypt(cipher, b"short-iv", b"x" * 16)


def test_cbc_wrong_key_fails_padding_or_garbles(cipher):
    other = AES(b"another-key-0016")
    ciphertext = cbc_encrypt(cipher, b"\x00" * 16, b"secret payload")
    try:
        recovered = cbc_decrypt(other, b"\x00" * 16, ciphertext)
        assert recovered != b"secret payload"
    except PaddingError:
        pass  # equally acceptable: the padding check caught it


@pytest.mark.parametrize("length", [0, 1, 16, 31, 32, 1000])
def test_ctr_roundtrip(cipher, length):
    plaintext = bytes((7 * i + 1) % 256 for i in range(length))
    iv = b"ctr-iv-12byt"
    assert ctr_decrypt(cipher, iv, ctr_encrypt(cipher, iv, plaintext)) == plaintext


def test_ctr_requires_96_bit_iv(cipher):
    with pytest.raises(CryptoError):
        ctr_encrypt(cipher, b"too-short", b"data")


def test_ctr_keystream_is_deterministic(cipher):
    iv = b"\x00" * 12
    assert ctr_keystream(cipher, iv, 100) == ctr_keystream(cipher, iv, 100)


def test_ctr_keystream_differs_by_iv(cipher):
    assert ctr_keystream(cipher, b"\x00" * 12, 64) != ctr_keystream(cipher, b"\x01" * 12, 64)


def test_ctr_initial_counter_offsets_keystream(cipher):
    iv = b"\x05" * 12
    full = ctr_keystream(cipher, iv, 48, initial_counter=0)
    offset = ctr_keystream(cipher, iv, 32, initial_counter=1)
    assert full[16:] == offset


def test_ctr_is_symmetric(cipher):
    iv = b"\x09" * 12
    data = b"symmetric ctr transform"
    assert ctr_encrypt(cipher, iv, ctr_encrypt(cipher, iv, data)) == data
