"""HKDF and HMAC-DRBG tests."""

import pytest

from repro.crypto.drbg import HmacDrbg, drbg_from_label
from repro.crypto.kdf import derive_subkey, hkdf, hkdf_expand, hkdf_extract


def test_hkdf_rfc5869_case_1():
    ikm = b"\x0b" * 22
    salt = bytes.fromhex("000102030405060708090a0b0c")
    info = bytes.fromhex("f0f1f2f3f4f5f6f7f8f9")
    okm = hkdf(ikm, 42, salt=salt, info=info)
    assert okm.hex() == (
        "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf"
        "34007208d5b887185865"
    )


def test_hkdf_extract_then_expand_matches_hkdf():
    prk = hkdf_extract(b"salt", b"ikm")
    assert hkdf_expand(prk, b"info", 64) == hkdf(b"ikm", 64, salt=b"salt", info=b"info")


def test_hkdf_is_deterministic_and_length_correct():
    for length in (1, 16, 32, 33, 64, 255):
        out = hkdf(b"master", length, info=b"ctx")
        assert len(out) == length
        assert out == hkdf(b"master", length, info=b"ctx")


def test_hkdf_output_too_long_rejected():
    with pytest.raises(ValueError):
        hkdf(b"k", 255 * 32 + 1)


def test_hkdf_info_separates_outputs():
    assert hkdf(b"k", 32, info=b"a") != hkdf(b"k", 32, info=b"b")


def test_derive_subkey_label_separation():
    master = b"m" * 32
    assert derive_subkey(master, "encrypt") != derive_subkey(master, "mac")
    assert len(derive_subkey(master, "encrypt", 16)) == 16


def test_drbg_determinism():
    assert HmacDrbg(b"seed").generate(64) == HmacDrbg(b"seed").generate(64)


def test_drbg_personalization_changes_stream():
    assert HmacDrbg(b"seed", b"a").generate(32) != HmacDrbg(b"seed", b"b").generate(32)


def test_drbg_successive_outputs_differ():
    drbg = HmacDrbg(b"seed")
    assert drbg.generate(32) != drbg.generate(32)


def test_drbg_reseed_changes_future_output():
    a = HmacDrbg(b"seed")
    b = HmacDrbg(b"seed")
    a.generate(16)
    b.generate(16)
    a.reseed(b"fresh entropy")
    assert a.generate(16) != b.generate(16)


def test_drbg_random_int_bounds():
    drbg = HmacDrbg(b"seed")
    for bits in (1, 8, 17, 128, 256):
        value = drbg.random_int(bits)
        assert 0 <= value < (1 << bits)
    with pytest.raises(ValueError):
        drbg.random_int(0)


def test_drbg_randint_below_and_randrange():
    drbg = HmacDrbg(b"seed")
    for _ in range(50):
        assert 0 <= drbg.randint_below(7) < 7
        assert 5 <= drbg.randrange(5, 9) < 9
    with pytest.raises(ValueError):
        drbg.randint_below(0)
    with pytest.raises(ValueError):
        drbg.randrange(3, 3)


def test_drbg_from_label():
    assert drbg_from_label(1, "x").generate(8) == drbg_from_label(1, "x").generate(8)
    assert drbg_from_label(1, "x").generate(8) != drbg_from_label(2, "x").generate(8)


def test_drbg_generate_negative_rejected():
    with pytest.raises(ValueError):
        HmacDrbg(b"s").generate(-1)


def test_drbg_requires_bytes_seed():
    with pytest.raises(TypeError):
        HmacDrbg("not-bytes")  # type: ignore[arg-type]
