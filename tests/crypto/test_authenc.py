"""Authenticated-encryption (encrypt-then-MAC) tests."""

import pytest

from repro.crypto.authenc import AuthenticatedCipher, AuthenticatedMessage
from repro.crypto.mac import MAC_TAG_SIZES
from repro.errors import IntegrityError

IV = b"aead-iv-12by"


@pytest.mark.parametrize("algorithm", ["HMAC", "PMAC", "CMAC"])
def test_seal_open_roundtrip(algorithm):
    cipher = AuthenticatedCipher(b"k" * 32, algorithm)
    message = cipher.seal(IV, b"sensitive accelerator data", b"context")
    assert cipher.open(message, b"context") == b"sensitive accelerator data"
    assert len(message.tag) == MAC_TAG_SIZES[algorithm]


def test_ciphertext_differs_from_plaintext():
    cipher = AuthenticatedCipher(b"k" * 32)
    assert cipher.seal(IV, b"plaintext bytes").ciphertext != b"plaintext bytes"


def test_open_rejects_modified_ciphertext():
    cipher = AuthenticatedCipher(b"k" * 32)
    message = cipher.seal(IV, b"payload")
    forged = AuthenticatedMessage(message.iv, b"X" + message.ciphertext[1:], message.tag)
    with pytest.raises(IntegrityError):
        cipher.open(forged)


def test_open_rejects_modified_tag():
    cipher = AuthenticatedCipher(b"k" * 32)
    message = cipher.seal(IV, b"payload")
    forged = AuthenticatedMessage(message.iv, message.ciphertext, b"\x00" * len(message.tag))
    with pytest.raises(IntegrityError):
        cipher.open(forged)


def test_open_rejects_wrong_associated_data():
    cipher = AuthenticatedCipher(b"k" * 32)
    message = cipher.seal(IV, b"payload", b"address:0x1000")
    with pytest.raises(IntegrityError):
        cipher.open(message, b"address:0x2000")


def test_open_rejects_wrong_key():
    message = AuthenticatedCipher(b"k" * 32).seal(IV, b"payload")
    with pytest.raises(IntegrityError):
        AuthenticatedCipher(b"j" * 32).open(message)


def test_iv_binding():
    cipher = AuthenticatedCipher(b"k" * 32)
    message = cipher.seal(IV, b"payload")
    forged = AuthenticatedMessage(b"different-iv", message.ciphertext, message.tag)
    with pytest.raises(IntegrityError):
        cipher.open(forged)


def test_serialize_deserialize_roundtrip():
    cipher = AuthenticatedCipher(b"k" * 32, "HMAC")
    message = cipher.seal(IV, b"wire payload", b"aad")
    restored = AuthenticatedMessage.deserialize(message.serialize(), tag_size=32)
    assert cipher.open(restored, b"aad") == b"wire payload"


def test_deserialize_rejects_truncated_blob():
    with pytest.raises(IntegrityError):
        AuthenticatedMessage.deserialize(b"short", tag_size=32)


def test_unknown_mac_algorithm_rejected():
    with pytest.raises(IntegrityError):
        AuthenticatedCipher(b"k" * 32, "GCM")


def test_empty_plaintext_allowed():
    cipher = AuthenticatedCipher(b"k" * 32)
    assert cipher.open(cipher.seal(IV, b"")) == b""
