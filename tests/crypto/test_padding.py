"""PKCS#7 padding tests."""

import pytest

from repro.crypto.padding import pkcs7_pad, pkcs7_unpad
from repro.errors import PaddingError


@pytest.mark.parametrize("length", range(0, 33))
def test_roundtrip_all_lengths(length):
    data = bytes(range(length % 256))[:length]
    padded = pkcs7_pad(data, 16)
    assert len(padded) % 16 == 0
    assert pkcs7_unpad(padded, 16) == data


def test_full_block_gets_extra_block():
    padded = pkcs7_pad(b"x" * 16, 16)
    assert len(padded) == 32
    assert padded[-1] == 16


def test_unpad_rejects_empty_and_misaligned():
    with pytest.raises(PaddingError):
        pkcs7_unpad(b"", 16)
    with pytest.raises(PaddingError):
        pkcs7_unpad(b"x" * 17, 16)


def test_unpad_rejects_bad_padding_byte():
    with pytest.raises(PaddingError):
        pkcs7_unpad(b"x" * 15 + b"\x00", 16)
    with pytest.raises(PaddingError):
        pkcs7_unpad(b"x" * 15 + b"\x11", 16)


def test_unpad_rejects_inconsistent_padding():
    block = b"x" * 13 + b"\x01\x02\x03"
    with pytest.raises(PaddingError):
        pkcs7_unpad(block, 16)


def test_invalid_block_size():
    with pytest.raises(PaddingError):
        pkcs7_pad(b"data", 0)
    with pytest.raises(PaddingError):
        pkcs7_pad(b"data", 256)
