"""Tests for the named key containers and key ring."""

import pytest

from repro.crypto.drbg import HmacDrbg
from repro.crypto.ecc import EcPrivateKey
from repro.crypto.keys import (
    AesDeviceKey,
    AttestationKeyPair,
    BitstreamKey,
    DataEncryptionKey,
    DeviceKeySet,
    KeyRing,
    SessionKey,
    SymmetricKey,
)
from repro.errors import InvalidKeyError


def test_symmetric_key_valid_sizes():
    assert SymmetricKey(b"k" * 16).bits == 128
    assert SymmetricKey(b"k" * 32).bits == 256


@pytest.mark.parametrize("length", [0, 8, 15, 17, 31, 33])
def test_symmetric_key_invalid_sizes(length):
    with pytest.raises(InvalidKeyError):
        SymmetricKey(b"k" * length)


def test_symmetric_key_generate():
    rng = HmacDrbg(b"keygen")
    key = SymmetricKey.generate(rng, bits=128, purpose="test")
    assert key.bits == 128 and key.purpose == "test"
    with pytest.raises(InvalidKeyError):
        SymmetricKey.generate(rng, bits=192)


def test_repr_never_leaks_material():
    key = DataEncryptionKey(b"\xde\xad" * 16)
    assert "dead" not in repr(key).lower().replace("\\x", "")
    assert "purpose" in repr(key)


def test_named_key_purposes():
    assert AesDeviceKey(b"k" * 32).purpose == "aes-device-key"
    assert BitstreamKey(b"k" * 32).purpose == "bitstream-encryption-key"
    assert DataEncryptionKey(b"k" * 32).purpose == "data-encryption-key"
    assert SessionKey(b"k" * 32).purpose == "session-key"


def test_device_key_set_exposes_public_half():
    private = EcPrivateKey.from_seed(b"device")
    key_set = DeviceKeySet(AesDeviceKey(b"k" * 32), private, "serial-1")
    assert key_set.public_key == private.public_key


def test_attestation_key_pair():
    private = EcPrivateKey.from_seed(b"attest")
    pair = AttestationKeyPair(private, kernel_hash=b"\x11" * 32)
    assert pair.public_key == private.public_key


def test_key_ring_add_get_contains():
    ring = KeyRing()
    key = DataEncryptionKey(b"k" * 32)
    ring.add("shield0", key)
    assert ring.get("shield0") is key
    assert "shield0" in ring and "other" not in ring
    assert len(ring) == 1


def test_key_ring_duplicate_and_missing():
    ring = KeyRing()
    ring.add("a", DataEncryptionKey(b"k" * 32))
    with pytest.raises(InvalidKeyError):
        ring.add("a", DataEncryptionKey(b"j" * 32))
    with pytest.raises(InvalidKeyError):
        ring.get("missing")
