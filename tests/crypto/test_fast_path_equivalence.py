"""Differential conformance: the vectorized AES-CTR fast path vs the scalar reference.

The fast path is only allowed to exist because it is *byte-identical* to the
pure-Python reference.  These tests are property-based in the
hypothesis style -- seeded random loops sweep keys, IVs, lengths, counter
offsets, and tamperings -- but use explicit ``random.Random`` seeds so every
failure replays deterministically.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.core.config import EngineSetConfig, RegionConfig
from repro.core.engines import AesEngine
from repro.core.sealing import RegionSealer
from repro.crypto.aes import AES, BLOCK_SIZE
from repro.crypto.fastaes import (
    VectorAes,
    fast_ctr_keystream,
    fast_ctr_transform,
    fast_ctr_transform_many,
)
from repro.crypto.fastpath import fast_path, fast_path_enabled, set_fast_path
from repro.crypto.modes import ctr_keystream, ctr_transform
from repro.errors import CryptoError, IntegrityError


def _rand_bytes(rnd: random.Random, length: int) -> bytes:
    return bytes(rnd.randrange(256) for _ in range(length))


# ---------------------------------------------------------------------------
# Raw block transform
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("key_len", [16, 24, 32])
def test_encrypt_blocks_matches_scalar_for_every_key_size(key_len):
    rnd = random.Random(1000 + key_len)
    key = _rand_bytes(rnd, key_len)
    cipher = AES(key)
    vector = VectorAes(cipher)
    blocks = _rand_bytes(rnd, 37 * BLOCK_SIZE)
    batch = np.frombuffer(blocks, dtype=np.uint8).reshape(-1, BLOCK_SIZE)
    fast = vector.encrypt_blocks(batch)
    for i in range(batch.shape[0]):
        scalar = cipher.encrypt_block(blocks[i * BLOCK_SIZE : (i + 1) * BLOCK_SIZE])
        assert bytes(fast[i].tobytes()) == scalar


def test_vector_aes_accepts_raw_key_bytes():
    key = bytes(range(16))
    data = b"attack at dawn!!" * 3
    iv = bytes(12)
    assert VectorAes(key).ctr_transform(iv, data) == ctr_transform(AES(key), iv, data)


# ---------------------------------------------------------------------------
# CTR transform: random lengths, offsets, counter wraparound
# ---------------------------------------------------------------------------


def test_ctr_transform_equivalence_random_sweep():
    rnd = random.Random(42)
    for _ in range(80):
        key = _rand_bytes(rnd, rnd.choice([16, 24, 32]))
        iv = _rand_bytes(rnd, 12)
        length = rnd.randrange(0, 700)
        counter = rnd.choice([0, 1, 7, 255, 2**31, 2**32 - 2, 2**32 - 1])
        data = _rand_bytes(rnd, length)
        cipher = AES(key)
        assert fast_ctr_transform(cipher, iv, data, counter) == ctr_transform(
            cipher, iv, data, counter
        )


def test_ctr_keystream_equivalence_and_partial_tail():
    rnd = random.Random(7)
    cipher = AES(_rand_bytes(rnd, 16))
    iv = _rand_bytes(rnd, 12)
    for length in (0, 1, 15, 16, 17, 100, 512, 513):
        assert fast_ctr_keystream(cipher, iv, length) == ctr_keystream(cipher, iv, length)


def test_ctr_roundtrip_through_mixed_paths():
    """Encrypt on one path, decrypt on the other, in both directions."""
    rnd = random.Random(11)
    key = _rand_bytes(rnd, 32)
    iv = _rand_bytes(rnd, 12)
    data = _rand_bytes(rnd, 1234)
    cipher = AES(key)
    assert ctr_transform(cipher, iv, fast_ctr_transform(cipher, iv, data)) == data
    assert fast_ctr_transform(cipher, iv, ctr_transform(cipher, iv, data)) == data


def test_fast_path_rejects_bad_iv():
    with pytest.raises(CryptoError):
        fast_ctr_transform(AES(bytes(16)), b"short", b"data")


# ---------------------------------------------------------------------------
# Batched chunk transform
# ---------------------------------------------------------------------------


def test_ctr_transform_many_matches_per_chunk_scalar():
    rnd = random.Random(13)
    key = _rand_bytes(rnd, 16)
    cipher = AES(key)
    vector = VectorAes(cipher)
    for chunk_size in (16, 48, 512):
        ivs = [_rand_bytes(rnd, 12) for _ in range(9)]
        datas = [_rand_bytes(rnd, chunk_size) for _ in range(9)]
        batch = fast_ctr_transform_many(vector, ivs, datas)
        for iv, data, out in zip(ivs, datas, batch):
            assert out == ctr_transform(cipher, iv, data)


def test_ctr_transform_many_validates_inputs():
    vector = VectorAes(bytes(16))
    with pytest.raises(CryptoError):
        vector.ctr_transform_many([bytes(12)], [b"a", b"b"])
    with pytest.raises(CryptoError):
        vector.ctr_transform_many([bytes(12), bytes(12)], [b"aa", b"a"])
    assert vector.ctr_transform_many([], []) == []


# ---------------------------------------------------------------------------
# Engine and sealer level: ciphertext AND tags must be identical
# ---------------------------------------------------------------------------


def _sealer(fast: bool | None, mac_algorithm: str = "HMAC") -> RegionSealer:
    region = RegionConfig(
        name="conformance", base_address=0, size_bytes=4096, chunk_size=256,
        engine_set="es",
    )
    engine_config = EngineSetConfig(
        name="es", mac_algorithm=mac_algorithm, fast_crypto=fast
    )
    return RegionSealer(b"\x55" * 32, region, engine_config)


@pytest.mark.parametrize("mac_algorithm", ["HMAC", "PMAC", "CMAC"])
def test_sealed_chunks_identical_between_paths(mac_algorithm):
    rnd = random.Random(99)
    scalar_sealer = _sealer(False, mac_algorithm)
    fast_sealer = _sealer(True, mac_algorithm)
    for chunk_index in range(6):
        plaintext = _rand_bytes(rnd, 256)
        version = rnd.randrange(4)
        scalar = scalar_sealer.seal_chunk(chunk_index, plaintext, version)
        fast = fast_sealer.seal_chunk(chunk_index, plaintext, version)
        assert scalar.ciphertext == fast.ciphertext
        assert scalar.tag == fast.tag
        # Cross-path unsealing: fast-sealed chunks verify on the scalar path.
        assert scalar_sealer.unseal_chunk(
            chunk_index, fast.ciphertext, fast.tag, version
        ) == plaintext
        assert fast_sealer.unseal_chunk(
            chunk_index, scalar.ciphertext, scalar.tag, version
        ) == plaintext


def test_region_batch_sealing_identical_between_paths():
    rnd = random.Random(101)
    plaintext = _rand_bytes(rnd, 4096 - 77)  # exercises tail padding
    scalar = _sealer(False).seal_region_data(plaintext)
    fast = _sealer(True).seal_region_data(plaintext)
    assert [c.ciphertext for c in scalar] == [c.ciphertext for c in fast]
    assert [c.tag for c in scalar] == [c.tag for c in fast]
    assert _sealer(True).unseal_region_data(scalar, len(plaintext)) == plaintext
    assert _sealer(False).unseal_region_data(fast, len(plaintext)) == plaintext


def test_tampered_tags_fail_identically_on_both_paths():
    rnd = random.Random(103)
    plaintext = _rand_bytes(rnd, 256)
    sealed = _sealer(True).seal_chunk(3, plaintext)
    for tamper in range(10):
        position = rnd.randrange(len(sealed.tag))
        bad_tag = bytearray(sealed.tag)
        bad_tag[position] ^= 1 << rnd.randrange(8)
        for path in (False, True):
            with pytest.raises(IntegrityError):
                _sealer(path).unseal_chunk(3, sealed.ciphertext, bytes(bad_tag))


def test_tampered_ciphertext_fails_identically_on_both_paths():
    rnd = random.Random(104)
    sealed = _sealer(False).seal_chunk(0, _rand_bytes(rnd, 256))
    bad = bytearray(sealed.ciphertext)
    bad[rnd.randrange(len(bad))] ^= 0x80
    for path in (False, True):
        with pytest.raises(IntegrityError):
            _sealer(path).unseal_chunk(0, bytes(bad), sealed.tag)


# ---------------------------------------------------------------------------
# Flag plumbing
# ---------------------------------------------------------------------------


def test_engine_batch_rejects_mismatched_lists_on_both_paths():
    from repro.errors import ShieldError

    for flag in (False, True):
        engine = AesEngine(bytes(16), fast_crypto=flag)
        with pytest.raises(ShieldError):
            engine.encrypt_many([bytes(12)], [b"a" * 16, b"b" * 16])
        with pytest.raises(ShieldError):
            engine.decrypt_many([bytes(12), bytes(12)], [b"a" * 16])


def test_engine_fast_path_resolution():
    key = bytes(16)
    forced_on = AesEngine(key, fast_crypto=True)
    forced_off = AesEngine(key, fast_crypto=False)
    inherit = AesEngine(key)
    assert forced_on.uses_fast_path
    assert not forced_off.uses_fast_path
    with fast_path(True):
        assert inherit.uses_fast_path
        assert not forced_off.uses_fast_path
    with fast_path(False):
        assert not inherit.uses_fast_path
        assert forced_on.uses_fast_path


def test_set_fast_path_returns_previous_value():
    original = fast_path_enabled()
    try:
        assert set_fast_path(True) == original
        assert set_fast_path(False) is True
    finally:
        set_fast_path(original)


def test_engine_outputs_identical_across_flag_flips():
    rnd = random.Random(105)
    key = _rand_bytes(rnd, 16)
    iv = _rand_bytes(rnd, 12)
    data = _rand_bytes(rnd, 1000)
    engine = AesEngine(key)
    with fast_path(False):
        scalar_out = engine.encrypt(iv, data)
    with fast_path(True):
        fast_out = engine.encrypt(iv, data)
        assert engine.decrypt(iv, fast_out) == data
    assert scalar_out == fast_out
