"""RSA tests: signatures, OAEP-style encryption, key encoding."""

import pytest

from repro.crypto.drbg import HmacDrbg
from repro.crypto.rsa import (
    RsaPrivateKey,
    RsaPublicKey,
    rsa_decrypt,
    rsa_encrypt,
    rsa_sign,
    rsa_verify,
    rsa_verify_strict,
)
from repro.errors import CryptoError, InvalidKeyError, SignatureError


def test_keypair_structure(small_rsa_key):
    assert small_rsa_key.modulus > 0
    assert small_rsa_key.public_exponent == 65537
    # d * e == 1 mod phi implies (m^e)^d == m; spot check with a small message.
    message = 42
    assert pow(pow(message, small_rsa_key.public_exponent, small_rsa_key.modulus),
               small_rsa_key.private_exponent, small_rsa_key.modulus) == message


def test_from_seed_deterministic():
    a = RsaPrivateKey.from_seed(b"seed", bits=512)
    b = RsaPrivateKey.from_seed(b"seed", bits=512)
    assert a.modulus == b.modulus


def test_generate_rejects_tiny_modulus(rng):
    with pytest.raises(InvalidKeyError):
        RsaPrivateKey.generate(rng, bits=256)


def test_sign_verify(rsa_key):
    signature = rsa_sign(rsa_key, b"encrypted bitstream")
    assert rsa_verify(rsa_key.public_key, b"encrypted bitstream", signature)


def test_verify_rejects_tampered_message(rsa_key):
    signature = rsa_sign(rsa_key, b"original message")
    assert not rsa_verify(rsa_key.public_key, b"tampered message", signature)


def test_verify_rejects_tampered_signature(rsa_key):
    signature = bytearray(rsa_sign(rsa_key, b"message"))
    signature[0] ^= 0xFF
    assert not rsa_verify(rsa_key.public_key, b"message", bytes(signature))


def test_verify_rejects_wrong_length(rsa_key):
    assert not rsa_verify(rsa_key.public_key, b"message", b"short")


def test_verify_strict_raises(rsa_key):
    with pytest.raises(SignatureError):
        rsa_verify_strict(rsa_key.public_key, b"message", b"\x00" * rsa_key.size_bytes)


def test_encrypt_decrypt_roundtrip(rsa_key, rng):
    secret = b"data encryption key material 32b"
    ciphertext = rsa_encrypt(rsa_key.public_key, secret, rng)
    assert rsa_decrypt(rsa_key, ciphertext) == secret


def test_encrypt_is_randomized(rsa_key, rng):
    secret = b"same plaintext"
    assert rsa_encrypt(rsa_key.public_key, secret, rng) != rsa_encrypt(
        rsa_key.public_key, secret, rng
    )


def test_decrypt_rejects_tampered_ciphertext(rsa_key, rng):
    ciphertext = bytearray(rsa_encrypt(rsa_key.public_key, b"secret", rng))
    ciphertext[-1] ^= 0x01
    with pytest.raises(CryptoError):
        rsa_decrypt(rsa_key, bytes(ciphertext))


def test_decrypt_rejects_wrong_length(rsa_key):
    with pytest.raises(CryptoError):
        rsa_decrypt(rsa_key, b"\x00" * 10)


def test_encrypt_rejects_oversized_plaintext(rsa_key, rng):
    too_long = b"x" * (rsa_key.size_bytes - 2 * 32 - 1)
    with pytest.raises(CryptoError):
        rsa_encrypt(rsa_key.public_key, too_long, rng)


def test_decrypt_with_wrong_key_fails(rsa_key, small_rsa_key, rng):
    ciphertext = rsa_encrypt(rsa_key.public_key, b"secret", rng)
    with pytest.raises(CryptoError):
        rsa_decrypt(
            RsaPrivateKey(rsa_key.modulus, rsa_key.public_exponent, small_rsa_key.private_exponent),
            ciphertext,
        )


def test_public_key_encoding_roundtrip(rsa_key):
    encoded = rsa_key.public_key.encode()
    decoded = RsaPublicKey.decode(encoded)
    assert decoded == rsa_key.public_key
    assert len(rsa_key.public_key.fingerprint()) == 32


def test_public_key_decode_rejects_garbage():
    with pytest.raises(InvalidKeyError):
        RsaPublicKey.decode(b"\x00\x01")
    with pytest.raises(InvalidKeyError):
        RsaPublicKey.decode(b"\x00\x10" + b"\x01" * 5)


def test_private_key_encoding_roundtrip(rsa_key):
    decoded = RsaPrivateKey.decode(rsa_key.encode())
    assert decoded.modulus == rsa_key.modulus
    assert decoded.private_exponent == rsa_key.private_exponent
    # The decoded key still decrypts.
    rng = HmacDrbg(b"roundtrip")
    assert rsa_decrypt(decoded, rsa_encrypt(rsa_key.public_key, b"hello", rng)) == b"hello"


def test_private_key_decode_rejects_garbage():
    with pytest.raises(InvalidKeyError):
        RsaPrivateKey.decode(b"\x00")
    with pytest.raises(InvalidKeyError):
        RsaPrivateKey.decode(b"\x00\x40" + b"\x01" * 7)
