"""Property-based tests for the Shield datapath and memory substrate.

The key invariant: for any sequence of reads and writes the accelerator
issues, the Shield behaves exactly like ordinary RAM (a reference byte array)
-- confidentiality and integrity must never change the values the accelerator
observes.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.config import EngineSetConfig, RegionConfig, ShieldConfig
from repro.hw.memory import DeviceMemory
from repro.sim.simulator import build_test_shield

REGION_BYTES = 2048
CHUNK = 128


def make_config(buffer_bytes: int) -> ShieldConfig:
    return ShieldConfig(
        shield_id="property-shield",
        engine_sets=[
            EngineSetConfig(name="es", sbox_parallelism=4, buffer_bytes=buffer_bytes)
        ],
        regions=[
            RegionConfig(
                name="scratch", base_address=0, size_bytes=REGION_BYTES, chunk_size=CHUNK,
                engine_set="es", replay_protected=True,
            )
        ],
    )


operations = st.lists(
    st.tuples(
        st.sampled_from(["read", "write"]),
        st.integers(min_value=0, max_value=REGION_BYTES - 1),
        st.integers(min_value=1, max_value=300),
        st.integers(min_value=0, max_value=255),
    ),
    min_size=1,
    max_size=12,
)


@settings(max_examples=12, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(ops=operations, buffered=st.booleans())
def test_shield_behaves_like_plain_memory(ops, buffered):
    harness = build_test_shield(make_config(512 if buffered else 0))
    shield = harness.shield
    reference = bytearray(REGION_BYTES)
    # The accelerator initializes its scratch region before use (full-chunk
    # writes, so nothing uninitialized is ever fetched from DRAM).
    shield.memory_write(0, bytes(REGION_BYTES))
    for kind, address, length, value in ops:
        length = min(length, REGION_BYTES - address)
        if kind == "write":
            data = bytes([value]) * length
            shield.memory_write(address, data)
            reference[address : address + length] = data
        else:
            assert shield.memory_read(address, length) == bytes(
                reference[address : address + length]
            )
    shield.flush()
    # After a flush, everything is still readable and equal to the reference.
    assert shield.memory_read(0, REGION_BYTES) == bytes(reference)
    # And the raw DRAM never equals the plaintext (unless it is all zeros).
    raw = harness.board.device_memory.tamper_read(0, REGION_BYTES)
    if bytes(reference) != b"\x00" * REGION_BYTES:
        assert raw != bytes(reference)


@settings(max_examples=25, deadline=None)
@given(
    address=st.integers(min_value=0, max_value=65_000),
    data=st.binary(min_size=1, max_size=300),
)
def test_device_memory_matches_reference(address, data):
    memory = DeviceMemory(1 << 16)
    reference = bytearray(1 << 16)
    end = min(address + len(data), 1 << 16)
    data = data[: end - address]
    if not data:
        return
    memory.write(address, data)
    reference[address : address + len(data)] = data
    assert memory.read(0, 1 << 16) == bytes(reference)
