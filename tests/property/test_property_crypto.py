"""Property-based tests (hypothesis) for the cryptographic substrate."""

import hashlib

from hypothesis import given, settings, strategies as st

from repro.crypto.aes import AES
from repro.crypto.hashes import sha256
from repro.crypto.kdf import hkdf
from repro.crypto.mac import aes_cmac, aes_pmac, hmac_sha256
from repro.crypto.modes import cbc_decrypt, cbc_encrypt, ctr_transform
from repro.crypto.padding import pkcs7_pad, pkcs7_unpad

KEYS_16 = st.binary(min_size=16, max_size=16)
KEYS_32 = st.binary(min_size=32, max_size=32)
IVS_12 = st.binary(min_size=12, max_size=12)
IVS_16 = st.binary(min_size=16, max_size=16)
MESSAGES = st.binary(min_size=0, max_size=600)


@settings(max_examples=40, deadline=None)
@given(message=MESSAGES)
def test_sha256_matches_hashlib(message):
    assert sha256(message) == hashlib.sha256(message).digest()


@settings(max_examples=30, deadline=None)
@given(key=KEYS_32, message=MESSAGES)
def test_hmac_matches_stdlib(key, message):
    import hmac as std_hmac

    assert hmac_sha256(key, message) == std_hmac.new(key, message, hashlib.sha256).digest()


@settings(max_examples=25, deadline=None)
@given(key=KEYS_16, block=st.binary(min_size=16, max_size=16))
def test_aes_block_roundtrip(key, block):
    cipher = AES(key)
    assert cipher.decrypt_block(cipher.encrypt_block(block)) == block


@settings(max_examples=25, deadline=None)
@given(key=KEYS_16, iv=IVS_12, message=MESSAGES)
def test_ctr_roundtrip(key, iv, message):
    cipher = AES(key)
    assert ctr_transform(cipher, iv, ctr_transform(cipher, iv, message)) == message


@settings(max_examples=20, deadline=None)
@given(key=KEYS_16, iv=IVS_16, message=MESSAGES)
def test_cbc_roundtrip(key, iv, message):
    cipher = AES(key)
    assert cbc_decrypt(cipher, iv, cbc_encrypt(cipher, iv, message)) == message


@settings(max_examples=40, deadline=None)
@given(message=MESSAGES, block_size=st.integers(min_value=1, max_value=255))
def test_pkcs7_roundtrip(message, block_size):
    padded = pkcs7_pad(message, block_size)
    assert len(padded) % block_size == 0
    assert pkcs7_unpad(padded, block_size) == message


@settings(max_examples=20, deadline=None)
@given(key=KEYS_16, message=MESSAGES, flip=st.integers(min_value=0, max_value=10 ** 6))
def test_cmac_detects_any_single_byte_change(key, message, flip):
    if not message:
        return
    tag = aes_cmac(key, message)
    index = flip % len(message)
    tampered = bytearray(message)
    tampered[index] ^= 0x01
    assert aes_cmac(key, bytes(tampered)) != tag


@settings(max_examples=20, deadline=None)
@given(key=KEYS_16, message=MESSAGES, flip=st.integers(min_value=0, max_value=10 ** 6))
def test_pmac_detects_any_single_byte_change(key, message, flip):
    if not message:
        return
    tag = aes_pmac(key, message)
    index = flip % len(message)
    tampered = bytearray(message)
    tampered[index] ^= 0x01
    assert aes_pmac(key, bytes(tampered)) != tag


@settings(max_examples=25, deadline=None)
@given(
    ikm=st.binary(min_size=1, max_size=64),
    info_a=st.binary(max_size=16),
    info_b=st.binary(max_size=16),
    length=st.integers(min_value=1, max_value=128),
)
def test_hkdf_lengths_and_context_separation(ikm, info_a, info_b, length):
    out_a = hkdf(ikm, length, info=info_a)
    assert len(out_a) == length
    if info_a != info_b:
        assert out_a != hkdf(ikm, length, info=info_b)
