"""Workload-specific unit tests for the remaining accelerator models."""

import numpy as np

from repro.accelerators.affine import AffineTransformAccelerator
from repro.accelerators.base import DirectMemoryAdapter
from repro.accelerators.convolution import ConvolutionAccelerator
from repro.accelerators.digit_recognition import DigitRecognitionAccelerator
from repro.accelerators.dnnweaver import DnnWeaverAccelerator
from repro.accelerators.matmul import MatMulAccelerator
from repro.accelerators.vector_add import VectorAddAccelerator
from repro.hw.memory import DeviceMemory


def run_direct(accelerator, seed=0, **params):
    memory = DeviceMemory(1 << 26)
    adapter = DirectMemoryAdapter(memory)
    config = accelerator.build_shield_config()
    for region_name, plaintext in accelerator.prepare_inputs(seed=seed).items():
        memory.write(config.region(region_name).base_address, plaintext)
    return accelerator.run(adapter, **params)


def test_vector_add_computes_sums():
    accelerator = VectorAddAccelerator(vector_bytes=8192)
    inputs = accelerator.prepare_inputs(seed=3)
    result = run_direct(accelerator, seed=3)
    for part in range(4):
        a = np.frombuffer(inputs[f"a{part}"], dtype=np.int32)
        b = np.frombuffer(inputs[f"b{part}"], dtype=np.int32)
        assert np.array_equal(result.outputs[f"c{part}"], a + b)


def test_vector_add_regions_are_contiguous_and_disjoint():
    accelerator = VectorAddAccelerator(vector_bytes=16384)
    config = accelerator.build_shield_config()
    ordered = sorted(config.regions, key=lambda r: r.base_address)
    for earlier, later in zip(ordered, ordered[1:]):
        assert earlier.end_address == later.base_address


def test_matmul_matches_numpy():
    accelerator = MatMulAccelerator(dimension=16)
    inputs = accelerator.prepare_inputs(seed=4)
    result = run_direct(accelerator, seed=4)
    n = 16
    a = np.frombuffer(inputs["a"][: n * n * 4], dtype=np.int32).reshape(n, n)
    b = np.frombuffer(inputs["b"][: n * n * 4], dtype=np.int32).reshape(n, n)
    assert np.array_equal(result.outputs["c"], (a @ b).astype(np.int32))


def test_matmul_geometry_rounds_to_chunks():
    accelerator = MatMulAccelerator(dimension=10)
    assert accelerator.matrix_bytes % 512 == 0
    assert accelerator.matrix_bytes >= 10 * 10 * 4


def test_convolution_identity_filter_preserves_input():
    accelerator = ConvolutionAccelerator(
        input_size=5, input_channels=1, filter_size=3, output_channels=1, batch=1
    )
    inputs = np.arange(25, dtype=np.int32).reshape(1, 5, 5, 1)
    weights = np.zeros((1, 3, 3, 1), dtype=np.int32)
    weights[0, 1, 1, 0] = 1  # identity kernel
    memory = DeviceMemory(1 << 20)
    memory.write(accelerator.region_base("inputs"),
                 inputs.tobytes() + b"\x00" * (accelerator.input_bytes - inputs.nbytes))
    memory.write(accelerator.region_base("weights"),
                 weights.tobytes() + b"\x00" * (accelerator.weight_bytes - weights.nbytes))
    result = accelerator.run(DirectMemoryAdapter(memory))
    assert np.array_equal(result.outputs["feature_map"][0, :, :, 0], inputs[0, :, :, 0])


def test_convolution_profile_paper_scale_traffic():
    profile = ConvolutionAccelerator().profile(paper_scale=True)
    # 16-image batch of 27x27x96 inputs and 27x27x256 outputs, 32-bit values.
    assert profile.total_bytes > 10 * 1024 * 1024
    assert profile.compute_cycles > 0


def test_digit_recognition_predicts_exact_match_label():
    accelerator = DigitRecognitionAccelerator(training_digits=64, test_digits=1)
    inputs = accelerator.prepare_inputs(seed=5)
    training = np.frombuffer(inputs["training"][: 64 * 32], dtype=np.uint64).reshape(64, 4)
    labels = np.frombuffer(inputs["labels"][: 64 * 4], dtype=np.int32)
    # Make the single test digit identical to training digit 17.
    test_digit = training[17:18].copy()
    inputs["tests"] = accelerator._pad(test_digit.tobytes(), accelerator.test_bytes)
    memory = DeviceMemory(1 << 22)
    config = accelerator.build_shield_config()
    for region_name, plaintext in inputs.items():
        memory.write(config.region(region_name).base_address, plaintext)
    result = accelerator.run(DirectMemoryAdapter(memory))
    assert result.outputs["predictions"][0] == labels[17]


def test_affine_identity_transform_is_lossless():
    accelerator = AffineTransformAccelerator(image_size=16)
    inputs = accelerator.prepare_inputs(seed=6)
    memory = DeviceMemory(1 << 20)
    memory.write(accelerator.region_base("source"), inputs["source"])
    result = accelerator.run(DirectMemoryAdapter(memory), angle_degrees=0.0, scale=1.0)
    source = np.frombuffer(inputs["source"][: 16 * 16], dtype=np.uint8).reshape(16, 16)
    assert np.array_equal(result.outputs["image"], source)


def test_affine_rotation_changes_image_but_is_deterministic():
    accelerator = AffineTransformAccelerator(image_size=32)
    first = run_direct(accelerator, seed=7, angle_degrees=20.0)
    second = run_direct(accelerator, seed=7, angle_degrees=20.0)
    assert np.array_equal(first.outputs["image"], second.outputs["image"])
    untransformed = run_direct(accelerator, seed=7, angle_degrees=0.0, scale=1.0)
    assert not np.array_equal(first.outputs["image"], untransformed.outputs["image"])


def test_dnnweaver_prediction_is_argmax_of_logits():
    accelerator = DnnWeaverAccelerator(input_size=8, conv_channels=(2, 2), fc_units=6, classes=4)
    result = run_direct(accelerator, seed=8)
    logits = result.outputs["logits"]
    assert result.outputs["prediction"] == int(np.argmax(logits))
    assert logits.shape == (4,)


def test_dnnweaver_weight_region_sized_for_all_layers():
    accelerator = DnnWeaverAccelerator(input_size=16, conv_channels=(4, 8), fc_units=32, classes=10)
    dims = accelerator._layer_dims()
    raw = sum(int(np.prod(dims[key])) for key in ("conv1_w", "conv2_w", "fc1_w", "fc2_w")) * 4
    assert accelerator.weight_bytes >= raw
    assert accelerator.weight_bytes % 4096 == 0


def test_profiles_distinguish_access_patterns():
    affine_profile = AffineTransformAccelerator().profile()
    conv_profile = ConvolutionAccelerator().profile()
    assert any(r.access_pattern == "random" for r in affine_profile.regions)
    assert all(r.access_pattern == "streaming" for r in conv_profile.regions)
    dnn_profile = DnnWeaverAccelerator().profile()
    assert any(r.serialized_mac for r in dnn_profile.regions)
