"""Per-accelerator Shield configurations and analytical profiles."""

import pytest

from repro.accelerators import ALL_ACCELERATORS
from repro.accelerators.affine import AffineTransformAccelerator
from repro.accelerators.bitcoin import BitcoinAccelerator
from repro.accelerators.convolution import ConvolutionAccelerator
from repro.accelerators.digit_recognition import DigitRecognitionAccelerator
from repro.accelerators.dnnweaver import DnnWeaverAccelerator
from repro.accelerators.sdp import SdpStorageNodeAccelerator
from repro.accelerators.vector_add import VectorAddAccelerator
from repro.errors import SimulationError


@pytest.mark.parametrize("name,accelerator_cls", sorted(ALL_ACCELERATORS.items()))
def test_default_configs_validate(name, accelerator_cls):
    accelerator = accelerator_cls()
    config = accelerator.build_shield_config()
    config.validate()
    assert config.shield_id
    assert accelerator.describe()["name"] == accelerator.name


@pytest.mark.parametrize("name,accelerator_cls", sorted(ALL_ACCELERATORS.items()))
def test_configs_validate_across_aes_variants(name, accelerator_cls):
    accelerator = accelerator_cls()
    for key_bits in (128, 256):
        for sbox in (4, 16):
            accelerator.build_shield_config(aes_key_bits=key_bits, sbox_parallelism=sbox).validate()


@pytest.mark.parametrize("name,accelerator_cls", sorted(ALL_ACCELERATORS.items()))
def test_profiles_have_positive_baseline(name, accelerator_cls):
    from repro.core.timing import TimingModel

    accelerator = accelerator_cls()
    profile = accelerator.profile()
    assert TimingModel().baseline(profile).total_cycles > 0


def test_paper_scale_configs_validate():
    ConvolutionAccelerator().paper_shield_config().validate()
    AffineTransformAccelerator().paper_shield_config().validate()


def test_vector_add_layout_and_partitioning():
    accelerator = VectorAddAccelerator(vector_bytes=16384)
    config = accelerator.build_shield_config()
    assert len(config.engine_sets) == 8
    assert len(config.regions) == 12
    assert accelerator.region_base("a0") == 0
    assert accelerator.region_base("c0") > accelerator.region_base("b3")
    with pytest.raises(SimulationError):
        VectorAddAccelerator(vector_bytes=1000)  # not partitionable


def test_vector_add_profile_scales_with_size():
    accelerator = VectorAddAccelerator()
    small = accelerator.profile(vector_bytes=8 * 1024)
    large = accelerator.profile(vector_bytes=8 * 1024 * 1024)
    assert large.total_bytes == 1024 * small.total_bytes


def test_dnnweaver_paper_config_matches_section_624():
    config = DnnWeaverAccelerator().build_shield_config()
    weights = config.engine_set("weights")
    fmaps = config.engine_set("fmaps")
    assert weights.num_aes_engines == 4 and weights.buffer_bytes == 128 * 1024
    assert fmaps.buffer_bytes == 64 * 1024
    assert config.region("weights").chunk_size == 4096
    assert config.region("feature_maps").chunk_size == 64
    assert config.region("feature_maps").replay_protected
    assert not config.region("weights").replay_protected


def test_dnnweaver_pmac_variant():
    config = DnnWeaverAccelerator().build_shield_config(pmac_weights=True)
    assert config.engine_set("weights").mac_algorithm == "PMAC"
    assert config.engine_set("weights").num_mac_engines == 4
    assert config.engine_set("fmaps").mac_algorithm == "HMAC"


def test_digit_recognition_config_buffers():
    config = DigitRecognitionAccelerator().build_shield_config()
    # Section 6.2.4: 24 KB of input buffer and 12 KB of output buffer in total.
    input_buffer = sum(
        config.engine_set(name).buffer_bytes for name in ("in0", "in1")
    )
    assert input_buffer == 24 * 1024
    assert config.engine_set("out0").buffer_bytes == 12 * 1024


def test_affine_uses_64_byte_chunks():
    config = AffineTransformAccelerator().build_shield_config()
    assert all(region.chunk_size == 64 for region in config.regions)


def test_bitcoin_is_register_only():
    config = BitcoinAccelerator().build_shield_config()
    assert config.regions == []
    assert config.engine_sets == []
    assert config.register_interface.encrypt_addresses
    profile = BitcoinAccelerator().profile()
    assert profile.regions == ()
    assert profile.compute_cycles > 0


def test_sdp_table2_variants_validate():
    accelerator = SdpStorageNodeAccelerator()
    for engines, sbox, mac, mac_engines in (
        (4, 4, "HMAC", 1), (4, 16, "HMAC", 1), (4, 16, "PMAC", 4),
        (8, 16, "PMAC", 8), (16, 16, "PMAC", 16),
    ):
        config = accelerator.build_shield_config(
            num_aes_engines=engines, sbox_parallelism=sbox,
            mac_algorithm=mac, num_mac_engines=mac_engines,
        )
        config.validate()
        assert config.engine_set("storage").num_aes_engines == engines
        assert config.engine_set("tls").mac_algorithm == mac
