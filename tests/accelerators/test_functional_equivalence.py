"""Functional equivalence: every accelerator computes identical results behind the Shield.

These are the headline integration tests for the Shield datapath: the same
workload, on the same inputs, run once against bare device memory and once
through a fully provisioned Shield, must produce bit-identical outputs while
device DRAM only ever holds ciphertext.
"""

import pytest

from repro.accelerators.affine import AffineTransformAccelerator
from repro.accelerators.convolution import ConvolutionAccelerator
from repro.accelerators.digit_recognition import DigitRecognitionAccelerator
from repro.accelerators.dnnweaver import DnnWeaverAccelerator
from repro.accelerators.matmul import MatMulAccelerator
from repro.accelerators.vector_add import VectorAddAccelerator
from repro.sim.simulator import FunctionalSimulator


@pytest.fixture(scope="module")
def simulator():
    return FunctionalSimulator()


def assert_equivalent(simulator, accelerator, **params):
    record, baseline, shielded = simulator.run_comparison(accelerator, **params)
    assert record.outputs_match, f"{accelerator.name} outputs diverged behind the Shield"
    assert record.shield_dram_bytes_read >= 0
    return record, baseline, shielded


def test_vector_add_equivalence(simulator):
    record, baseline, _ = assert_equivalent(simulator, VectorAddAccelerator(vector_bytes=8192), seed=1)
    assert baseline.bytes_read == 2 * 8192
    # The Shield moves at least the data plus one tag per chunk.
    assert record.shield_dram_bytes_read > baseline.bytes_read


def test_matmul_equivalence(simulator):
    assert_equivalent(simulator, MatMulAccelerator(dimension=24), seed=2)


def test_convolution_equivalence(simulator):
    accelerator = ConvolutionAccelerator(
        input_size=6, input_channels=3, filter_size=3, output_channels=4, batch=2
    )
    assert_equivalent(simulator, accelerator, seed=3)


def test_digit_recognition_equivalence(simulator):
    accelerator = DigitRecognitionAccelerator(training_digits=96, test_digits=6)
    assert_equivalent(simulator, accelerator, seed=4)


def test_affine_equivalence(simulator):
    assert_equivalent(simulator, AffineTransformAccelerator(image_size=32), seed=5)


def test_dnnweaver_equivalence(simulator):
    accelerator = DnnWeaverAccelerator(input_size=8, conv_channels=(2, 3), fc_units=8, classes=4)
    record, _, shielded = assert_equivalent(simulator, accelerator, seed=6)
    assert "prediction" in shielded.outputs


def test_dnnweaver_buffer_gets_hits(simulator):
    accelerator = DnnWeaverAccelerator(input_size=8, conv_channels=(2, 3), fc_units=8, classes=4)
    record, _, _ = simulator.run_comparison(accelerator, seed=7)
    assert record.buffer_hit_rate > 0.0
