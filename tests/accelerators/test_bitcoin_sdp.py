"""Workload-specific behaviour tests for the Bitcoin miner and the SDP storage node."""

import pytest

from repro.accelerators.base import DirectMemoryAdapter
from repro.accelerators.bitcoin import (
    HEADER_PREFIX_BYTES,
    BitcoinAccelerator,
    double_sha256,
    leading_zero_bits,
)
from repro.accelerators.sdp import SdpStorageNodeAccelerator
from repro.crypto.hashes import sha256
from repro.errors import SimulationError
from repro.hw.memory import DeviceMemory
from repro.sim.simulator import build_test_shield


def test_double_sha256_definition():
    assert double_sha256(b"block") == sha256(sha256(b"block"))


def test_leading_zero_bits():
    assert leading_zero_bits(b"\x00\x00\xff") == 16
    assert leading_zero_bits(b"\x80") == 0
    assert leading_zero_bits(b"\x01") == 7
    assert leading_zero_bits(b"\x00" * 4) == 32


def test_mining_finds_valid_nonce():
    miner = BitcoinAccelerator(difficulty_bits=10)
    header = bytes(range(HEADER_PREFIX_BYTES))
    result = miner.mine(header)
    assert leading_zero_bits(result.digest) >= 10
    assert result.digest == double_sha256(header + result.nonce.to_bytes(4, "little"))
    assert result.attempts == result.nonce + 1


def test_mining_is_deterministic():
    miner = BitcoinAccelerator(difficulty_bits=8)
    header = b"\x42" * HEADER_PREFIX_BYTES
    assert miner.mine(header).nonce == miner.mine(header).nonce


def test_mining_validates_inputs():
    with pytest.raises(SimulationError):
        BitcoinAccelerator(difficulty_bits=0)
    with pytest.raises(SimulationError):
        BitcoinAccelerator(difficulty_bits=8).mine(b"short header")
    with pytest.raises(SimulationError):
        BitcoinAccelerator(difficulty_bits=60, max_attempts=10).mine(
            b"\x00" * HEADER_PREFIX_BYTES
        )


def test_bitcoin_run_uses_no_memory():
    miner = BitcoinAccelerator(difficulty_bits=8)
    memory = DeviceMemory(1 << 16)
    result = miner.run(DirectMemoryAdapter(memory), header_prefix=b"\x01" * HEADER_PREFIX_BYTES)
    assert memory.stats.total_bytes == 0
    assert result.outputs["attempts"] >= 1


def test_bitcoin_via_shielded_registers():
    miner = BitcoinAccelerator(difficulty_bits=8)
    harness = build_test_shield(miner.build_shield_config())
    register_file = harness.shield.register_file
    client = harness.data_owner.register_channel(
        harness.shield_config, shield_id=harness.shield_config.shield_id
    )
    header = bytes((i * 5 + 1) % 256 for i in range(HEADER_PREFIX_BYTES))
    # The Data Owner pushes the header through sealed register writes.
    from repro.core.register_interface import STATUS_OK
    from repro.host.runtime import ShefHostRuntime

    runtime = ShefHostRuntime(harness.board.shell, harness.shield_config)
    for index in range(HEADER_PREFIX_BYTES // 4):
        status = runtime.send_register_command(
            client.seal_write(index, header[index * 4 : index * 4 + 4])
        )
        assert status == STATUS_OK
    result = miner.run_via_registers(register_file, client, header)
    assert leading_zero_bits(result.digest) >= 8
    assert register_file.read_register(30) == result.nonce.to_bytes(4, "big")


# -- SDP ------------------------------------------------------------------------------


def test_sdp_put_get_roundtrip():
    node = SdpStorageNodeAccelerator(storage_bytes=64 * 1024, tls_bytes=32 * 1024, auth_block=1024)
    memory = DirectMemoryAdapter(DeviceMemory(1 << 20))
    node.provision_user("alice", ["report.pdf"])
    node.put(memory, "alice", "report.pdf", b"confidential report" * 100)
    assert node.get(memory, "alice", "report.pdf") == b"confidential report" * 100
    assert node.log.puts == 1 and node.log.gets == 1


def test_sdp_access_policy_enforced():
    node = SdpStorageNodeAccelerator(auth_block=1024)
    memory = DirectMemoryAdapter(DeviceMemory(1 << 20))
    node.provision_user("alice", ["a.txt"])
    node.put(memory, "alice", "a.txt", b"alice data")
    with pytest.raises(SimulationError):
        node.get(memory, "bob", "a.txt")
    with pytest.raises(SimulationError):
        node.put(memory, "bob", "b.txt", b"bob data")
    assert node.log.denied == 2


def test_sdp_missing_file_and_capacity():
    node = SdpStorageNodeAccelerator(storage_bytes=4096, tls_bytes=4096, auth_block=4096)
    memory = DirectMemoryAdapter(DeviceMemory(1 << 20))
    node.provision_user("alice", ["a", "b"])
    with pytest.raises(SimulationError):
        node.get(memory, "alice", "a")
    node.put(memory, "alice", "a", b"x" * 100)
    with pytest.raises(SimulationError):
        node.put(memory, "alice", "b", b"y" * 100)  # storage full (one 4 KB block)


def test_sdp_functional_equivalence_behind_shield():
    from repro.sim.simulator import FunctionalSimulator

    simulator = FunctionalSimulator()
    record, baseline, shielded = simulator.run_comparison(
        SdpStorageNodeAccelerator(storage_bytes=64 * 1024, tls_bytes=16 * 1024, auth_block=1024),
        users=2, files_per_user=1, file_bytes=3000, seed=9,
    )
    assert record.outputs_match
    assert shielded.outputs["served"] == shielded.outputs["expected"]


def test_sdp_served_files_are_ciphertext_in_dram():
    node = SdpStorageNodeAccelerator(storage_bytes=64 * 1024, tls_bytes=16 * 1024, auth_block=1024)
    harness = build_test_shield(node.build_shield_config(buffer_bytes=2048))
    from repro.accelerators.base import ShieldMemoryAdapter

    memory = ShieldMemoryAdapter(harness.shield)
    node.provision_user("alice", ["secret.bin"])
    payload = b"PATIENT-GENOME-DATA" * 50
    node.put(memory, "alice", "secret.bin", payload)
    node.get(memory, "alice", "secret.bin")
    harness.shield.flush()
    raw = harness.board.device_memory.tamper_read(0, node.storage_bytes + node.tls_bytes)
    assert b"PATIENT-GENOME-DATA" not in raw
