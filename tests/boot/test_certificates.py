"""Certificate authority and signing-binding tests."""

import pytest

from repro.boot.certificates import (
    Certificate,
    CertificateAuthority,
    sign_binding,
    verify_binding,
    verify_certificate_with_key,
)
from repro.crypto.ecc import EcPrivateKey
from repro.errors import SignatureError


def test_issue_and_verify():
    ca = CertificateAuthority("manufacturer")
    subject_key = EcPrivateKey.from_seed(b"device")
    cert = ca.issue("fpga-001", subject_key.public_key.encode(), {"role": "fpga-device"})
    ca.verify(cert)
    verify_certificate_with_key(cert, ca.root_public_key)
    assert cert.subject_public_key() == subject_key.public_key


def test_lookup_registered_certificate():
    ca = CertificateAuthority("manufacturer")
    ca.issue("fpga-001", EcPrivateKey.from_seed(b"d").public_key.encode())
    assert ca.lookup("fpga-001").subject == "fpga-001"
    with pytest.raises(SignatureError):
        ca.lookup("fpga-404")


def test_verify_rejects_wrong_issuer():
    ca_a = CertificateAuthority("a")
    ca_b = CertificateAuthority("b")
    cert = ca_a.issue("dev", EcPrivateKey.from_seed(b"d").public_key.encode())
    with pytest.raises(SignatureError):
        ca_b.verify(cert)


def test_verify_rejects_tampered_claims():
    ca = CertificateAuthority("manufacturer")
    cert = ca.issue("dev", EcPrivateKey.from_seed(b"d").public_key.encode(), {"role": "fpga"})
    forged = Certificate(
        subject=cert.subject,
        issuer=cert.issuer,
        public_key=cert.public_key,
        claims={"role": "hsm"},
        signature=cert.signature,
    )
    with pytest.raises(SignatureError):
        ca.verify(forged)


def test_verify_rejects_substituted_key():
    ca = CertificateAuthority("manufacturer")
    cert = ca.issue("dev", EcPrivateKey.from_seed(b"real").public_key.encode())
    forged = Certificate(
        subject=cert.subject,
        issuer=cert.issuer,
        public_key=EcPrivateKey.from_seed(b"fake").public_key.encode(),
        claims=dict(cert.claims),
        signature=cert.signature,
    )
    with pytest.raises(SignatureError):
        verify_certificate_with_key(forged, ca.root_public_key)


def test_sign_binding_order_and_content_sensitivity():
    signer = EcPrivateKey.from_seed(b"firmware")
    signature = sign_binding(signer, b"kernel-hash", b"attest-key")
    assert verify_binding(signer.public_key, signature, b"kernel-hash", b"attest-key")
    assert not verify_binding(signer.public_key, signature, b"attest-key", b"kernel-hash")
    assert not verify_binding(signer.public_key, signature, b"kernel-hash", b"other-key")
    other = EcPrivateKey.from_seed(b"not-firmware")
    assert not verify_binding(other.public_key, signature, b"kernel-hash", b"attest-key")
