"""Measurement and measurement-log tests."""

from repro.boot.measurement import MeasurementLog, measure, measure_many
from repro.crypto.hashes import sha256


def test_measure_is_sha256():
    assert measure(b"kernel") == sha256(b"kernel")


def test_measure_many_framing_prevents_concatenation_games():
    assert measure_many(b"ab", b"c") != measure_many(b"a", b"bc")
    assert measure_many(b"kernel", b"bitstream") == measure_many(b"kernel", b"bitstream")


def test_measurement_log_extend_chain():
    log = MeasurementLog()
    first = log.extend("firmware", b"firmware bytes")
    second = log.extend("kernel", b"kernel bytes")
    assert first != second
    assert log.digest() == second
    assert log.event_names() == ["firmware", "kernel"]


def test_measurement_log_order_matters():
    log_a = MeasurementLog()
    log_a.extend("a", b"1")
    log_a.extend("b", b"2")
    log_b = MeasurementLog()
    log_b.extend("b", b"2")
    log_b.extend("a", b"1")
    assert log_a.digest() != log_b.digest()
