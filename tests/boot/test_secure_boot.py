"""Secure-boot chain tests: Manufacturer -> firmware -> Security Kernel."""

import pytest

from repro.boot.firmware import SpbFirmware
from repro.boot.manufacturer import Manufacturer, build_firmware_payload, parse_firmware_payload
from repro.boot.process import install_security_kernel, perform_secure_boot
from repro.boot.security_kernel import DEFAULT_SECURITY_KERNEL_BINARY, SecurityKernel
from repro.crypto.ecc import EcPrivateKey
from repro.crypto.keys import AesDeviceKey, DeviceKeySet
from repro.errors import BootError, TamperError
from repro.hw.board import BoardModel, make_board


@pytest.fixture()
def provisioned_board():
    board = make_board(BoardModel.ULTRA96, serial="ultra96-test")
    manufacturer = Manufacturer(seed=5)
    provisioned = manufacturer.provision_device(board)
    return board, manufacturer, provisioned


def test_firmware_payload_roundtrip():
    key_set = DeviceKeySet(AesDeviceKey(b"k" * 32), EcPrivateKey.from_seed(b"d"), "serial-x")
    payload = build_firmware_payload(key_set)
    body = parse_firmware_payload(payload)
    assert body["device_serial"] == "serial-x"
    firmware = SpbFirmware.from_payload(payload)
    assert firmware.device_serial == "serial-x"
    assert firmware.device_public_key_encoding == key_set.public_key.encode()


def test_firmware_payload_rejects_garbage():
    with pytest.raises(BootError):
        parse_firmware_payload(b"\xff\xfe not json")
    with pytest.raises(BootError):
        parse_firmware_payload(b"{}")


def test_provisioning_burns_keys_and_publishes_certificate(provisioned_board):
    board, manufacturer, provisioned = provisioned_board
    assert board.fuses.is_provisioned
    assert "spb_firmware" in board.boot_medium
    certificate = manufacturer.device_certificate(board.serial)
    assert certificate.subject == board.serial
    manufacturer.certificate_authority.verify(certificate)
    assert provisioned.device_certificate.subject == board.serial


def test_provisioning_twice_rejected(provisioned_board):
    board, manufacturer, _ = provisioned_board
    with pytest.raises(BootError):
        manufacturer.provision_device(board)


def test_secure_boot_produces_running_kernel(provisioned_board):
    board, _, _ = provisioned_board
    install_security_kernel(board)
    result = perform_secure_boot(board)
    kernel = result.kernel
    assert isinstance(kernel, SecurityKernel)
    assert kernel.kernel_hash == board.security_kernel_processor.running_binary_hash
    assert not kernel.holds_device_secrets()
    assert result.total_seconds > 0
    assert "boot_rom" in result.phase_seconds


def test_boot_latency_matches_paper_scale(provisioned_board):
    board, _, _ = provisioned_board
    install_security_kernel(board)
    result = perform_secure_boot(board)
    # Section 6.1: ~5.1 s from power-on to bitstream loading on the Ultra96.
    assert 4.0 <= result.total_seconds <= 6.5
    without_reconfig = sum(
        v for k, v in result.phase_seconds.items() if k != "partial_reconfiguration"
    )
    assert without_reconfig < result.total_seconds


def test_boot_requires_kernel_on_medium(provisioned_board):
    board, _, _ = provisioned_board
    with pytest.raises(BootError):
        perform_secure_boot(board)


def test_boot_fails_on_unprovisioned_board():
    board = make_board(BoardModel.ULTRA96)
    install_security_kernel(board)
    with pytest.raises(BootError):
        perform_secure_boot(board)


def test_kernel_hash_changes_with_kernel_binary(provisioned_board):
    board, _, _ = provisioned_board
    install_security_kernel(board, kernel_binary=DEFAULT_SECURITY_KERNEL_BINARY)
    genuine = perform_secure_boot(board).kernel.kernel_hash

    other_board = make_board(BoardModel.ULTRA96, serial="ultra96-other")
    Manufacturer(seed=6).provision_device(other_board)
    install_security_kernel(other_board, kernel_binary=b"malicious kernel")
    malicious = perform_secure_boot(other_board).kernel.kernel_hash
    assert genuine != malicious


def test_attestation_key_bound_to_device_and_kernel():
    # Same kernel on two different devices -> different Attestation keys;
    # different kernels on the same device -> different Attestation keys.
    board_a = make_board(BoardModel.ULTRA96, serial="dev-a")
    board_b = make_board(BoardModel.ULTRA96, serial="dev-b")
    manufacturer = Manufacturer(seed=9)
    manufacturer.provision_device(board_a)
    manufacturer.provision_device(board_b)
    install_security_kernel(board_a)
    install_security_kernel(board_b)
    key_a = perform_secure_boot(board_a).launch_record.attestation_key.public_key.encode()
    key_b = perform_secure_boot(board_b).launch_record.attestation_key.public_key.encode()
    assert key_a != key_b


def test_soft_processor_requires_measured_bitstream():
    board = make_board(BoardModel.AWS_F1, serial="f1-soft")
    Manufacturer(seed=8).provision_device(board)
    board.boot_medium.store("security_kernel", DEFAULT_SECURITY_KERNEL_BINARY)
    # No soft-CPU bitstream on the medium -> the firmware must refuse.
    with pytest.raises(BootError):
        perform_secure_boot(board)


def test_soft_processor_bitstream_included_in_measurement():
    board_a = make_board(BoardModel.AWS_F1, serial="f1-a")
    board_b = make_board(BoardModel.AWS_F1, serial="f1-b")
    manufacturer = Manufacturer(seed=10)
    manufacturer.provision_device(board_a)
    manufacturer.provision_device(board_b)
    install_security_kernel(board_a)
    install_security_kernel(board_b, soft_cpu_bitstream=b"different soft cpu")
    hash_a = perform_secure_boot(board_a).kernel.kernel_hash
    hash_b = perform_secure_boot(board_b).kernel.kernel_hash
    assert hash_a != hash_b


def test_kernel_monitors_tamper_ports(provisioned_board):
    board, _, _ = provisioned_board
    install_security_kernel(board)
    kernel = perform_secure_boot(board).kernel
    kernel.monitor_ports()
    board.tamper_monitor.port("jtag").attempt_access("attacker")
    with pytest.raises(TamperError):
        kernel.monitor_ports()


def test_tampered_firmware_on_boot_medium_fails(provisioned_board):
    board, _, _ = provisioned_board
    install_security_kernel(board)
    sealed = board.boot_medium.load("spb_firmware")
    board.boot_medium.tamper("spb_firmware", b"\x00" * 16 + sealed[16:])
    with pytest.raises(BootError):
        perform_secure_boot(board)
