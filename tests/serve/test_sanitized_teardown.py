"""Drain and eviction under the runtime sanitizer (``repro.analysis``).

With the sanitizer armed, every ``@loop_owned`` service and scheduler method
thread-binds to the event loop at first touch, so these tests prove the
serving path's division of labor dynamically: executor threads never mutate
scheduler state (a violation would fail the job with
:class:`~repro.analysis.sanitizer.SanitizerError`), and shutdown leaves no
warm board behind.

Same driving idiom as ``test_frontend.py``: no pytest-asyncio in the image,
so each test runs its coroutine with ``asyncio.run``.
"""

from __future__ import annotations

import asyncio
import threading

import pytest

from repro.accelerators import VectorAddAccelerator
from repro.analysis import sanitizer
from repro.cloud import JobState, ShieldCloudService
from repro.serve import AsyncShieldFrontend

ACCEL_BYTES = 8 * 1024


@pytest.fixture
def sanitize():
    sanitizer.enable()
    yield
    sanitizer.disable()


def _service(**kwargs):
    kwargs.setdefault("num_boards", 2)
    kwargs.setdefault("fast_crypto", True)
    return ShieldCloudService(**kwargs)


def _accel():
    return VectorAddAccelerator(ACCEL_BYTES)


def test_drain_completes_without_executor_side_violations(sanitize):
    """Executor threads run jobs to completion without ever touching
    loop-owned scheduler state; a violation would surface as a failed job."""
    service = _service()
    accel = _accel()

    async def main():
        session = service.admit_tenant("alice", accel)
        async with AsyncShieldFrontend(service) as frontend:
            futures = [
                frontend.submit_nowait(
                    session.session_id, inputs=accel.prepare_inputs(seed=seed)
                )
                for seed in range(4)
            ]
            await frontend.drain()
            assert frontend.pending_futures == 0
            return await asyncio.gather(*futures)

    jobs = asyncio.run(main())
    assert [job.state for job in jobs] == [JobState.COMPLETED] * 4
    assert all(job.error is None for job in jobs)


def test_shutdown_leaves_no_warm_board(sanitize):
    """After shutdown every slot is cold: no resident Shield, no residency
    bookkeeping, all boards back in the scheduler's free pool."""
    service = _service()
    accel = _accel()

    async def main():
        session = service.admit_tenant("alice", accel)
        async with AsyncShieldFrontend(service) as frontend:
            await frontend.submit(
                session.session_id, inputs=accel.prepare_inputs(seed=1)
            )
            # Warm affinity keeps the Shield resident between jobs...
            assert any(slot.shield is not None for slot in service.slots.values())

    asyncio.run(main())
    # ...but the shutdown eviction sweep leaves the fleet cold.
    for slot in service.slots.values():
        assert slot.shield is None
        assert slot.resident_session is None
    assert service.scheduler.free_boards == 2


def test_evict_idle_shields_is_loop_side_and_idempotent(sanitize):
    service = _service()
    accel = _accel()

    async def main():
        session = service.admit_tenant("alice", accel)
        async with AsyncShieldFrontend(service) as frontend:
            await frontend.submit(
                session.session_id, inputs=accel.prepare_inputs(seed=2)
            )
            warm = sum(1 for slot in service.slots.values() if slot.shield is not None)
            # The sweep runs fine from the owning (loop) thread...
            assert service.evict_idle_shields() == warm >= 1
            assert service.evict_idle_shields() == 0

    asyncio.run(main())


def test_cross_thread_eviction_is_rejected(sanitize):
    """The sanitizer enforces the confinement invariant directly: a foreign
    thread (what an executor worker would be) may not run the eviction sweep."""
    service = _service()
    accel = _accel()

    async def main():
        session = service.admit_tenant("alice", accel)
        async with AsyncShieldFrontend(service) as frontend:
            await frontend.submit(
                session.session_id, inputs=accel.prepare_inputs(seed=3)
            )

        failures = []

        def rogue_eviction():
            try:
                service.evict_idle_shields()
            except sanitizer.SanitizerError as exc:
                failures.append(exc)

        thread = threading.Thread(target=rogue_eviction)
        thread.start()
        thread.join()
        assert len(failures) == 1
        assert "evict_idle_shields" in str(failures[0])
        # The rogue call must not have torn anything down half-way: the loop
        # thread can still run the sweep (shutdown already emptied the fleet).
        assert service.evict_idle_shields() == 0

    asyncio.run(main())
