"""The asyncio front-end: futures, backpressure, serialization, teardown.

No pytest-asyncio in the image, so every test drives its coroutine with
``asyncio.run`` from a plain sync function -- the loop is private to the
test, which also keeps the executor threads from leaking across tests.
"""

from __future__ import annotations

import asyncio

import pytest

import repro.obs as obs_api
from repro.accelerators import MatMulAccelerator, VectorAddAccelerator
from repro.cloud import JobState, ShieldCloudService
from repro.errors import CloudError
from repro.serve import AsyncShieldFrontend

ACCEL_BYTES = 8 * 1024


class FakeClock:
    def __init__(self, start: float = 0.0):
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture
def obs():
    with obs_api.scoped() as handle:
        yield handle


def _service(**kwargs):
    kwargs.setdefault("num_boards", 2)
    kwargs.setdefault("fast_crypto", True)
    return ShieldCloudService(**kwargs)


def _accel():
    return VectorAddAccelerator(ACCEL_BYTES)


def test_concurrent_streams_complete_with_results():
    service = _service()
    accel = _accel()

    async def main():
        alice = service.admit_tenant("alice", accel)
        bob = service.admit_tenant("bob", MatMulAccelerator(32))
        async with AsyncShieldFrontend(service) as frontend:
            futures = []
            for seed in range(3):
                futures.append(
                    frontend.submit_nowait(
                        alice.session_id, inputs=accel.prepare_inputs(seed=seed)
                    )
                )
                futures.append(
                    frontend.submit_nowait(
                        bob.session_id,
                        inputs=MatMulAccelerator(32).prepare_inputs(seed=seed),
                    )
                )
            jobs = await asyncio.gather(*futures)
            assert frontend.pending_futures == 0
            assert frontend.inflight_jobs == 0
        return jobs

    jobs = asyncio.run(main())
    assert [job.state for job in jobs] == [JobState.COMPLETED] * 6
    assert all(job.result is not None for job in jobs)
    assert service.stats.jobs_completed == 6
    # No lifecycle state leaks after the async path either.
    assert service.jobs == {}
    assert service._submit_ts == {}
    assert service.scheduler.free_boards == 2


def test_await_submit_returns_the_finished_job():
    service = _service(num_boards=1)
    accel = _accel()

    async def main():
        session = service.admit_tenant("alice", accel)
        async with AsyncShieldFrontend(service) as frontend:
            return await frontend.submit(
                session.session_id, inputs=accel.prepare_inputs(seed=1)
            )

    job = asyncio.run(main())
    assert job.state is JobState.COMPLETED
    assert job.result is not None


def test_rate_limited_submission_resolves_rejected(obs):
    clock = FakeClock()
    service = _service(num_boards=1)
    accel = _accel()

    async def main():
        session = service.admit_tenant("alice", accel)
        async with AsyncShieldFrontend(
            service, rate_limit=1.0, burst=1.0, clock=clock
        ) as frontend:
            first = frontend.submit_nowait(
                session.session_id, inputs=accel.prepare_inputs(seed=0)
            )
            second = frontend.submit_nowait(
                session.session_id, inputs=accel.prepare_inputs(seed=1)
            )
            # The bucket refills while the first job runs: a later submit
            # from the same tenant is admitted again.
            clock.advance(1.0)
            third = frontend.submit_nowait(
                session.session_id, inputs=accel.prepare_inputs(seed=2)
            )
            return await asyncio.gather(first, second, third)

    first, second, third = asyncio.run(main())
    assert first.state is JobState.COMPLETED
    assert second.state is JobState.REJECTED
    assert "submission rate" in second.error
    assert third.state is JobState.COMPLETED
    assert service.stats.jobs_rejected == 1
    assert service.stats.jobs_ratelimited == 1
    assert service.fleet_summary()["jobs_ratelimited"] == 1
    # The refusal is visible on the trace stream: a mark plus the enqueue
    # span with a ratelimited outcome.
    marks = [e for e in obs.tracer.events if e.kind == "mark" and e.name == "ratelimited"]
    assert len(marks) == 1
    assert marks[0].tenant == "alice"
    enqueues = obs.tracer.spans("enqueue")
    assert [e.attrs["outcome"] for e in enqueues] == ["queued", "ratelimited", "queued"]


def test_queue_depth_load_shed(obs):
    service = _service(num_boards=1)
    accel = _accel()

    async def main():
        session = service.admit_tenant("alice", accel)
        other = service.admit_tenant("bob", accel)
        async with AsyncShieldFrontend(service, max_pending=1) as frontend:
            futures = [
                frontend.submit_nowait(
                    session.session_id, inputs=accel.prepare_inputs(seed=0)
                ),  # placed immediately (board free), queue stays empty
                frontend.submit_nowait(
                    other.session_id, inputs=accel.prepare_inputs(seed=1)
                ),  # queued: depth 1 == max_pending
                frontend.submit_nowait(
                    session.session_id, inputs=accel.prepare_inputs(seed=2)
                ),  # shed
            ]
            return await asyncio.gather(*futures)

    first, second, third = asyncio.run(main())
    assert first.state is JobState.COMPLETED
    assert second.state is JobState.COMPLETED
    assert third.state is JobState.REJECTED
    assert "queue is full" in third.error
    assert service.stats.jobs_shed == 1
    assert service.fleet_summary()["jobs_shed"] == 1
    sheds = [e for e in obs.tracer.events if e.kind == "mark" and e.name == "shed"]
    assert len(sheds) == 1


def test_rejections_never_raise_on_await():
    # PR 5 admission control through the async path: queue_cap overflow
    # resolves the future with a REJECTED job exactly like the sync submit.
    service = _service(num_boards=1, queue_cap=1)
    accel = _accel()

    async def main():
        session = service.admit_tenant("alice", accel)
        other = service.admit_tenant("bob", accel)
        async with AsyncShieldFrontend(service) as frontend:
            futures = [
                frontend.submit_nowait(
                    session.session_id, inputs=accel.prepare_inputs(seed=seed)
                )
                for seed in range(2)
            ]
            futures.append(
                frontend.submit_nowait(
                    other.session_id, inputs=accel.prepare_inputs(seed=9)
                )
            )
            return await asyncio.gather(*futures)

    jobs = asyncio.run(main())
    states = [job.state for job in jobs]
    assert states.count(JobState.REJECTED) == 1
    assert service.stats.jobs_rejected == 1


def test_unknown_session_still_raises():
    service = _service(num_boards=1)

    async def main():
        async with AsyncShieldFrontend(service) as frontend:
            with pytest.raises(CloudError):
                frontend.submit_nowait("sess-9999", inputs={})

    asyncio.run(main())


def test_failed_job_resolves_without_raising():
    service = _service(num_boards=1)
    accel = _accel()

    async def main():
        session = service.admit_tenant("alice", accel)
        async with AsyncShieldFrontend(service) as frontend:
            bad = frontend.submit_nowait(
                session.session_id, inputs={"no-such-region": b"x"}
            )
            good = frontend.submit_nowait(
                session.session_id, inputs=accel.prepare_inputs(seed=3)
            )
            return await asyncio.gather(bad, good)

    bad, good = asyncio.run(main())
    assert bad.state is JobState.FAILED
    assert bad.error
    assert good.state is JobState.COMPLETED, good.error
    assert service.stats.jobs_failed == 1
    assert service.scheduler.free_boards == 1


def test_session_jobs_are_serialized_and_pinned():
    # One session, two boards: per-session serialization means its jobs can
    # never overlap, so they all land warm on the board that loaded the
    # Shield -- the second board is never touched.
    service = _service(num_boards=2)
    accel = _accel()

    async def main():
        session = service.admit_tenant("alice", accel)
        async with AsyncShieldFrontend(service) as frontend:
            futures = [
                frontend.submit_nowait(
                    session.session_id, inputs=accel.prepare_inputs(seed=seed)
                )
                for seed in range(3)
            ]
            return await asyncio.gather(*futures)

    jobs = asyncio.run(main())
    assert all(job.state is JobState.COMPLETED for job in jobs)
    boards = {job.board_name for job in jobs}
    assert len(boards) == 1
    assert service.stats.shield_loads == 1
    assert service.stats.affinity_hits == 2


def test_shutdown_without_drain_cancels_queued_jobs():
    service = _service(num_boards=1)
    accel = _accel()

    async def main():
        session = service.admit_tenant("alice", accel)
        other = service.admit_tenant("bob", accel)
        frontend = AsyncShieldFrontend(service)
        futures = [
            frontend.submit_nowait(
                session.session_id, inputs=accel.prepare_inputs(seed=0)
            ),  # in flight
            frontend.submit_nowait(
                other.session_id, inputs=accel.prepare_inputs(seed=1)
            ),  # queued -> cancelled
            frontend.submit_nowait(
                session.session_id, inputs=accel.prepare_inputs(seed=2)
            ),  # queued -> cancelled
        ]
        await frontend.shutdown(drain=False)
        jobs = await asyncio.gather(*futures)
        late = await frontend.submit(
            session.session_id, inputs=accel.prepare_inputs(seed=3)
        )
        return jobs, late

    (first, second, third), late = asyncio.run(main())
    assert first.state is JobState.COMPLETED  # in-flight work always finishes
    assert second.state is JobState.CANCELLED
    assert third.state is JobState.CANCELLED
    assert "shut down" in second.error
    # Post-shutdown intake resolves REJECTED -- never an exception.
    assert late.state is JobState.REJECTED
    assert service.stats.jobs_cancelled == 2
    # The drain left the fleet cold: no resident Shields, all boards free.
    assert service.scheduler.free_boards == 1
    assert all(slot.resident_session is None for slot in service.slots.values())
    # Cancelled-before-scheduled jobs leave no submit-timestamp residue.
    assert service._submit_ts == {}
    assert service.jobs == {}


def test_graceful_shutdown_evicts_warm_shields(obs):
    service = _service(num_boards=2)
    accel = _accel()

    async def main():
        alice = service.admit_tenant("alice", accel)
        bob = service.admit_tenant("bob", accel)
        async with AsyncShieldFrontend(service) as frontend:
            await asyncio.gather(
                frontend.submit_nowait(
                    alice.session_id, inputs=accel.prepare_inputs(seed=0)
                ),
                frontend.submit_nowait(
                    bob.session_id, inputs=accel.prepare_inputs(seed=1)
                ),
            )
            # Both Shields are still warm while the front-end is serving.
            assert sum(
                1 for slot in service.slots.values() if slot.resident_session
            ) == 2

    asyncio.run(main())
    assert all(slot.resident_session is None for slot in service.slots.values())
    assert len(obs.tracer.security_events("eviction")) == 2


def test_close_session_waits_for_inflight_and_cancels_queued():
    service = _service(num_boards=1)
    accel = _accel()

    async def main():
        doomed = service.admit_tenant("doomed", accel)
        survivor = service.admit_tenant("survivor", accel)
        async with AsyncShieldFrontend(service) as frontend:
            running = frontend.submit_nowait(
                doomed.session_id, inputs=accel.prepare_inputs(seed=0)
            )
            queued = frontend.submit_nowait(
                doomed.session_id, inputs=accel.prepare_inputs(seed=1)
            )
            keep = frontend.submit_nowait(
                survivor.session_id, inputs=accel.prepare_inputs(seed=2)
            )
            cancelled = await frontend.close_session(doomed.session_id)
            return (
                await running,
                await queued,
                await keep,
                cancelled,
            )

    running, queued, keep, cancelled = asyncio.run(main())
    # The in-flight job finished before teardown touched its board...
    assert running.state is JobState.COMPLETED
    # ...the still-queued one was cancelled and its future resolved...
    assert queued.state is JobState.CANCELLED
    assert [job.job_id for job in cancelled] == [queued.job_id]
    # ...and the other tenant was undisturbed.
    assert keep.state is JobState.COMPLETED, keep.error
    assert service.stats.jobs_cancelled == 1
    assert service.scheduler.free_boards == 1


def test_shutdown_is_idempotent():
    service = _service(num_boards=1)
    accel = _accel()

    async def main():
        session = service.admit_tenant("alice", accel)
        frontend = AsyncShieldFrontend(service)
        job = await frontend.submit(
            session.session_id, inputs=accel.prepare_inputs(seed=0)
        )
        await frontend.shutdown()
        await frontend.shutdown(drain=False)
        return job

    job = asyncio.run(main())
    assert job.state is JobState.COMPLETED


def test_invalid_max_pending_rejected():
    service = _service(num_boards=1)
    with pytest.raises(CloudError):
        AsyncShieldFrontend(service, max_pending=0)


def test_per_tenant_rate_limit_override():
    clock = FakeClock()
    service = _service(num_boards=1)
    accel = _accel()

    async def main():
        alice = service.admit_tenant("alice", accel)
        bob = service.admit_tenant("bob", accel)
        async with AsyncShieldFrontend(
            service, rate_limit=100.0, clock=clock
        ) as frontend:
            frontend.set_rate_limit("bob", rate=1.0, burst=1.0)
            futures = [
                frontend.submit_nowait(
                    alice.session_id, inputs=accel.prepare_inputs(seed=seed)
                )
                for seed in range(2)
            ]
            futures += [
                frontend.submit_nowait(
                    bob.session_id, inputs=accel.prepare_inputs(seed=seed)
                )
                for seed in range(2)
            ]
            return await asyncio.gather(*futures)

    jobs = asyncio.run(main())
    by_tenant = {}
    for job in jobs:
        by_tenant.setdefault(job.tenant, []).append(job.state)
    assert by_tenant["alice"] == [JobState.COMPLETED] * 2
    assert by_tenant["bob"] == [JobState.COMPLETED, JobState.REJECTED]
