"""The ``serve-demo`` CLI surface, end-to-end through :func:`repro.cli.main`."""

from __future__ import annotations

import io

from repro.cli import main
from repro.obs import SERVE_STAGES
from repro.obs.exporters import read_jsonl


def test_serve_demo_completes_all_jobs():
    out = io.StringIO()
    args = ["serve-demo", "--boards", "2", "--fast-crypto", "--jobs-per-tenant", "1"]
    assert main(args, out=out) == 0
    text = out.getvalue()
    assert "3 concurrent tenant streams" in text
    assert "completed jobs      : 3/3" in text
    assert "rejected jobs       : 0 (rate-limited 0, shed 0)" in text


def test_serve_demo_rate_limit_rejections_reach_trace_and_summary(tmp_path):
    trace_path = tmp_path / "serve.jsonl"
    out = io.StringIO()
    args = [
        "serve-demo", "--boards", "1", "--fast-crypto",
        "--jobs-per-tenant", "2", "--rate-limit", "0.0001",
        "--trace", str(trace_path),
    ]
    assert main(args, out=out) == 0
    text = out.getvalue()
    assert "rate limit          : 0.0001 job(s)/s per tenant" in text
    assert "rejected: tenant" in text
    assert "(rate-limited 3, shed 0)" in text

    events = read_jsonl(trace_path)
    names = {event.name for event in events}
    assert set(SERVE_STAGES) <= names
    ratelimited = [e for e in events if e.kind == "mark" and e.name == "ratelimited"]
    assert len(ratelimited) == 3


def test_serve_demo_validates_flags():
    assert main(["serve-demo", "--boards", "0"], out=io.StringIO()) == 2
    assert main(
        ["serve-demo", "--jobs-per-tenant", "0"], out=io.StringIO()
    ) == 2
    assert main(["serve-demo", "--job-retention", "0"], out=io.StringIO()) == 2
