"""Token-bucket behaviour under a deterministic clock."""

from __future__ import annotations

import pytest

from repro.errors import CloudError
from repro.serve import TokenBucket


class FakeClock:
    def __init__(self, start: float = 0.0):
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def test_bucket_starts_full_and_spends_down():
    clock = FakeClock()
    bucket = TokenBucket(rate=1.0, burst=3.0, clock=clock)
    assert bucket.tokens == 3.0
    assert bucket.try_take()
    assert bucket.try_take()
    assert bucket.try_take()
    assert not bucket.try_take()  # empty: shed


def test_refill_is_continuous_and_capped_at_burst():
    clock = FakeClock()
    bucket = TokenBucket(rate=2.0, burst=4.0, clock=clock)
    for _ in range(4):
        assert bucket.try_take()
    clock.advance(0.25)  # 0.5 tokens: not enough for a whole submission
    assert not bucket.try_take()
    clock.advance(0.25)  # 1.0 total
    assert bucket.try_take()
    # A long idle spell refills to burst, never beyond.
    clock.advance(1000.0)
    assert bucket.tokens == 4.0


def test_burst_defaults_to_at_least_one_token():
    clock = FakeClock()
    # Sub-1/s rates still admit one full request after a quiet spell.
    bucket = TokenBucket(rate=0.1, clock=clock)
    assert bucket.burst == 1.0
    assert bucket.try_take()
    assert not bucket.try_take()
    # Rates above 1/s default burst to the rate itself.
    assert TokenBucket(rate=5.0, clock=clock).burst == 5.0


def test_fractional_takes():
    clock = FakeClock()
    bucket = TokenBucket(rate=1.0, burst=1.0, clock=clock)
    assert bucket.try_take(0.5)
    assert bucket.try_take(0.5)
    assert not bucket.try_take(0.5)


def test_invalid_parameters_are_rejected():
    with pytest.raises(CloudError):
        TokenBucket(rate=0.0)
    with pytest.raises(CloudError):
        TokenBucket(rate=-1.0)
    with pytest.raises(CloudError):
        TokenBucket(rate=1.0, burst=0.0)
