"""Async-vs-sync conformance: the serving front-end must not change outcomes.

The same workload submitted through :class:`AsyncShieldFrontend` and through
the synchronous ``submit_job`` + ``run_until_idle`` path must produce
identical per-job outcomes -- terminal state, output bytes, board warm-hit
and eviction counts.  Concurrency is allowed to change *when* things happen,
never *what* happens: per-session serialization pins each session to its
warm board, so with tenants <= boards the async placement collapses to the
sync one exactly.
"""

from __future__ import annotations

import asyncio

import repro.obs as obs_api
from repro.accelerators import VectorAddAccelerator
from repro.cloud import JobState, ShieldCloudService
from repro.obs import lifecycle_signature
from repro.serve import AsyncShieldFrontend
from repro.sim.simulator import outputs_equal

ACCEL_BYTES = 8 * 1024

#: (tenant, seed) submission order shared by both paths.
WORKLOAD = [
    ("alice", 0),
    ("bob", 10),
    ("alice", 1),
    ("bob", 11),
    ("alice", 2),
    ("bob", 12),
]


def _build(num_boards: int):
    service = ShieldCloudService(num_boards=num_boards, fast_crypto=True)
    accels = {
        "alice": VectorAddAccelerator(ACCEL_BYTES),
        "bob": VectorAddAccelerator(ACCEL_BYTES),
    }
    sessions = {
        tenant: service.admit_tenant(tenant, accel) for tenant, accel in accels.items()
    }
    return service, accels, sessions


def _counts(service) -> dict:
    summary = service.fleet_summary()
    return {
        "jobs_completed": summary["jobs_completed"],
        "shield_loads": summary["shield_loads"],
        "affinity_hits": summary["affinity_hits"],
        "evictions": sum(
            board["evictions"] for board in summary["boards"].values()
        ),
    }


def _run_sync(num_boards: int):
    with obs_api.scoped() as handle:
        service, accels, sessions = _build(num_boards)
        jobs = [
            service.submit_job(
                sessions[tenant].session_id, inputs=accels[tenant].prepare_inputs(seed=seed)
            )
            for tenant, seed in WORKLOAD
        ]
        service.run_until_idle()
        counts = _counts(service)
    return jobs, counts, lifecycle_signature(handle.tracer.events)


def _run_async(num_boards: int):
    async def main():
        service, accels, sessions = _build(num_boards)
        frontend = AsyncShieldFrontend(service)
        futures = [
            frontend.submit_nowait(
                sessions[tenant].session_id, inputs=accels[tenant].prepare_inputs(seed=seed)
            )
            for tenant, seed in WORKLOAD
        ]
        jobs = await asyncio.gather(*futures)
        # Snapshot the counters before shutdown evicts the warm Shields --
        # the sync path's counters are read at the same point (post-drain,
        # pre-teardown).
        counts = _counts(service)
        await frontend.shutdown()
        return jobs, counts

    with obs_api.scoped() as handle:
        jobs, counts = asyncio.run(main())
    return jobs, counts, lifecycle_signature(handle.tracer.events)


def _assert_same_outcomes(sync_jobs, async_jobs):
    assert len(sync_jobs) == len(async_jobs)
    for sync_job, async_job in zip(sync_jobs, async_jobs):
        assert sync_job.tenant == async_job.tenant
        assert sync_job.state is async_job.state is JobState.COMPLETED
        assert outputs_equal(sync_job.result.outputs, async_job.result.outputs)


def test_single_board_runs_are_identical():
    # One board fully serializes both paths: outcomes, counters, and even
    # the lifecycle signature (stage order, tenant attribution, warm flags)
    # must match event for event.
    sync_jobs, sync_counts, sync_signature = _run_sync(num_boards=1)
    async_jobs, async_counts, async_signature = _run_async(num_boards=1)
    _assert_same_outcomes(sync_jobs, async_jobs)
    assert sync_counts == async_counts
    assert sync_signature == async_signature


def test_two_board_overlap_preserves_outcomes_and_warm_hits():
    # Two boards, two tenants: the async path overlaps the tenants across
    # boards, but session pinning keeps every warm-hit and eviction count
    # identical to the sequential drain.
    sync_jobs, sync_counts, _ = _run_sync(num_boards=2)
    async_jobs, async_counts, _ = _run_async(num_boards=2)
    _assert_same_outcomes(sync_jobs, async_jobs)
    assert sync_counts == async_counts
    # Sanity-pin the shape this conformance relies on: one cold load per
    # tenant, every revisit warm, no evictions while serving.
    assert async_counts["shield_loads"] == 2
    assert async_counts["affinity_hits"] == 4
    assert async_counts["evictions"] == 0
