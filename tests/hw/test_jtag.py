"""Tamper-monitor (JTAG/ICAP) tests."""

import pytest

from repro.errors import TamperError
from repro.hw.jtag import DebugPort, TamperMonitor


def test_locked_port_denies_access_but_records_attempt():
    port = DebugPort("jtag")
    assert port.attempt_access("attacker", "connect") is False
    assert len(port.attempts) == 1
    assert port.attempts[0].actor == "attacker"


def test_only_manufacturer_can_unlock():
    port = DebugPort("jtag")
    with pytest.raises(TamperError):
        port.unlock("csp-operator")
    port.unlock("manufacturer")
    assert port.attempt_access("manufacturer", "provision") is True
    port.lock()
    assert port.attempt_access("manufacturer", "provision") is False


def test_monitor_registers_ports_uniquely():
    monitor = TamperMonitor()
    monitor.add_port("jtag")
    with pytest.raises(TamperError):
        monitor.add_port("jtag")
    with pytest.raises(TamperError):
        monitor.port("icap")


def test_monitor_detects_and_acknowledges_events():
    monitor = TamperMonitor()
    monitor.add_port("jtag")
    monitor.add_port("icap")
    monitor.assert_untampered()
    monitor.port("jtag").attempt_access("attacker")
    assert len(monitor.pending_events()) == 1
    with pytest.raises(TamperError):
        monitor.assert_untampered()
    events = monitor.acknowledge()
    assert len(events) == 1
    monitor.assert_untampered()


def test_monitor_sees_later_events_after_acknowledge():
    monitor = TamperMonitor()
    monitor.add_port("jtag")
    monitor.port("jtag").attempt_access("attacker")
    monitor.acknowledge()
    monitor.port("jtag").attempt_access("attacker", "program")
    with pytest.raises(TamperError):
        monitor.assert_untampered()
