"""Tests for one-time-programmable key storage and the PUF model."""

import pytest

from repro.errors import DeviceError, FuseError
from repro.hw.fuses import SPB_ACCESS_TOKEN, FuseBank, KeyFuses
from repro.hw.puf import Puf


def test_fuse_bank_program_once():
    bank = FuseBank("aes")
    bank.program(b"\x01" * 32)
    assert bank.is_programmed
    with pytest.raises(FuseError):
        bank.program(b"\x02" * 32)


def test_fuse_bank_rejects_empty_value():
    with pytest.raises(FuseError):
        FuseBank("aes").program(b"")


def test_fuse_bank_access_control():
    bank = FuseBank("aes")
    bank.program(b"\x01" * 32)
    assert bank.read(SPB_ACCESS_TOKEN) == b"\x01" * 32
    with pytest.raises(FuseError):
        bank.read("host-software")
    with pytest.raises(FuseError):
        bank.read("shell-logic")


def test_fuse_bank_unprogrammed_read_fails():
    with pytest.raises(FuseError):
        FuseBank("aes").read(SPB_ACCESS_TOKEN)


def test_key_fuses_efuse_path():
    fuses = KeyFuses()
    assert not fuses.is_provisioned
    fuses.program_aes_key(b"\xaa" * 32)
    fuses.program_public_key_hash(b"\xbb" * 32)
    assert fuses.is_provisioned
    assert fuses.read_aes_key(SPB_ACCESS_TOKEN) == b"\xaa" * 32
    assert fuses.read_public_key_hash(SPB_ACCESS_TOKEN) == b"\xbb" * 32


def test_key_fuses_bbram_path_and_zeroize():
    fuses = KeyFuses(use_bbram=True)
    fuses.program_aes_key(b"\xcc" * 32)
    assert fuses.read_aes_key(SPB_ACCESS_TOKEN) == b"\xcc" * 32
    fuses.zeroize()
    with pytest.raises(FuseError):
        fuses.read_aes_key(SPB_ACCESS_TOKEN)


def test_key_fuses_deny_non_spb_access():
    fuses = KeyFuses()
    fuses.program_aes_key(b"\xaa" * 32)
    with pytest.raises(FuseError):
        fuses.read_aes_key("security-kernel")


def test_puf_requires_reasonable_fingerprint():
    with pytest.raises(DeviceError):
        Puf(b"short")


def test_puf_response_deterministic_per_device():
    puf_a = Puf(b"fingerprint-device-a")
    puf_b = Puf(b"fingerprint-device-b")
    assert puf_a.response(b"challenge") == puf_a.response(b"challenge")
    assert puf_a.response(b"challenge") != puf_b.response(b"challenge")
    assert puf_a.response(b"c1") != puf_a.response(b"c2")


def test_puf_wrap_unwrap_only_same_device():
    puf_a = Puf(b"fingerprint-device-a")
    puf_b = Puf(b"fingerprint-device-b")
    key = b"\x11" * 32
    wrapped = puf_a.wrap_key(key)
    assert wrapped != key
    assert puf_a.unwrap_key(wrapped) == key
    assert puf_b.unwrap_key(wrapped) != key
