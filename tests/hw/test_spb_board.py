"""Security Processor Block, boot medium, Shell, and board profile tests."""

import pytest

from repro.errors import BootError, DeviceError, ShieldError
from repro.hw.board import AWS_F1_PROFILE, ULTRA96_PROFILE, BoardModel, make_board
from repro.hw.fuses import KeyFuses
from repro.hw.spb import (
    BootMedium,
    SecurityKernelProcessor,
    SecurityProcessorBlock,
    seal_firmware_image,
    unseal_firmware_image,
)

DEVICE_KEY = b"\x3c" * 32


def test_boot_medium_store_load_tamper():
    medium = BootMedium()
    medium.store("security_kernel", b"kernel v1")
    assert "security_kernel" in medium
    assert medium.load("security_kernel") == b"kernel v1"
    medium.tamper("security_kernel", b"evil kernel")
    assert medium.load("security_kernel") == b"evil kernel"
    with pytest.raises(BootError):
        medium.load("missing")


def test_firmware_seal_unseal_roundtrip():
    sealed = seal_firmware_image(b"firmware payload with embedded key", DEVICE_KEY)
    assert b"firmware payload" not in sealed
    assert unseal_firmware_image(sealed, DEVICE_KEY) == b"firmware payload with embedded key"


def test_firmware_unseal_wrong_key_or_tampered():
    sealed = seal_firmware_image(b"payload", DEVICE_KEY)
    with pytest.raises(BootError):
        unseal_firmware_image(sealed, b"\x00" * 32)
    with pytest.raises(BootError):
        unseal_firmware_image(b"\xff" + sealed[1:], DEVICE_KEY)
    with pytest.raises(BootError):
        unseal_firmware_image(b"tiny", DEVICE_KEY)


def test_spb_boot_rom_loads_firmware():
    fuses = KeyFuses()
    fuses.program_aes_key(DEVICE_KEY)
    spb = SecurityProcessorBlock(fuses)
    medium = BootMedium()
    medium.store("spb_firmware", seal_firmware_image(b"spb firmware", DEVICE_KEY))
    assert spb.boot_rom_load_firmware(medium) == b"spb firmware"
    assert spb.boot_count == 1


def test_spb_requires_provisioned_fuses():
    spb = SecurityProcessorBlock(KeyFuses())
    with pytest.raises(BootError):
        spb.boot_rom_load_firmware(BootMedium())


def test_spb_crypto_access_control():
    fuses = KeyFuses()
    fuses.program_aes_key(DEVICE_KEY)
    spb = SecurityProcessorBlock(fuses)
    spb.assert_exclusive_crypto_access("bootrom")
    spb.assert_exclusive_crypto_access("spb-firmware")
    with pytest.raises(DeviceError):
        spb.assert_exclusive_crypto_access("security-kernel")
    with pytest.raises(DeviceError):
        spb.assert_exclusive_crypto_access("host-program")


def test_spb_seal_unseal_with_device_key():
    fuses = KeyFuses()
    fuses.program_aes_key(DEVICE_KEY)
    spb = SecurityProcessorBlock(fuses)
    sealed = spb.encrypt_with_device_key(b"persistent state", "context")
    assert spb.decrypt_with_device_key(sealed, "context") == b"persistent state"
    assert spb.decrypt_with_device_key(sealed, "other") != b"persistent state"


def test_security_kernel_processor_kinds():
    hard = SecurityKernelProcessor(kind="cortex-r5")
    soft = SecurityKernelProcessor(kind="microblaze")
    assert not hard.is_soft and soft.is_soft
    hard.load(b"\x01" * 32, {"attestation_key": "object"})
    assert hard.running_binary_hash == b"\x01" * 32
    hard.reset()
    assert hard.running_binary_hash is None and hard.private_memory == {}


def test_board_profiles():
    f1 = make_board(BoardModel.AWS_F1)
    ultra = make_board("ultra96")
    assert f1.profile is AWS_F1_PROFILE
    assert ultra.profile is ULTRA96_PROFILE
    assert f1.device_memory.size_bytes == 64 * 1024 ** 3
    assert f1.security_kernel_processor.is_soft
    assert not ultra.security_kernel_processor.is_soft
    assert set(f1.fabric.regions) == {"shell", "user"}
    assert f1.user_region_resources.luts < f1.profile.total_resources.luts


def test_board_serial_determines_puf():
    a = make_board(BoardModel.AWS_F1, serial="one")
    b = make_board(BoardModel.AWS_F1, serial="two")
    assert a.puf.response(b"c") != b.puf.response(b"c")


def test_board_reset_user_region():
    board = make_board(BoardModel.AWS_F1)
    from repro.hw.bitstream import Bitstream

    board.fabric.program_region("user", Bitstream("a", "v"))
    board.reset_user_region()
    assert not board.fabric.region("user").is_programmed


def test_shell_requires_connected_user_logic():
    board = make_board(BoardModel.AWS_F1)
    with pytest.raises(ShieldError):
        board.shell.host_register_read(0)
    with pytest.raises(ShieldError):
        board.shell.host_register_write(0, b"\x00" * 4)


def test_shell_dma_and_stats():
    board = make_board(BoardModel.AWS_F1)
    board.shell.host_dma_write(0x100, b"ciphertext blob")
    assert board.shell.host_dma_read(0x100, 15) == b"ciphertext blob"
    assert board.shell.stats.dma_bytes_in == 15
    assert board.shell.stats.dma_bytes_out == 15


def test_shell_register_path_reaches_connected_slave():
    board = make_board(BoardModel.AWS_F1)
    seen = []

    def slave(txn):
        seen.append(txn.address)
        return b"\xaa\xbb\xcc\xdd"

    board.shell.connect_register_slave(slave)
    board.shell.host_register_write(0x10, b"\x00\x00\x00\x01")
    assert board.shell.host_register_read(0x20) == b"\xaa\xbb\xcc\xdd"
    assert seen == [0x10, 0x20]
    assert board.shell.stats.register_writes == 1
    assert board.shell.stats.register_reads == 1
