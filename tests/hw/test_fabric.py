"""Fabric region and partial-reconfiguration tests."""

import pytest

from repro.errors import FabricError
from repro.hw.bitstream import Bitstream
from repro.hw.fabric import Fabric, FabricResources


def make_fabric() -> Fabric:
    total = FabricResources(luts=100_000, registers=200_000, bram_kb=1_000)
    fabric = Fabric(total)
    fabric.add_region("shell", total.scaled(0.2), static=True)
    fabric.add_region("user", total.scaled(0.8))
    return fabric


def test_resources_scaling():
    total = FabricResources(luts=100, registers=200, bram_kb=10, uram_kb=10)
    half = total.scaled(0.5)
    assert (half.luts, half.registers, half.bram_kb, half.uram_kb) == (50, 100, 5, 5)
    assert total.on_chip_memory_bytes == 20 * 1024


def test_duplicate_region_rejected():
    fabric = make_fabric()
    with pytest.raises(FabricError):
        fabric.add_region("user", FabricResources(1, 1, 1))


def test_unknown_region_rejected():
    with pytest.raises(FabricError):
        make_fabric().region("nonexistent")


def test_program_and_clear_user_region():
    fabric = make_fabric()
    design = Bitstream("accel", "vendor", resources={"luts": 10_000})
    fabric.program_region("user", design)
    assert fabric.region("user").is_programmed
    assert fabric.region("user").load_count == 1
    fabric.clear_region("user")
    assert not fabric.region("user").is_programmed


def test_static_region_programs_once():
    fabric = make_fabric()
    shell = Bitstream("shell", "csp")
    fabric.program_region("shell", shell)
    with pytest.raises(FabricError):
        fabric.program_region("shell", shell)
    with pytest.raises(FabricError):
        fabric.clear_region("shell")


def test_oversized_design_rejected():
    fabric = make_fabric()
    huge = Bitstream("huge", "vendor", resources={"luts": 10_000_000})
    with pytest.raises(FabricError):
        fabric.program_region("user", huge)


def test_reprogramming_user_region_allowed():
    fabric = make_fabric()
    fabric.program_region("user", Bitstream("a", "v"))
    fabric.program_region("user", Bitstream("b", "v"))
    assert fabric.region("user").loaded_design.accelerator_name == "b"
    assert fabric.region("user").load_count == 2
