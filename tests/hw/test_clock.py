"""Cycle-clock tests."""

import pytest

from repro.hw.clock import CycleClock


def test_advance_and_elapsed():
    clock = CycleClock(frequency_hz=100e6)
    clock.advance(50_000_000)
    assert clock.now() == 50_000_000
    assert clock.elapsed_seconds() == pytest.approx(0.5)


def test_negative_advance_rejected():
    with pytest.raises(ValueError):
        CycleClock().advance(-1)


def test_checkpoints():
    clock = CycleClock()
    clock.advance(100)
    clock.checkpoint("boot")
    clock.advance(250)
    assert clock.since("boot") == 250
    with pytest.raises(KeyError):
        clock.since("unknown")


def test_reset():
    clock = CycleClock()
    clock.advance(10)
    clock.checkpoint("x")
    clock.reset()
    assert clock.now() == 0
    with pytest.raises(KeyError):
        clock.since("x")
