"""AXI4 / AXI4-Lite transaction model tests."""

import pytest

from repro.errors import MemoryAccessError
from repro.hw.axi import (
    AXI_DATA_WIDTH_BYTES,
    AxiBurst,
    AxiLiteTransaction,
    AxiPort,
    BurstKind,
    memory_backed_handler,
)
from repro.hw.memory import DeviceMemory


def test_burst_beats():
    burst = AxiBurst(BurstKind.READ, 0, 4096)
    assert burst.beats == 4096 // AXI_DATA_WIDTH_BYTES
    assert AxiBurst(BurstKind.READ, 0, 1).beats == 1


def test_burst_end_address():
    assert AxiBurst(BurstKind.READ, 0x100, 64).end_address == 0x140


def test_write_burst_requires_matching_data():
    with pytest.raises(MemoryAccessError):
        AxiBurst(BurstKind.WRITE, 0, 16, b"short")
    with pytest.raises(MemoryAccessError):
        AxiBurst(BurstKind.READ, 0, 0)


def test_split_at_4k_boundary():
    burst = AxiBurst(BurstKind.WRITE, 4000, 1000, bytes((i * 7) % 256 for i in range(1000)))
    pieces = burst.split_at_boundary()
    assert len(pieces) == 2
    assert pieces[0].length_bytes == 96
    assert pieces[1].address == 4096
    assert b"".join(p.data for p in pieces) == burst.data


def test_split_preserves_read_kind():
    pieces = AxiBurst(BurstKind.READ, 4090, 10).split_at_boundary()
    assert [p.length_bytes for p in pieces] == [6, 4]
    assert all(p.kind is BurstKind.READ for p in pieces)


def test_memory_backed_port_roundtrip():
    memory = DeviceMemory(1 << 16)
    port = AxiPort("test", memory_backed_handler(memory))
    port.write(0x200, b"axi payload")
    assert port.read(0x200, 11) == b"axi payload"


def test_port_interposer_sees_and_can_rewrite_bursts():
    memory = DeviceMemory(1 << 16)
    seen = []

    def interposer(burst: AxiBurst) -> AxiBurst:
        seen.append(burst.kind)
        return burst

    port = AxiPort("test", memory_backed_handler(memory), interposer=interposer)
    port.write(0, b"data")
    port.read(0, 4)
    assert seen == [BurstKind.WRITE, BurstKind.READ]


def test_port_traffic_log():
    memory = DeviceMemory(1 << 16)
    port = AxiPort("test", memory_backed_handler(memory), record_traffic=True)
    port.write(0, b"abc")
    port.read(0, 3)
    assert len(port.log) == 2


def test_axi_lite_write_needs_four_bytes():
    with pytest.raises(MemoryAccessError):
        AxiLiteTransaction(BurstKind.WRITE, 0, b"\x00" * 3)
    txn = AxiLiteTransaction(BurstKind.WRITE, 0, b"\x00" * 4)
    assert txn.address == 0
