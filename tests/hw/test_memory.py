"""Device DRAM and on-chip memory tests."""

import pytest

from repro.errors import CapacityError, MemoryAccessError
from repro.hw.memory import DeviceMemory, OnChipMemory


def test_device_memory_read_write_roundtrip():
    memory = DeviceMemory(1 << 20)
    memory.write(0x1000, b"hello device memory")
    assert memory.read(0x1000, 19) == b"hello device memory"


def test_uninitialized_memory_reads_zero():
    memory = DeviceMemory(4096)
    assert memory.read(100, 16) == b"\x00" * 16


def test_cross_page_access():
    memory = DeviceMemory(1 << 20)
    data = bytes(range(256)) * 40  # 10240 bytes, spans multiple 4 KiB pages
    memory.write(4000, data)
    assert memory.read(4000, len(data)) == data


def test_out_of_bounds_rejected():
    memory = DeviceMemory(4096)
    with pytest.raises(MemoryAccessError):
        memory.read(4090, 10)
    with pytest.raises(MemoryAccessError):
        memory.write(4096, b"x")
    with pytest.raises(MemoryAccessError):
        memory.read(-1, 1)


def test_invalid_size_rejected():
    with pytest.raises(MemoryAccessError):
        DeviceMemory(0)


def test_sparse_allocation():
    memory = DeviceMemory(64 * 1024 ** 3)  # 64 GiB address space
    memory.write(32 * 1024 ** 3, b"far away")
    assert memory.read(32 * 1024 ** 3, 8) == b"far away"
    assert memory.allocated_pages <= 2


def test_stats_accounting():
    memory = DeviceMemory(1 << 16)
    memory.write(0, b"x" * 100)
    memory.read(0, 50)
    memory.read(0, 50)
    assert memory.stats.writes == 1
    assert memory.stats.reads == 2
    assert memory.stats.bytes_written == 100
    assert memory.stats.bytes_read == 100
    assert memory.stats.total_bytes == 200
    memory.stats.reset()
    assert memory.stats.total_bytes == 0


def test_tamper_paths_do_not_touch_stats():
    memory = DeviceMemory(1 << 16)
    memory.tamper_write(0, b"evil")
    assert memory.tamper_read(0, 4) == b"evil"
    assert memory.stats.reads == 0 and memory.stats.writes == 0
    # ...but the normal path sees the tampered data (that is the point).
    assert memory.read(0, 4) == b"evil"


def test_on_chip_memory_allocation_and_budget():
    ocm = OnChipMemory(10 * 1024)
    allocation = ocm.allocate("buffer", 4 * 1024)
    assert ocm.used_bytes == 4 * 1024
    assert ocm.free_bytes == 6 * 1024
    assert 0.39 < ocm.utilization() < 0.41
    allocation.write(0, b"cache line")
    assert allocation.read(0, 10) == b"cache line"


def test_on_chip_memory_over_allocation_rejected():
    ocm = OnChipMemory(1024)
    ocm.allocate("a", 1000)
    with pytest.raises(CapacityError):
        ocm.allocate("b", 100)


def test_on_chip_memory_duplicate_and_invalid_names():
    ocm = OnChipMemory(1024)
    ocm.allocate("a", 100)
    with pytest.raises(CapacityError):
        ocm.allocate("a", 100)
    with pytest.raises(CapacityError):
        ocm.allocate("zero", 0)
    with pytest.raises(CapacityError):
        ocm.allocation("missing")


def test_on_chip_memory_free_releases_budget():
    ocm = OnChipMemory(1024)
    ocm.allocate("a", 1024)
    ocm.free("a")
    assert ocm.free_bytes == 1024
    ocm.allocate("b", 512)
    with pytest.raises(CapacityError):
        ocm.free("a")


def test_on_chip_allocation_bounds():
    ocm = OnChipMemory(1024)
    allocation = ocm.allocate("a", 64)
    with pytest.raises(MemoryAccessError):
        allocation.read(60, 8)
    with pytest.raises(MemoryAccessError):
        allocation.write(64, b"x")
