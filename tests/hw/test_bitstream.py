"""Bitstream container and encryption tests."""

import pytest

from repro.errors import BitstreamError
from repro.hw.bitstream import Bitstream, EncryptedBitstream, decrypt_bitstream, encrypt_bitstream

KEY = b"bitstream-key-32-bytes-long....."
IV = b"bitstrm-iv12"


def make_bitstream() -> Bitstream:
    return Bitstream(
        accelerator_name="dnnweaver",
        vendor="acme-ip",
        accelerator_spec={"kind": "dnn", "layers": 4},
        shield_config={"shield_id": "s0"},
        shield_private_key_blob=b"\x07" * 70,
        resources={"luts": 50_000, "registers": 80_000},
    )


def test_serialize_deserialize_roundtrip():
    original = make_bitstream()
    restored = Bitstream.deserialize(original.serialize())
    assert restored.accelerator_name == "dnnweaver"
    assert restored.vendor == "acme-ip"
    assert restored.accelerator_spec == {"kind": "dnn", "layers": 4}
    assert restored.shield_config == {"shield_id": "s0"}
    assert restored.shield_private_key_blob == b"\x07" * 70
    assert restored.resources["luts"] == 50_000


def test_serialization_is_canonical():
    assert make_bitstream().serialize() == make_bitstream().serialize()
    assert make_bitstream().measurement() == make_bitstream().measurement()


def test_deserialize_rejects_garbage():
    with pytest.raises(BitstreamError):
        Bitstream.deserialize(b"not a bitstream at all")
    with pytest.raises(BitstreamError):
        Bitstream.deserialize(b"SHEFBITS" + b"\x00" * 4)


def test_deserialize_rejects_wrong_version():
    blob = bytearray(make_bitstream().serialize())
    blob[9] = 99
    with pytest.raises(BitstreamError):
        Bitstream.deserialize(bytes(blob))


def test_encrypt_decrypt_roundtrip():
    encrypted = encrypt_bitstream(make_bitstream(), KEY, IV)
    assert isinstance(encrypted, EncryptedBitstream)
    restored = decrypt_bitstream(encrypted, KEY)
    assert restored.accelerator_name == "dnnweaver"
    assert restored.shield_private_key_blob == b"\x07" * 70


def test_ciphertext_hides_plaintext_structure():
    encrypted = encrypt_bitstream(make_bitstream(), KEY, IV)
    assert b"dnnweaver" not in encrypted.ciphertext
    assert b"SHEFBITS" not in encrypted.ciphertext


def test_decrypt_with_wrong_key_rejected():
    encrypted = encrypt_bitstream(make_bitstream(), KEY, IV)
    with pytest.raises(BitstreamError):
        decrypt_bitstream(encrypted, b"wrong-key-32-bytes-long........!")


def test_decrypt_detects_ciphertext_tampering():
    encrypted = encrypt_bitstream(make_bitstream(), KEY, IV)
    tampered = EncryptedBitstream(
        ciphertext=b"\x00" + encrypted.ciphertext[1:],
        iv=encrypted.iv,
        tag=encrypted.tag,
        accelerator_name=encrypted.accelerator_name,
        vendor=encrypted.vendor,
    )
    with pytest.raises(BitstreamError):
        decrypt_bitstream(tampered, KEY)


def test_encrypted_measurement_is_stable_and_key_dependent():
    first = encrypt_bitstream(make_bitstream(), KEY, IV)
    second = encrypt_bitstream(make_bitstream(), KEY, IV)
    assert first.measurement() == second.measurement()
    other_key = encrypt_bitstream(make_bitstream(), b"another-key-32-bytes-long......!", IV)
    assert first.measurement() != other_key.measurement()


def test_encrypt_rejects_bad_iv():
    with pytest.raises(BitstreamError):
        encrypt_bitstream(make_bitstream(), KEY, b"short")
