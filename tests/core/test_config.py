"""Shield configuration validation and layout tests."""

import pytest

from repro.core.config import (
    MAC_TAG_BYTES,
    EngineSetConfig,
    RegionConfig,
    RegisterInterfaceConfig,
    ShieldConfig,
)
from repro.errors import ConfigurationError
from tests.conftest import make_small_shield_config


def test_small_config_validates():
    make_small_shield_config().validate()


def test_engine_set_validation_errors():
    with pytest.raises(ConfigurationError):
        EngineSetConfig(name="bad", num_aes_engines=0).validate()
    with pytest.raises(ConfigurationError):
        EngineSetConfig(name="bad", sbox_parallelism=3).validate()
    with pytest.raises(ConfigurationError):
        EngineSetConfig(name="bad", aes_key_bits=192).validate()
    with pytest.raises(ConfigurationError):
        EngineSetConfig(name="bad", mac_algorithm="GCM").validate()
    with pytest.raises(ConfigurationError):
        EngineSetConfig(name="bad", num_mac_engines=0).validate()
    with pytest.raises(ConfigurationError):
        EngineSetConfig(name="bad", buffer_bytes=-1).validate()


def test_region_validation_errors():
    with pytest.raises(ConfigurationError):
        RegionConfig("r", -1, 1024, 256, "es").validate()
    with pytest.raises(ConfigurationError):
        RegionConfig("r", 0, 0, 256, "es").validate()
    with pytest.raises(ConfigurationError):
        RegionConfig("r", 0, 1024, 0, "es").validate()
    with pytest.raises(ConfigurationError):
        RegionConfig("r", 0, 1024, 2048, "es").validate()
    with pytest.raises(ConfigurationError):
        RegionConfig("r", 0, 1000, 256, "es").validate()
    with pytest.raises(ConfigurationError):
        RegionConfig("r", 0, 1024, 256, "es", access_pattern="strided").validate()


def test_register_interface_validation():
    with pytest.raises(ConfigurationError):
        RegisterInterfaceConfig(num_registers=0).validate()
    with pytest.raises(ConfigurationError):
        RegisterInterfaceConfig(aes_key_bits=512).validate()
    RegisterInterfaceConfig(num_registers=8, encrypt_addresses=True).validate()


def test_region_helpers():
    region = RegionConfig("r", 0x1000, 4096, 512, "es")
    assert region.end_address == 0x2000
    assert region.num_chunks == 8
    assert region.contains(0x1000) and region.contains(0x1fff)
    assert not region.contains(0x2000)
    assert region.chunk_index(0x1000) == 0
    assert region.chunk_index(0x17ff) == 3
    with pytest.raises(ConfigurationError):
        region.chunk_index(0x0fff)


def test_unknown_engine_set_reference_rejected():
    config = ShieldConfig(
        shield_id="s",
        engine_sets=[EngineSetConfig(name="es0")],
        regions=[RegionConfig("r", 0, 1024, 256, "missing")],
    )
    with pytest.raises(ConfigurationError):
        config.validate()


def test_overlapping_regions_rejected():
    config = ShieldConfig(
        shield_id="s",
        engine_sets=[EngineSetConfig(name="es0")],
        regions=[
            RegionConfig("a", 0, 2048, 256, "es0"),
            RegionConfig("b", 1024, 2048, 256, "es0"),
        ],
    )
    with pytest.raises(ConfigurationError):
        config.validate()


def test_duplicate_names_rejected():
    config = ShieldConfig(
        shield_id="s",
        engine_sets=[EngineSetConfig(name="es0"), EngineSetConfig(name="es0")],
    )
    with pytest.raises(ConfigurationError):
        config.validate()
    config = ShieldConfig(
        shield_id="s",
        engine_sets=[EngineSetConfig(name="es0")],
        regions=[
            RegionConfig("a", 0, 1024, 256, "es0"),
            RegionConfig("a", 1024, 1024, 256, "es0"),
        ],
    )
    with pytest.raises(ConfigurationError):
        config.validate()


def test_empty_shield_id_rejected():
    with pytest.raises(ConfigurationError):
        ShieldConfig(shield_id="").validate()


def test_lookup_helpers():
    config = make_small_shield_config()
    assert config.engine_set("es-in").name == "es-in"
    assert config.region("output").replay_protected
    assert config.region_for_address(0).name == "input"
    assert config.region_for_address(4096).name == "output"
    assert [r.name for r in config.regions_for_engine_set("es-in")] == ["input"]
    with pytest.raises(ConfigurationError):
        config.engine_set("missing")
    with pytest.raises(ConfigurationError):
        config.region("missing")
    with pytest.raises(ConfigurationError):
        config.region_for_address(10 ** 9)


def test_tag_area_layout():
    config = make_small_shield_config()
    tag_base = config.effective_tag_base()
    assert tag_base >= max(r.end_address for r in config.regions)
    assert tag_base % 4096 == 0
    assert config.total_tag_bytes() == sum(r.num_chunks for r in config.regions) * MAC_TAG_BYTES
    input_region = config.region("input")
    output_region = config.region("output")
    assert config.tag_address(input_region, 0) == tag_base
    assert config.tag_address(input_region, 1) == tag_base + MAC_TAG_BYTES
    assert (
        config.tag_address(output_region, 0)
        == tag_base + input_region.num_chunks * MAC_TAG_BYTES
    )


def test_region_overlapping_tag_area_rejected():
    config = make_small_shield_config()
    tag_base = config.effective_tag_base()
    config.regions.append(
        RegionConfig("evil", tag_base, 4096, 256, "es-in")
    )
    config.tag_base_address = tag_base
    with pytest.raises(ConfigurationError):
        config.validate()


def test_on_chip_budget_accounting():
    config = make_small_shield_config(buffer_bytes=2048)
    # output region (16 chunks of 256 B) is replay protected -> 64 counter bytes.
    assert config.counter_bytes_required() == 4 * config.region("output").num_chunks
    assert config.buffer_bytes_required() == 2 * 2048
    assert config.on_chip_bytes_required() == config.counter_bytes_required() + 4096


def test_serialization_roundtrip():
    config = make_small_shield_config()
    restored = ShieldConfig.from_dict(config.to_dict())
    restored.validate()
    assert restored.shield_id == config.shield_id
    assert [r.name for r in restored.regions] == [r.name for r in config.regions]
    assert restored.engine_set("es-out").buffer_bytes == config.engine_set("es-out").buffer_bytes
    assert restored.register_interface.num_registers == config.register_interface.num_registers
