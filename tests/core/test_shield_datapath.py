"""End-to-end Shield datapath tests: reads, writes, buffers, counters, flush."""

import pytest

from repro.core.config import MAC_TAG_BYTES
from repro.errors import ShieldError
from repro.sim.simulator import build_test_shield
from tests.conftest import make_small_shield_config


def stage_input(harness, region_name: str, plaintext: bytes) -> None:
    """Seal plaintext as the Data Owner and DMA it into device memory."""
    config = harness.shield_config
    staged = harness.data_owner.seal_input(config, region_name, plaintext, shield_id=config.shield_id)
    region = config.region(region_name)
    harness.board.shell.host_dma_write(region.base_address, staged.flat_ciphertext())
    for chunk in staged.sealed_chunks:
        harness.board.shell.host_dma_write(config.tag_address(region, chunk.chunk_index), chunk.tag)


def test_unprovisioned_shield_refuses_data(small_shield_config):
    from repro.hw.board import make_board, BoardModel
    from repro.core.shield import Shield
    from repro.sim.simulator import _test_shield_private_key

    board = make_board(BoardModel.AWS_F1)
    shield = Shield(small_shield_config, board.shell, board.on_chip_memory, _test_shield_private_key())
    with pytest.raises(ShieldError):
        shield.memory_read(0, 16)
    with pytest.raises(ShieldError):
        shield.memory_write(0, b"x")
    with pytest.raises(ShieldError):
        _ = shield.register_file


def test_read_staged_input(provisioned_shield):
    plaintext = bytes((i * 7 + 3) % 256 for i in range(1500))
    stage_input(provisioned_shield, "input", plaintext)
    assert provisioned_shield.shield.memory_read(0, 1500) == plaintext
    # Unaligned sub-reads return the right slices.
    assert provisioned_shield.shield.memory_read(100, 77) == plaintext[100:177]


def test_dram_holds_only_ciphertext(provisioned_shield):
    plaintext = b"TOP-SECRET-PATIENT-RECORDS" * 20
    stage_input(provisioned_shield, "input", plaintext)
    raw = provisioned_shield.board.device_memory.tamper_read(0, 4096)
    assert b"TOP-SECRET" not in raw


def test_write_then_read_back(provisioned_shield):
    shield = provisioned_shield.shield
    data = bytes(range(256)) * 4
    shield.memory_write(4096, data)
    assert shield.memory_read(4096, len(data)) == data


def test_written_data_is_encrypted_after_flush(provisioned_shield):
    shield = provisioned_shield.shield
    secret = b"model-weights-are-secret" * 32  # exactly 3 chunks of 256 bytes
    shield.memory_write(4096, secret)
    shield.flush()
    raw = provisioned_shield.board.device_memory.tamper_read(4096, 4096)
    assert b"model-weights" not in raw
    # And reading back through the Shield still yields plaintext.
    assert shield.memory_read(4096, len(secret)) == secret


def test_flush_writes_tags(provisioned_shield):
    shield = provisioned_shield.shield
    config = provisioned_shield.shield_config
    region = config.region("output")
    shield.memory_write(region.base_address, b"\x99" * region.chunk_size)
    shield.flush()
    tag = provisioned_shield.board.device_memory.tamper_read(
        config.tag_address(region, 0), MAC_TAG_BYTES
    )
    assert tag != b"\x00" * MAC_TAG_BYTES


def test_data_owner_can_unseal_shield_output(provisioned_shield):
    shield = provisioned_shield.shield
    config = provisioned_shield.shield_config
    owner = provisioned_shield.data_owner
    region = config.region("output")
    result = bytes(range(256)) * 2  # two full chunks of inference output
    shield.memory_write(region.base_address, result)
    shield.flush()

    num_chunks = -(-len(result) // region.chunk_size)
    ciphertext = provisioned_shield.board.shell.host_dma_read(
        region.base_address, num_chunks * region.chunk_size
    )
    tags = [
        provisioned_shield.board.shell.host_dma_read(config.tag_address(region, i), MAC_TAG_BYTES)
        for i in range(num_chunks)
    ]
    chunks = owner.sealed_chunks_from_device(config, "output", ciphertext, tags)
    # The output region is replay-protected, so the owner needs the versions
    # (one write each -> version 1).
    recovered = owner.unseal_output_with_versions(
        config, "output", chunks, versions=[1] * num_chunks, length=len(result),
        shield_id=config.shield_id,
    )
    assert recovered == result


def test_buffer_hits_on_repeated_access(provisioned_shield):
    shield = provisioned_shield.shield
    stage_input(provisioned_shield, "input", b"\x55" * 1024)
    shield.memory_read(0, 64)
    shield.memory_read(16, 64)
    shield.memory_read(32, 64)
    stats = shield.stats()
    assert stats.buffer_hits >= 2
    # Only the first access fetched the chunk from DRAM.
    assert stats.chunks_fetched == 1


def test_unmapped_address_rejected(provisioned_shield):
    with pytest.raises(ShieldError):
        provisioned_shield.shield.memory_read(1 << 20, 16)
    with pytest.raises(ShieldError):
        provisioned_shield.shield.memory_write(8192, b"\x00" * 8)


def test_cross_region_access_is_routed(provisioned_shield):
    shield = provisioned_shield.shield
    stage_input(provisioned_shield, "input", b"\xaa" * 4096)
    shield.memory_write(4096, b"\xbb" * 256)
    data = shield.memory_read(4000, 200)
    assert data[:96] == b"\xaa" * 96
    assert data[96:] == b"\xbb" * 104


def test_replay_protected_region_versions_advance(provisioned_shield):
    shield = provisioned_shield.shield
    pipeline = shield.pipeline("output")
    shield.memory_write(4096, b"\x01" * 256)
    shield.flush()
    shield.memory_write(4096, b"\x02" * 256)
    shield.flush()
    assert pipeline.counters is not None
    assert pipeline.counters.read(0) == 2
    assert shield.memory_read(4096, 256) == b"\x02" * 256


def test_stats_aggregation(provisioned_shield):
    shield = provisioned_shield.shield
    stage_input(provisioned_shield, "input", b"\x11" * 2048)
    shield.memory_read(0, 2048)
    shield.memory_write(4096, b"\x22" * 512)
    shield.flush()
    stats = shield.stats()
    assert stats.accel_bytes_read == 2048
    assert stats.accel_bytes_written == 512
    assert stats.dram_bytes_read >= 2048
    assert stats.dram_bytes_written >= 512
    assert stats.tag_bytes > 0
    assert stats.integrity_failures == 0
    with pytest.raises(ShieldError):
        shield.pipeline("nonexistent")


def test_partial_chunk_write_without_buffer():
    config = make_small_shield_config(buffer_bytes=0, replay_protected_output=False)
    harness = build_test_shield(config)
    shield = harness.shield
    # Write a full chunk first, then overwrite part of it (read-modify-write).
    shield.memory_write(4096, b"\xaa" * 256)
    shield.memory_write(4100, b"\xbb" * 8)
    expected = b"\xaa" * 4 + b"\xbb" * 8 + b"\xaa" * 244
    assert shield.memory_read(4096, 256) == expected


def test_streaming_write_only_region_zero_fills():
    config = make_small_shield_config(buffer_bytes=0, replay_protected_output=False)
    # Mark the output region streaming-write-only.
    from repro.core.config import RegionConfig

    config.regions[1] = RegionConfig(
        name="output", base_address=4096, size_bytes=4096, chunk_size=256,
        engine_set="es-out", streaming_write_only=True,
    )
    harness = build_test_shield(config)
    shield = harness.shield
    shield.memory_write(4200, b"\xcc" * 16)
    chunk = shield.memory_read(4096, 256)
    assert chunk[104:120] == b"\xcc" * 16
    assert chunk[:104] == b"\x00" * 104


def test_operational_flag(provisioned_shield):
    assert provisioned_shield.shield.operational
