"""Regression tests for ``Shield.operational``.

The original expression mixed ``and``/``or`` without parentheses; these tests
pin the intended truth table, most importantly the region-less configuration
(a register-interface-only Shield must come up as soon as its Load Key
arrives, and must NOT be operational before).
"""

from __future__ import annotations

from repro.core.config import RegisterInterfaceConfig, ShieldConfig
from repro.core.shield import Shield
from repro.crypto.rsa import RsaPrivateKey
from repro.hw.board import BoardModel, make_board
from repro.sim.simulator import build_test_shield
from tests.conftest import make_small_shield_config


def _regionless_config() -> ShieldConfig:
    return ShieldConfig(
        shield_id="reg-only",
        engine_sets=[],
        regions=[],
        register_interface=RegisterInterfaceConfig(num_registers=8),
    )


def test_unprovisioned_shield_is_not_operational():
    board = make_board(BoardModel.AWS_F1)
    key = RsaPrivateKey.from_seed(b"operational-test", bits=512)
    shield = Shield(make_small_shield_config(), board.shell, board.on_chip_memory, key)
    assert not shield.operational


def test_regionless_shield_not_operational_before_provisioning():
    board = make_board(BoardModel.AWS_F1)
    key = RsaPrivateKey.from_seed(b"operational-test", bits=512)
    shield = Shield(_regionless_config(), board.shell, board.on_chip_memory, key)
    assert not shield.operational


def test_regionless_shield_operational_after_provisioning():
    harness = build_test_shield(_regionless_config())
    assert harness.shield.operational
    # No regions means no pipelines -- and that must not mask readiness.
    assert harness.shield._pipelines == {}


def test_shield_with_regions_operational_after_provisioning(provisioned_shield):
    assert provisioned_shield.shield.operational
    assert provisioned_shield.shield._pipelines
