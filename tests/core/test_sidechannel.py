"""Side-channel countermeasure tests (active fence, controlled-channel, timing)."""

import pytest

from repro.core.config import RegionConfig
from repro.core.engines import AesEngine
from repro.core.sidechannel import (
    ActiveFenceConfig,
    engine_timing_is_data_independent,
    observable_accesses,
    recommend_chunk_size,
    size_fence_for,
)
from repro.errors import ConfigurationError


def test_fence_validation():
    with pytest.raises(ConfigurationError):
        ActiveFenceConfig(cells=0)
    with pytest.raises(ConfigurationError):
        ActiveFenceConfig(cells=10, toggle_rate=0.0)
    with pytest.raises(ConfigurationError):
        ActiveFenceConfig(cells=10, toggle_rate=1.5)


def test_fence_area_scales_with_cells():
    small = ActiveFenceConfig(cells=100).area()
    large = ActiveFenceConfig(cells=1000).area()
    assert large.luts == 10 * small.luts
    assert small.bram_blocks == 0


def test_fence_masking_power():
    fence = ActiveFenceConfig(cells=200, toggle_rate=0.5)
    assert fence.masking_power(accelerator_dynamic_power=100.0) == pytest.approx(1.0)
    with pytest.raises(ConfigurationError):
        fence.masking_power(0)


def test_size_fence_for_accelerator():
    fence = size_fence_for(accelerator_luts=50_000, coverage=0.16)
    assert fence.cells == 50_000 * 0.16 // 8
    assert fence.area().luts <= 50_000 * 0.16
    with pytest.raises(ConfigurationError):
        size_fence_for(0)
    with pytest.raises(ConfigurationError):
        size_fence_for(1000, coverage=2.0)


def test_observable_accesses_bounded_by_chunks():
    region = RegionConfig("r", 0, 64 * 1024, 4096, "es")
    assert observable_accesses(region, 10) == 10
    assert observable_accesses(region, 10_000) == 16  # only 16 chunks exist
    with pytest.raises(ConfigurationError):
        observable_accesses(region, -1)


def test_recommend_chunk_size_caps_observations():
    # A 1 MiB region that must leak at most 16 distinct accesses.
    chunk = recommend_chunk_size(1 << 20, max_observable_accesses=16)
    assert (1 << 20) // chunk <= 16
    assert chunk >= 64
    # A generous budget keeps the minimum chunk.
    assert recommend_chunk_size(1 << 20, max_observable_accesses=1 << 20) == 64
    # A budget of one access forces a region-sized chunk.
    assert recommend_chunk_size(1 << 20, max_observable_accesses=1) == 1 << 20
    with pytest.raises(ConfigurationError):
        recommend_chunk_size(0, 4)


def test_engine_timing_independent_of_data():
    engine = AesEngine(b"k" * 16, sbox_parallelism=4)
    assert engine_timing_is_data_independent(engine, chunk_size=256)
