"""Shielded register-interface tests: mailbox protocol, replay, tampering."""

import pytest

from repro.core.config import RegisterInterfaceConfig
from repro.core.register_interface import (
    DOORBELL_ADDRESS,
    INBOX_BASE,
    OUTBOX_BASE,
    STATUS_ADDRESS,
    STATUS_ERROR,
    STATUS_OK,
    RegisterChannelClient,
    ShieldedRegisterFile,
)
from repro.errors import ShieldError
from repro.hw.axi import AxiLiteTransaction, BurstKind

DATA_KEY = b"\x77" * 32


@pytest.fixture()
def config():
    return RegisterInterfaceConfig(num_registers=16)


@pytest.fixture()
def register_file(config):
    return ShieldedRegisterFile(config, DATA_KEY)


@pytest.fixture()
def client(config):
    return RegisterChannelClient(DATA_KEY, config)


def push_command(register_file: ShieldedRegisterFile, blob: bytes) -> int:
    """Deliver a sealed command the way the untrusted host would."""
    padded = blob + b"\x00" * ((4 - len(blob) % 4) % 4)
    for offset in range(0, len(padded), 4):
        register_file.handle_axi_lite(
            AxiLiteTransaction(BurstKind.WRITE, INBOX_BASE + offset, padded[offset : offset + 4])
        )
    register_file.handle_axi_lite(
        AxiLiteTransaction(BurstKind.WRITE, DOORBELL_ADDRESS, len(blob).to_bytes(4, "big"))
    )
    status = register_file.handle_axi_lite(AxiLiteTransaction(BurstKind.READ, STATUS_ADDRESS))
    return int.from_bytes(status, "big")


def read_outbox(register_file: ShieldedRegisterFile, length: int) -> bytes:
    words = []
    for offset in range(0, length, 4):
        words.append(
            register_file.handle_axi_lite(AxiLiteTransaction(BurstKind.READ, OUTBOX_BASE + offset))
        )
    return b"".join(words)[:length]


def test_accelerator_side_plaintext_registers(register_file):
    register_file.write_register(3, b"\x00\x00\x00\x2a")
    assert register_file.read_register(3) == b"\x00\x00\x00\x2a"
    with pytest.raises(ShieldError):
        register_file.read_register(16)
    with pytest.raises(ShieldError):
        register_file.write_register(0, b"\x00")


def test_sealed_write_command_updates_register(register_file, client):
    status = push_command(register_file, client.seal_write(5, b"\xde\xad\xbe\xef"))
    assert status == STATUS_OK
    assert register_file.read_register(5) == b"\xde\xad\xbe\xef"
    assert register_file.stats.commands == 1
    assert register_file.stats.rejected == 0


def test_sealed_read_command_returns_sealed_value(register_file, client):
    register_file.write_register(7, b"\x11\x22\x33\x44")
    status = push_command(register_file, client.seal_read_request(7))
    assert status == STATUS_OK
    response = read_outbox(register_file, register_file.outbox_size())
    assert client.open_read_response(response) == b"\x11\x22\x33\x44"


def test_host_never_sees_plaintext_register_value(register_file, client):
    register_file.write_register(7, b"\x5a\x5a\x5a\x5a")
    push_command(register_file, client.seal_read_request(7))
    sealed = read_outbox(register_file, register_file.outbox_size())
    assert b"\x5a\x5a\x5a\x5a" not in sealed


def test_replayed_command_rejected(register_file, client):
    blob = client.seal_write(2, b"\x00\x00\x00\x01")
    assert push_command(register_file, blob) == STATUS_OK
    # The host replays the identical sealed command.
    assert push_command(register_file, blob) == STATUS_ERROR
    assert register_file.stats.rejected == 1


def test_stale_command_rejected(register_file, client):
    first = client.seal_write(2, b"\x00\x00\x00\x01")
    second = client.seal_write(2, b"\x00\x00\x00\x02")
    assert push_command(register_file, second) == STATUS_OK
    # Delivering the older command afterwards must fail (monotonic sequence).
    assert push_command(register_file, first) == STATUS_ERROR
    assert register_file.read_register(2) == b"\x00\x00\x00\x02"


def test_tampered_command_rejected(register_file, client):
    blob = bytearray(client.seal_write(1, b"\x00\x00\x00\x09"))
    blob[20] ^= 0xFF
    assert push_command(register_file, bytes(blob)) == STATUS_ERROR
    assert register_file.read_register(1) == b"\x00" * 4


def test_command_under_wrong_key_rejected(register_file, config):
    stranger = RegisterChannelClient(b"\x00" * 32, config)
    assert push_command(register_file, stranger.seal_write(1, b"\x00\x00\x00\x01")) == STATUS_ERROR


def test_out_of_range_register_index_rejected(register_file, client):
    assert push_command(register_file, client.seal_write(99, b"\x00\x00\x00\x01")) == STATUS_ERROR


def test_writes_outside_mailbox_ignored(register_file):
    register_file.handle_axi_lite(
        AxiLiteTransaction(BurstKind.WRITE, 0x9000, b"\x01\x02\x03\x04")
    )
    assert register_file.stats.rejected == 1
    # Reads of arbitrary addresses return zeros, not register contents.
    register_file.write_register(0, b"\xaa\xbb\xcc\xdd")
    data = register_file.handle_axi_lite(AxiLiteTransaction(BurstKind.READ, 0x9000))
    assert data == b"\x00" * 4


def test_client_rejects_bad_value_length(client):
    with pytest.raises(ShieldError):
        client.seal_write(0, b"\x00" * 3)


def test_status_idle_before_any_command(register_file):
    status = register_file.handle_axi_lite(AxiLiteTransaction(BurstKind.READ, STATUS_ADDRESS))
    assert int.from_bytes(status, "big") == 0
