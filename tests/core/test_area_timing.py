"""Area-model (Table 1/3) and timing-model tests."""

import pytest

from repro.core.area import (
    BRAM_BLOCK_BYTES,
    ResourceVector,
    aes_engine_area,
    component_area,
    engine_set_area,
    mac_engine_area,
    on_chip_memory_area,
    shield_area,
    shield_utilization,
    table1_rows,
)
from repro.core.config import EngineSetConfig, RegionConfig, ShieldConfig
from repro.core.timing import RegionTraffic, TimingModel, WorkloadProfile
from repro.errors import ConfigurationError, SimulationError
from tests.conftest import make_small_shield_config


# -- area ---------------------------------------------------------------------------


def test_table1_component_values_match_paper():
    rows = table1_rows()
    assert rows["controller"]["LUT"] == 2348
    assert rows["engine_set"]["REG"] == 2508
    assert rows["register_interface"]["LUT"] == 3251
    assert rows["aes_4x"]["LUT"] == 2435
    assert rows["aes_16x"]["LUT"] == 2898
    assert rows["hmac"]["LUT"] == 3926
    assert rows["pmac"]["LUT"] == 2545
    # Utilization percentages should be in the sub-percent range of the paper.
    assert 0.2 < rows["controller"]["utilization"]["LUT"] < 0.3
    assert 0.4 < rows["hmac"]["utilization"]["LUT"] < 0.5


def test_unknown_component_rejected():
    with pytest.raises(ConfigurationError):
        component_area("fpu")
    with pytest.raises(ConfigurationError):
        mac_engine_area("GCM")


def test_aes_engine_area_interpolation():
    assert aes_engine_area(4).luts == 2435
    assert aes_engine_area(16).luts == 2898
    middle = aes_engine_area(8)
    assert 2435 < middle.luts < 2898
    assert aes_engine_area(2).luts == 2435


def test_on_chip_memory_area_blocks():
    assert on_chip_memory_area(0).bram_blocks == 0
    assert on_chip_memory_area(1).bram_blocks == 1
    assert on_chip_memory_area(BRAM_BLOCK_BYTES).bram_blocks == 1
    assert on_chip_memory_area(BRAM_BLOCK_BYTES + 1).bram_blocks == 2


def test_resource_vector_arithmetic():
    total = ResourceVector(1, 100, 200) + ResourceVector(2, 50, 25)
    assert (total.bram_blocks, total.luts, total.registers) == (3, 150, 225)
    assert ResourceVector(0, 9000, 0).utilization()["LUT"] == pytest.approx(1.0)


def test_engine_set_area_composition():
    config = EngineSetConfig(
        name="es", num_aes_engines=2, sbox_parallelism=16, mac_algorithm="PMAC",
        num_mac_engines=2, buffer_bytes=16 * 1024,
    )
    area = engine_set_area(config)
    expected_luts = 1068 + 2 * 2898 + 2 * 2545
    assert area.luts == pytest.approx(expected_luts)
    assert area.bram_blocks > 2  # base blocks + buffer


def test_shield_area_grows_with_engine_sets():
    small = make_small_shield_config()
    big = make_small_shield_config()
    big.engine_sets = list(big.engine_sets) + [
        EngineSetConfig(name=f"extra{i}") for i in range(4)
    ]
    assert shield_area(big).luts > shield_area(small).luts


def test_shield_utilization_single_digit_percent():
    utilization = shield_utilization(make_small_shield_config())
    assert 0 < utilization["LUT"] < 10
    assert 0 < utilization["REG"] < 10


def test_counters_count_toward_bram():
    with_counters = make_small_shield_config(replay_protected_output=True)
    without = make_small_shield_config(replay_protected_output=False)
    assert shield_area(with_counters).bram_blocks >= shield_area(without).bram_blocks


# -- timing ---------------------------------------------------------------------------


def simple_profile(bytes_read=1 << 20, compute=0.0, pattern="streaming") -> WorkloadProfile:
    return WorkloadProfile(
        name="synthetic",
        regions=(
            RegionTraffic("input", bytes_read=bytes_read, access_size=512, access_pattern=pattern),
        ),
        compute_cycles=compute,
        init_cycles=1_000.0,
        baseline_bytes_per_cycle=48.0,
    )


def synthetic_config(sbox=16, mac="HMAC", num_aes=1, num_mac=1, buffer_bytes=0) -> ShieldConfig:
    return ShieldConfig(
        shield_id="synthetic",
        engine_sets=[
            EngineSetConfig(
                name="es", num_aes_engines=num_aes, sbox_parallelism=sbox,
                mac_algorithm=mac, num_mac_engines=num_mac, buffer_bytes=buffer_bytes,
            )
        ],
        regions=[RegionConfig("input", 0, 1 << 20, 512, "es")],
    )


def test_shielded_never_faster_than_baseline():
    model = TimingModel()
    profile = simple_profile()
    for sbox in (4, 16):
        assert model.overhead(profile, synthetic_config(sbox=sbox)) >= 1.0


def test_more_parallelism_reduces_overhead():
    model = TimingModel()
    profile = simple_profile()
    slow = model.overhead(profile, synthetic_config(sbox=4))
    fast = model.overhead(profile, synthetic_config(sbox=16))
    assert fast < slow


def test_aes256_not_faster_than_aes128():
    model = TimingModel()
    profile = simple_profile()
    aes128 = synthetic_config(sbox=4)
    aes256 = synthetic_config(sbox=4)
    aes256.engine_sets[0] = EngineSetConfig(
        name="es", num_aes_engines=1, sbox_parallelism=4, aes_key_bits=256
    )
    assert model.overhead(profile, aes256) >= model.overhead(profile, aes128)


def test_compute_bound_workload_hides_crypto():
    model = TimingModel()
    memory_bound = simple_profile(compute=0.0)
    compute_bound = simple_profile(compute=10_000_000.0)
    config = synthetic_config(sbox=4)
    assert model.overhead(compute_bound, config) < model.overhead(memory_bound, config)


def test_random_access_pays_latency():
    model = TimingModel()
    streaming = simple_profile(pattern="streaming")
    random_access = simple_profile(pattern="random")
    config = synthetic_config(sbox=16)
    assert model.baseline(random_access).total_cycles > model.baseline(streaming).total_cycles
    assert model.shielded(random_access, config).total_cycles > model.shielded(
        streaming, config
    ).total_cycles


def test_buffer_reduces_dram_traffic_for_reuse():
    model = TimingModel()
    reuse_profile = WorkloadProfile(
        name="reuse",
        regions=(
            RegionTraffic(
                "input", bytes_read=1 << 20, access_size=64, access_pattern="random",
                reuse_factor=4.0, working_set_bytes=64 * 1024,
            ),
        ),
        baseline_bytes_per_cycle=48.0,
    )
    no_buffer = model.shielded(reuse_profile, synthetic_config(buffer_bytes=0))
    big_buffer = model.shielded(reuse_profile, synthetic_config(buffer_bytes=128 * 1024))
    assert big_buffer.dram_bytes < no_buffer.dram_bytes
    assert big_buffer.total_cycles < no_buffer.total_cycles


def test_tag_traffic_included():
    model = TimingModel()
    profile = simple_profile(bytes_read=1 << 20)
    breakdown = model.shielded(profile, synthetic_config())
    assert breakdown.dram_bytes > (1 << 20)


def test_zero_baseline_rejected():
    model = TimingModel()
    empty = WorkloadProfile(name="empty", regions=(), compute_cycles=0.0, init_cycles=0.0)
    with pytest.raises(SimulationError):
        model.overhead(empty, synthetic_config())


def test_pmac_engines_scale_single_set_throughput():
    model = TimingModel()
    profile = simple_profile()
    one_pmac = model.overhead(profile, synthetic_config(mac="PMAC", num_mac=1, num_aes=4))
    four_pmac = model.overhead(profile, synthetic_config(mac="PMAC", num_mac=4, num_aes=4))
    assert four_pmac <= one_pmac
