"""Regression tests: sub-chunk bursts into streaming write-only regions.

The bufferless write path used to zero-fill the rest of the chunk on *every*
partial write to a ``streaming_write_only`` region, so the second 64-byte
burst into a 4 KiB chunk silently destroyed the first.  Zero-filling is only
safe until the chunk's first seal; after that the pipeline must read the
sealed chunk back before merging the new span.
"""

from __future__ import annotations

from repro.core.config import RegionConfig
from repro.sim.simulator import build_test_shield
from tests.conftest import make_small_shield_config


def _streaming_config(buffer_bytes: int, replay_protected: bool = False):
    config = make_small_shield_config(
        buffer_bytes=buffer_bytes, replay_protected_output=False
    )
    config.regions[1] = RegionConfig(
        name="output", base_address=4096, size_bytes=4096, chunk_size=256,
        engine_set="es-out", streaming_write_only=True,
        replay_protected=replay_protected,
    )
    return config


def test_sub_chunk_bursts_accumulate_without_buffer():
    shield = build_test_shield(_streaming_config(buffer_bytes=0)).shield
    # Stream one 256-byte chunk in four 64-byte bursts (buffer_bytes=0, so
    # every burst seals the chunk to DRAM immediately).
    bursts = [bytes([0x10 + i]) * 64 for i in range(4)]
    for i, burst in enumerate(bursts):
        shield.memory_write(4096 + 64 * i, burst)
    assert shield.memory_read(4096, 256) == b"".join(bursts)


def test_out_of_order_and_overlapping_bursts_without_buffer():
    shield = build_test_shield(_streaming_config(buffer_bytes=0)).shield
    shield.memory_write(4096 + 128, b"\xbb" * 64)   # later span first
    shield.memory_write(4096, b"\xaa" * 64)          # must not erase the \xbb span
    shield.memory_write(4096 + 120, b"\xcc" * 16)    # overlap straddling both
    chunk = shield.memory_read(4096, 256)
    assert chunk[:64] == b"\xaa" * 64
    assert chunk[64:120] == b"\x00" * 56             # untouched bytes stay zero
    assert chunk[120:136] == b"\xcc" * 16
    assert chunk[136:192] == b"\xbb" * 56
    assert chunk[192:] == b"\x00" * 64


def test_sub_chunk_bursts_accumulate_with_replay_protection():
    shield = build_test_shield(
        _streaming_config(buffer_bytes=0, replay_protected=True)
    ).shield
    pipeline = shield.pipeline("output")
    bursts = [bytes([0x40 + i]) * 64 for i in range(4)]
    for i, burst in enumerate(bursts):
        shield.memory_write(4096 + 64 * i, burst)
    # Each burst re-sealed the chunk under a bumped integrity counter.
    assert pipeline.counters is not None and pipeline.counters.read(0) == 4
    assert shield.memory_read(4096, 256) == b"".join(bursts)


def test_evicted_streaming_chunk_survives_a_later_burst():
    # A one-line buffer: writing chunk 1 evicts (and seals) chunk 0, so the
    # second burst into chunk 0 must read the sealed chunk back, not zero it.
    shield = build_test_shield(_streaming_config(buffer_bytes=256)).shield
    shield.memory_write(4096, b"\x11" * 64)          # chunk 0, first burst
    shield.memory_write(4096 + 256, b"\x22" * 64)    # chunk 1 -> evicts chunk 0
    shield.memory_write(4096 + 64, b"\x33" * 64)     # chunk 0, second burst
    shield.flush()
    assert shield.memory_read(4096, 128) == b"\x11" * 64 + b"\x33" * 64
    assert shield.memory_read(4096 + 256, 64) == b"\x22" * 64


def test_full_chunk_write_still_skips_the_read_back():
    shield = build_test_shield(_streaming_config(buffer_bytes=0)).shield
    harness_stats = shield.pipeline("output").stats
    shield.memory_write(4096, b"\x55" * 256)         # full chunk: no fetch
    shield.memory_write(4096, b"\x66" * 256)         # overwrite: still no fetch
    assert harness_stats.chunks_fetched == 0
    assert shield.memory_read(4096, 256) == b"\x66" * 256
