"""Burst-decoder routing tests."""

import pytest

from repro.core.burst_decoder import BurstDecoder
from repro.errors import ShieldError
from tests.conftest import make_small_shield_config


@pytest.fixture()
def decoder():
    return BurstDecoder(make_small_shield_config())


def test_region_lookup(decoder):
    assert decoder.region_for(0).name == "input"
    assert decoder.region_for(4095).name == "input"
    assert decoder.region_for(4096).name == "output"
    with pytest.raises(ShieldError):
        decoder.region_for(100_000)


def test_route_single_region(decoder):
    pieces = decoder.route(128, 256)
    assert len(pieces) == 1
    assert pieces[0].region.name == "input"
    assert pieces[0].length == 256


def test_route_splits_across_regions(decoder):
    pieces = decoder.route(4000, 200)
    assert [p.region.name for p in pieces] == ["input", "output"]
    assert pieces[0].length == 96
    assert pieces[1].address == 4096
    assert sum(p.length for p in pieces) == 200


def test_route_rejects_unmapped_and_empty(decoder):
    with pytest.raises(ShieldError):
        decoder.route(8192, 1)  # past the last region
    with pytest.raises(ShieldError):
        decoder.route(0, 0)


def test_route_rejects_access_spilling_past_last_region(decoder):
    with pytest.raises(ShieldError):
        decoder.route(8000, 500)


def test_chunk_spans(decoder):
    pieces = decoder.route(100, 400)
    spans = decoder.chunk_spans(pieces[0])
    # 256-byte chunks: [100, 256) in chunk 0, [256, 500) in chunk 1.
    assert spans[0] == (0, 100, 156)
    assert spans[1] == (1, 0, 244)
    assert sum(length for _, _, length in spans) == 400
