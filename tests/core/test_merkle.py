"""Bonsai Merkle counter-tree tests (the replay-protection baseline)."""

import pytest

from repro.core.merkle import BonsaiMerkleCounterTree, merkle_extra_dram_bytes
from repro.errors import ReplayError, ShieldError
from repro.hw.axi import AxiPort, memory_backed_handler
from repro.hw.memory import DeviceMemory


def make_tree(num_chunks=16, arity=4):
    memory = DeviceMemory(1 << 20)
    port = AxiPort("merkle", memory_backed_handler(memory))
    tree = BonsaiMerkleCounterTree(port, base_address=0x10000, num_chunks=num_chunks, arity=arity, key=b"k" * 32)
    return tree, memory


def test_initial_counters_are_zero_and_verified():
    tree, _ = make_tree()
    for index in (0, 7, 15):
        assert tree.read_counter(index) == 0


def test_increment_and_read_back():
    tree, _ = make_tree()
    assert tree.increment_counter(5) == 1
    assert tree.increment_counter(5) == 2
    assert tree.read_counter(5) == 2
    assert tree.read_counter(4) == 0


def test_root_changes_on_update():
    tree, _ = make_tree()
    before = tree.root()
    tree.increment_counter(0)
    assert tree.root() != before


def test_tampering_with_leaf_detected():
    tree, memory = make_tree()
    tree.increment_counter(3)
    # The adversary rolls the DRAM-resident counter back to zero.
    leaf_address = tree._level_offsets[0] + 3 * 8
    memory.tamper_write(leaf_address, (0).to_bytes(8, "big"))
    with pytest.raises(ReplayError):
        tree.read_counter(3)


def test_tampering_with_interior_node_detected():
    tree, memory = make_tree(num_chunks=64, arity=4)
    node_address = tree._level_offsets[1]
    original = memory.tamper_read(node_address, 32)
    memory.tamper_write(node_address, bytes(b ^ 0xFF for b in original))
    with pytest.raises(ReplayError):
        tree.read_counter(0)


def test_single_chunk_tree():
    tree, memory = make_tree(num_chunks=1)
    assert tree.read_counter(0) == 0
    tree.increment_counter(0)
    memory.tamper_write(tree._level_offsets[0], (0).to_bytes(8, "big"))
    with pytest.raises(ReplayError):
        tree.read_counter(0)


def test_depth_and_footprint_scale_with_chunks():
    small, _ = make_tree(num_chunks=8, arity=8)
    large, _ = make_tree(num_chunks=4096, arity=8)
    assert large.depth > small.depth
    assert large.dram_footprint_bytes > small.dram_footprint_bytes


def test_dram_traffic_is_nonzero_per_access():
    tree, _ = make_tree(num_chunks=256, arity=8)
    tree.stats.node_reads = 0
    tree.stats.bytes_read = 0
    tree.read_counter(100)
    assert tree.stats.node_reads > 1
    assert tree.stats.bytes_read > 8


def test_bounds_and_validation():
    with pytest.raises(ShieldError):
        make_tree(num_chunks=0)
    with pytest.raises(ShieldError):
        make_tree(arity=1)
    tree, _ = make_tree()
    with pytest.raises(ShieldError):
        tree.read_counter(99)


def test_analytic_overhead_positive_and_monotonic():
    small = merkle_extra_dram_bytes(256)
    large = merkle_extra_dram_bytes(1 << 20)
    assert 0 < small < large
    with pytest.raises(ShieldError):
        merkle_extra_dram_bytes(0)
