"""Conformance tests pinning every batched entry point to its scalar twin.

The fast/scalar parity checker (``repro.analysis``, checker ``fast-parity``)
requires each public ``*_many`` / ``*_array`` function to carry a
``@scalar_reference`` decorator *and* to appear in the test corpus.  This
module is that corpus entry for the array-native entry points: every test
drives the fast path and asserts byte-for-byte agreement with the registered
scalar reference.
"""

import numpy as np
import pytest

from repro.core.config import EngineSetConfig, RegionConfig
from repro.core.engines import AesEngine, MacEngine
from repro.core.sealing import RegionSealer
from repro.crypto.fastaes import VectorAes
from repro.crypto.fasthash import BatchedMac, sha256_many_array
from repro.crypto.hashes import sha256
from repro.crypto.mac import compute_mac
from repro.crypto.modes import ctr_transform
from repro.crypto.aes import AES
from repro.errors import IntegrityError
from repro.hw.axi import AxiPort, memory_backed_handler
from repro.hw.memory import DeviceMemory


def _rows(n, length, seed=7):
    rng = np.random.default_rng(seed)
    return rng.integers(0, 256, size=(n, length), dtype=np.uint8)


def _ivs(n, seed=11):
    rng = np.random.default_rng(seed)
    return rng.integers(0, 256, size=(n, 12), dtype=np.uint8)


KEY = bytes(range(16))


class TestAesEngineArrayParity:
    def test_encrypt_many_array_matches_scalar_encrypt(self):
        fast = AesEngine(KEY, fast_crypto=True)
        scalar = AesEngine(KEY, fast_crypto=False)
        ivs, plaintexts = _ivs(5), _rows(5, 64)
        out = fast.encrypt_many_array(ivs, plaintexts)
        for row in range(5):
            assert out[row].tobytes() == scalar.encrypt(
                ivs[row].tobytes(), plaintexts[row].tobytes()
            )

    def test_decrypt_many_array_matches_scalar_decrypt(self):
        fast = AesEngine(KEY, fast_crypto=True)
        scalar = AesEngine(KEY, fast_crypto=False)
        ivs, ciphertexts = _ivs(4, seed=3), _rows(4, 48, seed=4)
        out = fast.decrypt_many_array(ivs, ciphertexts)
        for row in range(4):
            assert out[row].tobytes() == scalar.decrypt(
                ivs[row].tobytes(), ciphertexts[row].tobytes()
            )


class TestMacEngineArrayParity:
    @pytest.mark.parametrize("algorithm", ["HMAC", "PMAC", "CMAC"])
    def test_tag_many_array_matches_scalar_tag(self, algorithm):
        fast = MacEngine(KEY * 2, algorithm, fast_crypto=True)
        scalar = MacEngine(KEY * 2, algorithm, fast_crypto=False)
        messages = _rows(6, 80)
        tags = fast.tag_many_array(messages)
        for row in range(6):
            assert tags[row].tobytes() == scalar.tag(messages[row].tobytes())

    def test_verify_many_array_accepts_scalar_tags(self):
        fast = MacEngine(KEY * 2, "HMAC", fast_crypto=True)
        scalar = MacEngine(KEY * 2, "HMAC", fast_crypto=False)
        messages = _rows(3, 40, seed=9)
        tags = [scalar.tag(messages[row].tobytes()) for row in range(3)]
        fast.verify_many_array(messages, tags)  # must not raise

    def test_verify_many_array_rejects_tampering(self):
        engine = MacEngine(KEY * 2, "HMAC", fast_crypto=True)
        messages = _rows(3, 40, seed=10)
        tags = [t.tobytes() for t in engine.tag_many_array(messages)]
        tags[1] = bytes(16)
        with pytest.raises(IntegrityError):
            engine.verify_many_array(messages, tags)


class TestCryptoArrayParity:
    def test_sha256_many_array_matches_sha256(self):
        messages = _rows(7, 55, seed=21)
        digests = sha256_many_array(messages)
        for row in range(7):
            assert digests[row].tobytes() == sha256(messages[row].tobytes())

    def test_ctr_transform_array_matches_ctr_transform(self):
        cipher = AES(KEY)
        vector = VectorAes(cipher)
        ivs, data = _ivs(5, seed=31), _rows(5, 100, seed=32)
        out = vector.ctr_transform_array(ivs, data)
        for row in range(5):
            assert out[row].tobytes() == ctr_transform(
                cipher, ivs[row].tobytes(), data[row].tobytes()
            )

    def test_batched_mac_tag_many_array_matches_compute_mac(self):
        batched = BatchedMac("PMAC", KEY)
        messages = _rows(5, 33, seed=41)
        tags = batched.tag_many_array(messages)
        for row in range(5):
            assert tags[row].tobytes() == compute_mac(
                "PMAC", KEY, messages[row].tobytes()
            )


class TestSealerArrayParity:
    def _sealer(self):
        region = RegionConfig(
            name="r0", base_address=0, size_bytes=512, chunk_size=64, engine_set="es"
        )
        engine_config = EngineSetConfig(name="es", fast_crypto=True)
        return RegionSealer(b"\x42" * 32, region, engine_config)

    def test_seal_chunks_array_matches_seal_chunk(self):
        fast, scalar = self._sealer(), self._sealer()
        plaintexts = _rows(4, 64, seed=51)
        sealed = fast.seal_chunks_array([0, 1, 2, 3], plaintexts)
        for row, chunk in enumerate(sealed):
            reference = scalar.seal_chunk(row, plaintexts[row].tobytes())
            assert bytes(chunk.ciphertext) == bytes(reference.ciphertext)
            assert bytes(chunk.tag) == bytes(reference.tag)

    def test_unseal_chunks_matches_unseal_chunk(self):
        sealer = self._sealer()
        plaintexts = _rows(4, 64, seed=52)
        sealed = sealer.seal_chunks_array([0, 1, 2, 3], plaintexts)
        out = sealer.unseal_chunks(
            [c.chunk_index for c in sealed],
            [c.ciphertext for c in sealed],
            [c.tag for c in sealed],
        )
        reference = self._sealer()
        for row, plain in enumerate(out):
            scalar = reference.unseal_chunk(
                row, bytes(sealed[row].ciphertext), bytes(sealed[row].tag)
            )
            assert bytes(plain) == bytes(scalar) == plaintexts[row].tobytes()


class TestAxiPortManyParity:
    def _port(self):
        memory = DeviceMemory(size_bytes=1 << 16)
        return AxiPort(name="test", slave_handler=memory_backed_handler(memory))

    def test_write_many_then_read_many_roundtrip(self):
        port = self._port()
        entries = [(0, b"a" * 100), (100, b"b" * 50), (4096 - 8, b"c" * 64)]
        port.write_many(entries)
        spans = [(addr, len(data)) for addr, data in entries]
        assert port.read_many(spans) == [data for _, data in entries]

    def test_write_many_matches_scalar_write(self):
        batched, scalar = self._port(), self._port()
        entries = [(16, b"\x11" * 32), (48, b"\x22" * 32), (200, b"\x33" * 8)]
        batched.write_many(entries)
        for address, data in entries:
            scalar.write(address, data)
        for address, length in [(16, 32), (48, 32), (200, 8)]:
            assert batched.read(address, length) == scalar.read(address, length)

    def test_read_many_matches_scalar_read(self):
        port = self._port()
        port.write(0, bytes(range(256)))
        spans = [(5, 10), (0, 4), (5, 10), (100, 56)]
        assert port.read_many(spans) == [
            port.read(address, length) for address, length in spans
        ]

    def test_write_many_accepts_memoryviews(self):
        # The coalescing join must pass buffer rows through without copying
        # them into intermediate bytes objects -- memoryview rows of a shared
        # array (the sealed-chunk DMA case) are first-class inputs.
        port = self._port()
        backing = _rows(2, 64, seed=61)
        rows = memoryview(backing.reshape(-1)).cast("B")
        port.write_many([(0, rows[0:64]), (64, rows[64:128])])
        assert port.read(0, 128) == backing.reshape(-1).tobytes()


def test_measure_many_matches_measure():
    # measure_many frames each component by length; a single component is
    # the framed hash, not measure(data) itself -- assert the documented
    # framing against the scalar measure() primitive.
    from repro.boot.measurement import measure, measure_many

    parts = [b"alpha", b"beta"]
    framed = b"".join(len(p).to_bytes(8, "big") + p for p in parts)
    assert measure_many(*parts) == measure(framed)
