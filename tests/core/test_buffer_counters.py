"""On-chip plaintext buffer and integrity-counter tests."""

import pytest

from repro.core.buffer import PlaintextBuffer
from repro.core.counters import IntegrityCounterStore
from repro.errors import ShieldError
from repro.hw.memory import OnChipMemory


def test_buffer_disabled_when_no_capacity():
    buffer = PlaintextBuffer(0, 256)
    assert not buffer.enabled
    with pytest.raises(ShieldError):
        buffer.insert(0, b"\x00" * 256)


def test_buffer_hit_miss_accounting():
    buffer = PlaintextBuffer(1024, 256)
    assert buffer.lookup(0) is None
    buffer.insert(0, b"a" * 256)
    line = buffer.lookup(0)
    assert line is not None and bytes(line.data) == b"a" * 256
    assert buffer.stats.hits == 1 and buffer.stats.misses == 1
    assert buffer.stats.hit_rate == pytest.approx(0.5)


def test_buffer_lru_eviction_returns_dirty_victim():
    buffer = PlaintextBuffer(2 * 256, 256)
    buffer.insert(0, b"a" * 256, dirty=True)
    buffer.insert(1, b"b" * 256)
    # Touch chunk 0 so chunk 1 becomes the LRU victim.
    buffer.lookup(0)
    evicted = buffer.insert(2, b"c" * 256)
    assert evicted is None  # chunk 1 was clean
    evicted = buffer.insert(3, b"d" * 256)
    assert evicted is not None and evicted.chunk_index == 0
    assert buffer.stats.evictions == 2
    assert buffer.stats.writebacks == 1


def test_buffer_mark_dirty_and_flush_list():
    buffer = PlaintextBuffer(1024, 256)
    buffer.insert(0, b"a" * 256)
    buffer.mark_dirty(0)
    assert [line.chunk_index for line in buffer.dirty_lines()] == [0]
    with pytest.raises(ShieldError):
        buffer.mark_dirty(9)


def test_buffer_line_size_enforced():
    buffer = PlaintextBuffer(1024, 256)
    with pytest.raises(ShieldError):
        buffer.insert(0, b"short")


def test_buffer_invalidate():
    buffer = PlaintextBuffer(1024, 256)
    buffer.insert(0, b"a" * 256)
    buffer.invalidate()
    assert len(buffer) == 0
    assert buffer.resident_chunks() == []


def test_counters_increment_and_read():
    ocm = OnChipMemory(1024)
    store = IntegrityCounterStore(ocm.allocate("ctr", 64), num_chunks=16)
    assert store.read(3) == 0
    assert store.increment(3) == 1
    assert store.increment(3) == 2
    assert store.read(3) == 2
    assert store.read(4) == 0
    assert store.on_chip_bytes() == 64


def test_counters_bounds_and_sizing():
    ocm = OnChipMemory(1024)
    allocation = ocm.allocate("small", 8)
    with pytest.raises(ShieldError):
        IntegrityCounterStore(allocation, num_chunks=16)
    store = IntegrityCounterStore(ocm.allocate("ok", 64), num_chunks=16)
    with pytest.raises(ShieldError):
        store.read(16)
    with pytest.raises(ShieldError):
        store.increment(-1)
