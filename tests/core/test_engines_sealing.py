"""Engine models and chunk-sealing format tests."""

import pytest

from repro.core.config import EngineSetConfig, RegionConfig
from repro.core.engines import (
    AesEngine,
    MacEngine,
    build_engines,
    engine_set_authentication_rate,
    engine_set_crypto_rate,
    engine_set_encryption_rate,
)
from repro.core.sealing import RegionSealer, chunk_iv, chunk_mac_context, region_key
from repro.errors import IntegrityError, ShieldError

DATA_KEY = b"\x2a" * 32


@pytest.fixture()
def region():
    return RegionConfig("weights", 0x1000, 4096, 512, "es0")


@pytest.fixture()
def engine_config():
    return EngineSetConfig(name="es0", sbox_parallelism=4, aes_key_bits=128)


def test_aes_engine_roundtrip_and_stats():
    engine = AesEngine(b"k" * 16, sbox_parallelism=4, key_bits=128)
    ciphertext = engine.encrypt(b"\x00" * 12, b"payload bytes")
    assert ciphertext != b"payload bytes"
    assert engine.decrypt(b"\x00" * 12, ciphertext) == b"payload bytes"
    assert engine.stats.bytes_encrypted == 13
    assert engine.stats.bytes_decrypted == 13


def test_aes_engine_key_size_mismatch():
    with pytest.raises(ShieldError):
        AesEngine(b"k" * 16, key_bits=256)


def test_aes_engine_throughput_scales_with_sbox():
    slow = AesEngine(b"k" * 16, sbox_parallelism=4)
    fast = AesEngine(b"k" * 16, sbox_parallelism=16)
    assert fast.bytes_per_cycle == pytest.approx(4 * slow.bytes_per_cycle)
    aes256 = AesEngine(b"k" * 32, sbox_parallelism=16, key_bits=256)
    assert aes256.bytes_per_cycle < fast.bytes_per_cycle


def test_mac_engine_tag_and_verify():
    engine = MacEngine(b"m" * 32, "HMAC")
    tag = engine.tag(b"chunk data")
    assert len(tag) == 16
    engine.verify(b"chunk data", tag)
    with pytest.raises(IntegrityError):
        engine.verify(b"chunk data!", tag)


def test_mac_engine_parallelizability_flag():
    assert MacEngine(b"m" * 32, "PMAC").parallelizable
    assert not MacEngine(b"m" * 32, "HMAC").parallelizable
    with pytest.raises(ShieldError):
        MacEngine(b"m" * 32, "GCM")


def test_engine_set_rate_model():
    hmac_set = EngineSetConfig(name="a", num_aes_engines=4, sbox_parallelism=16, mac_algorithm="HMAC")
    pmac_set = EngineSetConfig(
        name="b", num_aes_engines=4, sbox_parallelism=16, mac_algorithm="PMAC", num_mac_engines=4
    )
    # More AES engines increase encryption rate.
    assert engine_set_encryption_rate(hmac_set) == pytest.approx(64.0)
    # HMAC does not scale with engine count; PMAC does.
    more_hmac = EngineSetConfig(name="c", mac_algorithm="HMAC", num_mac_engines=8)
    assert engine_set_authentication_rate(more_hmac) == engine_set_authentication_rate(hmac_set)
    assert engine_set_authentication_rate(pmac_set) == pytest.approx(
        4 * engine_set_authentication_rate(
            EngineSetConfig(name="d", mac_algorithm="PMAC", num_mac_engines=1)
        )
    )
    # The sustainable rate is the minimum of the two.
    assert engine_set_crypto_rate(hmac_set) == engine_set_authentication_rate(hmac_set)
    # AES-256 lowers the encryption rate.
    aes256 = EngineSetConfig(name="e", num_aes_engines=1, sbox_parallelism=16, aes_key_bits=256)
    assert engine_set_encryption_rate(aes256) < 16.0


def test_build_engines_derive_distinct_keys(engine_config):
    aes_a, mac_a = build_engines(engine_config, b"\x01" * 32)
    aes_b, mac_b = build_engines(engine_config, b"\x02" * 32)
    assert aes_a.encrypt(b"\x00" * 12, b"x" * 16) != aes_b.encrypt(b"\x00" * 12, b"x" * 16)
    assert mac_a.tag(b"x") != mac_b.tag(b"x")


def test_region_key_separation():
    assert region_key(DATA_KEY, "weights") != region_key(DATA_KEY, "feature_maps")


def test_chunk_iv_uniqueness(region):
    ivs = {chunk_iv(region, index, version) for index in range(4) for version in range(3)}
    assert len(ivs) == 12
    other = RegionConfig("other", 0, 4096, 512, "es0")
    assert chunk_iv(region, 0, 0) != chunk_iv(other, 0, 0)


def test_chunk_mac_context_binds_address_and_version(region):
    assert chunk_mac_context(region, 0, 0) != chunk_mac_context(region, 1, 0)
    assert chunk_mac_context(region, 0, 0) != chunk_mac_context(region, 0, 1)


def test_sealer_roundtrip(region, engine_config):
    sealer = RegionSealer(DATA_KEY, region, engine_config)
    plaintext = bytes((i * 3) % 256 for i in range(512))
    sealed = sealer.seal_chunk(2, plaintext)
    assert sealed.ciphertext != plaintext
    assert sealer.unseal_chunk(2, sealed.ciphertext, sealed.tag) == plaintext


def test_sealer_rejects_wrong_chunk_index(region, engine_config):
    sealer = RegionSealer(DATA_KEY, region, engine_config)
    sealed = sealer.seal_chunk(2, b"\x00" * 512)
    with pytest.raises(IntegrityError):
        sealer.unseal_chunk(3, sealed.ciphertext, sealed.tag)


def test_sealer_rejects_wrong_version(region, engine_config):
    sealer = RegionSealer(DATA_KEY, region, engine_config)
    sealed = sealer.seal_chunk(0, b"\x11" * 512, version=4)
    assert sealer.unseal_chunk(0, sealed.ciphertext, sealed.tag, version=4) == b"\x11" * 512
    with pytest.raises(IntegrityError):
        sealer.unseal_chunk(0, sealed.ciphertext, sealed.tag, version=5)


def test_sealer_requires_exact_chunk_size(region, engine_config):
    sealer = RegionSealer(DATA_KEY, region, engine_config)
    with pytest.raises(ShieldError):
        sealer.seal_chunk(0, b"short")


def test_seal_region_data_pads_and_bounds(region, engine_config):
    sealer = RegionSealer(DATA_KEY, region, engine_config)
    chunks = sealer.seal_region_data(b"z" * 700)
    assert len(chunks) == 2
    assert sealer.unseal_region_data(chunks, length=700) == b"z" * 700
    with pytest.raises(ShieldError):
        sealer.seal_region_data(b"z" * 5000)


def test_sealer_mac_algorithm_variants(region):
    for algorithm in ("HMAC", "PMAC", "CMAC"):
        config = EngineSetConfig(name="es0", mac_algorithm=algorithm)
        sealer = RegionSealer(DATA_KEY, region, config)
        sealed = sealer.seal_chunk(1, b"\x22" * 512)
        assert sealer.unseal_chunk(1, sealed.ciphertext, sealed.tag) == b"\x22" * 512
