"""Differential conformance: vectorized vs scalar Merkle datapath + zero-copy seals.

The vectorized Merkle tree (batched multi-message HMAC, coalesced AXI reads)
must be indistinguishable from the scalar per-node reference in everything a
caller can observe: roots, counter values, tamper detection, and the per-node
:class:`~repro.core.merkle.MerkleStats` accounting that feeds the
replay-protection ablation.  The second half checks the zero-copy contract of
the batched chunk datapath: one shared ciphertext buffer per seal pass, no
per-chunk ``bytes`` materialization.
"""

import pytest

from repro.core.config import EngineSetConfig, RegionConfig
from repro.core.merkle import BonsaiMerkleCounterTree, merkle_extra_dram_bytes
from repro.core.sealing import RegionSealer
from repro.errors import ReplayError
from repro.hw.axi import AxiPort, memory_backed_handler
from repro.hw.memory import DeviceMemory

SHAPES = [(1, 8), (2, 2), (5, 3), (9, 8), (16, 4), (100, 8), (256, 8)]


def make_tree(num_chunks, arity, fast_hash):
    memory = DeviceMemory(1 << 22)
    port = AxiPort("merkle", memory_backed_handler(memory))
    tree = BonsaiMerkleCounterTree(
        port,
        base_address=0x10000,
        num_chunks=num_chunks,
        arity=arity,
        key=b"k" * 32,
        fast_hash=fast_hash,
    )
    return tree, memory


def stats_tuple(tree):
    s = tree.stats
    return (s.node_reads, s.node_writes, s.bytes_read, s.bytes_written)


# ---------------------------------------------------------------------------
# Differential: roots, values, and stats must match the scalar reference
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("num_chunks,arity", SHAPES)
def test_build_roots_and_stats_identical(num_chunks, arity):
    fast, _ = make_tree(num_chunks, arity, fast_hash=True)
    scalar, _ = make_tree(num_chunks, arity, fast_hash=False)
    assert fast.uses_fast_path and not scalar.uses_fast_path
    assert fast.root() == scalar.root()
    assert stats_tuple(fast) == stats_tuple(scalar)


@pytest.mark.parametrize("num_chunks,arity", [(9, 8), (16, 4), (100, 8)])
def test_batched_reads_match_scalar_loop(num_chunks, arity):
    fast, _ = make_tree(num_chunks, arity, fast_hash=True)
    scalar, _ = make_tree(num_chunks, arity, fast_hash=False)
    indices = [0, num_chunks - 1, num_chunks // 2, 0]  # includes a duplicate
    fast.stats.reset()
    scalar.stats.reset()
    batched = fast.read_counters(indices)
    looped = [scalar.read_counter(index) for index in indices]
    assert batched == looped == [0] * len(indices)
    assert stats_tuple(fast) == stats_tuple(scalar)


@pytest.mark.parametrize("num_chunks,arity", [(9, 8), (16, 4), (100, 8)])
def test_batched_increments_match_scalar_loop(num_chunks, arity):
    fast, _ = make_tree(num_chunks, arity, fast_hash=True)
    scalar, _ = make_tree(num_chunks, arity, fast_hash=False)
    # Duplicates in one batch must behave like sequential scalar increments:
    # every occurrence sees its own new version.
    indices = [3, 3, num_chunks - 1, 3, 0]
    indices = [index % num_chunks for index in indices]
    fast.stats.reset()
    scalar.stats.reset()
    batched = fast.increment_counters(indices)
    looped = [scalar.increment_counter(index) for index in indices]
    assert batched == looped
    assert fast.root() == scalar.root()
    assert stats_tuple(fast) == stats_tuple(scalar)
    assert [fast.read_counter(i) for i in range(num_chunks)] == [
        scalar.read_counter(i) for i in range(num_chunks)
    ]


def test_interleaved_workload_keeps_paths_in_lockstep():
    fast, _ = make_tree(64, 4, fast_hash=True)
    scalar, _ = make_tree(64, 4, fast_hash=False)
    for round_number in range(3):
        batch = [(round_number * 7 + k) % 64 for k in range(9)]
        assert fast.increment_counters(batch) == [
            scalar.increment_counter(index) for index in batch
        ]
        probe = [(round_number * 13 + k) % 64 for k in range(5)]
        assert fast.read_counters(probe) == [
            scalar.read_counter(index) for index in probe
        ]
        assert fast.root() == scalar.root()
        assert stats_tuple(fast) == stats_tuple(scalar)


@pytest.mark.parametrize("fast_hash", [True, False])
def test_tampered_leaf_detected_by_batched_read(fast_hash):
    tree, memory = make_tree(64, 4, fast_hash)
    tree.increment_counters([3, 4, 5])
    leaf_address = tree._level_offsets[0] + 3 * 8
    memory.tamper_write(leaf_address, (0).to_bytes(8, "big"))
    with pytest.raises(ReplayError):
        tree.read_counters([2, 3, 4])


@pytest.mark.parametrize("fast_hash", [True, False])
def test_tampered_interior_node_detected_by_batched_read(fast_hash):
    tree, memory = make_tree(64, 4, fast_hash)
    node_address = tree._level_offsets[1]
    original = memory.tamper_read(node_address, 32)
    memory.tamper_write(node_address, bytes(b ^ 0xFF for b in original))
    with pytest.raises(ReplayError):
        tree.read_counters([0, 1])


def test_stats_reset_zeroes_all_counters():
    tree, _ = make_tree(16, 4, fast_hash=True)
    tree.read_counter(0)
    assert stats_tuple(tree) != (0, 0, 0, 0)
    tree.stats.reset()
    assert stats_tuple(tree) == (0, 0, 0, 0)


# ---------------------------------------------------------------------------
# Analytic DRAM model vs measured traffic (both datapaths)
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("num_chunks,arity", [(1, 8), (2, 2), (9, 8), (16, 4), (100, 8)])
@pytest.mark.parametrize("fast_hash", [True, False])
def test_analytic_model_matches_measured_traffic(num_chunks, arity, fast_hash):
    tree, _ = make_tree(num_chunks, arity, fast_hash)

    tree.stats.reset()
    for index in range(num_chunks):
        tree.read_counter(index)
    measured_read = tree.stats.bytes_read / num_chunks
    assert tree.stats.bytes_written == 0
    assert merkle_extra_dram_bytes(
        num_chunks, arity, writes_fraction=0.0
    ) == pytest.approx(measured_read, abs=1e-9)

    tree.stats.reset()
    for index in range(num_chunks):
        tree.increment_counter(index)
    measured_write = (tree.stats.bytes_read + tree.stats.bytes_written) / num_chunks
    assert merkle_extra_dram_bytes(
        num_chunks, arity, writes_fraction=1.0
    ) == pytest.approx(measured_write, abs=1e-9)

    blended = merkle_extra_dram_bytes(num_chunks, arity, writes_fraction=0.25)
    assert blended == pytest.approx(0.75 * measured_read + 0.25 * measured_write)


# ---------------------------------------------------------------------------
# Zero-copy chunk datapath
# ---------------------------------------------------------------------------


def make_sealer(fast):
    region = RegionConfig(
        name="zerocopy",
        base_address=0x4000,
        size_bytes=64 * 256,
        chunk_size=256,
        engine_set="es",
    )
    config = EngineSetConfig(name="es", fast_crypto=fast)
    return RegionSealer(b"\x42" * 32, region, config)


def test_fast_seal_shares_one_ciphertext_buffer():
    sealer = make_sealer(True)
    data = bytes((i * 31 + 7) % 256 for i in range(256 * 12 + 100))
    chunks = sealer.seal_region_data(data)
    assert len(chunks) == 13
    # Every ciphertext is a memoryview row of one shared backing buffer: the
    # whole seal pass made exactly one ciphertext allocation, with no
    # per-chunk slicing, padding, or bytes concatenation.
    assert all(isinstance(c.ciphertext, memoryview) for c in chunks)
    assert len({id(c.ciphertext.obj) for c in chunks}) == 1
    assert all(len(c.ciphertext) == 256 for c in chunks)
    # Tags stay bytes (hashable, protocol-compatible).
    assert all(isinstance(c.tag, bytes) and len(c.tag) == 16 for c in chunks)
    # The shared-buffer ciphertext matches the scalar reference byte for byte.
    reference = make_sealer(False).seal_region_data(data)
    assert [bytes(c.ciphertext) for c in chunks] == [c.ciphertext for c in reference]
    assert [c.tag for c in chunks] == [c.tag for c in reference]


def test_fast_unseal_chunks_shares_one_plaintext_buffer():
    sealer = make_sealer(True)
    data = bytes((i * 11 + 5) % 256 for i in range(256 * 6))
    chunks = sealer.seal_region_data(data)
    plaintexts = sealer.unseal_chunks(
        [c.chunk_index for c in chunks],
        [c.ciphertext for c in chunks],
        [c.tag for c in chunks],
    )
    assert all(isinstance(p, memoryview) for p in plaintexts)
    assert len({id(p.obj) for p in plaintexts}) == 1
    assert b"".join(plaintexts) == data


def test_unseal_region_data_round_trips_shared_buffers():
    fast = make_sealer(True)
    scalar = make_sealer(False)
    data = bytes((i * 3 + 1) % 256 for i in range(256 * 5 + 17))
    fast_chunks = fast.seal_region_data(data)
    # Cross-path: scalar unseal accepts memoryview ciphertexts and vice versa.
    assert scalar.unseal_region_data(fast_chunks, length=len(data)) == data
    assert fast.unseal_region_data(scalar.seal_region_data(data), length=len(data)) == data
    assert fast.unseal_region_data(fast_chunks, length=len(data)) == data
