"""Shared fixtures for the ShEF reproduction test suite."""

from __future__ import annotations

import pytest

from repro.core.config import EngineSetConfig, RegionConfig, RegisterInterfaceConfig, ShieldConfig
from repro.crypto.drbg import HmacDrbg
from repro.crypto.ecc import EcPrivateKey
from repro.crypto.rsa import RsaPrivateKey
from repro.sim.simulator import build_test_shield


@pytest.fixture(scope="session")
def rsa_key() -> RsaPrivateKey:
    """A session-wide 1024-bit RSA key (keygen is the slowest pure-Python step)."""
    return RsaPrivateKey.from_seed(b"test-suite-rsa-key", bits=1024)


@pytest.fixture(scope="session")
def small_rsa_key() -> RsaPrivateKey:
    """A faster 512-bit RSA key for tests that only need algebraic correctness."""
    return RsaPrivateKey.from_seed(b"test-suite-small-rsa", bits=512)


@pytest.fixture(scope="session")
def ec_key() -> EcPrivateKey:
    return EcPrivateKey.from_seed(b"test-suite-ec-key")


@pytest.fixture()
def rng() -> HmacDrbg:
    return HmacDrbg(b"test-suite-rng")


def make_small_shield_config(
    shield_id: str = "test-shield",
    chunk_size: int = 256,
    region_bytes: int = 4096,
    buffer_bytes: int = 1024,
    mac_algorithm: str = "HMAC",
    replay_protected_output: bool = True,
) -> ShieldConfig:
    """A compact two-region Shield configuration used across the suite."""
    return ShieldConfig(
        shield_id=shield_id,
        engine_sets=[
            EngineSetConfig(
                name="es-in", sbox_parallelism=4, aes_key_bits=128,
                mac_algorithm=mac_algorithm, buffer_bytes=buffer_bytes,
            ),
            EngineSetConfig(
                name="es-out", sbox_parallelism=4, aes_key_bits=128,
                mac_algorithm=mac_algorithm, buffer_bytes=buffer_bytes,
            ),
        ],
        regions=[
            RegionConfig(
                name="input", base_address=0, size_bytes=region_bytes,
                chunk_size=chunk_size, engine_set="es-in",
            ),
            RegionConfig(
                name="output", base_address=region_bytes, size_bytes=region_bytes,
                chunk_size=chunk_size, engine_set="es-out",
                replay_protected=replay_protected_output,
            ),
        ],
        register_interface=RegisterInterfaceConfig(num_registers=16),
    )


@pytest.fixture()
def small_shield_config() -> ShieldConfig:
    return make_small_shield_config()


@pytest.fixture()
def provisioned_shield(small_shield_config):
    """A board + provisioned Shield + Data Owner trio for datapath tests."""
    return build_test_shield(small_shield_config)
