"""Simulation harness and experiment-reproduction tests.

The assertions here encode the *shape* of the paper's evaluation: which
configuration wins, roughly by how much, and where the crossovers fall --
exactly what EXPERIMENTS.md records against the paper's absolute numbers.
"""

import pytest

from repro.sim.experiments import (
    ablation_buffer_size,
    ablation_chunk_size,
    ablation_replay_protection,
    boot_latency_experiment,
    figure5_experiment,
    figure6_experiment,
    matmul_companion_experiment,
    table1_experiment,
    table2_experiment,
    table3_experiment,
)
from repro.sim.reporting import format_table, render_experiment
from repro.sim.results import ExperimentResult, TimingRecord
from repro.sim.simulator import TimingSimulator
from repro.accelerators.vector_add import VectorAddAccelerator


def rows_by(result: ExperimentResult, key: str) -> dict:
    return {row[key]: row for row in result.rows}


def test_timing_record_properties():
    record = TimingRecord("w", "cfg", baseline_cycles=100.0, shielded_cycles=150.0)
    assert record.normalized_time == pytest.approx(1.5)
    assert record.overhead_percent == pytest.approx(50.0)


def test_timing_simulator_sweep():
    accelerator = VectorAddAccelerator()
    config = accelerator.build_shield_config()
    simulator = TimingSimulator()
    records = simulator.sweep(
        [(accelerator.profile(vector_bytes=64 * 1024), config, "run")] * 2
    )
    assert len(records) == 2 and records[0].normalized_time == records[1].normalized_time


def test_boot_latency_reproduces_section_61():
    result = boot_latency_experiment()
    total = result.metadata["total_seconds"]
    # Paper: ~5.1 s, small compared to ~40 s VM boot + ~6.2 s bitstream load.
    assert 4.0 <= total <= 6.5
    assert total < result.metadata["vm_boot_reference_seconds"]
    assert {row["phase"] for row in result.rows} >= {"boot_rom", "firmware"}


def test_table1_reproduces_component_costs():
    rows = rows_by(table1_experiment(), "component")
    assert rows["controller"]["lut"] == 2348
    assert rows["hmac"]["lut"] == 3926
    assert rows["pmac"]["lut"] < rows["hmac"]["lut"]
    assert all(row["lut_percent"] < 1.0 for row in rows.values())


def test_figure5_shape():
    result = figure5_experiment()
    by_config = {}
    for row in result.rows:
        by_config.setdefault(row["configuration"], []).append(row)
    for series in by_config.values():
        series.sort(key=lambda r: r["input_kb"])
        values = [r["normalized_time"] for r in series]
        # Overhead grows with vector size (init-dominated -> throughput-bound).
        assert values == sorted(values)
        assert values[0] < 1.3
    largest_4x = by_config["AES/4x"][-1]["normalized_time"]
    largest_16x = by_config["AES/16x"][-1]["normalized_time"]
    # AES/16x stays under 1.5x at every size; AES/4x is markedly worse.
    assert all(row["normalized_time"] < 1.5 for row in by_config["AES/16x"])
    assert largest_4x > 2.0
    assert largest_4x > 1.5 * largest_16x


def test_matmul_companion_is_mild():
    result = matmul_companion_experiment()
    rows = rows_by(result, "configuration")
    # Paper: at most ~1.26x for AES/4x because compute hides the crypto.
    assert rows["AES/4x"]["normalized_time"] < 1.5
    assert rows["AES/16x"]["normalized_time"] < rows["AES/4x"]["normalized_time"]


def test_table2_shape():
    result = table2_experiment()
    rows = {row["design"]: row["overhead_percent"] for row in result.rows}
    # HMAC-bound designs are ~300%, independent of AES S-box parallelism.
    assert 200 <= rows["4x Eng / 4x / HMAC"] <= 450
    assert abs(rows["4x Eng / 4x / HMAC"] - rows["4x Eng / 16x / HMAC"]) < 10
    # Swapping in PMAC removes the authentication bottleneck.
    assert rows["4x Eng / 16x / PMAC"] < 0.5 * rows["4x Eng / 16x / HMAC"]
    # Scaling engines saturates: 8x and 16x designs are equal and small.
    assert rows["8x Eng / 16x / PMAC"] == pytest.approx(rows["16x Eng / 16x / PMAC"])
    assert rows["8x Eng / 16x / PMAC"] <= 40
    # Monotonically non-increasing down the table, as in the paper.
    ordered = [rows[d] for d in (
        "4x Eng / 4x / HMAC", "4x Eng / 16x / HMAC", "4x Eng / 16x / PMAC",
        "8x Eng / 16x / PMAC", "16x Eng / 16x / PMAC",
    )]
    assert all(a >= b - 1e-9 for a, b in zip(ordered, ordered[1:]))


def test_figure6_shape():
    result = figure6_experiment()
    table = {}
    for row in result.rows:
        table.setdefault(row["workload"], {})[row["configuration"]] = row["normalized_time"]

    # Bitcoin (register-only) is essentially free to shield.
    assert all(value <= 1.05 for value in table["bitcoin"].values())
    # Convolution (batched streaming, lots of compute) has the smallest
    # memory-workload overheads at 16x parallelism.
    assert table["convolution"]["AES-128/16x"] < 1.5
    # DNNWeaver is the most expensive workload, as in the paper.
    for workload in ("convolution", "digit_recognition", "affine"):
        assert table["dnnweaver"]["AES-128/16x"] > table[workload]["AES-128/16x"]
    assert table["dnnweaver"]["AES-128/16x"] > 2.5
    # The PMAC substitution recovers a large part of the DNNWeaver overhead.
    assert table["dnnweaver"]["AES-128/16x-PMAC"] < 0.75 * table["dnnweaver"]["AES-128/16x"]
    # Lower S-box parallelism never helps.
    for workload, configs in table.items():
        assert configs["AES-128/4x"] >= configs["AES-128/16x"] - 1e-9
        assert configs["AES-256/4x"] >= configs["AES-256/16x"] - 1e-9
    # Digit recognition and affine sit between convolution and DNNWeaver at 16x.
    assert (
        table["convolution"]["AES-128/16x"]
        < table["digit_recognition"]["AES-128/4x"]
        < table["dnnweaver"]["AES-128/4x"] + 3
    )


def test_table3_shape():
    result = table3_experiment()
    rows = rows_by(result, "workload")
    # All Shields cost single-digit-to-low-teens percent of the device.
    for row in rows.values():
        assert row["lut_percent"] < 15
        assert row["reg_percent"] < 10
        assert row["bram_percent"] < 10
    # Bitcoin (register interface only) is by far the cheapest.
    assert rows["bitcoin"]["lut_percent"] < rows["digit_recognition"]["lut_percent"]
    assert rows["bitcoin"]["lut_percent"] < 2
    assert rows["bitcoin"]["bram_percent"] == 0
    # Convolution (12 engine sets) is among the most expensive.
    assert rows["convolution"]["lut_percent"] >= rows["dnnweaver"]["lut_percent"]


def test_ablation_replay_protection():
    result = ablation_replay_protection(num_chunks=4096)
    rows = rows_by(result, "scheme")
    assert rows["shef_counters"]["extra_dram_bytes_per_access"] == 0.0
    assert rows["merkle_arity_8"]["extra_dram_bytes_per_access"] > 0
    # The counters pay with on-chip storage instead.
    assert rows["shef_counters"]["on_chip_bytes"] > rows["merkle_arity_8"]["on_chip_bytes"]


def test_ablation_chunk_size_has_interior_optimum_or_monotone_tradeoff():
    result = ablation_chunk_size()
    values = [row["normalized_time"] for row in result.rows]
    assert len(values) == 6
    assert all(v >= 1.0 for v in values)


def test_ablation_buffer_size_monotone_improvement():
    result = ablation_buffer_size()
    values = [row["normalized_time"] for row in result.rows]
    assert values[0] >= values[-1]


def test_reporting_renders_tables():
    result = table2_experiment()
    text = render_experiment(result)
    assert "table-2" in text and "overhead_percent" in text
    assert format_table([]) == "(no rows)"
    assert "design" in format_table(result.rows)
