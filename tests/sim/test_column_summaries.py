"""Column summaries on experiment results: one percentile implementation.

The percentile math behind :meth:`ExperimentResult.summarize_column`,
``render_column_summaries``, and the simulator's ``wait_p50_s``/``wait_p99_s``
metadata is :mod:`repro.obs.stats` -- the same module the metrics histograms
and ``trace-report`` use, so every surface answers edge cases identically.
"""

from __future__ import annotations

from repro.obs.stats import percentile
from repro.sim.cloud import CloudSimulator, repeated_tenant_trace
from repro.sim.reporting import render_column_summaries
from repro.sim.results import ExperimentResult


def _result() -> ExperimentResult:
    result = ExperimentResult(experiment_id="t", description="test")
    result.add_row(wait_s=1.0, tenant="alice", warm=False)
    result.add_row(wait_s=3.0, tenant="alice", warm=True)
    result.add_row(tenant="bob")  # missing column: skipped
    return result


def test_summarize_column_skips_missing_and_non_numeric():
    summary = _result().summarize_column("wait_s")
    assert summary["count"] == 2
    assert summary["mean"] == 2.0
    assert summary["p50"] == 2.0
    # Strings and booleans are not numbers for this purpose.
    assert _result().summarize_column("tenant")["count"] == 0
    assert _result().summarize_column("warm")["count"] == 0
    assert _result().summarize_column("absent")["count"] == 0


def test_summarize_column_matches_shared_percentile_math():
    result = ExperimentResult(experiment_id="t", description="test")
    values = [float(v) for v in (9, 1, 5, 7, 3)]
    for value in values:
        result.add_row(wait_s=value)
    summary = result.summarize_column("wait_s")
    assert summary["p95"] == percentile(values, 95.0)


def test_render_column_summaries_includes_numeric_columns_only():
    text = render_column_summaries(_result(), ["wait_s", "tenant"])
    assert "wait_s" in text
    assert "tenant" not in text
    assert render_column_summaries(_result(), ["tenant"]) == "(no numeric columns)"


def test_replay_experiment_metadata_carries_wait_percentiles():
    trace = repeated_tenant_trace(num_jobs=6)
    result = CloudSimulator(num_boards=2).replay_experiment(trace)
    waits = [row["wait_s"] for row in result.rows]
    assert result.metadata["wait_p50_s"] == round(percentile(waits, 50.0), 3)
    assert result.metadata["wait_p99_s"] == round(percentile(waits, 99.0), 3)
    assert result.summarize_column("wait_s")["count"] == 6
