"""The observability CLI surface: ``--trace``/``--metrics`` flags and
``trace-report``, exercised end-to-end through :func:`repro.cli.main`."""

from __future__ import annotations

import io
import json

from repro.cli import main
from repro.obs import LIFECYCLE_STAGES
from repro.obs.exporters import read_jsonl, validate_event


def test_cloud_trace_writes_schema_valid_jsonl_covering_the_lifecycle(tmp_path):
    trace_path = tmp_path / "out.jsonl"
    out = io.StringIO()
    args = [
        "cloud-trace", "--repeated-tenant", "--jobs", "4",
        "--trace", str(trace_path),
    ]
    assert main(args, out=out) == 0
    assert f"event(s) to {trace_path}" in out.getvalue()

    # Strict read re-validates every line; every lifecycle stage is present.
    events = read_jsonl(trace_path)
    assert events
    for line in trace_path.read_text().splitlines():
        assert validate_event(json.loads(line)) == []
    names = {event.name for event in events}
    assert set(LIFECYCLE_STAGES) <= names
    jobs = [e for e in events if e.kind == "span" and e.name == "job"]
    assert len(jobs) == 4


def test_trace_report_renders_stage_and_tenant_tables(tmp_path):
    trace_path = tmp_path / "out.jsonl"
    assert main(
        ["cloud-trace", "--jobs", "2", "--trace", str(trace_path)],
        out=io.StringIO(),
    ) == 0
    out = io.StringIO()
    assert main(["trace-report", str(trace_path)], out=out) == 0
    text = out.getvalue()
    assert "per-stage latency (seconds):" in text
    assert "per-tenant totals:" in text
    assert "p50_s" in text and "p99_s" in text
    assert "execute" in text


def test_trace_report_rejects_missing_and_malformed_files(tmp_path):
    err = io.StringIO()
    assert main(["trace-report", str(tmp_path / "nope.jsonl")], out=err) == 2
    bad = tmp_path / "bad.jsonl"
    bad.write_text('{"kind": "span"}\n')
    err = io.StringIO()
    assert main(["trace-report", str(bad)], out=err) == 2


def test_cloud_demo_exports_chrome_trace_and_metrics(tmp_path):
    chrome_path = tmp_path / "trace.json"
    metrics_path = tmp_path / "metrics.prom"
    out = io.StringIO()
    args = [
        "cloud-demo",
        "--chrome-trace", str(chrome_path),
        "--metrics", str(metrics_path),
    ]
    assert main(args, out=out) == 0
    chrome = json.loads(chrome_path.read_text())
    assert chrome["traceEvents"]
    phases = {entry["ph"] for entry in chrome["traceEvents"]}
    assert "X" in phases  # spans became complete events
    metrics_text = metrics_path.read_text()
    assert "cloud_jobs_completed_total" in metrics_text
    assert "cloud_stage_seconds" in metrics_text
