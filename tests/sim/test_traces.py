"""The synthetic trace generator: determinism, arrival statistics, structure."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.sim.traces import (
    ARRIVAL_PROCESSES,
    default_profile_pool,
    generate_trace,
)

JOBS = 5000


@pytest.mark.parametrize("arrival", ARRIVAL_PROCESSES)
def test_same_seed_same_trace(arrival):
    pool = default_profile_pool()
    first = generate_trace(200, seed=5, arrival=arrival, profile_pool=pool)
    second = generate_trace(200, seed=5, arrival=arrival, profile_pool=pool)
    assert [
        (e.arrival_s, e.tenant, e.session, e.priority, e.weight) for e in first
    ] == [
        (e.arrival_s, e.tenant, e.session, e.priority, e.weight) for e in second
    ]


@pytest.mark.parametrize("arrival", ARRIVAL_PROCESSES)
def test_arrivals_are_monotone_and_match_mean_rate(arrival):
    trace = generate_trace(JOBS, seed=1, arrival=arrival, rate_jobs_per_s=50.0)
    times = [event.arrival_s for event in trace]
    assert times == sorted(times)
    assert times[0] > 0.0
    # Every process is normalized to the same mean rate; the heavy tail has
    # infinite variance, so its tolerance is the loosest.
    mean_rate = JOBS / times[-1]
    tolerance = 0.5 if arrival == "heavy_tailed" else 0.15
    assert abs(mean_rate - 50.0) <= 50.0 * tolerance, (
        f"{arrival}: mean rate {mean_rate:.1f} jobs/s, expected ~50"
    )


def test_heavy_tail_is_burstier_than_poisson():
    """The Pareto process must show a heavier inter-arrival tail than the
    exponential at the same mean rate (that is its entire purpose)."""
    def max_gap(arrival):
        trace = generate_trace(JOBS, seed=2, arrival=arrival,
                               rate_jobs_per_s=50.0)
        times = [event.arrival_s for event in trace]
        return max(b - a for a, b in zip(times, times[1:]))

    assert max_gap("heavy_tailed") > 3.0 * max_gap("poisson")


def test_zipf_tenant_popularity_is_skewed():
    trace = generate_trace(JOBS, seed=4, num_tenants=50, zipf_s=1.1)
    counts: dict = {}
    for event in trace:
        counts[event.tenant] = counts.get(event.tenant, 0) + 1
    ranked = sorted(counts.values(), reverse=True)
    # Head tenant far above uniform share; a long tail exists.
    assert ranked[0] > 3 * (JOBS / 50)
    assert len(counts) > 25


def test_sessions_repeat_within_tenants_and_metadata_varies():
    trace = generate_trace(2000, seed=6, num_tenants=20, sessions_per_tenant=3)
    sessions = {event.session for event in trace}
    assert len(sessions) <= 20 * 3
    # Sessions recur (warm affinity has something to hit) ...
    assert len(sessions) < 2000
    # ... sessions belong to their tenant ...
    assert all(event.session.startswith(event.tenant) for event in trace)
    # ... and the scheduling metadata actually differentiates policies.
    assert len({event.priority for event in trace}) > 1
    assert len({event.weight for event in trace}) > 1
    assert len({id(event.profile) for event in trace}) > 1


def test_generator_rejects_bad_parameters():
    with pytest.raises(SimulationError):
        generate_trace(0)
    with pytest.raises(SimulationError):
        generate_trace(10, arrival="lunar")
    with pytest.raises(SimulationError):
        generate_trace(10, rate_jobs_per_s=0.0)
    with pytest.raises(SimulationError):
        generate_trace(10, arrival="diurnal", diurnal_amplitude=1.0)
