"""CloudSimulator: replaying mixed multi-tenant traces through the timing model."""

from __future__ import annotations

import pytest

from repro.sim.cloud import (
    CloudSimulator,
    TraceEvent,
    cloud_trace_experiment,
    default_mixed_trace,
    repeated_tenant_trace,
)
from repro.errors import SimulationError


def test_default_trace_is_mixed_and_deterministic():
    trace = default_mixed_trace()
    assert len(trace) == 9
    assert {event.tenant for event in trace} == {
        "tenant-vadd", "tenant-matmul", "tenant-affine",
    }
    assert trace == default_mixed_trace()


def test_replay_respects_fifo_and_board_capacity():
    trace = default_mixed_trace(jobs_per_tenant=2, arrival_gap_s=0.0)
    simulator = CloudSimulator(num_boards=2)
    records = simulator.replay(trace)
    assert len(records) == len(trace)
    # No board runs two jobs at once.
    for board in range(2):
        spans = sorted(
            (r.start_s, r.finish_s) for r in records if r.board == board
        )
        for (_, earlier_end), (later_start, _) in zip(spans, spans[1:]):
            assert later_start >= earlier_end
    # All six jobs arrive at t=0; with two boards, four of them must wait.
    assert sum(1 for r in records if r.wait_s > 0) >= 4


def test_more_boards_reduce_makespan():
    trace = default_mixed_trace(jobs_per_tenant=2, arrival_gap_s=0.0)
    makespan = {
        boards: max(r.finish_s for r in CloudSimulator(num_boards=boards).replay(trace))
        for boards in (1, 2, 4)
    }
    assert makespan[1] > makespan[2] > makespan[4]


def test_replay_experiment_rows_and_metadata():
    result = cloud_trace_experiment(num_boards=2)
    assert result.experiment_id == "cloud-trace"
    assert len(result.rows) == 9
    assert 0.0 < result.metadata["board_utilization"] <= 1.0
    assert result.metadata["makespan_s"] > 0
    for row in result.rows:
        assert row["service_s"] > 0
        assert row["turnaround_s"] >= row["service_s"]


def test_empty_trace_and_empty_fleet_are_rejected():
    simulator = CloudSimulator(num_boards=1)
    with pytest.raises(SimulationError):
        simulator.replay_experiment([])
    with pytest.raises(SimulationError):
        CloudSimulator(num_boards=0)


def test_service_time_includes_shield_load_cost():
    event = default_mixed_trace()[0]
    with_load = CloudSimulator(num_boards=1, shield_load_seconds=6.2)
    without_load = CloudSimulator(num_boards=1, shield_load_seconds=0.0)
    difference = with_load.service_seconds(event) - without_load.service_seconds(event)
    assert difference == pytest.approx(6.2)
    # A warm hit prices the load at zero.
    assert with_load.service_seconds(event, warm=True) == pytest.approx(
        with_load.execution_seconds(event)
    )


# ---------------------------------------------------------------------------
# Warm-board affinity in the timed model
# ---------------------------------------------------------------------------


def test_affinity_cuts_repeated_tenant_makespan():
    """The acceptance gate: a repeated-tenant trace pays one Shield load per
    board with affinity instead of one per job, so makespan must drop."""
    trace = repeated_tenant_trace(num_jobs=8)
    warm = CloudSimulator(num_boards=2, affinity=True).replay_experiment(trace)
    cold = CloudSimulator(num_boards=2, affinity=False).replay_experiment(trace)
    assert warm.metadata["makespan_s"] < cold.metadata["makespan_s"]
    # One cold load per board touched; everything else is a warm hit.
    assert warm.metadata["shield_loads"] <= 2
    assert warm.metadata["affinity_hits"] == len(trace) - warm.metadata["shield_loads"]
    assert cold.metadata["affinity_hits"] == 0
    # N x 6.2 s of reconfiguration collapsed to (at most) one per board.
    saved = 6.2 * (cold.metadata["shield_loads"] - warm.metadata["shield_loads"])
    assert cold.metadata["makespan_s"] - warm.metadata["makespan_s"] == pytest.approx(
        saved, rel=0.5
    )


def test_warm_records_pay_zero_load():
    records = CloudSimulator(num_boards=1, affinity=True).replay(
        repeated_tenant_trace(num_jobs=4)
    )
    assert [r.warm for r in records] == [False, True, True, True]
    assert records[0].load_s == pytest.approx(6.2)
    assert all(r.load_s == 0.0 for r in records[1:])
    # Same board throughout: affinity pinned the session.
    assert {r.board for r in records} == {0}


def test_affinity_never_crosses_sessions():
    """Interleaved tenants on one board: a board warmed by tenant A is never
    a warm hit for tenant B."""
    records = CloudSimulator(num_boards=1, affinity=True).replay(
        default_mixed_trace(jobs_per_tenant=2, arrival_gap_s=0.0)
    )
    previous = None
    for record in records:
        if record.warm:
            assert record.tenant == previous
        previous = record.tenant


# ---------------------------------------------------------------------------
# The policy zoo drives the timed replay
# ---------------------------------------------------------------------------


def _uniform_trace(specs):
    """Events sharing one workload (uniform cost) with varied metadata."""
    base = default_mixed_trace()[0]
    return [
        TraceEvent(
            arrival_s=arrival,
            tenant=tenant,
            profile=base.profile,
            shield_config=base.shield_config,
            priority=priority,
        )
        for arrival, tenant, priority in specs
    ]


def test_priority_policy_jumps_the_queue():
    trace = _uniform_trace(
        [(0.0, "low-a", 0), (0.0, "low-b", 0), (0.0, "vip", 9)]
    )
    records = CloudSimulator(num_boards=1, policy="priority", affinity=False).replay(trace)
    assert [r.tenant for r in records] == ["vip", "low-a", "low-b"]
    fifo = CloudSimulator(num_boards=1, policy="fifo", affinity=False).replay(trace)
    assert [r.tenant for r in fifo] == ["low-a", "low-b", "vip"]


def test_fair_share_interleaves_a_flooding_tenant():
    trace = _uniform_trace(
        [(0.0, "hog", 0)] * 3 + [(0.0, "meek", 0)] * 2
    )
    records = CloudSimulator(num_boards=1, policy="fair", affinity=False).replay(trace)
    assert [r.tenant for r in records] == ["hog", "meek", "hog", "meek", "hog"]


def test_sjf_reduces_mean_wait_on_skewed_traces():
    """One long job ahead of several short ones: SJF must beat FIFO on mean
    wait (the textbook convoy effect)."""
    base = default_mixed_trace()
    # Zero load cost isolates the ordering effect; pick the actually-longest
    # and actually-shortest workloads by their modelled execution time.
    probe = CloudSimulator(num_boards=1, shield_load_seconds=0.0)
    by_cost = sorted(base[:3], key=probe.execution_seconds)
    short_event, long_event = by_cost[0], by_cost[-1]
    assert probe.execution_seconds(long_event) > 2 * probe.execution_seconds(short_event)
    trace = [
        TraceEvent(0.0, "long", long_event.profile, long_event.shield_config)
    ] + [
        TraceEvent(0.0, f"short-{i}", short_event.profile, short_event.shield_config)
        for i in range(3)
    ]
    sjf = CloudSimulator(
        num_boards=1, policy="sjf", affinity=False, shield_load_seconds=0.0
    ).replay(trace)
    fifo = CloudSimulator(
        num_boards=1, policy="fifo", affinity=False, shield_load_seconds=0.0
    ).replay(trace)

    def mean_wait(records):
        return sum(r.wait_s for r in records) / len(records)

    assert mean_wait(sjf) < mean_wait(fifo)
    # The long job runs last under SJF.
    assert sjf[-1].tenant == "long"


def test_experiment_metadata_reports_policy_and_fairness():
    result = CloudSimulator(num_boards=2, policy="fair").replay_experiment(
        default_mixed_trace()
    )
    meta = result.metadata
    assert meta["policy"] == "fair"
    assert meta["affinity"] is True
    assert meta["shield_loads"] + meta["affinity_hits"] == len(result.rows)
    shares = [entry["service_share"] for entry in meta["tenant_fairness"].values()]
    assert sum(shares) == pytest.approx(1.0, abs=0.01)
    for row in result.rows:
        assert row["load_s"] in (0.0, pytest.approx(6.2))
        assert row["service_s"] >= row["load_s"]
