"""CloudSimulator: replaying mixed multi-tenant traces through the timing model."""

from __future__ import annotations

import pytest

from repro.sim.cloud import (
    CloudSimulator,
    TraceEvent,
    cloud_trace_experiment,
    default_mixed_trace,
)
from repro.errors import SimulationError


def test_default_trace_is_mixed_and_deterministic():
    trace = default_mixed_trace()
    assert len(trace) == 9
    assert {event.tenant for event in trace} == {
        "tenant-vadd", "tenant-matmul", "tenant-affine",
    }
    assert trace == default_mixed_trace()


def test_replay_respects_fifo_and_board_capacity():
    trace = default_mixed_trace(jobs_per_tenant=2, arrival_gap_s=0.0)
    simulator = CloudSimulator(num_boards=2)
    records = simulator.replay(trace)
    assert len(records) == len(trace)
    # No board runs two jobs at once.
    for board in range(2):
        spans = sorted(
            (r.start_s, r.finish_s) for r in records if r.board == board
        )
        for (_, earlier_end), (later_start, _) in zip(spans, spans[1:]):
            assert later_start >= earlier_end
    # All six jobs arrive at t=0; with two boards, four of them must wait.
    assert sum(1 for r in records if r.wait_s > 0) >= 4


def test_more_boards_reduce_makespan():
    trace = default_mixed_trace(jobs_per_tenant=2, arrival_gap_s=0.0)
    makespan = {
        boards: max(r.finish_s for r in CloudSimulator(num_boards=boards).replay(trace))
        for boards in (1, 2, 4)
    }
    assert makespan[1] > makespan[2] > makespan[4]


def test_replay_experiment_rows_and_metadata():
    result = cloud_trace_experiment(num_boards=2)
    assert result.experiment_id == "cloud-trace"
    assert len(result.rows) == 9
    assert 0.0 < result.metadata["board_utilization"] <= 1.0
    assert result.metadata["makespan_s"] > 0
    for row in result.rows:
        assert row["service_s"] > 0
        assert row["turnaround_s"] >= row["service_s"]


def test_empty_trace_and_empty_fleet_are_rejected():
    simulator = CloudSimulator(num_boards=1)
    with pytest.raises(SimulationError):
        simulator.replay_experiment([])
    with pytest.raises(SimulationError):
        CloudSimulator(num_boards=0)


def test_service_time_includes_shield_load_cost():
    event = default_mixed_trace()[0]
    with_load = CloudSimulator(num_boards=1, shield_load_seconds=6.2)
    without_load = CloudSimulator(num_boards=1, shield_load_seconds=0.0)
    difference = with_load.service_seconds(event) - without_load.service_seconds(event)
    assert difference == pytest.approx(6.2)
