"""CSV/JSON export and command-line interface tests."""

import io
import json

import pytest

from repro.cli import EXPERIMENTS, main
from repro.sim.experiments import table1_experiment, table2_experiment
from repro.sim.export import experiment_to_csv, experiment_to_json, write_experiment
from repro.sim.results import ExperimentResult


def test_experiment_to_csv_roundtrip():
    csv_text = experiment_to_csv(table2_experiment())
    lines = csv_text.strip().splitlines()
    assert lines[0].startswith("design,")
    assert len(lines) == 6  # header + five designs


def test_experiment_to_csv_empty():
    assert experiment_to_csv(ExperimentResult("x", "empty")) == ""


def test_experiment_to_json_contains_metadata():
    payload = json.loads(experiment_to_json(table2_experiment()))
    assert payload["experiment_id"] == "table-2"
    assert len(payload["rows"]) == 5
    assert "sdp_area_percent" in payload["metadata"]


def test_write_experiment_csv_and_json(tmp_path):
    result = table1_experiment()
    csv_path = tmp_path / "table1.csv"
    json_path = tmp_path / "table1.json"
    write_experiment(result, str(csv_path))
    write_experiment(result, str(json_path))
    assert csv_path.read_text().startswith("component,")
    assert json.loads(json_path.read_text())["experiment_id"] == "table-1"


def test_cli_registry_covers_all_paper_experiments():
    assert {"table-1", "table-2", "table-3", "figure-5", "figure-6", "section-6.1"} <= set(
        EXPERIMENTS
    )


def test_cli_list_command():
    out = io.StringIO()
    assert main(["list"], out=out) == 0
    text = out.getvalue()
    assert "dnnweaver" in text and "table-2" in text and "aws-f1" in text


def test_cli_cloud_trace_threads_policy_and_affinity():
    warm_out, cold_out = io.StringIO(), io.StringIO()
    warm_args = ["cloud-trace", "--policy", "sjf", "--repeated-tenant", "--jobs", "4"]
    assert main(warm_args, out=warm_out) == 0
    assert main(warm_args + ["--no-affinity"], out=cold_out) == 0
    warm_text, cold_text = warm_out.getvalue(), cold_out.getvalue()
    assert "sjf (affinity on)" in warm_text
    assert "sjf (affinity off)" in cold_text
    # One board fleet default is 2; the repeated tenant warms at most 2 boards
    # while the cold run reloads all 4 jobs.
    assert "shield loads      : 4" in cold_text
    assert "warm hits 0" in cold_text
    assert "warm hits" in warm_text and "warm hits 0" not in warm_text


def test_cli_cloud_trace_rejects_bad_sizes():
    out = io.StringIO()
    assert main(["cloud-trace", "--boards", "0"], out=out) == 2
    assert main(["cloud-trace", "--jobs", "0"], out=out) == 2


def test_cli_runs_single_experiment(tmp_path):
    out = io.StringIO()
    code = main(["experiments", "table-2", "--export-dir", str(tmp_path)], out=out)
    assert code == 0
    assert "overhead_percent" in out.getvalue()
    assert (tmp_path / "table-2.csv").exists()


def test_cli_exports_json(tmp_path):
    out = io.StringIO()
    main(["experiments", "table-1", "--export-dir", str(tmp_path), "--json"], out=out)
    assert json.loads((tmp_path / "table-1.json").read_text())["experiment_id"] == "table-1"


def test_cli_rejects_unknown_experiment():
    with pytest.raises(SystemExit):
        main(["experiments", "figure-42"])
