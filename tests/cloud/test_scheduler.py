"""Scheduling and admission control on the cloud serving layer.

Covers the FleetScheduler contract (policy-driven ordering, longest-idle
placement with warm affinity, release semantics) and the service-level
rules: unprovisioned or closed sessions cannot submit, queued jobs are
cancelled with their session, and a board is reusable by other tenants after
a session tears down.
"""

from __future__ import annotations

import pytest

from repro.accelerators import MatMulAccelerator, VectorAddAccelerator
from repro.cloud import AcceleratorJob, FleetScheduler, JobState, ShieldCloudService
from repro.cloud.tenant import SessionState
from repro.errors import CloudError, SchedulingError


# ---------------------------------------------------------------------------
# FleetScheduler unit behaviour
# ---------------------------------------------------------------------------


def _job(job_id: str, session_id: str = "sess-x") -> AcceleratorJob:
    return AcceleratorJob(job_id=job_id, session_id=session_id)


def test_jobs_run_in_submission_order():
    scheduler = FleetScheduler(["b0"])
    jobs = [_job(f"j{i}") for i in range(4)]
    for job in jobs:
        scheduler.submit(job)
    order = []
    while True:
        placement = scheduler.acquire()
        if placement is None:
            break
        job, board, warm = placement
        order.append(job.job_id)
        scheduler.release(job, completed=True)
    assert order == ["j0", "j1", "j2", "j3"]


def test_placement_rotates_over_free_boards_and_blocks_when_full():
    scheduler = FleetScheduler(["b0", "b1"])
    for i in range(3):
        scheduler.submit(_job(f"j{i}", session_id=f"s{i}"))
    first, board0, _ = scheduler.acquire()
    second, board1, _ = scheduler.acquire()
    assert (board0, board1) == ("b0", "b1")
    assert scheduler.acquire() is None  # fleet saturated, j2 must wait
    scheduler.release(first, completed=True)
    third, board2, warm = scheduler.acquire()
    assert third.job_id == "j2" and board2 == "b0"
    assert not warm  # different session: b0's resident Shield does not match
    assert scheduler.placement_history["b0"] == ["s0", "s2"]


def test_release_requires_running_job():
    scheduler = FleetScheduler(["b0"])
    job = _job("j0")
    with pytest.raises(SchedulingError):
        scheduler.release(job, completed=True)
    scheduler.submit(job)
    running, _, _ = scheduler.acquire()
    assert running is job
    with pytest.raises(SchedulingError):
        scheduler.submit(job)  # a RUNNING job cannot be re-queued


def test_empty_fleet_is_rejected():
    with pytest.raises(SchedulingError):
        FleetScheduler([])


# ---------------------------------------------------------------------------
# Service-level admission control and board reuse
# ---------------------------------------------------------------------------


def test_unknown_session_cannot_submit():
    service = ShieldCloudService(num_boards=1)
    with pytest.raises(CloudError):
        service.submit_job("sess-9999", inputs={})


def test_closed_session_cannot_submit():
    service = ShieldCloudService(num_boards=1, fast_crypto=True)
    accel = VectorAddAccelerator(8 * 1024)
    session = service.admit_tenant("alice", accel)
    service.close_session(session.session_id)
    assert session.state is SessionState.CLOSED
    with pytest.raises(SchedulingError):
        service.submit_job(session.session_id, inputs=accel.prepare_inputs())


def test_closing_a_session_cancels_its_queued_jobs():
    service = ShieldCloudService(num_boards=1, fast_crypto=True)
    accel = VectorAddAccelerator(8 * 1024)
    doomed = service.admit_tenant("doomed", accel)
    survivor = service.admit_tenant("survivor", accel)
    doomed_job = service.submit_job(doomed.session_id, inputs=accel.prepare_inputs(seed=1))
    survivor_job = service.submit_job(
        survivor.session_id, inputs=accel.prepare_inputs(seed=2)
    )
    cancelled = service.close_session(doomed.session_id)
    assert cancelled == [doomed_job]
    # A job that never ran is CANCELLED, not FAILED -- and billed as such.
    assert doomed_job.state is JobState.CANCELLED
    assert "session closed" in doomed_job.error
    assert doomed.usage.jobs_cancelled == 1
    assert doomed.usage.jobs_failed == 0
    assert service.stats.jobs_cancelled == 1
    assert service.stats.jobs_failed == 0
    finished = service.run_until_idle()
    assert finished == [survivor_job]
    assert survivor_job.state is JobState.COMPLETED
    # Job conservation: every submission is accounted for exactly once.
    assert service.stats.jobs_submitted == (
        service.stats.jobs_completed
        + service.stats.jobs_failed
        + service.stats.jobs_cancelled
        + service.stats.jobs_rejected
    )


def test_board_is_reused_after_session_teardown():
    service = ShieldCloudService(num_boards=1, fast_crypto=True)
    accel_a = VectorAddAccelerator(8 * 1024)
    accel_b = MatMulAccelerator(32)

    first = service.admit_tenant("first", accel_a)
    job1 = service.submit_job(first.session_id, inputs=accel_a.prepare_inputs(seed=3))
    service.run_until_idle()
    service.close_session(first.session_id)

    # The same physical board must serve a brand-new tenant cleanly: the
    # previous Shield's on-chip allocations and register port are gone.
    board = service.slots["board-0"].board
    assert board.on_chip_memory.used_bytes == 0

    second = service.admit_tenant("second", accel_b)
    job2 = service.submit_job(second.session_id, inputs=accel_b.prepare_inputs(seed=4))
    service.run_until_idle()

    assert job1.state is JobState.COMPLETED
    assert job2.state is JobState.COMPLETED, job2.error
    assert job1.board_name == job2.board_name == "board-0"
    assert service.slots["board-0"].shield_loads == 2
    assert service.scheduler.placement_history["board-0"] == [
        first.session_id,
        second.session_id,
    ]


def test_same_session_runs_many_jobs_on_one_board():
    service = ShieldCloudService(num_boards=1, fast_crypto=True)
    accel = VectorAddAccelerator(8 * 1024)
    session = service.admit_tenant("looper", accel)
    jobs = [
        service.submit_job(session.session_id, inputs=accel.prepare_inputs(seed=seed))
        for seed in range(3)
    ]
    finished = service.run_until_idle()
    assert [j.job_id for j in finished] == [j.job_id for j in jobs]
    assert all(j.state is JobState.COMPLETED for j in jobs)
    assert session.usage.jobs_completed == 3
    assert len(session.job_stats) == 3


def test_dangling_session_id_still_frees_the_board():
    """Regression: the session lookup in run_next_job happens after the board
    is acquired, so a dangling session id used to leave the job RUNNING and
    the board leaked out of the free pool forever."""
    service = ShieldCloudService(num_boards=1, fast_crypto=True)
    accel = VectorAddAccelerator(8 * 1024)
    session = service.admit_tenant("ghost", accel)
    orphan = service.submit_job(session.session_id, inputs=accel.prepare_inputs(seed=6))
    # Simulate state corruption / an out-of-band teardown losing the session.
    del service.sessions[session.session_id]

    job = service.run_next_job()
    assert job is orphan
    assert job.state is JobState.FAILED
    assert "no session" in (job.error or "")
    assert service.stats.jobs_failed == 1
    assert service.scheduler.free_boards == 1

    # The freed board serves the next tenant normally.
    other = service.admit_tenant("alive", accel)
    ok = service.submit_job(other.session_id, inputs=accel.prepare_inputs(seed=7))
    service.run_until_idle()
    assert ok.state is JobState.COMPLETED, ok.error


def test_failed_job_frees_the_board():
    service = ShieldCloudService(num_boards=1, fast_crypto=True)
    accel = VectorAddAccelerator(8 * 1024)
    session = service.admit_tenant("fumble", accel)
    # Garbage input region name makes sealing fail inside job execution.
    bad = service.submit_job(session.session_id, inputs={"no-such-region": b"x"})
    good = service.submit_job(session.session_id, inputs=accel.prepare_inputs(seed=9))
    service.run_until_idle()
    assert bad.state is JobState.FAILED
    assert bad.error
    assert good.state is JobState.COMPLETED, good.error
    assert session.usage.jobs_failed == 1
    assert session.usage.jobs_completed == 1
    assert service.scheduler.free_boards == 1
