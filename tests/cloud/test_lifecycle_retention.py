"""Job-lifecycle hygiene: no state leaks, bounded retention, cheap cancels.

Regression coverage for the PR 7 bug sweep:

* ``_submit_ts`` used to leak an entry for every cancelled job (the pop only
  happened when a job was *placed*);
* ``ShieldCloudService.jobs`` retained every terminal job forever -- it now
  holds live jobs only, with terminal jobs moving to a bounded retention
  ring and exact lifetime totals living in the metrics registry;
* ``FleetScheduler.cancel_session_jobs`` rebuilt the queue once per
  cancelled job (quadratic); it is now a single-pass rebuild shared with
  ``cancel_queued``.

The property-style tests drive random submit/reject/cancel/fail/complete
mixes through both the sync drain and the async front-end and assert the
lifecycle invariants that make a long-lived service possible.
"""

from __future__ import annotations

import asyncio
import random

import pytest

import repro.obs as obs_api
from repro.accelerators import VectorAddAccelerator
from repro.cloud import FleetScheduler, JobState, ShieldCloudService
from repro.cloud.scheduler import AcceleratorJob
from repro.errors import CloudError
from repro.serve import AsyncShieldFrontend

ACCEL_BYTES = 8 * 1024

TERMINAL = (
    JobState.COMPLETED,
    JobState.FAILED,
    JobState.CANCELLED,
    JobState.REJECTED,
)


def _service(**kwargs):
    kwargs.setdefault("num_boards", 2)
    kwargs.setdefault("fast_crypto", True)
    return ShieldCloudService(**kwargs)


def _assert_lifecycle_invariants(service, num_boards: int) -> None:
    """The invariants a drained fleet must satisfy after ANY workload mix."""
    # 1. No submit-timestamp residue: every queued job was either placed
    #    (popped at placement) or cancelled (popped at cancellation).
    assert service._submit_ts == {}
    # 2. The live-job map holds no terminal jobs -- after a drain it is empty.
    assert service.jobs == {}
    for job in service.terminal_jobs:
        assert job.state in TERMINAL
    # 3. The board free pool is conserved: nothing leaked out of rotation.
    assert service.scheduler.free_boards == num_boards
    # 4. Job-count conservation: every submission is accounted exactly once.
    stats = service.stats
    assert stats.jobs_submitted == (
        stats.jobs_completed
        + stats.jobs_failed
        + stats.jobs_cancelled
        + stats.jobs_rejected
    )
    # 5. The retention ring is bounded (and the overflow was counted).
    if service.job_retention is not None:
        assert len(service.terminal_jobs) <= service.job_retention
        terminal_total = (
            stats.jobs_completed
            + stats.jobs_failed
            + stats.jobs_cancelled
            + stats.jobs_rejected
        )
        assert stats.jobs_retired == max(
            0, terminal_total - len(service.terminal_jobs) - len(service.jobs)
        )


# ---------------------------------------------------------------------------
# The cancelled-job _submit_ts leak
# ---------------------------------------------------------------------------


def test_cancelled_job_pops_submit_timestamp_and_emits_queue_span():
    with obs_api.scoped() as handle:
        service = _service(num_boards=1)
        accel = VectorAddAccelerator(ACCEL_BYTES)
        session = service.admit_tenant("alice", accel)
        doomed = service.submit_job(
            session.session_id, inputs=accel.prepare_inputs(seed=0)
        )
        assert doomed.job_id in service._submit_ts
        service.close_session(session.session_id)
        assert doomed.state is JobState.CANCELLED
        # The leak: this entry used to stay forever.
        assert service._submit_ts == {}
        # The queue span is still emitted -- with a cancelled outcome -- so
        # queue-wait percentiles account for work that never ran.
        queue_spans = handle.tracer.spans("queue")
        assert len(queue_spans) == 1
        assert queue_spans[0].job == doomed.job_id
        assert queue_spans[0].attrs["outcome"] == "cancelled"


def test_drain_cancel_clears_submit_timestamps():
    service = _service(num_boards=1)
    accel = VectorAddAccelerator(ACCEL_BYTES)
    session = service.admit_tenant("alice", accel)
    jobs = [
        service.submit_job(session.session_id, inputs=accel.prepare_inputs(seed=seed))
        for seed in range(3)
    ]
    cancelled = service.cancel_queued_jobs(reason="maintenance window")
    assert cancelled == jobs
    assert all(job.state is JobState.CANCELLED for job in jobs)
    assert all("maintenance window" in job.error for job in jobs)
    assert service._submit_ts == {}
    assert service.stats.jobs_cancelled == 3


# ---------------------------------------------------------------------------
# Bounded terminal-job retention
# ---------------------------------------------------------------------------


def test_terminal_jobs_leave_the_live_map_for_the_retention_ring():
    service = _service(num_boards=1, job_retention=2)
    accel = VectorAddAccelerator(ACCEL_BYTES)
    session = service.admit_tenant("alice", accel)
    jobs = [
        service.submit_job(session.session_id, inputs=accel.prepare_inputs(seed=seed))
        for seed in range(4)
    ]
    service.run_until_idle()
    # Live map empty; ring keeps only the 2 most recent terminal jobs.
    assert service.jobs == {}
    retained = [job.job_id for job in service.terminal_jobs]
    assert retained == [jobs[2].job_id, jobs[3].job_id]
    assert service.stats.jobs_retired == 2
    # Exact lifetime totals survive the ring (mirroring placement_totals).
    assert service.stats.jobs_completed == 4
    # job_result: retained jobs resolve, evicted ones are gone.
    assert service.job_result(jobs[3].job_id, "alice") is jobs[3]
    with pytest.raises(CloudError):
        service.job_result(jobs[0].job_id, "alice")


def test_unbounded_retention_keeps_everything():
    service = _service(num_boards=1, job_retention=None)
    accel = VectorAddAccelerator(ACCEL_BYTES)
    session = service.admit_tenant("alice", accel)
    for seed in range(3):
        service.submit_job(session.session_id, inputs=accel.prepare_inputs(seed=seed))
    service.run_until_idle()
    assert len(service.terminal_jobs) == 3
    assert service.stats.jobs_retired == 0


def test_invalid_retention_is_rejected():
    with pytest.raises(CloudError):
        _service(job_retention=0)
    with pytest.raises(CloudError):
        _service(job_retention=-5)


def test_rejected_jobs_are_retained_not_live():
    service = _service(num_boards=1, queue_cap=1)
    accel = VectorAddAccelerator(ACCEL_BYTES)
    session = service.admit_tenant("alice", accel)
    service.submit_job(session.session_id, inputs=accel.prepare_inputs(seed=0))
    rejected = service.submit_job(
        session.session_id, inputs=accel.prepare_inputs(seed=1)
    )
    assert rejected.state is JobState.REJECTED
    assert rejected.job_id not in service.jobs
    assert rejected in service.terminal_jobs
    service.run_until_idle()
    _assert_lifecycle_invariants(service, num_boards=1)


# ---------------------------------------------------------------------------
# Single-pass queue cancellation
# ---------------------------------------------------------------------------


def test_cancel_queued_is_a_single_pass_rebuild():
    scheduler = FleetScheduler(["b0"])
    jobs = [
        AcceleratorJob(job_id=f"j{i}", session_id=f"s{i % 2}") for i in range(6)
    ]
    for job in jobs:
        scheduler.submit(job)
    cancelled = scheduler.cancel_session_jobs("s0")
    assert [job.job_id for job in cancelled] == ["j0", "j2", "j4"]
    assert all(job.state is JobState.CANCELLED for job in cancelled)
    assert scheduler.pending_jobs == 3
    # Survivors keep their relative order.
    order = []
    while True:
        placement = scheduler.acquire()
        if placement is None:
            break
        job, _, _ = placement
        order.append(job.job_id)
        scheduler.release(job, completed=True)
    assert order == ["j1", "j3", "j5"]


def test_cancel_queued_without_predicate_empties_the_queue():
    scheduler = FleetScheduler(["b0"])
    for i in range(4):
        scheduler.submit(AcceleratorJob(job_id=f"j{i}", session_id="s"))
    cancelled = scheduler.cancel_queued()
    assert len(cancelled) == 4
    assert scheduler.pending_jobs == 0


# ---------------------------------------------------------------------------
# Property-style random lifecycle mixes (sync and async paths)
# ---------------------------------------------------------------------------

NUM_BOARDS = 2


def _random_inputs(accel, rng):
    if rng.random() < 0.2:
        return {"no-such-region": b"x"}  # will FAIL during execution
    return accel.prepare_inputs(seed=rng.randrange(1000))


@pytest.mark.parametrize("seed", [1, 42])
def test_random_lifecycle_mix_sync(seed):
    rng = random.Random(seed)
    service = _service(
        num_boards=NUM_BOARDS, queue_cap=4, job_retention=8
    )
    accel = VectorAddAccelerator(ACCEL_BYTES)
    sessions = {
        tenant: service.admit_tenant(tenant, accel)
        for tenant in ("alice", "bob", "carol")
    }
    for _ in range(30):
        action = rng.random()
        tenant = rng.choice(sorted(sessions))
        if action < 0.55:
            # Submit: may be REJECTED by the queue cap, may FAIL later.
            service.submit_job(
                sessions[tenant].session_id, inputs=_random_inputs(accel, rng)
            )
        elif action < 0.75:
            service.run_next_job()
        elif action < 0.9:
            # Close (cancelling queued jobs) and re-admit the tenant.
            service.close_session(sessions[tenant].session_id)
            sessions[tenant] = service.admit_tenant(tenant, accel)
        else:
            service.cancel_queued_jobs(reason="random drain")
    service.run_until_idle()
    _assert_lifecycle_invariants(service, NUM_BOARDS)


@pytest.mark.parametrize("seed", [3, 11])
def test_random_lifecycle_mix_async(seed):
    rng = random.Random(seed)
    service = _service(
        num_boards=NUM_BOARDS, queue_cap=6, job_retention=8
    )
    accel = VectorAddAccelerator(ACCEL_BYTES)

    async def main():
        sessions = {
            tenant: service.admit_tenant(tenant, accel)
            for tenant in ("alice", "bob", "carol")
        }
        async with AsyncShieldFrontend(service, max_pending=5) as frontend:
            futures = []
            for _ in range(24):
                action = rng.random()
                tenant = rng.choice(sorted(sessions))
                if action < 0.7:
                    futures.append(
                        frontend.submit_nowait(
                            sessions[tenant].session_id,
                            inputs=_random_inputs(accel, rng),
                        )
                    )
                elif action < 0.85:
                    await frontend.close_session(sessions[tenant].session_id)
                    sessions[tenant] = service.admit_tenant(tenant, accel)
                else:
                    # Let the fleet make progress so mixes vary.
                    await asyncio.sleep(0)
            jobs = await asyncio.gather(*futures)
        return jobs

    jobs = asyncio.run(main())
    assert all(job.state in TERMINAL for job in jobs)
    _assert_lifecycle_invariants(service, NUM_BOARDS)
