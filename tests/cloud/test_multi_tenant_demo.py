"""The acceptance demo: three concurrent tenants on a shared two-board fleet.

Each tenant runs a *different* accelerator; every tenant's shielded outputs
must match its own single-tenant unshielded baseline bit-for-bit, and the
service-wide host ledger must contain zero cross-tenant (or own-tenant)
plaintext.  This is the cloud-layer analogue of the seed's
FunctionalSimulator comparison, scaled to mixed multi-tenant traffic.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.accelerators import (
    AffineTransformAccelerator,
    MatMulAccelerator,
    VectorAddAccelerator,
)
from repro.cloud import JobState, ShieldCloudService
from repro.sim.simulator import run_unshielded_baseline

SEED = 77


@pytest.fixture(scope="module")
def demo_world():
    tenants = {
        "alice": VectorAddAccelerator(8 * 1024),
        "bob": MatMulAccelerator(32),
        "carol": AffineTransformAccelerator(64),
    }
    service = ShieldCloudService(num_boards=2, fast_crypto=True)
    sessions = {
        tenant: service.admit_tenant(tenant, accelerator)
        for tenant, accelerator in tenants.items()
    }
    inputs = {
        tenant: accelerator.prepare_inputs(seed=SEED)
        for tenant, accelerator in tenants.items()
    }
    jobs = {
        tenant: service.submit_job(sessions[tenant].session_id, inputs=inputs[tenant])
        for tenant in tenants
    }
    service.run_until_idle()
    return {
        "tenants": tenants,
        "service": service,
        "sessions": sessions,
        "inputs": inputs,
        "jobs": jobs,
    }


def _baseline(accelerator, inputs):
    return run_unshielded_baseline(accelerator, accelerator.build_shield_config(), inputs)


def test_all_jobs_complete(demo_world):
    for tenant, job in demo_world["jobs"].items():
        assert job.state is JobState.COMPLETED, (tenant, job.error)


def test_fleet_actually_shared(demo_world):
    """Three tenants fit on two boards only by time-multiplexing."""
    service = demo_world["service"]
    boards_touched = {job.board_name for job in demo_world["jobs"].values()}
    assert boards_touched == {"board-0", "board-1"}
    assert service.stats.shield_loads == 3
    assert sum(slot.shield_loads for slot in service.slots.values()) == 3


def test_outputs_match_single_tenant_baselines(demo_world):
    for tenant, accelerator in demo_world["tenants"].items():
        baseline = _baseline(accelerator, demo_world["inputs"][tenant])
        shielded = demo_world["jobs"][tenant].result
        assert baseline.outputs.keys() == shielded.outputs.keys()
        for key in baseline.outputs:
            assert np.array_equal(
                np.asarray(baseline.outputs[key]), np.asarray(shielded.outputs[key])
            ), (tenant, key)


def test_zero_cross_tenant_plaintext_leaks(demo_world):
    service = demo_world["service"]
    assert len(service.host_observations()) > 0
    for tenant, inputs in demo_world["inputs"].items():
        for plaintext in inputs.values():
            assert service.plaintext_exposures(plaintext) == [], tenant


def test_per_tenant_accounting_is_complete(demo_world):
    for tenant, session in demo_world["sessions"].items():
        assert session.usage.jobs_completed == 1, tenant
        assert session.usage.bytes_uploaded > 0
        assert session.usage.dram_bytes_written > 0
        assert session.usage.integrity_failures == 0
