"""Warm-board Shield affinity, eviction, admission control, and history caps.

The serving-layer half of the tentpole: a session's Shield stays resident on
its board between jobs (the ~6.2 s partial-reconfiguration reload is paid
once per session per board, not once per job), while the clean-slate
guarantee across *different* sessions is preserved by explicit eviction --
including at session close and on job failure.
"""

from __future__ import annotations

import pytest

from repro.accelerators import MatMulAccelerator, VectorAddAccelerator
from repro.cloud import AcceleratorJob, FleetScheduler, JobState, ShieldCloudService
from repro.errors import AdmissionError, SchedulingError

ACCEL_BYTES = 8 * 1024


def _service(**kwargs):
    kwargs.setdefault("num_boards", 1)
    kwargs.setdefault("fast_crypto", True)
    return ShieldCloudService(**kwargs)


# ---------------------------------------------------------------------------
# Warm hits skip the reload
# ---------------------------------------------------------------------------


def test_repeated_session_jobs_hit_warm_board():
    service = _service()
    accel = VectorAddAccelerator(ACCEL_BYTES)
    session = service.admit_tenant("looper", accel)
    jobs = [
        service.submit_job(session.session_id, inputs=accel.prepare_inputs(seed=seed))
        for seed in range(3)
    ]
    service.run_until_idle()
    assert [job.state for job in jobs] == [JobState.COMPLETED] * 3
    # One cold load, then warm hits: the Shield never left the board.
    assert [job.warm_start for job in jobs] == [False, True, True]
    assert service.stats.shield_loads == 1
    assert service.stats.affinity_hits == 2
    slot = service.slots["board-0"]
    assert slot.shield_loads == 1
    assert slot.affinity_hits == 2
    assert slot.resident_session == session.session_id
    summary = service.fleet_summary()
    assert summary["affinity_hit_rate"] == pytest.approx(2 / 3)
    # Outputs still verify per job: the datapath was re-keyed, not reused.
    assert all(job.result is not None for job in jobs)


def test_affinity_disabled_reloads_every_job():
    service = _service(affinity=False)
    accel = VectorAddAccelerator(ACCEL_BYTES)
    session = service.admit_tenant("cold", accel)
    jobs = [
        service.submit_job(session.session_id, inputs=accel.prepare_inputs(seed=seed))
        for seed in range(3)
    ]
    service.run_until_idle()
    assert [job.state for job in jobs] == [JobState.COMPLETED] * 3
    assert [job.warm_start for job in jobs] == [False, False, False]
    assert service.stats.shield_loads == 3
    assert service.stats.affinity_hits == 0
    slot = service.slots["board-0"]
    assert slot.resident_session is None
    # Seed behaviour restored: the board is pristine between jobs.
    assert slot.board.on_chip_memory.used_bytes == 0


def test_affinity_placement_sticks_to_the_warm_board():
    """On a two-board fleet a repeated session keeps returning to its board
    even though round-robin rotation would have sent it to the other one."""
    service = _service(num_boards=2)
    accel = VectorAddAccelerator(ACCEL_BYTES)
    session = service.admit_tenant("sticky", accel)
    jobs = [
        service.submit_job(session.session_id, inputs=accel.prepare_inputs(seed=seed))
        for seed in range(4)
    ]
    service.run_until_idle()
    assert {job.board_name for job in jobs} == {"board-0"}
    assert [job.warm_start for job in jobs] == [False, True, True, True]
    assert service.slots["board-1"].shield_loads == 0


# ---------------------------------------------------------------------------
# Eviction: the clean-slate guarantee across sessions
# ---------------------------------------------------------------------------


def test_loading_a_different_session_evicts_the_warm_shield():
    """Satellite: after an affinity hit, a *different* session landing on the
    board must tear the previous Shield down -- allocations freed, register
    port disconnected -- before its own load."""
    service = _service()
    # MatMul's engine set buffers on-chip, so residency is observable in
    # allocation names (VectorAdd's streaming config allocates nothing).
    accel_a = MatMulAccelerator(32)
    accel_b = MatMulAccelerator(32)
    alice = service.admit_tenant("alice", accel_a)
    for seed in range(2):
        service.submit_job(alice.session_id, inputs=accel_a.prepare_inputs(seed=seed))
    service.run_until_idle()
    slot = service.slots["board-0"]
    assert slot.affinity_hits == 1
    assert slot.resident_session == alice.session_id
    alice_allocations = set(slot.board.on_chip_memory.allocation_names())
    assert alice_allocations, "the warm Shield keeps its on-chip state resident"
    assert all(alice.session_id in name for name in alice_allocations)

    # Spy on the Shell: teardown (disconnect) must come before the new
    # session's load (connect), never the other way around.
    shell = slot.board.shell
    events = []
    original_disconnect = shell.disconnect_user_logic
    original_connect = shell.connect_register_slave

    def spy_disconnect():
        events.append("disconnect")
        original_disconnect()

    def spy_connect(handler):
        events.append("connect")
        original_connect(handler)

    shell.disconnect_user_logic = spy_disconnect
    shell.connect_register_slave = spy_connect
    try:
        bob = service.admit_tenant("bob", accel_b)
        job = service.submit_job(bob.session_id, inputs=accel_b.prepare_inputs(seed=7))
        service.run_until_idle()
    finally:
        shell.disconnect_user_logic = original_disconnect
        shell.connect_register_slave = original_connect

    assert job.state is JobState.COMPLETED, job.error
    assert not job.warm_start
    assert events[:2] == ["disconnect", "connect"]
    # Alice's on-chip state is gone; only Bob's Shield is resident now.
    remaining = set(slot.board.on_chip_memory.allocation_names())
    assert not remaining & alice_allocations
    assert all(bob.session_id in name for name in remaining)
    assert slot.resident_session == bob.session_id
    assert slot.evictions >= 1
    assert service.stats.evictions >= 1


def test_failed_job_does_not_leave_a_warm_shield():
    service = _service()
    accel = MatMulAccelerator(32)
    session = service.admit_tenant("fumble", accel)
    good = service.submit_job(session.session_id, inputs=accel.prepare_inputs(seed=1))
    bad = service.submit_job(session.session_id, inputs={"no-such-region": b"x"})
    after = service.submit_job(session.session_id, inputs=accel.prepare_inputs(seed=2))
    service.run_until_idle()
    assert good.state is JobState.COMPLETED
    assert bad.state is JobState.FAILED
    assert after.state is JobState.COMPLETED, after.error
    # The bad job was placed warm (same session), but its failure wiped the
    # board -- so the following job had to cold-load.
    assert bad.warm_start is True
    assert after.warm_start is False
    assert service.slots["board-0"].board.on_chip_memory.used_bytes > 0  # after's shield
    assert service.scheduler.free_boards == 1


def test_close_session_cancels_queued_jobs_and_frees_the_warm_shield():
    """Satellite: closing a session cancels its queued jobs *and* evicts any
    warm Shield it still holds on a board."""
    service = _service()
    accel = MatMulAccelerator(32)
    session = service.admit_tenant("leaver", accel)
    ran = service.submit_job(session.session_id, inputs=accel.prepare_inputs(seed=0))
    service.run_until_idle()
    queued = service.submit_job(session.session_id, inputs=accel.prepare_inputs(seed=1))
    slot = service.slots["board-0"]
    assert slot.resident_session == session.session_id
    assert slot.board.on_chip_memory.used_bytes > 0

    cancelled = service.close_session(session.session_id)

    assert ran.state is JobState.COMPLETED
    assert cancelled == [queued]
    assert queued.state is JobState.CANCELLED
    assert session.usage.jobs_cancelled == 1
    # The warm Shield is gone with the session: allocations freed, no residency.
    assert slot.resident_session is None
    assert slot.shield is None
    assert slot.board.on_chip_memory.used_bytes == 0
    assert service.scheduler.boards_resident_for(session.session_id) == []
    # And nothing dangles: the queue drains to nothing.
    assert service.run_until_idle() == []


# ---------------------------------------------------------------------------
# Admission control / backpressure
# ---------------------------------------------------------------------------


def test_fleet_queue_cap_rejects_overflow():
    service = _service(queue_cap=2)
    accel = VectorAddAccelerator(ACCEL_BYTES)
    session = service.admit_tenant("flood", accel)
    accepted = [
        service.submit_job(session.session_id, inputs=accel.prepare_inputs(seed=seed))
        for seed in range(2)
    ]
    rejected = service.submit_job(session.session_id, inputs=accel.prepare_inputs(seed=9))
    assert rejected.state is JobState.REJECTED
    assert "queue is full" in rejected.error
    assert service.stats.jobs_rejected == 1
    assert session.usage.jobs_rejected == 1
    service.run_until_idle()
    assert [job.state for job in accepted] == [JobState.COMPLETED] * 2
    # A rejected job never runs and never resurfaces.
    assert rejected.state is JobState.REJECTED
    assert rejected.result is None
    # Conservation across all terminal states.
    assert service.stats.jobs_submitted == (
        service.stats.jobs_completed
        + service.stats.jobs_failed
        + service.stats.jobs_cancelled
        + service.stats.jobs_rejected
    )
    # Draining the queue reopens admission.
    retry = service.submit_job(session.session_id, inputs=accel.prepare_inputs(seed=9))
    assert retry.state is JobState.QUEUED


def test_tenant_quota_rejects_only_the_hog():
    service = _service(tenant_quota=1)
    accel = VectorAddAccelerator(ACCEL_BYTES)
    hog = service.admit_tenant("hog", accel)
    polite = service.admit_tenant("polite", accel)
    first = service.submit_job(hog.session_id, inputs=accel.prepare_inputs(seed=0))
    second = service.submit_job(hog.session_id, inputs=accel.prepare_inputs(seed=1))
    other = service.submit_job(polite.session_id, inputs=accel.prepare_inputs(seed=2))
    assert first.state is JobState.QUEUED
    assert second.state is JobState.REJECTED
    assert "quota" in second.error
    assert other.state is JobState.QUEUED
    service.run_until_idle()
    assert first.state is JobState.COMPLETED
    assert other.state is JobState.COMPLETED


def test_scheduler_level_admission_raises():
    scheduler = FleetScheduler(["b0"], queue_cap=1)
    scheduler.submit(AcceleratorJob(job_id="j0", session_id="s", tenant="t"))
    overflow = AcceleratorJob(job_id="j1", session_id="s", tenant="t")
    with pytest.raises(AdmissionError):
        scheduler.submit(overflow)
    assert overflow.state is JobState.REJECTED
    assert scheduler.jobs_rejected == 1
    with pytest.raises(SchedulingError):
        FleetScheduler(["b0"], queue_cap=0)
    with pytest.raises(SchedulingError):
        FleetScheduler(["b0"], tenant_quota=-1)


# ---------------------------------------------------------------------------
# Placement history is bounded
# ---------------------------------------------------------------------------


def test_placement_history_is_ring_buffered_with_exact_totals():
    """Satellite: under sustained traffic the per-board history keeps only a
    bounded recent tail, while lifetime totals stay exact."""
    scheduler = FleetScheduler(["b0"], history_limit=3)
    for index in range(7):
        job = AcceleratorJob(job_id=f"j{index}", session_id=f"s{index}")
        scheduler.submit(job)
        placed, board, _ = scheduler.acquire()
        scheduler.release(placed, completed=True)
    assert scheduler.placement_history["b0"] == ["s4", "s5", "s6"]
    assert scheduler.placement_totals["b0"] == 7


def test_service_history_limit_threads_through_to_fleet_summary():
    service = _service(history_limit=2, affinity=False)
    accel = VectorAddAccelerator(ACCEL_BYTES)
    session = service.admit_tenant("busy", accel)
    for seed in range(5):
        service.submit_job(session.session_id, inputs=accel.prepare_inputs(seed=seed))
    service.run_until_idle()
    summary = service.fleet_summary()
    board = summary["boards"]["board-0"]
    assert board["sessions"] == [session.session_id] * 2  # ring tail only
    assert board["placements_total"] == 5  # exact lifetime count
    assert summary["tenants"]["busy"]["jobs_completed"] == 5
    assert summary["tenants"]["busy"]["completed_share"] == 1.0
