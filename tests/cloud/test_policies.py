"""Unit behaviour of the shared scheduling core (repro.cloud.policies).

These tests pin the policy zoo's selection semantics and the warm-affinity
placement rule in isolation -- the conformance suite then checks that the
functional scheduler and the timed simulator consume them identically.
"""

from __future__ import annotations

import pytest

from repro.cloud.policies import (
    POLICIES,
    POLICY_NAMES,
    BoardView,
    FifoPolicy,
    JobRequest,
    PriorityPolicy,
    SchedulingPolicy,
    ShortestJobFirstPolicy,
    WeightedFairSharePolicy,
    choose_board,
    make_policy,
)
from repro.errors import SchedulingError


def _request(seq, tenant="t", session=None, priority=0, weight=1.0, cost=1.0):
    return JobRequest(
        key=f"j{seq}",
        tenant=tenant,
        session_id=session or f"sess-{tenant}",
        seq=seq,
        priority=priority,
        weight=weight,
        cost_estimate=cost,
    )


def _drain(policy: SchedulingPolicy, queue: list) -> list:
    """Repeatedly select+pop until the queue is empty; returns pick order."""
    queue = list(queue)
    order = []
    while queue:
        index = policy.select(queue)
        request = queue.pop(index)
        policy.record_service(request)
        order.append(request.key)
    return order


def test_registry_covers_the_four_policies():
    assert set(POLICY_NAMES) == {"fifo", "priority", "fair", "sjf"}
    for name in POLICY_NAMES:
        instance = make_policy(name)
        assert isinstance(instance, SchedulingPolicy)
        assert instance.name == name


def test_make_policy_accepts_classes_and_instances_and_rejects_garbage():
    assert isinstance(make_policy(FifoPolicy), FifoPolicy)
    seeded = WeightedFairSharePolicy()
    assert make_policy(seeded) is seeded
    # Fresh instances per call: fair-share state is never accidentally shared.
    assert make_policy("fair") is not make_policy("fair")
    with pytest.raises(SchedulingError):
        make_policy("lifo")
    with pytest.raises(SchedulingError):
        make_policy(42)


def test_fifo_is_submission_order_regardless_of_metadata():
    queue = [
        _request(3, priority=9, cost=0.1),
        _request(1, priority=0, cost=5.0),
        _request(2, priority=5, cost=1.0),
    ]
    assert _drain(FifoPolicy(), queue) == ["j1", "j2", "j3"]


def test_priority_orders_by_priority_then_fifo():
    queue = [
        _request(1, priority=0),
        _request(2, priority=7),
        _request(3, priority=7),
        _request(4, priority=3),
    ]
    assert _drain(PriorityPolicy(), queue) == ["j2", "j3", "j4", "j1"]


def test_sjf_orders_by_cost_then_fifo():
    queue = [
        _request(1, cost=4.0),
        _request(2, cost=0.5),
        _request(3, cost=0.5),
        _request(4, cost=2.0),
    ]
    assert _drain(ShortestJobFirstPolicy(), queue) == ["j2", "j3", "j4", "j1"]


def test_fair_share_round_robins_equal_weight_tenants():
    # Tenant a floods the queue first; fair-share still alternates.
    queue = [
        _request(1, tenant="a"),
        _request(2, tenant="a"),
        _request(3, tenant="a"),
        _request(4, tenant="b"),
        _request(5, tenant="b"),
    ]
    assert _drain(WeightedFairSharePolicy(), queue) == ["j1", "j4", "j2", "j5", "j3"]


def test_fair_share_respects_weights():
    # Weight 2 tenant gets two slots for every one of the weight 1 tenant.
    queue = [_request(i, tenant="heavy", weight=2.0) for i in range(1, 5)]
    queue += [_request(i, tenant="light", weight=1.0) for i in range(5, 7)]
    order = _drain(WeightedFairSharePolicy(), queue)
    # First pick ties at share 0 -> FIFO gives heavy; then heavy accumulates
    # 1/2 while light sits at 0, and so on: heavy, light, heavy, heavy, light, heavy.
    assert order == ["j1", "j5", "j2", "j3", "j6", "j4"]


def test_fair_share_snapshot_reports_served_cost():
    policy = WeightedFairSharePolicy()
    policy.record_service(_request(1, tenant="a", cost=3.0))
    policy.record_service(_request(2, tenant="b", cost=1.0), cost=7.0)
    assert policy.snapshot() == {"served": {"a": 3.0, "b": 7.0}}


def test_choose_board_prefers_warm_then_rank():
    request = _request(1, tenant="a", session="sess-a")
    cold = [BoardView("b0", 0), BoardView("b1", 1)]
    assert choose_board(request, cold).name == "b0"
    warm = [
        BoardView("b0", 0, resident_session="sess-z"),
        BoardView("b1", 1, resident_session="sess-a"),
    ]
    assert choose_board(request, warm).name == "b1"
    # Affinity disabled: rank wins even when a warm board exists.
    assert choose_board(request, warm, prefer_affinity=False).name == "b0"
    # Several warm candidates: lowest rank among them.
    twice_warm = [
        BoardView("b2", 2, resident_session="sess-a"),
        BoardView("b1", 1, resident_session="sess-a"),
        BoardView("b0", 0),
    ]
    assert choose_board(request, twice_warm).name == "b1"
    with pytest.raises(SchedulingError):
        choose_board(request, [])


def test_policies_registry_builds_fresh_state():
    fair_a = POLICIES["fair"]()
    fair_b = POLICIES["fair"]()
    fair_a.record_service(_request(1, tenant="a"))
    assert fair_b.snapshot() == {"served": {}}
    assert fair_a.snapshot() != fair_b.snapshot()
