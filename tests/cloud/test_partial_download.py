"""Partial-region downloads through the serving layer.

A tenant may ask for a slice of an output region via an
``(offset_chunks, length)`` spec in ``output_regions``.  This used to fail
MAC verification because the downloaded chunks were rebuilt with indices
starting at 0 regardless of the DMA offset -- the wrong bound address and IV
for every chunk.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.accelerators import VectorAddAccelerator
from repro.cloud import JobState, ShieldCloudService

_CHUNK = 512  # the vector-add accelerator's C_mem


@pytest.fixture(scope="module")
def finished_job():
    accelerator = VectorAddAccelerator(8 * 1024)  # 2 KiB per partition, 4 chunks
    service = ShieldCloudService(num_boards=1, fast_crypto=True)
    session = service.admit_tenant("dana", accelerator)
    inputs = accelerator.prepare_inputs(seed=5)
    job = service.submit_job(
        session.session_id,
        inputs=inputs,
        output_regions={
            "c0": None,                   # whole region, from chunk 0
            "c1": (1, 2 * _CHUNK),        # chunks 1..2
            "c2": (3, _CHUNK),            # the last chunk alone
        },
    )
    service.run_until_idle()
    expected = {
        name: (
            np.frombuffer(inputs[f"a{part}"], dtype=np.int32)
            + np.frombuffer(inputs[f"b{part}"], dtype=np.int32)
        ).astype(np.int32).tobytes()
        for part, name in ((0, "c0"), (1, "c1"), (2, "c2"))
    }
    return service, session, job, expected


def test_job_completed(finished_job):
    _, _, job, _ = finished_job
    assert job.state is JobState.COMPLETED, job.error


def test_whole_region_download_unchanged(finished_job):
    _, _, job, expected = finished_job
    assert job.region_outputs["c0"] == expected["c0"]


def test_mid_region_slice_unseals_correctly(finished_job):
    _, _, job, expected = finished_job
    assert job.region_outputs["c1"] == expected["c1"][_CHUNK : 3 * _CHUNK]


def test_final_chunk_slice_unseals_correctly(finished_job):
    _, _, job, expected = finished_job
    assert job.region_outputs["c2"] == expected["c2"][3 * _CHUNK :]


@pytest.mark.parametrize(
    "spec", [(99, _CHUNK), (3, 2 * _CHUNK)], ids=["offset-past-end", "length-past-end"]
)
def test_out_of_range_download_fails_the_job(finished_job, spec):
    service, session, _, _ = finished_job
    job = service.submit_job(
        session.session_id,
        inputs=VectorAddAccelerator(8 * 1024).prepare_inputs(seed=5),
        output_regions={"c0": spec},
    )
    service.run_until_idle()
    assert job.state is JobState.FAILED
    assert "offset" in (job.error or "")
    # The board came back to the pool despite the failure.
    assert service.scheduler.free_boards == 1
