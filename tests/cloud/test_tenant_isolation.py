"""Cross-tenant isolation on a shared ShieldCloudService.

Two tenants run on one service (sharing its board fleet).  The properties
under test are the cloud layer's whole reason to exist:

* the untrusted host ledger only ever sees ciphertext (never a fragment of
  either tenant's plaintext),
* sealed output downloaded for one tenant cannot be unsealed with the other
  tenant's key ring, and
* per-tenant Shield statistics are accounted to the session that caused the
  traffic, never to a neighbour.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.accelerators import MatMulAccelerator, VectorAddAccelerator
from repro.attestation.data_owner import DataOwner
from repro.cloud import ShieldCloudService
from repro.errors import CloudError, IntegrityError, TenantIsolationError


@pytest.fixture()
def service():
    return ShieldCloudService(num_boards=1, fast_crypto=True)


def _run_two_tenants(service):
    alice_accel = VectorAddAccelerator(8 * 1024)
    bob_accel = MatMulAccelerator(32)
    alice = service.admit_tenant("alice", alice_accel)
    bob = service.admit_tenant("bob", bob_accel)
    alice_inputs = alice_accel.prepare_inputs(seed=21)
    bob_inputs = bob_accel.prepare_inputs(seed=22)
    alice_job = service.submit_job(
        alice.session_id, inputs=alice_inputs, output_regions={"c0": None}
    )
    bob_job = service.submit_job(
        bob.session_id, inputs=bob_inputs, output_regions={"c": None}
    )
    service.run_until_idle()
    return {
        "alice": (alice, alice_inputs, alice_job),
        "bob": (bob, bob_inputs, bob_job),
    }


def test_host_ledger_sees_only_ciphertext(service):
    world = _run_two_tenants(service)
    assert service.host_observations(), "the host must have moved data"
    for _, inputs, job in world.values():
        assert job.state.name == "COMPLETED", job.error
        for plaintext in inputs.values():
            assert service.plaintext_exposures(plaintext) == []
    # Output plaintext must be invisible too.
    alice_output = world["alice"][2].region_outputs["c0"]
    bob_output = world["bob"][2].region_outputs["c"]
    assert alice_output and bob_output
    assert service.plaintext_exposures(alice_output) == []
    assert service.plaintext_exposures(bob_output) == []


def test_outputs_are_correct_per_tenant(service):
    world = _run_two_tenants(service)
    _, alice_inputs, alice_job = world["alice"]
    expected = (
        np.frombuffer(alice_inputs["a0"], dtype=np.int32)
        + np.frombuffer(alice_inputs["b0"], dtype=np.int32)
    ).astype(np.int32)
    assert np.array_equal(alice_job.result.outputs["c0"], expected)
    downloaded = np.frombuffer(alice_job.region_outputs["c0"], dtype=np.int32)
    assert np.array_equal(downloaded, expected)


def test_wrong_key_unsealing_fails(service):
    """Bob's key ring (or a fresh outsider's) cannot unseal Alice's outputs."""
    world = _run_two_tenants(service)
    alice, _, _ = world["alice"]
    bob, _, _ = world["bob"]
    config = alice.shield_config
    # Replay the download from raw DRAM (what a curious CSP could do).
    board = service.slots["board-0"].board
    region = config.region("c0")
    ciphertext = board.device_memory.tamper_read(region.base_address, region.size_bytes)
    tags = [
        board.device_memory.tamper_read(config.tag_address(region, i), 16)
        for i in range(region.num_chunks)
    ]
    sealed = DataOwner.sealed_chunks_from_device(config, "c0", ciphertext, tags)

    # The rightful owner succeeds...
    assert alice.data_owner.unseal_output(
        config, "c0", sealed, shield_id=config.shield_id
    )
    # ...an impostor with a different Data Encryption Key fails the MAC check.
    impostor = DataOwner(name="bob-as-impostor", seed=4242)
    impostor.generate_data_key(config.shield_id)
    with pytest.raises(IntegrityError):
        impostor.unseal_output(config, "c0", sealed, shield_id=config.shield_id)
    # Bob's own key ring does not even hold a key for Alice's Shield.
    with pytest.raises(Exception):
        bob.data_owner.unseal_output(config, "c0", sealed, shield_id=config.shield_id)


def test_per_tenant_stats_do_not_bleed(service):
    world = _run_two_tenants(service)
    alice, _, _ = world["alice"]
    bob, _, _ = world["bob"]
    # Both tenants ran on the same single board, yet accounting is disjoint.
    assert alice.boards_used == ["board-0"]
    assert bob.boards_used == ["board-0"]
    assert alice.usage.jobs_completed == 1
    assert bob.usage.jobs_completed == 1
    # vector_add streams 8 KiB in and writes 8 KiB; matmul-32 moves 3 x 4 KiB.
    assert alice.usage.accel_bytes_read == 2 * 8 * 1024
    assert bob.usage.accel_bytes_read == 2 * MatMulAccelerator(32).matrix_bytes
    assert alice.usage.integrity_failures == 0
    assert bob.usage.integrity_failures == 0
    # A session that never ran has an untouched ledger.
    idle = service.admit_tenant("mallory", VectorAddAccelerator(8 * 1024))
    assert idle.usage.accel_bytes_read == 0
    assert idle.usage.jobs_completed == 0
    assert idle.job_stats == []


def test_job_results_are_tenant_gated(service):
    world = _run_two_tenants(service)
    _, _, alice_job = world["alice"]
    assert service.job_result(alice_job.job_id, tenant="alice") is alice_job
    with pytest.raises(TenantIsolationError):
        service.job_result(alice_job.job_id, tenant="bob")
    with pytest.raises(CloudError):
        service.job_result("job-9999", tenant="alice")


def test_leak_audit_detects_actual_plaintext_dma(service):
    """Negative control: the audit is not vacuous.

    If a (buggy or malicious) host DMA'd raw plaintext through the Shell, the
    service's per-board DMA tap would record it and ``plaintext_exposures``
    must flag it -- including a leak that starts mid-buffer, which the
    probe-stride guarantee (any contiguous run >= 2*window-1 bytes) covers.
    """
    world = _run_two_tenants(service)
    _, alice_inputs, _ = world["alice"]
    plaintext = alice_inputs["a0"]
    assert service.plaintext_exposures(plaintext) == []
    board = service.slots["board-0"].board
    # Leak an unaligned 96-byte fragment from the middle of the input.
    fragment = plaintext[133 : 133 + 96]
    board.shell.host_dma_write(0x70_0000, b"\xee" * 11 + fragment)
    exposures = service.plaintext_exposures(plaintext)
    assert len(exposures) == 1
    assert exposures[0].entry[0] == "dma-write"
    assert exposures[0].board_name == "board-0"


def test_dma_ledger_attributes_transfers_to_sessions(service):
    world = _run_two_tenants(service)
    sessions_seen = {
        obs.session_id
        for obs in service.host_observations()
        if obs.entry[0].startswith("dma-")
    }
    alice, _, _ = world["alice"]
    bob, _, _ = world["bob"]
    assert sessions_seen == {alice.session_id, bob.session_id}


def test_no_keystream_reuse_across_jobs_in_one_session(service):
    """Two jobs in one session must not reuse (key, IV) pairs.

    Region sub-keys and chunk IVs restart at every Shield load, so the
    service rotates the session's Data Encryption Key per job.  Without
    rotation, XOR of the two DMA-observed ciphertexts for the same region
    would equal XOR of the two plaintexts -- a full confidentiality break
    for the untrusted host.
    """
    accel = VectorAddAccelerator(8 * 1024)
    session = service.admit_tenant("repeat", accel)
    inputs_1 = accel.prepare_inputs(seed=31)
    inputs_2 = accel.prepare_inputs(seed=32)
    base = accel.build_shield_config().region("a0").base_address

    ciphertexts = []
    for inputs in (inputs_1, inputs_2):
        service.submit_job(session.session_id, inputs=inputs)
        service.run_until_idle()
        board = service.slots["board-0"].board
        ciphertexts.append(
            board.device_memory.tamper_read(base, len(inputs["a0"]))
        )

    xor_ct = bytes(a ^ b for a, b in zip(*ciphertexts))
    xor_pt = bytes(a ^ b for a, b in zip(inputs_1["a0"], inputs_2["a0"]))
    assert xor_ct != xor_pt, "CTR keystream reused across jobs"
    # The per-job Load Keys the host observed must differ too.
    load_keys = [
        obs.entry[1]
        for obs in service.host_observations()
        if obs.session_id == session.session_id and obs.entry[0] == "load_key"
    ]
    assert len(load_keys) == 2 and load_keys[0] != load_keys[1]


def test_failed_download_leaves_no_result(service):
    accel = VectorAddAccelerator(8 * 1024)
    session = service.admit_tenant("dl-fail", accel)
    job = service.submit_job(
        session.session_id,
        inputs=accel.prepare_inputs(seed=41),
        output_regions={"no-such-region": None},
    )
    service.run_until_idle()
    assert job.state.name == "FAILED"
    assert job.result is None
    assert session.usage.jobs_failed == 1


def test_close_session_is_idempotent(service):
    accel = VectorAddAccelerator(8 * 1024)
    session = service.admit_tenant("twice", accel)
    service.close_session(session.session_id)
    assert service.close_session(session.session_id) == []
    assert service.stats.sessions_closed == 1


def test_ledger_limit_bounds_host_observations():
    service = ShieldCloudService(num_boards=1, fast_crypto=True, ledger_limit=5)
    accel = VectorAddAccelerator(8 * 1024)
    session = service.admit_tenant("bounded", accel)
    service.submit_job(session.session_id, inputs=accel.prepare_inputs(seed=51))
    service.run_until_idle()
    assert len(service.host_observations()) == 5


def test_audit_tap_survives_attacker_tap():
    """A snooping Shell tap installed later must not sever the audit trail."""
    service = ShieldCloudService(num_boards=1, fast_crypto=True)
    board = service.slots["board-0"].board
    snooped = []
    board.shell.install_dma_tap(lambda kind, addr, data: snooped.append(kind))
    accel = VectorAddAccelerator(8 * 1024)
    session = service.admit_tenant("audited", accel)
    service.submit_job(session.session_id, inputs=accel.prepare_inputs(seed=61))
    service.run_until_idle()
    dma_entries = [
        obs for obs in service.host_observations() if obs.entry[0].startswith("dma-")
    ]
    assert snooped, "the attacker tap observed traffic"
    assert len(dma_entries) == len(snooped), "both taps saw every transfer"


def test_sessions_use_distinct_data_keys(service):
    world = _run_two_tenants(service)
    alice, _, _ = world["alice"]
    bob, _, _ = world["bob"]
    alice_key = alice.data_owner.data_key(alice.shield_id).material
    bob_key = bob.data_owner.data_key(bob.shield_id).material
    assert alice_key != bob_key
    assert alice.shield_id != bob.shield_id
