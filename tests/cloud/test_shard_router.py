"""Shard layer: consistent-hash ring properties, autoscaler, replay driver.

The two properties that make consistent hashing the right router for warm
sessions are pinned here as randomized-but-seeded tests: virtual nodes keep
the key space *balanced* (every shard gets within tolerance of 1/N of the
sessions), and ring edits are *minimally disruptive* (adding or removing one
of N shards remaps ~1/N of the sessions, never an unrelated one).  On top of
the ring, the sticky-assignment layer, drain/rebalance semantics, the
queue-depth autoscaler's grow/drain/cooldown rules, and the multi-shard
replay driver's merge are covered.
"""

from __future__ import annotations

import pytest

from repro.cloud.shard import (
    QueueDepthAutoscaler,
    ShardRouter,
    partition_trace,
    replay_sharded,
)
from repro.errors import ShardingError
from repro.sim.traces import generate_trace

NUM_SESSIONS = 8000


def _sessions():
    return [f"session-{index}" for index in range(NUM_SESSIONS)]


# ---------------------------------------------------------------------------
# Ring properties
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("num_shards", [4, 8, 16])
def test_ring_balances_sessions_within_tolerance(num_shards):
    """Virtual nodes keep every shard within +-40% of the ideal 1/N share."""
    router = ShardRouter(range(num_shards))
    counts = {shard: 0 for shard in range(num_shards)}
    for session in _sessions():
        counts[router.lookup(session)] += 1
    ideal = NUM_SESSIONS / num_shards
    assert sum(counts.values()) == NUM_SESSIONS
    for shard, count in counts.items():
        assert 0.6 * ideal <= count <= 1.4 * ideal, (
            f"shard {shard} owns {count} sessions (ideal {ideal:.0f}); "
            f"the vnode count no longer balances the ring"
        )


def test_adding_a_shard_remaps_about_one_nth_of_sessions():
    router = ShardRouter(range(8))
    before = {session: router.lookup(session) for session in _sessions()}
    router.add_shard(8)
    moved = [s for s in _sessions() if router.lookup(s) != before[s]]
    # Expected fraction is 1/9; allow generous sampling slack either side.
    fraction = len(moved) / NUM_SESSIONS
    assert 0.05 <= fraction <= 0.20, f"add remapped {fraction:.1%} of sessions"
    # Minimal disruption: every moved session moved *to* the new shard --
    # no session was shuffled between two old shards.
    assert all(router.lookup(session) == 8 for session in moved)


def test_removing_a_shard_remaps_only_its_own_sessions():
    router = ShardRouter(range(8))
    before = {session: router.lookup(session) for session in _sessions()}
    for session in _sessions():
        router.route(session)  # pin everything
    moved = router.remove_shard(3)
    # Exactly the removed shard's sessions moved, each to a surviving shard.
    assert set(moved) == {s for s, shard in before.items() if shard == 3}
    assert all(new_shard != 3 for new_shard in moved.values())
    for session in _sessions():
        expected = moved.get(session, before[session])
        assert router.route(session) == expected


def test_lookup_is_deterministic_across_instances():
    """Ring placement must not depend on instance or process state (the hash
    is keyless blake2b, not the salted builtin ``hash``)."""
    first = ShardRouter(range(8))
    second = ShardRouter(range(8))
    for session in _sessions()[:500]:
        assert first.lookup(session) == second.lookup(session)


# ---------------------------------------------------------------------------
# Sticky assignments, drain, rebalance
# ---------------------------------------------------------------------------


def test_route_pins_sessions_across_ring_changes():
    router = ShardRouter(range(4))
    pinned = {session: router.route(session) for session in _sessions()[:1000]}
    router.add_shard(4)
    # Pins hold (warm boards stay valid) until an explicit rebalance.
    for session, shard in pinned.items():
        assert router.route(session) == shard
    moved = router.rebalance()
    assert moved, "rebalancing onto a new shard should migrate some sessions"
    assert all(shard == 4 for shard in moved.values())
    for session, shard in moved.items():
        assert router.route(session) == shard


def test_drain_stops_new_sessions_but_keeps_pinned_ones():
    router = ShardRouter(range(4))
    pinned = {session: router.route(session) for session in _sessions()[:1000]}
    stragglers = router.drain(2)
    assert stragglers == sorted(s for s, shard in pinned.items() if shard == 2)
    assert router.draining_shards == [2]
    assert 2 not in router.active_shards
    # Existing pins still honoured; no *new* session lands on the drained shard.
    for session in stragglers:
        assert router.route(session) == 2
    for session in _sessions()[1000:3000]:
        assert router.route(session) != 2
    # Rebalance evacuates the drained shard entirely.
    router.rebalance()
    assert all(router.route(session) != 2 for session in stragglers)


def test_router_edge_cases_raise():
    router = ShardRouter(range(2))
    with pytest.raises(ShardingError):
        router.add_shard(1)  # duplicate
    with pytest.raises(ShardingError):
        router.remove_shard(7)  # unknown
    with pytest.raises(ShardingError):
        ShardRouter([])  # empty ring
    with pytest.raises(ShardingError):
        ShardRouter(range(2), vnodes=0)
    router.drain(0)
    with pytest.raises(ShardingError):
        router.drain(1)  # last active shard
    router.remove_shard(0)
    with pytest.raises(ShardingError):
        router.remove_shard(1)  # last shard


# ---------------------------------------------------------------------------
# Queue-depth autoscaler
# ---------------------------------------------------------------------------


def test_autoscaler_grows_proportionally_and_respects_cooldown():
    scaler = QueueDepthAutoscaler(
        min_boards=2, max_boards=32, high_watermark=4.0,
        low_watermark=0.5, cooldown_s=30.0,
    )
    # Backlog of 100 over 4 boards: grow to ceil(100/4) = 25 boards.
    assert scaler.target_boards(0.0, 100, 4) == 25
    # Inside the cooldown window nothing changes, however deep the queue.
    assert scaler.target_boards(10.0, 500, 25) == 25
    # After the cooldown the backlog is gone: drain one board per window.
    assert scaler.target_boards(40.0, 0, 25) == 24
    assert scaler.target_boards(50.0, 0, 24) == 24  # cooldown again
    assert scaler.target_boards(80.0, 0, 24) == 23


def test_autoscaler_clamps_to_min_and_max():
    scaler = QueueDepthAutoscaler(
        min_boards=2, max_boards=8, high_watermark=2.0,
        low_watermark=0.5, cooldown_s=0.0,
    )
    assert scaler.target_boards(0.0, 10_000, 4) == 8
    assert scaler.target_boards(1.0, 0, 2) == 2
    with pytest.raises(ShardingError):
        QueueDepthAutoscaler(min_boards=0)
    with pytest.raises(ShardingError):
        QueueDepthAutoscaler(min_boards=4, max_boards=2)
    with pytest.raises(ShardingError):
        QueueDepthAutoscaler(high_watermark=1.0, low_watermark=2.0)


def test_autoscaled_replay_grows_fleet_and_never_revokes_busy_boards():
    trace = generate_trace(4000, seed=3, arrival="heavy_tailed",
                           rate_jobs_per_s=100.0)
    report = replay_sharded(
        trace, num_shards=4, boards_per_shard=2, executor="serial",
        autoscaler_factory=lambda shard: QueueDepthAutoscaler(
            min_boards=2, max_boards=16, high_watermark=4.0,
            low_watermark=0.5, cooldown_s=60.0,
        ),
    )
    assert report.jobs == 4000
    for stats in report.shard_stats.values():
        assert stats.scale_events, "overload must trigger scaling"
        # Drain-only shrink: the modelled board count never dips below min.
        assert stats.final_boards >= 2
        # Capacity integral reflects the resized fleet, so utilization is a
        # real fraction even mid-scaling.
        assert 0.0 < stats.utilization <= 1.0


# ---------------------------------------------------------------------------
# Multi-shard replay driver
# ---------------------------------------------------------------------------


def test_partition_preserves_jobs_and_session_locality():
    trace = generate_trace(5000, seed=9)
    router = ShardRouter(range(8))
    shard_traces = partition_trace(trace, router)
    assert sum(len(events) for events in shard_traces.values()) == len(trace)
    # Session locality: every event of a session lands on one shard.
    seen: dict = {}
    for shard, events in shard_traces.items():
        for event in events:
            assert seen.setdefault(event.session, shard) == shard


@pytest.mark.parametrize("executor", ["serial", "thread"])
def test_replay_sharded_merges_shard_stats(executor):
    trace = generate_trace(6000, seed=21, rate_jobs_per_s=100.0)
    report = replay_sharded(
        trace, num_shards=8, boards_per_shard=4, executor=executor
    )
    assert report.jobs == len(trace)
    assert len(report.shard_stats) == 8
    assert report.warm_hits == sum(
        stats.warm_hits for stats in report.shard_stats.values()
    )
    assert report.makespan_s == max(
        stats.makespan_s for stats in report.shard_stats.values()
    )
    # Global percentiles are monotone and bracket the per-shard extremes.
    p50, p99, p999 = (report.wait_percentile(q) for q in (50.0, 99.0, 99.9))
    assert 0.0 <= p50 <= p99 <= p999
    assert report.jobs_per_sec > 0
    experiment = report.to_experiment()
    assert experiment.metadata["jobs"] == len(trace)
    assert len(experiment.rows) == 8


def test_replay_sharded_is_executor_invariant():
    """Modelled results must be bit-identical whatever runs the workers."""
    trace = generate_trace(3000, seed=33, rate_jobs_per_s=100.0)
    serial = replay_sharded(trace, num_shards=4, boards_per_shard=4,
                            executor="serial")
    threaded = replay_sharded(trace, num_shards=4, boards_per_shard=4,
                              executor="thread")
    for shard in serial.shard_stats:
        a, b = serial.shard_stats[shard], threaded.shard_stats[shard]
        assert a.jobs == b.jobs
        assert a.makespan_s == b.makespan_s
        assert a.warm_hits == b.warm_hits
        assert a.waits == b.waits
    with pytest.raises(ShardingError):
        replay_sharded(trace, executor="fork-bomb")
