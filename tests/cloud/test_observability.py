"""The serving layer on the trace stream: lifecycle spans, security events,
registry-derived stats, and functional-vs-simulated conformance.

The conformance half is the observability layer's anchor test: a functional
:class:`~repro.cloud.service.ShieldCloudService` run and a
:class:`~repro.sim.cloud.CloudSimulator` replay of the same workload shape
must emit the *same* lifecycle signature -- stage names, per-job order,
tenant attribution, and warm/cold flags -- even though one stream carries
wall-clock timestamps and the other modelled ones.
"""

from __future__ import annotations

import pytest

import repro.obs as obs_api
from repro.accelerators import VectorAddAccelerator
from repro.cloud import ShieldCloudService
from repro.obs import JOB_STAGES, lifecycle_signature
from repro.sim.cloud import CloudSimulator, TraceEvent

ACCEL_BYTES = 8 * 1024


@pytest.fixture
def obs():
    with obs_api.scoped() as handle:
        yield handle


def _service(**kwargs):
    kwargs.setdefault("num_boards", 1)
    kwargs.setdefault("fast_crypto", True)
    return ShieldCloudService(**kwargs)


def _run_jobs(service, session, accel, count, seed0=0):
    jobs = [
        service.submit_job(
            session.session_id,
            inputs=accel.prepare_inputs(seed=seed0 + i),
            output_regions={"c0": None},
        )
        for i in range(count)
    ]
    service.run_until_idle()
    return jobs


# ---------------------------------------------------------------------------
# Lifecycle coverage on the functional service
# ---------------------------------------------------------------------------


def test_every_lifecycle_stage_appears_per_job(obs):
    service = _service()
    accel = VectorAddAccelerator(ACCEL_BYTES)
    session = service.admit_tenant("alice", accel)
    _run_jobs(service, session, accel, 2)

    # Admission is per session, the job stages once per job, in order.
    assert len(obs.tracer.spans("admit")) == 1
    for stage in JOB_STAGES:
        assert len(obs.tracer.spans(stage)) == 2, f"missing spans for {stage}"
    assert len(obs.tracer.spans("job")) == 2

    # Per-job ordering: each job's stages appear in lifecycle order.
    for job_id in ("job-0001", "job-0002"):
        names = [
            e.name
            for e in obs.tracer.spans()
            if e.job == job_id and e.name in JOB_STAGES
        ]
        assert names == list(JOB_STAGES)


def test_spans_carry_identity_axes_and_warm_flags(obs):
    service = _service()
    accel = VectorAddAccelerator(ACCEL_BYTES)
    session = service.admit_tenant("alice", accel)
    _run_jobs(service, session, accel, 2)

    loads = obs.tracer.spans("shield_load")
    assert [e.attrs["warm"] for e in loads] == [False, True]
    jobs = obs.tracer.spans("job")
    assert all(e.attrs["completed"] for e in jobs)
    for event in loads + jobs:
        assert event.tenant == "alice"
        assert event.session == session.session_id
        assert event.board == "board-0"
        assert event.job is not None

    seal = obs.tracer.spans("input_seal")[0]
    assert seal.attrs["bytes"] == 2 * ACCEL_BYTES  # vector add stages a and b
    download = obs.tracer.spans("download")[0]
    region = service.sessions[session.session_id].shield_config.region("c0")
    assert download.attrs["bytes"] == region.size_bytes


def test_stage_histograms_record_real_durations_without_tracing():
    # Tracing off, metrics off process-wide: the service still times stages
    # on its private registry (stats/fleet_summary need it), with real
    # wall-clock durations -- the null tracer's frozen clock must not leak in.
    service = _service()
    accel = VectorAddAccelerator(ACCEL_BYTES)
    session = service.admit_tenant("alice", accel)
    _run_jobs(service, session, accel, 1)
    for stage in ("shield_load", "input_seal", "execute"):
        summary = service.metrics.histogram("cloud.stage_seconds", stage=stage).summary()
        assert summary["count"] == 1
        assert summary["max"] > 0.0, f"{stage} duration was not measured"


def test_queue_depth_gauge_tracks_submissions(obs):
    service = _service()
    accel = VectorAddAccelerator(ACCEL_BYTES)
    session = service.admit_tenant("alice", accel)
    depth = service.metrics.gauge("cloud.queue_depth")
    inputs = accel.prepare_inputs(seed=0)
    service.submit_job(session.session_id, inputs=inputs)
    service.submit_job(session.session_id, inputs=inputs)
    assert depth.value == 2.0
    service.run_next_job()
    assert depth.value == 1.0
    service.run_until_idle()
    assert depth.value == 0.0
    assert service.metrics.gauge("cloud.busy_boards").value == 0.0


# ---------------------------------------------------------------------------
# Security events (satellite: the audit surfaces ride the same stream)
# ---------------------------------------------------------------------------


def test_host_observations_surface_as_dma_tap_security_events(obs):
    service = _service()
    accel = VectorAddAccelerator(ACCEL_BYTES)
    session = service.admit_tenant("alice", accel)
    _run_jobs(service, session, accel, 1)

    taps = obs.tracer.security_events("dma_tap")
    # Every tap-observed transfer has a matching security event; the ledger
    # additionally carries the runtime's own blob log, so it is a superset.
    assert len(taps) > 0
    assert len(service.host_observations()) >= len(taps)
    directions = {e.attrs["direction"] for e in taps}
    assert directions == {"write", "read"}
    for tap in taps:
        assert tap.tenant == "alice"
        assert tap.session == session.session_id
        assert tap.board == "board-0"
        assert tap.attrs["bytes"] > 0


def test_plaintext_exposures_audit_emits_security_events(obs):
    service = _service()
    accel = VectorAddAccelerator(ACCEL_BYTES)
    session = service.admit_tenant("alice", accel)
    inputs = accel.prepare_inputs(seed=0)
    _run_jobs(service, session, accel, 1)

    # The healthy service leaks nothing: the audit passes and stays silent.
    assert service.plaintext_exposures(inputs["a0"]) == []
    assert obs.tracer.security_events("plaintext_exposure") == []

    # A plaintext the host *did* see (simulate a leaky DMA entry) is found
    # and lands on the security stream, attributed to the owning tenant.
    from repro.cloud.service import HostObservation

    service._host_ledger.append(
        HostObservation(
            session_id=session.session_id,
            board_name="board-0",
            entry=("dma-write", 0, inputs["a0"][:64]),
        )
    )
    hits = service.plaintext_exposures(inputs["a0"])
    assert len(hits) == 1
    [event] = obs.tracer.security_events("plaintext_exposure")
    assert event.tenant == "alice"
    assert event.session == session.session_id
    assert event.board == "board-0"


def test_evictions_and_session_close_emit_security_events(obs):
    service = _service(num_boards=1)
    accel_a = VectorAddAccelerator(ACCEL_BYTES)
    accel_b = VectorAddAccelerator(ACCEL_BYTES)
    alice = service.admit_tenant("alice", accel_a)
    bob = service.admit_tenant("bob", accel_b)
    _run_jobs(service, alice, accel_a, 1)
    # Bob landing on the single board evicts Alice's warm Shield.
    _run_jobs(service, bob, accel_b, 1, seed0=5)
    evictions = obs.tracer.security_events("eviction")
    assert len(evictions) == 1
    assert evictions[0].tenant == "alice"
    assert evictions[0].board == "board-0"
    # Closing Bob's session evicts his resident Shield too.
    service.close_session(bob.session_id)
    assert len(obs.tracer.security_events("eviction")) == 2


def test_mac_failure_and_attack_detection_on_tampered_download(obs):
    service = _service()
    accel = VectorAddAccelerator(ACCEL_BYTES)
    session = service.admit_tenant("mallory", accel)
    job = service.submit_job(
        session.session_id,
        inputs=accel.prepare_inputs(seed=1),
        output_regions={"c0": None},
    )

    # Corrupt the output ciphertext between execute and download: the
    # tenant-side unseal must reject it, and the failure must surface as
    # security events (the sealer's mac_failure plus the service's
    # attack_detected) -- not just an exception.
    board = service.slots["board-0"].board
    original = board.shell.host_dma_read

    def tampering_read(address: int, length: int) -> bytes:
        data = original(address, length)
        return bytes([data[0] ^ 0xFF]) + data[1:] if length > 64 else data

    board.shell.host_dma_read = tampering_read
    try:
        service.run_until_idle()
    finally:
        board.shell.host_dma_read = original

    assert job.result is None  # the job failed
    attacks = obs.tracer.security_events("attack_detected")
    assert len(attacks) == 1
    assert attacks[0].tenant == "mallory"
    failures = obs.tracer.security_events("mac_failure")
    assert len(failures) >= 1
    assert failures[0].attrs["chunks"]
    job_span = obs.tracer.spans("job")[-1]
    assert job_span.attrs["completed"] is False


# ---------------------------------------------------------------------------
# Stats / fleet_summary are registry views
# ---------------------------------------------------------------------------


def test_stats_and_fleet_summary_derive_from_the_registry(obs):
    service = _service(num_boards=2)
    accel = VectorAddAccelerator(ACCEL_BYTES)
    session = service.admit_tenant("alice", accel)
    _run_jobs(service, session, accel, 3)

    assert service.stats.jobs_completed == 3
    assert service.stats.jobs_completed == int(
        service.metrics.counter_total("cloud.jobs_completed")
    )
    summary = service.fleet_summary()
    assert summary["jobs_completed"] == 3
    per_board_loads = service.metrics.counters_by_label("cloud.shield_loads", "board")
    for name, board in summary["boards"].items():
        assert board["shield_loads"] == int(per_board_loads.get(name, 0))


# ---------------------------------------------------------------------------
# Functional vs simulated conformance
# ---------------------------------------------------------------------------


def _conformance_signatures():
    """Run the same two-tenant workload functionally and simulated.

    One board serializes execution, so placement order equals stream order
    in both worlds; FIFO makes that order the submission order.  Pattern:
    alice, alice, bob, bob -- the second job of each tenant is a warm hit,
    and bob's first job evicts alice's Shield.
    """
    accel = VectorAddAccelerator(ACCEL_BYTES)
    order = ["alice", "alice", "bob", "bob"]

    with obs_api.scoped() as functional_obs:
        service = ShieldCloudService(num_boards=1, fast_crypto=True, policy="fifo")
        sessions = {
            tenant: service.admit_tenant(tenant, VectorAddAccelerator(ACCEL_BYTES))
            for tenant in ("alice", "bob")
        }
        for i, tenant in enumerate(order):
            service.submit_job(
                sessions[tenant].session_id,
                inputs=accel.prepare_inputs(seed=i),
            )
        service.run_until_idle()
        functional = lifecycle_signature(functional_obs.tracer.events)

    profile = accel.profile()
    config = accel.build_shield_config()
    trace = [
        TraceEvent(
            arrival_s=float(i), tenant=tenant, profile=profile, shield_config=config
        )
        for i, tenant in enumerate(order)
    ]
    with obs_api.scoped() as sim_obs:
        CloudSimulator(num_boards=1, policy="fifo").replay(trace)
        simulated = lifecycle_signature(sim_obs.tracer.events)
    return functional, simulated


def test_functional_and_simulated_traces_have_matching_signatures():
    functional, simulated = _conformance_signatures()
    assert len(functional) == 4 * len(JOB_STAGES)
    assert functional == simulated
    # Spot-check the semantics the signature is supposed to carry: warm
    # flags on the shield_load stages follow the eviction pattern.
    warm_flags = [w for name, _, w in functional if name == "shield_load"]
    assert warm_flags == [False, True, False, True]
    tenants = [t for name, t, _ in functional if name == "queue"]
    assert tenants == ["alice", "alice", "bob", "bob"]
