"""Policy conformance: one scheduling core, two consumers, zero divergence.

The same mixed-tenant job set runs under every policy in the zoo, through
both consumers of :mod:`repro.cloud.policies`:

* the functional :class:`~repro.cloud.service.ShieldCloudService` (real
  bytes, real crypto) -- asserting job conservation (no loss, no
  duplication) and the tenant-isolation invariant (``plaintext_exposures``
  stays empty), and
* the timed :class:`~repro.sim.cloud.CloudSimulator` -- asserting that the
  *same trace under the same policy* yields the same job order, the same
  board placements, and the same warm/cold decisions.

The lockstep comparisons run where the two worlds are commensurable: the
functional service executes serially, so the simulator is compared on a
single board (every policy-ordering decision exercised, queue fully loaded)
and on a multi-board fleet with serialized arrivals (every affinity-placement
decision exercised).  Both consumers import the selection and placement code
from the same module, so there is no duplicated scheduling logic left to
drift.
"""

from __future__ import annotations

import pytest

from repro.accelerators import (
    AffineTransformAccelerator,
    MatMulAccelerator,
    VectorAddAccelerator,
)
from repro.cloud import JobState, ShieldCloudService
from repro.cloud.policies import POLICY_NAMES
from repro.sim.cloud import CloudSimulator, TraceEvent

#: (tenant, input seed, priority) -- a deliberately adversarial interleaving:
#: one tenant floods early, priorities are non-monotonic, costs differ.
JOB_SPECS = [
    ("alice", 0, 0),
    ("alice", 1, 2),
    ("bob", 0, 1),
    ("carol", 0, 3),
    ("bob", 1, 0),
    ("carol", 1, 2),
]


def _accelerators():
    return {
        "alice": VectorAddAccelerator(8 * 1024),
        "bob": MatMulAccelerator(32),
        "carol": AffineTransformAccelerator(64),
    }


def _build_world(num_boards: int, policy: str):
    """A service with one session per tenant, plus per-tenant accelerators."""
    accelerators = _accelerators()
    service = ShieldCloudService(
        num_boards=num_boards, fast_crypto=True, policy=policy, affinity=True
    )
    sessions = {
        tenant: service.admit_tenant(tenant, accelerator)
        for tenant, accelerator in accelerators.items()
    }
    return service, sessions, accelerators


def _trace_and_costs(simulator, sessions, accelerators, specs, arrival_gap_s=0.0):
    """Matching TraceEvents (simulator) and cost estimates (service)."""
    events, costs = [], []
    for index, (tenant, _seed, priority) in enumerate(specs):
        accelerator = accelerators[tenant]
        # Profiles reference the paper-scale region names when one exists
        # (same pairing rule as default_mixed_trace).
        config = (
            accelerator.paper_shield_config()
            if hasattr(accelerator, "paper_shield_config")
            else accelerator.build_shield_config()
        )
        event = TraceEvent(
            arrival_s=index * arrival_gap_s,
            tenant=tenant,
            profile=accelerator.profile(),
            shield_config=config,
            session_id=sessions[tenant].session_id,
            priority=priority,
        )
        events.append(event)
        costs.append(simulator.execution_seconds(event))
    return events, costs


def _submit_all(service, sessions, accelerators, specs, costs):
    jobs = []
    for (tenant, seed, priority), cost in zip(specs, costs):
        accelerator = accelerators[tenant]
        jobs.append(
            service.submit_job(
                sessions[tenant].session_id,
                inputs=accelerator.prepare_inputs(seed=seed),
                priority=priority,
                cost_estimate=cost,
            )
        )
    return jobs


# ---------------------------------------------------------------------------
# Functional invariants under every policy
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("policy", POLICY_NAMES)
def test_job_conservation_and_isolation_under_every_policy(policy):
    service, sessions, accelerators = _build_world(num_boards=2, policy=policy)
    all_inputs = []
    jobs = []
    for tenant, seed, priority in JOB_SPECS:
        inputs = accelerators[tenant].prepare_inputs(seed=seed)
        all_inputs.append(inputs)
        jobs.append(
            service.submit_job(
                sessions[tenant].session_id, inputs=inputs, priority=priority
            )
        )
    finished = service.run_until_idle()

    # Conservation: every submitted job ran exactly once, none invented.
    assert sorted(job.job_id for job in finished) == sorted(job.job_id for job in jobs)
    assert len({job.job_id for job in finished}) == len(JOB_SPECS)
    assert all(job.state is JobState.COMPLETED for job in jobs), [
        (job.job_id, job.error) for job in jobs if job.state is not JobState.COMPLETED
    ]
    assert service.stats.jobs_submitted == len(JOB_SPECS)
    assert service.stats.jobs_submitted == (
        service.stats.jobs_completed
        + service.stats.jobs_failed
        + service.stats.jobs_cancelled
        + service.stats.jobs_rejected
    )
    # Per-tenant bills add up to the fleet totals (no cross-tenant bleed).
    per_tenant = sum(s.usage.jobs_completed for s in sessions.values())
    assert per_tenant == service.stats.jobs_completed

    # Isolation: the untrusted host never saw a byte of any tenant's inputs,
    # under any scheduling order.
    for inputs in all_inputs:
        for plaintext in inputs.values():
            assert service.plaintext_exposures(plaintext) == []


# ---------------------------------------------------------------------------
# Functional <-> simulator lockstep
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("policy", POLICY_NAMES)
def test_job_order_matches_simulator_on_a_loaded_single_board(policy):
    """All jobs queued up-front on one board: every ordering decision the
    policy makes must be identical in the functional run and the replay."""
    service, sessions, accelerators = _build_world(num_boards=1, policy=policy)
    simulator = CloudSimulator(num_boards=1, policy=policy, affinity=True)
    events, costs = _trace_and_costs(
        simulator, sessions, accelerators, JOB_SPECS, arrival_gap_s=0.0
    )
    jobs = _submit_all(service, sessions, accelerators, JOB_SPECS, costs)
    finished = service.run_until_idle()
    records = simulator.replay(events)

    assert len(finished) == len(records) == len(JOB_SPECS)
    functional = [(job.tenant, job.warm_start) for job in finished]
    simulated = [(record.tenant, record.warm) for record in records]
    assert functional == simulated
    assert all(job.state is JobState.COMPLETED for job in jobs)


@pytest.mark.parametrize("policy", POLICY_NAMES)
def test_placements_match_simulator_under_serialized_arrivals(policy):
    """Wide fleet, arrivals far apart: every warm-affinity *placement*
    decision must be identical in the functional run and the replay."""
    specs = [
        ("alice", 0, 1),
        ("alice", 1, 0),
        ("bob", 0, 2),
        ("alice", 2, 0),
        ("bob", 1, 1),
        ("alice", 3, 0),
    ]
    service, sessions, accelerators = _build_world(num_boards=3, policy=policy)
    simulator = CloudSimulator(num_boards=3, policy=policy, affinity=True)
    # Gaps far larger than any service time serialize the simulated fleet;
    # submitting and draining one job at a time serializes the functional
    # service the same way, so each placement decision in both worlds sees
    # one job and the same free-board / residency state.
    events, costs = _trace_and_costs(
        simulator, sessions, accelerators, specs, arrival_gap_s=10_000.0
    )
    jobs, finished = [], []
    for (tenant, seed, priority), cost in zip(specs, costs):
        accelerator = accelerators[tenant]
        jobs.append(
            service.submit_job(
                sessions[tenant].session_id,
                inputs=accelerator.prepare_inputs(seed=seed),
                priority=priority,
                cost_estimate=cost,
            )
        )
        finished.extend(service.run_until_idle())
    records = simulator.replay(events)

    functional = [
        (job.tenant, int(job.board_name.split("-")[1]), job.warm_start)
        for job in finished
    ]
    simulated = [(r.tenant, r.board, r.warm) for r in records]
    assert functional == simulated
    # The repeated tenant actually exercised affinity: at least one warm hit.
    assert any(job.warm_start for job in jobs)


# ---------------------------------------------------------------------------
# Indexed queues <-> linear scans
# ---------------------------------------------------------------------------


def _random_request(rng, seq: int):
    """Deliberately collision-heavy metadata: few distinct priorities,
    weights, and costs, so seq tie-breaks decide most picks -- exactly where
    an indexed queue could silently diverge from the linear scan."""
    from repro.cloud.policies import JobRequest

    return JobRequest(
        key=f"job-{seq}",
        tenant=f"tenant-{rng.randrange(4)}",
        session_id=f"session-{rng.randrange(6)}",
        seq=seq,
        priority=rng.randrange(3),
        weight=float(rng.choice((1, 2, 4))),
        cost_estimate=float(rng.choice((1.0, 2.5, 4.0))),
    )


@pytest.mark.parametrize("policy", POLICY_NAMES)
def test_indexed_queue_matches_linear_scan_on_randomized_queues(policy):
    """Every built-in policy's indexed queue must be *selection-identical*
    (seq tie-breaks included) to the linear ``select()`` scan it replaced.

    Two queues run the same randomized operation stream -- the policy's
    indexed queue and a :class:`~repro.cloud.policies.LinearPolicyQueue` over
    a second policy instance (fair-share keeps per-tenant served state, so
    each queue drives its own) -- and every pop, filtered pop, removal, and
    pending count must agree exactly.
    """
    import random

    from repro.cloud.policies import LinearPolicyQueue, make_policy

    policy_index = list(POLICY_NAMES).index(policy)
    for trial in range(8):
        rng = random.Random(1009 * (policy_index + 1) + trial)
        indexed_policy = make_policy(policy)
        linear_policy = make_policy(policy)
        indexed = indexed_policy.make_queue()
        linear = LinearPolicyQueue(linear_policy)
        # The point of the test is indexed-vs-linear: the built-ins must not
        # satisfy it trivially by vending a linear queue themselves.
        assert not isinstance(indexed, LinearPolicyQueue)
        seq = 0
        for _ in range(300):
            action = rng.random()
            if action < 0.55 or not len(indexed):
                seq += 1
                request = _random_request(rng, seq)
                # Payload mirrors the scheduler: the job object itself (the
                # ``remove`` predicate receives payloads, not requests).
                indexed.push(request, request)
                linear.push(request, request)
            elif action < 0.80:
                picked = indexed.pop()
                reference = linear.pop()
                assert (picked is None) == (reference is None)
                if picked is not None:
                    assert picked[0] == reference[0], (
                        f"{policy}: indexed picked {picked[0].key}, "
                        f"linear picked {reference[0].key}"
                    )
                    assert picked[1] == reference[1]
                    indexed_policy.record_service(picked[0])
                    linear_policy.record_service(reference[0])
            elif action < 0.92:
                # The async front-end's in-flight-session filter.
                blocked = f"session-{rng.randrange(6)}"
                eligible = lambda r, b=blocked: r.session_id != b  # noqa: E731
                picked = indexed.pop(eligible)
                reference = linear.pop(eligible)
                assert (picked is None) == (reference is None)
                if picked is not None:
                    assert picked[0] == reference[0]
                    assert picked[0].session_id != blocked
                    indexed_policy.record_service(picked[0])
                    linear_policy.record_service(reference[0])
            else:
                # Session-teardown cancellation.
                doomed = f"session-{rng.randrange(6)}"
                predicate = lambda r, d=doomed: r.session_id == d  # noqa: E731
                removed = {r.key for r, _ in indexed.remove(predicate)}
                expected = {r.key for r, _ in linear.remove(predicate)}
                assert removed == expected
            assert len(indexed) == len(linear)
            tenant = f"tenant-{rng.randrange(4)}"
            assert indexed.pending_for(tenant) == linear.pending_for(tenant)
        # Drain to empty: the full remaining order must agree.
        while len(linear):
            picked = indexed.pop()
            reference = linear.pop()
            assert picked is not None and picked[0] == reference[0]
            indexed_policy.record_service(picked[0])
            linear_policy.record_service(reference[0])
        assert indexed.pop() is None and linear.pop() is None
