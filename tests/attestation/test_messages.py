"""Attestation wire-message serialization tests."""

import pytest

from repro.attestation.messages import (
    AttestationChallenge,
    AttestationReport,
    EncryptedKeyDelivery,
    LoadKeyDelivery,
    SignedAttestationReport,
)
from repro.errors import ProtocolError


def make_report() -> AttestationReport:
    return AttestationReport(
        nonce=b"\x01" * 32,
        encrypted_bitstream_hash=b"\x02" * 32,
        attestation_public_key=b"\x04" + b"\x03" * 64,
        kernel_hash=b"\x04" * 32,
        kernel_certificate_signature=b"\x05" * 64,
        device_serial="fpga-007",
    )


def test_challenge_roundtrip():
    challenge = AttestationChallenge(nonce=b"\xaa" * 32, verification_public_key=b"\x04" + b"\xbb" * 64)
    restored = AttestationChallenge.deserialize(challenge.serialize())
    assert restored == challenge


def test_report_roundtrip():
    report = make_report()
    assert AttestationReport.deserialize(report.serialize()) == report


def test_report_canonical_bytes_stable():
    assert make_report().canonical_bytes() == make_report().canonical_bytes()


def test_signed_report_roundtrip():
    signed = SignedAttestationReport(
        report=make_report(), report_signature=b"\x06" * 64, session_key_signature=b"\x07" * 64
    )
    restored = SignedAttestationReport.deserialize(signed.serialize())
    assert restored.report == signed.report
    assert restored.report_signature == signed.report_signature
    assert restored.session_key_signature == signed.session_key_signature


def test_key_delivery_roundtrip():
    delivery = EncryptedKeyDelivery(sealed_payload=b"\x08" * 100)
    assert EncryptedKeyDelivery.deserialize(delivery.serialize()) == delivery


def test_load_key_roundtrip():
    load_key = LoadKeyDelivery(wrapped_key=b"\x09" * 128, shield_id="shield-7")
    restored = LoadKeyDelivery.deserialize(load_key.serialize())
    assert restored == load_key


def test_wrong_kind_rejected():
    challenge = AttestationChallenge(nonce=b"\x01" * 32, verification_public_key=b"\x02" * 65)
    with pytest.raises(ProtocolError):
        AttestationReport.deserialize(challenge.serialize())
    with pytest.raises(ProtocolError):
        LoadKeyDelivery.deserialize(challenge.serialize())


def test_garbage_rejected():
    with pytest.raises(ProtocolError):
        AttestationChallenge.deserialize(b"\xff\xfe not json")
