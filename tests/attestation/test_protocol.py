"""Remote-attestation protocol tests: happy path and every rejection branch.

These tests run the full Figure 3 exchange against a really-booted Security
Kernel on a provisioned (simulated) board.  They are the core security tests
of the boot/attestation half of ShEF.
"""

import pytest

from repro.attestation.channel import HostProxiedChannel
from repro.attestation.data_owner import DataOwner
from repro.attestation.ip_vendor import IpVendor
from repro.attestation.protocol import run_remote_attestation
from repro.boot.manufacturer import Manufacturer
from repro.boot.process import install_security_kernel, perform_secure_boot
from repro.errors import AttestationError, ProtocolError
from repro.hw.bitstream import Bitstream
from repro.hw.board import BoardModel, make_board
from tests.conftest import make_small_shield_config


@pytest.fixture(scope="module")
def attestation_world():
    """A provisioned board with a booted kernel and a vendor-packaged accelerator."""
    board = make_board(BoardModel.AWS_F1, serial="fpga-attest")
    manufacturer = Manufacturer(seed=21)
    provisioned = manufacturer.provision_device(board)
    install_security_kernel(board)
    kernel = perform_secure_boot(board).kernel

    vendor = IpVendor("attest-vendor", seed=22)
    vendor.trust_security_kernel(kernel.kernel_hash)
    config = make_small_shield_config("attest-shield")
    package = vendor.package_accelerator("widget", {"kind": "widget"}, config.to_dict())
    kernel.launch_shell(Bitstream("shell", "csp"))
    kernel.stage_encrypted_bitstream(package.encrypted_bitstream)
    return {
        "board": board,
        "manufacturer": manufacturer,
        "provisioned": provisioned,
        "kernel": kernel,
        "vendor": vendor,
        "package": package,
        "config": config,
    }


def run_protocol(world, channel=None, owner_seed=31):
    return run_remote_attestation(
        world["vendor"],
        DataOwner(seed=owner_seed),
        world["kernel"],
        "widget",
        world["provisioned"].device_certificate,
        world["manufacturer"].certificate_authority.root_public_key,
        channel=channel,
        shield_id=world["config"].shield_id,
    )


def test_happy_path_provisions_both_keys(attestation_world):
    outcome = run_protocol(attestation_world)
    # The kernel received the Bitstream Key: it can now decrypt and load.
    bitstream = attestation_world["kernel"].load_accelerator()
    assert bitstream.accelerator_name == "widget"
    # The Data Owner produced a Load Key bound to the right Shield.
    assert outcome.load_key.shield_id == attestation_world["config"].shield_id
    assert outcome.transcript_length == 4


def test_report_contains_device_and_kernel_identity(attestation_world):
    vendor = attestation_world["vendor"]
    kernel = attestation_world["kernel"]
    challenge, pending = vendor.begin_attestation("widget")
    from repro.attestation.messages import AttestationChallenge

    signed = kernel.handle_challenge(AttestationChallenge.deserialize(challenge.serialize()))
    assert signed.report.kernel_hash == kernel.kernel_hash
    assert signed.report.device_serial == attestation_world["board"].serial
    assert signed.report.nonce == pending.nonce
    assert signed.report.encrypted_bitstream_hash == attestation_world["package"].expected_bitstream_hash


def test_unknown_kernel_hash_rejected(attestation_world):
    strict_vendor = IpVendor("strict-vendor", seed=40)
    strict_vendor.package_accelerator(
        "widget", {"kind": "widget"}, attestation_world["config"].to_dict()
    )
    # This vendor never whitelisted the kernel hash.
    with pytest.raises(AttestationError, match="Security Kernel"):
        run_remote_attestation(
            strict_vendor,
            DataOwner(seed=41),
            attestation_world["kernel"],
            "widget",
            attestation_world["provisioned"].device_certificate,
            attestation_world["manufacturer"].certificate_authority.root_public_key,
        )


def test_wrong_bitstream_staged_rejected(attestation_world):
    vendor = attestation_world["vendor"]
    kernel = attestation_world["kernel"]
    other_package = vendor.package_accelerator(
        "widget-v2", {"kind": "widget", "version": 2}, attestation_world["config"].to_dict()
    )
    kernel.stage_encrypted_bitstream(other_package.encrypted_bitstream)
    try:
        with pytest.raises(AttestationError, match="bitstream"):
            run_protocol(attestation_world)
    finally:
        kernel.stage_encrypted_bitstream(attestation_world["package"].encrypted_bitstream)


def test_wrong_device_certificate_rejected(attestation_world):
    impostor_board = make_board(BoardModel.AWS_F1, serial="impostor")
    impostor_cert = attestation_world["manufacturer"].provision_device(impostor_board)
    with pytest.raises(AttestationError):
        run_remote_attestation(
            attestation_world["vendor"],
            DataOwner(seed=50),
            attestation_world["kernel"],
            "widget",
            impostor_cert.device_certificate,
            attestation_world["manufacturer"].certificate_authority.root_public_key,
        )


def test_wrong_manufacturer_root_rejected(attestation_world):
    rogue_ca = Manufacturer(seed=99).certificate_authority
    with pytest.raises(AttestationError):
        run_remote_attestation(
            attestation_world["vendor"],
            DataOwner(seed=51),
            attestation_world["kernel"],
            "widget",
            attestation_world["provisioned"].device_certificate,
            rogue_ca.root_public_key,
        )


def test_nonce_mismatch_rejected(attestation_world):
    vendor = attestation_world["vendor"]
    kernel = attestation_world["kernel"]
    from repro.attestation.messages import AttestationChallenge

    challenge_a, pending_a = vendor.begin_attestation("widget")
    _, pending_b = vendor.begin_attestation("widget")
    signed = kernel.handle_challenge(AttestationChallenge.deserialize(challenge_a.serialize()))
    with pytest.raises(AttestationError, match="nonce"):
        vendor.verify_report(
            pending_b,
            signed,
            attestation_world["provisioned"].device_certificate,
            attestation_world["manufacturer"].certificate_authority.root_public_key,
        )


def test_unpackaged_accelerator_rejected(attestation_world):
    with pytest.raises(AttestationError):
        attestation_world["vendor"].begin_attestation("never-packaged")


def test_bitstream_key_before_attestation_rejected(attestation_world):
    from repro.attestation.messages import EncryptedKeyDelivery
    from repro.boot.process import perform_secure_boot, install_security_kernel

    fresh_board = make_board(BoardModel.AWS_F1, serial="fresh")
    Manufacturer(seed=60).provision_device(fresh_board)
    install_security_kernel(fresh_board)
    fresh_kernel = perform_secure_boot(fresh_board).kernel
    with pytest.raises(AttestationError):
        fresh_kernel.receive_bitstream_key(EncryptedKeyDelivery(sealed_payload=b"\x00" * 80))


def test_dropped_message_surfaces_as_protocol_error(attestation_world):
    channel = HostProxiedChannel()
    channel.install_tamper_hook(lambda direction, message: None)
    with pytest.raises(ProtocolError):
        run_protocol(attestation_world, channel=channel)


def test_attestation_counter_increments(attestation_world):
    before = attestation_world["kernel"].attestations_served
    run_protocol(attestation_world, owner_seed=77)
    assert attestation_world["kernel"].attestations_served == before + 1
