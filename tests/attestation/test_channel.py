"""Untrusted host-proxied channel tests."""

import pytest

from repro.attestation.channel import HostProxiedChannel
from repro.errors import ProtocolError


def test_send_receive_fifo_order():
    channel = HostProxiedChannel()
    channel.send("to_device", b"first")
    channel.send("to_device", b"second")
    assert channel.receive("to_device") == b"first"
    assert channel.receive("to_device") == b"second"


def test_directions_are_independent():
    channel = HostProxiedChannel()
    channel.send("to_device", b"down")
    channel.send("to_remote", b"up")
    assert channel.pending("to_device") == 1
    assert channel.receive("to_remote") == b"up"


def test_unknown_direction_rejected():
    channel = HostProxiedChannel()
    with pytest.raises(ProtocolError):
        channel.send("sideways", b"x")
    with pytest.raises(ProtocolError):
        channel.receive("sideways")


def test_receive_empty_raises():
    with pytest.raises(ProtocolError):
        HostProxiedChannel().receive("to_device")


def test_tamper_hook_can_modify_and_drop():
    channel = HostProxiedChannel()

    def hook(direction, message):
        if message == b"drop me":
            return None
        if message == b"change me":
            return b"changed"
        return message

    channel.install_tamper_hook(hook)
    channel.send("to_device", b"drop me")
    channel.send("to_device", b"change me")
    channel.send("to_device", b"leave me")
    assert channel.pending("to_device") == 2
    assert channel.receive("to_device") == b"changed"
    assert channel.receive("to_device") == b"leave me"
    assert channel.stats.dropped == 1
    assert channel.stats.tampered == 1
    assert channel.stats.delivered == 2


def test_transcript_records_delivered_messages():
    channel = HostProxiedChannel()
    channel.send("to_device", b"a")
    channel.send("to_remote", b"b")
    assert channel.transcript == [("to_device", b"a"), ("to_remote", b"b")]
