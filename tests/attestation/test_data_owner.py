"""Data Owner tests: key generation, Load-Key wrapping, data sealing."""

import pytest

from repro.attestation.data_owner import DataOwner
from repro.crypto.rsa import rsa_decrypt
from repro.errors import AttestationError, IntegrityError
from tests.conftest import make_small_shield_config


@pytest.fixture()
def owner():
    return DataOwner("owner", seed=13)


@pytest.fixture()
def config():
    return make_small_shield_config("owner-shield")


def test_generate_and_lookup_data_key(owner):
    key = owner.generate_data_key("shield-a")
    assert owner.data_key("shield-a") is key
    assert key.bits == 256
    with pytest.raises(AttestationError):
        owner.data_key("shield-b")


def test_distinct_shields_get_distinct_keys(owner):
    a = owner.generate_data_key("shield-a")
    b = owner.generate_data_key("shield-b")
    assert a.material != b.material


def test_wrap_load_key_unwraps_to_data_key(owner, rsa_key):
    owner.generate_data_key("shield-a")
    delivery = owner.wrap_load_key(rsa_key.public_key.encode(), "shield-a")
    assert delivery.shield_id == "shield-a"
    assert rsa_decrypt(rsa_key, delivery.wrapped_key) == owner.data_key("shield-a").material


def test_wrap_load_key_not_decryptable_by_other_key(owner, rsa_key, small_rsa_key):
    owner.generate_data_key("shield-a")
    delivery = owner.wrap_load_key(rsa_key.public_key.encode(), "shield-a")
    with pytest.raises(Exception):
        rsa_decrypt(small_rsa_key, delivery.wrapped_key)


def test_seal_and_unseal_region_data(owner, config):
    owner.generate_data_key(config.shield_id)
    plaintext = bytes(range(256)) * 5
    staged = owner.seal_input(config, "input", plaintext, shield_id=config.shield_id)
    assert staged.plaintext_length == len(plaintext)
    assert plaintext not in staged.flat_ciphertext()
    recovered = owner.unseal_output(
        config, "input", staged.sealed_chunks, length=len(plaintext), shield_id=config.shield_id
    )
    assert recovered == plaintext


def test_unseal_detects_tampered_chunk(owner, config):
    owner.generate_data_key(config.shield_id)
    staged = owner.seal_input(config, "input", b"q" * 600, shield_id=config.shield_id)
    staged.sealed_chunks[0].ciphertext = b"\x00" * len(staged.sealed_chunks[0].ciphertext)
    with pytest.raises(IntegrityError):
        owner.unseal_output(config, "input", staged.sealed_chunks, shield_id=config.shield_id)


def test_sealed_chunks_from_device_reconstruction(owner, config):
    owner.generate_data_key(config.shield_id)
    plaintext = b"reconstruct me please" * 30
    staged = owner.seal_input(config, "input", plaintext, shield_id=config.shield_id)
    rebuilt = DataOwner.sealed_chunks_from_device(
        config, "input", staged.flat_ciphertext(), staged.tags()
    )
    assert owner.unseal_output(
        config, "input", rebuilt, length=len(plaintext), shield_id=config.shield_id
    ) == plaintext


def test_register_channel_uses_shield_key(owner, config):
    owner.generate_data_key(config.shield_id)
    client = owner.register_channel(config, shield_id=config.shield_id)
    blob = client.seal_write(2, b"\x00\x00\x00\x2a")
    assert isinstance(blob, bytes) and len(blob) > 40
