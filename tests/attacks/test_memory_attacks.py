"""Threat-model tests: spoofing, splicing, and replay on device DRAM."""

import pytest

from repro.attacks.memory_attacks import (
    corrupt_tag,
    read_chunk_raw,
    replay_chunk,
    snoop_region,
    splice_chunks,
    spoof_chunk,
)
from repro.errors import IntegrityError
from tests.conftest import make_small_shield_config
from repro.sim.simulator import build_test_shield


@pytest.fixture()
def loaded_shield(provisioned_shield):
    """A provisioned Shield with known plaintext staged in the input region."""
    harness = provisioned_shield
    config = harness.shield_config
    plaintext = bytes((i * 31 + 5) % 256 for i in range(4096))
    staged = harness.data_owner.seal_input(config, "input", plaintext, shield_id=config.shield_id)
    region = config.region("input")
    harness.board.shell.host_dma_write(region.base_address, staged.flat_ciphertext())
    for chunk in staged.sealed_chunks:
        harness.board.shell.host_dma_write(config.tag_address(region, chunk.chunk_index), chunk.tag)
    return harness, plaintext


def test_unmodified_memory_reads_fine(loaded_shield):
    harness, plaintext = loaded_shield
    assert harness.shield.memory_read(0, 4096) == plaintext


def test_spoofed_chunk_detected(loaded_shield):
    harness, _ = loaded_shield
    spoof_chunk(harness.board.device_memory, harness.shield_config, "input", chunk_index=2)
    with pytest.raises(IntegrityError):
        harness.shield.memory_read(2 * 256, 256)
    assert harness.shield.stats().integrity_failures == 1


def test_corrupted_tag_detected(loaded_shield):
    harness, _ = loaded_shield
    corrupt_tag(harness.board.device_memory, harness.shield_config, "input", chunk_index=0)
    with pytest.raises(IntegrityError):
        harness.shield.memory_read(0, 64)


def test_spliced_chunk_detected(loaded_shield):
    harness, _ = loaded_shield
    # Copy chunk 1's perfectly valid (ciphertext, tag) pair over chunk 3.
    splice_chunks(harness.board.device_memory, harness.shield_config, "input", 1, 3)
    # Chunk 1 itself still verifies...
    harness.shield.memory_read(256, 256)
    # ...but the relocated copy must not.
    with pytest.raises(IntegrityError):
        harness.shield.memory_read(3 * 256, 256)


def test_untampered_chunks_still_readable_after_attack(loaded_shield):
    harness, plaintext = loaded_shield
    spoof_chunk(harness.board.device_memory, harness.shield_config, "input", chunk_index=15)
    assert harness.shield.memory_read(0, 256) == plaintext[:256]


def test_replay_detected_on_protected_region(provisioned_shield):
    harness = provisioned_shield
    shield = harness.shield
    config = harness.shield_config
    # The accelerator writes version 1 of a chunk, the attacker snapshots it,
    # the accelerator overwrites it with version 2, and the attacker rolls
    # DRAM back to the stale snapshot.
    shield.memory_write(4096, b"\x01" * 256)
    shield.flush()
    snapshot = read_chunk_raw(harness.board.device_memory, config, "output", 0)
    shield.memory_write(4096, b"\x02" * 256)
    shield.flush()
    # Invalidate the on-chip copy so the next read really goes to DRAM.
    shield.pipeline("output").buffer.invalidate()
    replay_chunk(harness.board.device_memory, config, snapshot)
    with pytest.raises(IntegrityError):
        shield.memory_read(4096, 256)


def test_replay_not_detected_without_counters():
    """Negative control: without integrity counters the replay goes unnoticed.

    This is exactly the vulnerability the paper's counters (or a Merkle tree)
    exist to close, so the unprotected configuration must accept stale data.
    """
    config = make_small_shield_config(replay_protected_output=False)
    harness = build_test_shield(config)
    shield = harness.shield
    shield.memory_write(4096, b"\x01" * 256)
    shield.flush()
    snapshot = read_chunk_raw(harness.board.device_memory, config, "output", 0)
    shield.memory_write(4096, b"\x02" * 256)
    shield.flush()
    shield.pipeline("output").buffer.invalidate()
    replay_chunk(harness.board.device_memory, config, snapshot)
    assert shield.memory_read(4096, 256) == b"\x01" * 256  # stale data accepted


def test_snooped_region_is_ciphertext_only(loaded_shield):
    harness, plaintext = loaded_shield
    dump = snoop_region(harness.board.device_memory, harness.shield_config, "input")
    assert plaintext[:64] not in dump
    assert plaintext not in dump
