"""Malicious-Shell (bus) attacks and attestation man-in-the-middle attacks."""

import pytest

from repro.attacks.bus_attacks import SnoopingShellAttack, TamperingShellAttack
from repro.attacks.mitm import (
    ReplayRecorder,
    corrupt_report_hook,
    drop_key_delivery_hook,
    redirect_load_key_hook,
    swap_bitstream_hash_hook,
)
from repro.attestation.channel import HostProxiedChannel
from repro.attestation.data_owner import DataOwner
from repro.attestation.ip_vendor import IpVendor
from repro.attestation.protocol import run_remote_attestation
from repro.boot.manufacturer import Manufacturer
from repro.boot.process import install_security_kernel, perform_secure_boot
from repro.errors import AttestationError, IntegrityError, ProtocolError
from repro.hw.bitstream import Bitstream
from repro.hw.board import BoardModel, make_board
from tests.conftest import make_small_shield_config


# -- malicious Shell ---------------------------------------------------------------


def test_snooping_shell_sees_only_ciphertext(provisioned_shield):
    harness = provisioned_shield
    attack = SnoopingShellAttack(harness.board.shell)
    config = harness.shield_config
    secret = b"SOCIAL-SECURITY-NUMBERS!" * 32  # 3 full chunks
    # Data Owner seals, host DMAs, Shield decrypts for the accelerator, then
    # the accelerator writes results back out through the Shield.
    staged = harness.data_owner.seal_input(config, "input", secret, shield_id=config.shield_id)
    region = config.region("input")
    harness.board.shell.host_dma_write(region.base_address, staged.flat_ciphertext())
    for chunk in staged.sealed_chunks:
        harness.board.shell.host_dma_write(config.tag_address(region, chunk.chunk_index), chunk.tag)
    recovered = harness.shield.memory_read(0, len(secret))
    assert recovered == secret
    harness.shield.memory_write(4096, recovered[:256])
    harness.shield.flush()
    # The malicious Shell observed DMA, register, and memory traffic -- none of
    # it contains the plaintext.
    assert len(attack.records) > 0
    assert not attack.saw_plaintext([secret, secret[:64], b"SOCIAL-SECURITY"])


def test_tampering_shell_detected_on_readback(provisioned_shield):
    harness = provisioned_shield
    attack = TamperingShellAttack(
        harness.board.shell, target_base=4096, target_size=4096
    )
    attack.install()
    harness.shield.memory_write(4096, b"\x42" * 256)
    harness.shield.flush()  # the Shell corrupts the ciphertext write in flight
    assert attack.tampered_bursts > 0
    harness.shield.pipeline("output").buffer.invalidate()
    with pytest.raises(IntegrityError):
        harness.shield.memory_read(4096, 256)


# -- attestation MITM ------------------------------------------------------------------


@pytest.fixture(scope="module")
def mitm_world():
    board = make_board(BoardModel.AWS_F1, serial="fpga-mitm")
    manufacturer = Manufacturer(seed=71)
    provisioned = manufacturer.provision_device(board)
    install_security_kernel(board)
    kernel = perform_secure_boot(board).kernel
    vendor = IpVendor("mitm-vendor", seed=72)
    vendor.trust_security_kernel(kernel.kernel_hash)
    config = make_small_shield_config("mitm-shield")
    package = vendor.package_accelerator("victim", {"kind": "victim"}, config.to_dict())
    kernel.launch_shell(Bitstream("shell", "csp"))
    kernel.stage_encrypted_bitstream(package.encrypted_bitstream)
    return {
        "manufacturer": manufacturer,
        "provisioned": provisioned,
        "kernel": kernel,
        "vendor": vendor,
        "package": package,
        "config": config,
    }


def run_with_hook(world, hook, owner_seed=80):
    channel = HostProxiedChannel()
    if hook is not None:
        channel.install_tamper_hook(hook)
    return run_remote_attestation(
        world["vendor"],
        DataOwner(seed=owner_seed),
        world["kernel"],
        "victim",
        world["provisioned"].device_certificate,
        world["manufacturer"].certificate_authority.root_public_key,
        channel=channel,
        shield_id=world["config"].shield_id,
    )


def test_clean_channel_succeeds(mitm_world):
    outcome = run_with_hook(mitm_world, None, owner_seed=81)
    assert outcome.load_key.shield_id == "mitm-shield"


def test_corrupted_report_rejected(mitm_world):
    with pytest.raises(AttestationError):
        run_with_hook(mitm_world, corrupt_report_hook, owner_seed=82)


def test_swapped_bitstream_hash_rejected(mitm_world):
    hook = swap_bitstream_hash_hook(b"\x99" * 32)
    with pytest.raises(AttestationError):
        run_with_hook(mitm_world, hook, owner_seed=83)


def test_replayed_stale_report_rejected(mitm_world):
    recorder = ReplayRecorder()
    # First run: the attacker records the genuine signed report.
    channel = HostProxiedChannel()
    channel.install_tamper_hook(recorder.record_hook)
    run_remote_attestation(
        mitm_world["vendor"],
        DataOwner(seed=84),
        mitm_world["kernel"],
        "victim",
        mitm_world["provisioned"].device_certificate,
        mitm_world["manufacturer"].certificate_authority.root_public_key,
        channel=channel,
        shield_id="mitm-shield",
    )
    assert recorder.recorded_report is not None
    # Second run: the attacker substitutes the stale report; the fresh nonce
    # inside the vendor's new challenge no longer matches.
    with pytest.raises(AttestationError, match="nonce|replay"):
        run_with_hook(mitm_world, recorder.replay_hook, owner_seed=85)
    assert recorder.replays == 1


def test_redirected_load_key_rejected(mitm_world):
    with pytest.raises(AttestationError, match="redirect"):
        run_with_hook(mitm_world, redirect_load_key_hook("attacker-shield"), owner_seed=86)


def test_dropped_key_delivery_detected(mitm_world):
    with pytest.raises(ProtocolError):
        run_with_hook(mitm_world, drop_key_delivery_hook, owner_seed=87)


def test_mitm_cannot_learn_bitstream_key(mitm_world):
    """The Bitstream Key crosses the host sealed under the session key."""
    observed = []

    def observer(direction, message):
        observed.append(message)
        return message

    run_with_hook(mitm_world, observer, owner_seed=88)
    bitstream_key = mitm_world["vendor"].bitstream_key.material
    assert all(bitstream_key not in message for message in observed)
