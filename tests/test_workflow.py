"""End-to-end workflow tests: the full Figure 2 deployment on a simulated board."""

import pytest

from repro.accelerators.base import ShieldMemoryAdapter
from repro.accelerators.vector_add import VectorAddAccelerator
from repro.workflow import deploy_accelerator


@pytest.fixture(scope="module")
def deployment():
    accelerator = VectorAddAccelerator(vector_bytes=8192)
    return accelerator, deploy_accelerator(
        "vector_add",
        accelerator.build_shield_config(sbox_parallelism=4),
        board_serial="fpga-e2e",
        vendor_name="e2e-vendor",
        owner_name="e2e-owner",
    )


def test_deployment_reaches_operational_shield(deployment):
    _, deployed = deployment
    assert deployed.shield.operational
    assert deployed.driver.state.accelerator_loaded
    assert deployed.security_kernel.loaded_bitstream.accelerator_name == "vector_add"
    assert deployed.boot_result.total_seconds > 0
    assert deployed.total_deploy_seconds >= deployed.boot_result.total_seconds
    assert deployed.attestation.transcript_length == 4


def test_security_kernel_never_holds_device_secrets(deployment):
    _, deployed = deployment
    assert not deployed.security_kernel.holds_device_secrets()
    private_memory = deployed.board.security_kernel_processor.private_memory
    # The kernel's private memory contains the Attestation Key, never the
    # AES device key or the private device key.
    assert "attestation_key" in private_memory
    assert all("device" not in key or key == "device_serial" for key in private_memory)


def test_end_to_end_computation_over_sealed_data(deployment):
    accelerator, deployed = deployment
    config = deployed.shield_config
    owner = deployed.data_owner
    runtime = deployed.host_runtime

    inputs = accelerator.prepare_inputs(seed=123)
    for region_name, plaintext in inputs.items():
        staged = owner.seal_input(config, region_name, plaintext, shield_id=config.shield_id)
        runtime.upload_region(staged)

    result = accelerator.run(ShieldMemoryAdapter(deployed.shield))
    deployed.shield.flush()

    # Independently recompute the expected sums from the plaintext inputs.
    import numpy as np

    for part in range(4):
        a = np.frombuffer(inputs[f"a{part}"], dtype=np.int32)
        b = np.frombuffer(inputs[f"b{part}"], dtype=np.int32)
        assert np.array_equal(result.outputs[f"c{part}"], a + b)

    # Device DRAM never holds the plaintext inputs.
    raw = deployed.board.device_memory.tamper_read(0, 3 * 8192)
    assert inputs["a0"][:64] not in raw


def test_host_and_shell_observed_no_plaintext(deployment):
    accelerator, deployed = deployment
    observed = b"".join(
        blob
        for entry in deployed.host_runtime.log.observed_blobs
        for blob in entry
        if isinstance(blob, bytes)
    )
    inputs = accelerator.prepare_inputs(seed=123)
    assert inputs["a0"][:64] not in observed


def test_deployment_phase_breakdown(deployment):
    _, deployed = deployment
    assert set(deployed.phase_seconds) >= {"boot_rom", "firmware", "attestation"}
    assert deployed.phase_seconds["attestation"] > 0
