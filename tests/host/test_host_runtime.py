"""Host runtime and FPGA driver tests (the untrusted data movers)."""

import pytest

from repro.boot.manufacturer import Manufacturer
from repro.core.config import MAC_TAG_BYTES
from repro.errors import BitstreamError, BootError
from repro.host.driver import FpgaDriver
from repro.host.runtime import ShefHostRuntime
from repro.hw.board import BoardModel, make_board
from tests.conftest import make_small_shield_config


def test_driver_boot_and_describe():
    board = make_board(BoardModel.AWS_F1, serial="driver-board")
    Manufacturer(seed=33).provision_device(board)
    driver = FpgaDriver(board)
    with pytest.raises(BootError):
        _ = driver.security_kernel
    result = driver.reset_and_boot()
    assert driver.state.booted
    driver.load_shell()
    assert driver.state.shell_loaded
    info = driver.describe_image()
    assert info["booted"] and info["shell_loaded"] and not info["accelerator_loaded"]
    assert info["boot_seconds"] == pytest.approx(result.total_seconds)


def test_driver_cannot_load_accelerator_without_key():
    board = make_board(BoardModel.AWS_F1, serial="driver-board-2")
    Manufacturer(seed=34).provision_device(board)
    driver = FpgaDriver(board)
    driver.reset_and_boot()
    driver.load_shell()
    from repro.attestation.ip_vendor import IpVendor

    vendor = IpVendor("driver-vendor", seed=35)
    package = vendor.package_accelerator(
        "thing", {"kind": "thing"}, make_small_shield_config().to_dict()
    )
    driver.stage_accelerator(package.encrypted_bitstream)
    # Without the attested Bitstream Key delivery, loading must fail.
    with pytest.raises(BitstreamError):
        driver.load_accelerator()


def test_runtime_uploads_and_downloads_sealed_regions(provisioned_shield):
    harness = provisioned_shield
    config = harness.shield_config
    runtime = ShefHostRuntime(harness.board.shell, config)

    plaintext = bytes((7 * i) % 256 for i in range(1024))
    staged = harness.data_owner.seal_input(config, "input", plaintext, shield_id=config.shield_id)
    runtime.upload_region(staged)
    assert runtime.log.bytes_uploaded >= len(plaintext)
    # The Shield can read what the host uploaded.
    assert harness.shield.memory_read(0, 1024) == plaintext

    # The accelerator produces output; the host downloads sealed chunks.
    harness.shield.memory_write(4096, plaintext[:512])
    harness.shield.flush()
    ciphertext, tags = runtime.download_region("output", num_chunks=2)
    assert len(ciphertext) == 512 and len(tags) == 2 and all(len(t) == MAC_TAG_BYTES for t in tags)
    chunks = harness.data_owner.sealed_chunks_from_device(config, "output", ciphertext, tags)
    recovered = harness.data_owner.unseal_output_with_versions(
        config, "output", chunks, versions=[1, 1], length=512, shield_id=config.shield_id
    )
    assert recovered == plaintext[:512]


def test_offset_chunk_download_unseals(provisioned_shield):
    """Regression: chunks fetched with ``offset_chunks != 0`` must be rebuilt
    with their true region-relative indices, or MAC verification fails (the
    tag binds the chunk's absolute address and the IV encodes its index)."""
    harness = provisioned_shield
    config = harness.shield_config
    runtime = ShefHostRuntime(harness.board.shell, config)

    plaintext = bytes((3 * i + 1) % 256 for i in range(1024))  # 4 chunks of 256
    harness.shield.memory_write(4096, plaintext)
    harness.shield.flush()

    # Download only chunks 2..3 of the output region.
    ciphertext, tags = runtime.download_region("output", num_chunks=2, offset_chunks=2)
    chunks = harness.data_owner.sealed_chunks_from_device(
        config, "output", ciphertext, tags, offset_chunks=2
    )
    assert [c.chunk_index for c in chunks] == [2, 3]
    recovered = harness.data_owner.unseal_output_with_versions(
        config, "output", chunks, versions=[1, 1], length=512, shield_id=config.shield_id
    )
    assert recovered == plaintext[512:]


def test_runtime_register_command_roundtrip(provisioned_shield):
    harness = provisioned_shield
    runtime = ShefHostRuntime(harness.board.shell, harness.shield_config)
    client = harness.data_owner.register_channel(
        harness.shield_config, shield_id=harness.shield_config.shield_id
    )
    status = runtime.send_register_command(client.seal_write(4, b"\x00\x00\x01\x00"))
    assert runtime.command_accepted(status)
    assert harness.shield.register_file.read_register(4) == b"\x00\x00\x01\x00"

    status = runtime.send_register_command(client.seal_read_request(4))
    assert runtime.command_accepted(status)
    response = runtime.fetch_register_response(harness.shield.register_file.outbox_size())
    assert client.open_read_response(response) == b"\x00\x00\x01\x00"


def test_runtime_never_observes_plaintext(provisioned_shield):
    harness = provisioned_shield
    config = harness.shield_config
    runtime = ShefHostRuntime(harness.board.shell, config)
    secret = b"HOST-MUST-NOT-SEE-THIS!!" * 32  # 3 chunks
    staged = harness.data_owner.seal_input(config, "input", secret, shield_id=config.shield_id)
    runtime.upload_region(staged)
    client = harness.data_owner.register_channel(config, shield_id=config.shield_id)
    runtime.send_register_command(client.seal_write(0, b"\x00\x00\x00\x01"))
    observed = b"".join(
        blob for entry in runtime.log.observed_blobs for blob in entry if isinstance(blob, bytes)
    )
    assert b"HOST-MUST-NOT-SEE-THIS" not in observed
    assert secret not in observed


def test_runtime_rejects_oversized_register_command(provisioned_shield):
    runtime = ShefHostRuntime(provisioned_shield.board.shell, provisioned_shield.shield_config)
    from repro.errors import ShieldError

    with pytest.raises(ShieldError):
        runtime.send_register_command(b"\x00" * 0x2000)
