"""Scalar-vs-batched MAC fast path on a 1 MiB region seal+unseal round-trip.

Acceptance gate for the batched authentication path: sealing and unsealing a
full 1 MiB region -- AES-CTR *and* the per-chunk MAC tags -- must be at least
5x faster through a fast-crypto :class:`~repro.core.sealing.RegionSealer`
than through the scalar reference, while producing byte-identical ciphertext
and tags.  A second measurement isolates the MAC engines themselves
(:meth:`~repro.core.engines.MacEngine.tag_many` over one region's worth of
chunk-MAC messages), since after PR 1 the scalar per-chunk MAC was the hot
path's dominant term.  Both speedups land in ``BENCH_fastpath.json`` for the
CI artifact.
"""

from __future__ import annotations

import time

import repro.obs as obs_api
from benchmarks.conftest import crypto_percentiles, random_bytes, record_fastpath_speedup
from repro.core.config import EngineSetConfig, RegionConfig
from repro.core.engines import MacEngine
from repro.core.sealing import RegionSealer

REGION_BYTES = 1 << 20
CHUNK_BYTES = 4096
MIN_ROUND_TRIP_SPEEDUP = 5.0
MIN_MAC_SPEEDUP = 2.0


def _sealer(fast: bool, obs=None) -> RegionSealer:
    region = RegionConfig(
        name="bench", base_address=0, size_bytes=REGION_BYTES, chunk_size=CHUNK_BYTES,
        engine_set="es",
    )
    return RegionSealer(
        b"\x24" * 32, region, EngineSetConfig(name="es", fast_crypto=fast), obs=obs
    )


def test_region_seal_unseal_with_macs_is_5x_faster_and_identical():
    plaintext = random_bytes(10, REGION_BYTES)

    # A live metrics registry so the sealers' own seal/unseal histograms
    # capture per-path stage timings for the BENCH artifact.
    obs = obs_api.Observability(metrics=obs_api.MetricsRegistry())
    scalar_sealer = _sealer(False, obs=obs)
    fast_sealer = _sealer(True, obs=obs)
    # Warm the vectorized key schedules so setup cost is not in the timing.
    fast_sealer.seal_chunk(0, plaintext[:CHUNK_BYTES])

    start = time.perf_counter()
    scalar_sealed = scalar_sealer.seal_region_data(plaintext)
    scalar_plain = scalar_sealer.unseal_region_data(scalar_sealed, REGION_BYTES)
    scalar_seconds = time.perf_counter() - start

    def fast_round_trip():
        start = time.perf_counter()
        sealed = fast_sealer.seal_region_data(plaintext)
        plain = fast_sealer.unseal_region_data(sealed, REGION_BYTES)
        return time.perf_counter() - start, sealed, plain

    # The fast pass is sub-second; best of two passes absorbs CI scheduling noise.
    fast_seconds, fast_sealed, fast_plain = fast_round_trip()
    fast_seconds = min(fast_seconds, fast_round_trip()[0])

    assert [c.ciphertext for c in scalar_sealed] == [c.ciphertext for c in fast_sealed]
    assert [c.tag for c in scalar_sealed] == [c.tag for c in fast_sealed]
    assert scalar_plain == fast_plain == plaintext

    speedup = scalar_seconds / fast_seconds
    print(
        f"\n1 MiB seal+unseal (AES + MAC tags): scalar {scalar_seconds:.2f}s, "
        f"fast {fast_seconds:.3f}s, speedup {speedup:.0f}x"
    )
    record_fastpath_speedup(
        "region_seal_unseal_1mib_with_macs",
        speedup,
        scalar_seconds=round(scalar_seconds, 3),
        fast_seconds=round(fast_seconds, 4),
        stages=crypto_percentiles(obs.metrics),
    )
    assert speedup >= MIN_ROUND_TRIP_SPEEDUP, (
        f"batched seal+unseal only {speedup:.1f}x faster "
        f"(need >= {MIN_ROUND_TRIP_SPEEDUP}x)"
    )


def _mac_messages() -> list:
    # One region's worth of chunk-MAC messages: 22-byte context + chunk ciphertext.
    data = random_bytes(11, REGION_BYTES)
    context = b"shef-chunk" + bytes(12)
    return [
        context + data[offset : offset + CHUNK_BYTES]
        for offset in range(0, REGION_BYTES, CHUNK_BYTES)
    ]


def test_batched_hmac_engine_is_faster_and_identical():
    key = random_bytes(12, 32)
    messages = _mac_messages()
    scalar_engine = MacEngine(key, "HMAC", fast_crypto=False)
    fast_engine = MacEngine(key, "HMAC", fast_crypto=True)

    start = time.perf_counter()
    scalar_tags = scalar_engine.tag_many(messages)
    scalar_seconds = time.perf_counter() - start

    start = time.perf_counter()
    fast_tags = fast_engine.tag_many(messages)
    fast_seconds = time.perf_counter() - start
    start = time.perf_counter()
    fast_engine.tag_many(messages)
    fast_seconds = min(fast_seconds, time.perf_counter() - start)

    assert scalar_tags == fast_tags, "batched HMAC must be byte-identical"
    speedup = scalar_seconds / fast_seconds
    print(
        f"\n1 MiB of chunk MACs (HMAC): scalar {scalar_seconds:.2f}s, "
        f"fast {fast_seconds:.3f}s, speedup {speedup:.0f}x"
    )
    record_fastpath_speedup(
        "hmac_tag_many_1mib",
        speedup,
        scalar_seconds=round(scalar_seconds, 3),
        fast_seconds=round(fast_seconds, 4),
    )
    assert speedup >= MIN_MAC_SPEEDUP, (
        f"batched HMAC only {speedup:.1f}x faster (need >= {MIN_MAC_SPEEDUP}x)"
    )


def test_batched_pmac_engine_is_faster_and_identical():
    # PMAC's scalar reference encrypts block-at-a-time in pure Python, so a
    # quarter region keeps the baseline measurement affordable.
    key = random_bytes(13, 32)
    messages = _mac_messages()[:64]
    scalar_engine = MacEngine(key, "PMAC", fast_crypto=False)
    fast_engine = MacEngine(key, "PMAC", fast_crypto=True)

    start = time.perf_counter()
    scalar_tags = scalar_engine.tag_many(messages)
    scalar_seconds = time.perf_counter() - start

    start = time.perf_counter()
    fast_tags = fast_engine.tag_many(messages)
    fast_seconds = time.perf_counter() - start

    assert scalar_tags == fast_tags, "batched PMAC must be byte-identical"
    speedup = scalar_seconds / fast_seconds
    print(
        f"\n256 KiB of chunk MACs (PMAC): scalar {scalar_seconds:.2f}s, "
        f"fast {fast_seconds:.3f}s, speedup {speedup:.0f}x"
    )
    record_fastpath_speedup(
        "pmac_tag_many_256kib",
        speedup,
        scalar_seconds=round(scalar_seconds, 3),
        fast_seconds=round(fast_seconds, 4),
    )
    assert speedup >= MIN_MAC_SPEEDUP, (
        f"batched PMAC only {speedup:.1f}x faster (need >= {MIN_MAC_SPEEDUP}x)"
    )
