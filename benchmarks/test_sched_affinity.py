"""Warm-board affinity on a repeated-tenant trace: the makespan ratio gate.

The paper's Section 6.1 prices a Shield load (partial reconfiguration +
Load-Key delivery) at ~6.2 s on AWS F1 -- for short jobs that is the whole
bill.  This benchmark replays a repeated-tenant trace through the timed
:class:`~repro.sim.cloud.CloudSimulator` with affinity on and off: warm
placement must collapse the N-per-trace reconfigurations to one per board
and cut makespan accordingly.  The measured ratio (plus the functional
serving layer's wall-clock on the same shape of workload) lands in
``BENCH_sched.json`` for the CI artifact, next to ``BENCH_fastpath.json``.
"""

from __future__ import annotations

import time

from benchmarks.conftest import record_sched_metric, stage_percentiles
from repro.sim.cloud import CloudSimulator, repeated_tenant_trace

NUM_JOBS = 12
NUM_BOARDS = 2
#: Reconfiguration dominates short jobs: with one tenant on two boards the
#: cold run pays NUM_JOBS loads, the warm run pays NUM_BOARDS.  Demand most
#: of that theoretical win (exec time and queueing keep it below the ideal).
MIN_MAKESPAN_RATIO = 2.0


def test_affinity_makespan_ratio_on_repeated_tenant_trace():
    trace = repeated_tenant_trace(num_jobs=NUM_JOBS)
    warm_sim = CloudSimulator(num_boards=NUM_BOARDS, affinity=True)
    cold_sim = CloudSimulator(num_boards=NUM_BOARDS, affinity=False)

    start = time.perf_counter()
    warm = warm_sim.replay_experiment(trace, experiment_id="sched-warm")
    cold = cold_sim.replay_experiment(trace, experiment_id="sched-cold")
    replay_seconds = time.perf_counter() - start

    warm_makespan = warm.metadata["makespan_s"]
    cold_makespan = cold.metadata["makespan_s"]
    ratio = cold_makespan / warm_makespan
    print(
        f"\nrepeated-tenant trace ({NUM_JOBS} jobs, {NUM_BOARDS} boards): "
        f"cold {cold_makespan:.1f}s, warm {warm_makespan:.1f}s, "
        f"makespan ratio {ratio:.1f}x "
        f"(hit rate {warm.metadata['affinity_hit_rate']:.0%})"
    )
    record_sched_metric(
        "repeated_tenant_makespan_ratio",
        ratio=round(ratio, 2),
        makespan_cold_s=cold_makespan,
        makespan_warm_s=warm_makespan,
        jobs=NUM_JOBS,
        boards=NUM_BOARDS,
        shield_loads_warm=warm.metadata["shield_loads"],
        shield_loads_cold=cold.metadata["shield_loads"],
        affinity_hit_rate=warm.metadata["affinity_hit_rate"],
        replay_seconds=round(replay_seconds, 4),
    )
    assert warm.metadata["shield_loads"] <= NUM_BOARDS
    assert cold.metadata["shield_loads"] == NUM_JOBS
    assert ratio >= MIN_MAKESPAN_RATIO, (
        f"warm affinity only cut makespan {ratio:.2f}x "
        f"(need >= {MIN_MAKESPAN_RATIO}x)"
    )


def test_policy_zoo_mean_waits_recorded():
    """Not a gate -- a tracked series: mean wait of each policy on a mixed
    trace, so policy regressions show up in the artifact.

    The trace assigns *distinct* per-job priorities and fair-share weights on
    top of the three distinct workload costs: on the seed's uniform trace
    (every job priority 0, weight 1) the priority policy degenerated to FIFO
    and ``BENCH_sched.json`` reported identical mean waits for both, so the
    series could never catch a priority-policy regression."""
    from dataclasses import replace

    from repro.cloud.policies import POLICY_NAMES
    from repro.sim.cloud import default_mixed_trace

    trace = [
        replace(event, priority=index % 5, weight=float(1 + index % 3))
        for index, event in enumerate(
            default_mixed_trace(jobs_per_tenant=4, arrival_gap_s=0.0)
        )
    ]
    waits = {}
    for policy in POLICY_NAMES:
        result = CloudSimulator(num_boards=2, policy=policy).replay_experiment(trace)
        waits[policy] = result.metadata["mean_wait_s"]
    print(f"\nmean wait by policy (s): {waits}")
    record_sched_metric("policy_mean_wait_s", **waits)
    assert all(wait >= 0 for wait in waits.values())
    assert waits["fifo"] != waits["priority"], (
        "the comparison trace must differentiate the priority policy from FIFO"
    )


def test_functional_stage_timings_recorded():
    """Not a gate -- a tracked series: per-stage wall-clock percentiles of a
    functional serving-layer run (from the service's own ``cloud.stage_seconds``
    histograms), stamped into ``BENCH_sched.json`` next to the makespan ratio."""
    from repro.accelerators import VectorAddAccelerator
    from repro.cloud import ShieldCloudService

    service = ShieldCloudService(num_boards=2, fast_crypto=True)
    accelerator = VectorAddAccelerator(8 * 1024)
    session = service.admit_tenant("bench", accelerator)
    inputs = accelerator.prepare_inputs(seed=3)
    for _ in range(4):
        service.submit_job(
            session.session_id, inputs=inputs, output_regions={"c0": None}
        )
    service.run_until_idle()

    stages = stage_percentiles(
        service.metrics,
        stages=("shield_load", "input_seal", "execute", "download", "output_unseal"),
    )
    print(f"\nfunctional per-stage timings: {stages}")
    record_sched_metric("functional_stage_seconds", **stages)
    assert service.stats.jobs_completed == 4
    assert {"shield_load", "input_seal", "execute"} <= set(stages)
