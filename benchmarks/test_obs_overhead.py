"""The observability overhead gate: tracing must be near-free when off.

Replays the scheduling benchmark's repeated-tenant trace through the timed
:class:`~repro.sim.cloud.CloudSimulator` three ways -- twice with the null
observability backend (the second run is the "disabled" measurement against
the first as baseline, bounding the one-attribute-check cost plus timer
noise) and once with metrics + tracing fully enabled.  The three
configurations are timed interleaved, a few replays per timed window, and
the gate takes the least-noise per-round ratio so scheduler jitter and
clock drift do not fail it.

Gates (recorded in ``BENCH_obs.json`` for the CI artifact):

* disabled / baseline <= 1.05 -- the no-op backend stays within noise;
* enabled / baseline <= 1.15 -- full event + metrics recording costs at
  most 15% on the replay hot path.
"""

from __future__ import annotations

import gc
import time

import repro.obs as obs_api
from benchmarks.conftest import record_obs_metric
from repro.sim.cloud import CloudSimulator, repeated_tenant_trace

NUM_JOBS = 80
NUM_BOARDS = 2
REPEATS = 7
#: Replays per timed window: one replay is only ~3 ms, so timing several
#: back-to-back amortizes timer granularity and scheduler noise per window.
INNER = 3
MAX_DISABLED_RATIO = 1.05
MAX_ENABLED_RATIO = 1.15


def _timed_replay(simulator, trace, repeats: int = 1) -> float:
    start = time.perf_counter()
    for _ in range(repeats):
        simulator.replay(trace)
    return (time.perf_counter() - start) / repeats


def test_observability_overhead_within_budget():
    trace = repeated_tenant_trace(num_jobs=NUM_JOBS)
    live = obs_api.Observability(
        metrics=obs_api.MetricsRegistry(), tracer=obs_api.Tracer()
    )
    null_sim = CloudSimulator(num_boards=NUM_BOARDS, obs=obs_api.NULL_OBS)
    live_sim = CloudSimulator(num_boards=NUM_BOARDS, obs=live)

    # Warm caches (timing-model results, allocator) before any measurement.
    _timed_replay(null_sim, trace)
    _timed_replay(live_sim, trace)

    # The three configurations are measured *interleaved* (one window of
    # each per round) and the gate takes the *least-noise* (minimum)
    # per-round ratio: the three windows of one round run back-to-back
    # within ~30 ms, so a ratio computed inside a round is immune to the
    # clock-frequency drift that makes cross-round comparisons
    # (min-of-baseline vs min-of-enabled from different rounds) swing by
    # tens of percent, and scheduler noise only ever *adds* time to a
    # window, so the smallest observed ratio is the closest to the
    # intrinsic instrumentation cost the gate is meant to bound.  Each
    # window times INNER back-to-back replays to amortize per-window
    # noise, and GC is held off so a collection pass over a large heap
    # (this test runs late in the full suite) cannot land inside a
    # measurement window.
    baseline_s = float("inf")
    disabled_ratios = []
    enabled_ratios = []
    gc.collect()
    gc.disable()
    try:
        for _ in range(REPEATS):
            round_baseline = _timed_replay(null_sim, trace, INNER)
            round_disabled = _timed_replay(null_sim, trace, INNER)
            live.tracer.clear()
            round_enabled = _timed_replay(live_sim, trace, INNER)
            baseline_s = min(baseline_s, round_baseline)
            disabled_ratios.append(round_disabled / round_baseline)
            enabled_ratios.append(round_enabled / round_baseline)
    finally:
        gc.enable()

    disabled_ratio = min(disabled_ratios)
    enabled_ratio = min(enabled_ratios)
    events_per_replay = len(live.tracer.events) // INNER
    print(
        f"\nobs overhead on {NUM_JOBS}-job replay: baseline {baseline_s*1e3:.2f} ms, "
        f"disabled {disabled_ratio:.3f}x, enabled {enabled_ratio:.3f}x "
        f"({events_per_replay} events/replay)"
    )
    record_obs_metric(
        "sim_replay_overhead",
        baseline_ms=round(baseline_s * 1e3, 3),
        disabled_ratio=round(disabled_ratio, 3),
        enabled_ratio=round(enabled_ratio, 3),
        jobs=NUM_JOBS,
        boards=NUM_BOARDS,
        events_per_replay=events_per_replay,
        max_disabled_ratio=MAX_DISABLED_RATIO,
        max_enabled_ratio=MAX_ENABLED_RATIO,
    )
    # The enabled replay must actually have recorded the full lifecycle.
    assert events_per_replay >= NUM_JOBS * 8
    assert disabled_ratio <= MAX_DISABLED_RATIO, (
        f"null observability backend cost {disabled_ratio:.3f}x "
        f"(budget {MAX_DISABLED_RATIO}x)"
    )
    assert enabled_ratio <= MAX_ENABLED_RATIO, (
        f"enabled observability cost {enabled_ratio:.3f}x "
        f"(budget {MAX_ENABLED_RATIO}x)"
    )
