"""The observability overhead gate: tracing must be near-free when off.

Replays the scheduling benchmark's repeated-tenant trace through the timed
:class:`~repro.sim.cloud.CloudSimulator` three ways -- twice with the null
observability backend (the second run is the "disabled" measurement against
the first as baseline, bounding the one-attribute-check cost plus timer
noise) and once with metrics + tracing fully enabled.  The three
configurations are timed interleaved, a few replays per timed window, and
the gate compares each configuration's least-noise (minimum) window so
scheduler jitter and allocator warmup do not fail it.

Gates (recorded in ``BENCH_obs.json`` for the CI artifact):

* disabled / baseline <= 1.05 -- the no-op backend stays within noise;
* (enabled - baseline) / jobs <= 6 us -- full event + metrics recording
  on the replay hot path, bounded in *absolute* cost per job.  The gate
  used to be a ratio (enabled/baseline <= 1.15x), but the indexed-queue
  rework made the *untraced* replay ~7x faster (seed: ~46 us/job on this
  trace; now ~5 us/job) while the instrumentation cost per job (eight
  events + four counters, ~2.5-3 us) stayed flat -- a ratio budget
  punishes every future baseline speedup instead of observability
  regressions.  6 us/job is the seed gate's effective absolute budget
  (15% of 46 us/job ~= 7 us), carried over unchanged.
"""

from __future__ import annotations

import gc
import time

import repro.obs as obs_api
from benchmarks.conftest import record_obs_metric
from repro.sim.cloud import CloudSimulator, repeated_tenant_trace

NUM_JOBS = 400
NUM_BOARDS = 2
REPEATS = 7
#: Replays per timed window: one untraced replay is well under a
#: millisecond since the indexed-queue rework, so several back-to-back
#: replays per window amortize timer granularity and scheduler noise.
INNER = 3
MAX_DISABLED_RATIO = 1.05
#: Absolute per-job budget for full tracing + metrics (see module docstring
#: for how this carries over the seed gate's 15%-of-46-us/job allowance).
MAX_ENABLED_US_PER_JOB = 6.0


def _timed_replay(simulator, trace, repeats: int = 1) -> float:
    start = time.perf_counter()
    for _ in range(repeats):
        simulator.replay(trace)
    return (time.perf_counter() - start) / repeats


def test_observability_overhead_within_budget():
    trace = repeated_tenant_trace(num_jobs=NUM_JOBS)
    live = obs_api.Observability(
        metrics=obs_api.MetricsRegistry(), tracer=obs_api.Tracer()
    )
    null_sim = CloudSimulator(num_boards=NUM_BOARDS, obs=obs_api.NULL_OBS)
    live_sim = CloudSimulator(num_boards=NUM_BOARDS, obs=live)

    # Warm caches (timing-model results, allocator) before any measurement.
    _timed_replay(null_sim, trace)
    _timed_replay(live_sim, trace)

    # The three configurations are measured *interleaved* (one window of
    # each per round) and the gate compares the *least-noise* (minimum)
    # window of each configuration across all rounds.  Scheduler noise,
    # allocator-arena warmup, and GC debt from a neighbouring window only
    # ever *add* time, so each configuration's minimum converges on its
    # intrinsic cost -- whereas a ratio computed inside a single round
    # inherits whatever position-dependent bias hit that round's windows
    # (the post-collect window systematically pays arena re-warmup for the
    # whole round, which mis-reads as the *other* windows being fast).
    # Each window times INNER back-to-back replays to amortize timer
    # granularity, and GC is held off so a collection pass over a large
    # heap (this test runs late in the full suite) cannot land inside a
    # measurement window; the round boundary collects the previous round's
    # event garbage instead.
    baselines, disableds, enableds = [], [], []
    gc.disable()
    try:
        for _ in range(REPEATS):
            gc.collect()
            baselines.append(_timed_replay(null_sim, trace, INNER))
            disableds.append(_timed_replay(null_sim, trace, INNER))
            live.tracer.clear()
            enableds.append(_timed_replay(live_sim, trace, INNER))
    finally:
        gc.enable()

    baseline_s = min(baselines)
    disabled_ratio = min(disableds) / baseline_s
    enabled_ratio = min(enableds) / baseline_s
    enabled_us_per_job = (min(enableds) - baseline_s) * 1e6 / NUM_JOBS
    events_per_replay = len(live.tracer.events) // INNER
    print(
        f"\nobs overhead on {NUM_JOBS}-job replay: baseline {baseline_s*1e3:.2f} ms, "
        f"disabled {disabled_ratio:.3f}x, enabled {enabled_ratio:.3f}x "
        f"= {enabled_us_per_job:.2f} us/job ({events_per_replay} events/replay)"
    )
    record_obs_metric(
        "sim_replay_overhead",
        baseline_ms=round(baseline_s * 1e3, 3),
        disabled_ratio=round(disabled_ratio, 3),
        enabled_ratio=round(enabled_ratio, 3),
        enabled_us_per_job=round(enabled_us_per_job, 3),
        jobs=NUM_JOBS,
        boards=NUM_BOARDS,
        events_per_replay=events_per_replay,
        max_disabled_ratio=MAX_DISABLED_RATIO,
        max_enabled_us_per_job=MAX_ENABLED_US_PER_JOB,
    )
    # The enabled replay must actually have recorded the full lifecycle.
    assert events_per_replay >= NUM_JOBS * 8
    assert disabled_ratio <= MAX_DISABLED_RATIO, (
        f"null observability backend cost {disabled_ratio:.3f}x "
        f"(budget {MAX_DISABLED_RATIO}x)"
    )
    assert enabled_us_per_job <= MAX_ENABLED_US_PER_JOB, (
        f"enabled observability cost {enabled_us_per_job:.2f} us/job "
        f"(budget {MAX_ENABLED_US_PER_JOB} us/job)"
    )
