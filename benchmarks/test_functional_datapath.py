"""Microbenchmarks of the functional Shield datapath itself.

These do not correspond to a paper figure; they measure the Python model's own
throughput (sealing, shielded reads/writes, attestation) so regressions in the
simulator are visible, and they exercise the full functional pipeline under
pytest-benchmark.
"""

import pytest

from repro.core.config import EngineSetConfig, RegionConfig, ShieldConfig
from repro.sim.simulator import build_test_shield

REGION_BYTES = 16 * 1024
CHUNK = 512


@pytest.fixture(scope="module")
def harness():
    config = ShieldConfig(
        shield_id="bench-shield",
        engine_sets=[EngineSetConfig(name="es", sbox_parallelism=16, buffer_bytes=4096)],
        regions=[
            RegionConfig(
                name="scratch", base_address=0, size_bytes=REGION_BYTES, chunk_size=CHUNK,
                engine_set="es",
            )
        ],
    )
    return build_test_shield(config)


def test_shielded_write_throughput(benchmark, harness):
    payload = bytes(range(256)) * (REGION_BYTES // 256)

    def write_region():
        harness.shield.memory_write(0, payload)
        harness.shield.flush()

    benchmark(write_region)
    stats = harness.shield.stats()
    assert stats.accel_bytes_written >= REGION_BYTES


def test_shielded_read_throughput(benchmark, harness):
    harness.shield.memory_write(0, b"\x5c" * REGION_BYTES)
    harness.shield.flush()

    def read_region():
        return harness.shield.memory_read(0, REGION_BYTES)

    data = benchmark(read_region)
    assert data == b"\x5c" * REGION_BYTES


def test_data_owner_sealing_throughput(benchmark, harness):
    plaintext = b"\xa1" * REGION_BYTES

    def seal():
        return harness.data_owner.seal_input(
            harness.shield_config, "scratch", plaintext, shield_id=harness.shield_config.shield_id
        )

    staged = benchmark(seal)
    assert len(staged.sealed_chunks) == REGION_BYTES // CHUNK


def test_attestation_handshake_latency(benchmark):
    """Time one full remote-attestation handshake against a booted kernel."""
    from repro.attestation.data_owner import DataOwner
    from repro.attestation.ip_vendor import IpVendor
    from repro.attestation.protocol import run_remote_attestation
    from repro.boot.manufacturer import Manufacturer
    from repro.boot.process import install_security_kernel, perform_secure_boot
    from repro.hw.bitstream import Bitstream
    from repro.hw.board import BoardModel, make_board
    from tests.conftest import make_small_shield_config

    board = make_board(BoardModel.AWS_F1, serial="bench-attest")
    manufacturer = Manufacturer(seed=91)
    provisioned = manufacturer.provision_device(board)
    install_security_kernel(board)
    kernel = perform_secure_boot(board).kernel
    vendor = IpVendor("bench-vendor", seed=92)
    vendor.trust_security_kernel(kernel.kernel_hash)
    config = make_small_shield_config("bench-attest-shield")
    package = vendor.package_accelerator("bench", {"kind": "bench"}, config.to_dict())
    kernel.launch_shell(Bitstream("shell", "csp"))
    kernel.stage_encrypted_bitstream(package.encrypted_bitstream)

    counter = {"seed": 0}

    def handshake():
        counter["seed"] += 1
        return run_remote_attestation(
            vendor, DataOwner(seed=1000 + counter["seed"]), kernel, "bench",
            provisioned.device_certificate,
            manufacturer.certificate_authority.root_public_key,
            shield_id=config.shield_id,
        )

    outcome = benchmark(handshake)
    assert outcome.load_key.shield_id == config.shield_id
