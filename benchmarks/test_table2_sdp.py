"""Table 2: SDP storage-node overhead across five Shield designs.

Paper values (% overhead over the unshielded key-value store, 1 MB file
accesses, 4 KB authentication blocks): 298, 297, 59, 20, 20 -- i.e. HMAC is
the bottleneck regardless of AES parallelism, swapping in PMAC engines removes
it, and performance saturates at 8 engines per set.  Section 6.2.3 also quotes
the final design's area: 4.3% BRAM, 5.0% LUT, 2.5% REG.
"""

from benchmarks.conftest import run_and_report
from repro.sim.experiments import table2_experiment


def test_table2_sdp_designs(benchmark):
    result = run_and_report(benchmark, table2_experiment)
    rows = {row["design"]: row["overhead_percent"] for row in result.rows}
    # HMAC-bound designs: ~300%, insensitive to S-box parallelism.
    assert 200 <= rows["4x Eng / 4x / HMAC"] <= 450
    assert abs(rows["4x Eng / 4x / HMAC"] - rows["4x Eng / 16x / HMAC"]) < 10
    # PMAC removes the authentication bottleneck.
    assert rows["4x Eng / 16x / PMAC"] < 100
    # Saturation at 8 engines: the 16-engine design is no better.
    assert rows["8x Eng / 16x / PMAC"] <= 40
    assert abs(rows["8x Eng / 16x / PMAC"] - rows["16x Eng / 16x / PMAC"]) < 1
    # The Shield stays a small fraction of the device.
    area = result.metadata["sdp_area_percent"]
    assert area["LUT"] < 15 and area["REG"] < 10
