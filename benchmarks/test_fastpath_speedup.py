"""Scalar-vs-vectorized crypto fast path on a 1 MiB region round-trip.

Acceptance gate for the fast path: encrypting and decrypting a full 1 MiB
region chunk-by-chunk through :class:`~repro.core.engines.AesEngine` must be
at least 5x faster on the vectorized path than on the scalar reference (in
practice the gap is well over an order of magnitude), while producing
byte-identical ciphertext.  The scalar side is timed over a single pass --
it is the slow path by definition -- so this module stays out of
pytest-benchmark's repeat machinery.
"""

from __future__ import annotations

import time

import pytest

from benchmarks.conftest import random_bytes, record_fastpath_speedup
from repro.core.engines import AesEngine

REGION_BYTES = 1 << 20
CHUNK_BYTES = 4096
MIN_SPEEDUP = 5.0


def _chunks():
    data = random_bytes(0, REGION_BYTES)
    ivs = [
        random_bytes(1000 + index, 12)
        for index in range(REGION_BYTES // CHUNK_BYTES)
    ]
    chunks = [
        data[offset : offset + CHUNK_BYTES]
        for offset in range(0, REGION_BYTES, CHUNK_BYTES)
    ]
    return ivs, chunks


def _round_trip(engine: AesEngine, ivs, chunks) -> tuple:
    start = time.perf_counter()
    ciphertexts = [engine.encrypt(iv, chunk) for iv, chunk in zip(ivs, chunks)]
    plaintexts = [engine.decrypt(iv, ct) for iv, ct in zip(ivs, ciphertexts)]
    elapsed = time.perf_counter() - start
    return elapsed, ciphertexts, plaintexts


def test_vectorized_round_trip_is_5x_faster_and_identical():
    key = random_bytes(2, 16)
    ivs, chunks = _chunks()

    scalar_engine = AesEngine(key, fast_crypto=False)
    fast_engine = AesEngine(key, fast_crypto=True)

    # Warm the vectorized key schedule so setup cost is not in the timing.
    fast_engine.encrypt(ivs[0], chunks[0])

    scalar_seconds, scalar_cts, scalar_pts = _round_trip(scalar_engine, ivs, chunks)
    # The fast pass is sub-second, so one scheduling hiccup on a loaded CI
    # runner could dominate it; take the best of two passes for a stable ratio.
    fast_seconds, fast_cts, fast_pts = _round_trip(fast_engine, ivs, chunks)
    fast_seconds = min(fast_seconds, _round_trip(fast_engine, ivs, chunks)[0])

    assert scalar_cts == fast_cts, "fast path must be byte-identical"
    assert scalar_pts == fast_pts == chunks, "round-trip must restore plaintext"

    speedup = scalar_seconds / fast_seconds
    print(
        f"\n1 MiB round-trip: scalar {scalar_seconds:.2f}s, "
        f"fast {fast_seconds:.3f}s, speedup {speedup:.0f}x"
    )
    record_fastpath_speedup(
        "aes_ctr_1mib_round_trip",
        speedup,
        scalar_seconds=round(scalar_seconds, 3),
        fast_seconds=round(fast_seconds, 4),
    )
    assert speedup >= MIN_SPEEDUP, (
        f"vectorized path only {speedup:.1f}x faster (need >= {MIN_SPEEDUP}x)"
    )


def test_batched_seal_matches_per_chunk_on_large_region():
    """The whole-region batch API is identical to chunk-at-a-time sealing."""
    from repro.core.config import EngineSetConfig, RegionConfig
    from repro.core.sealing import RegionSealer

    region = RegionConfig(
        name="bulk", base_address=0, size_bytes=256 * 1024, chunk_size=CHUNK_BYTES,
        engine_set="es",
    )
    fast = RegionSealer(
        b"\x42" * 32, region, EngineSetConfig(name="es", fast_crypto=True)
    )
    plaintext = random_bytes(3, 256 * 1024)
    sealed = fast.seal_region_data(plaintext)
    assert len(sealed) == region.num_chunks
    per_chunk = [
        fast.seal_chunk(index, plaintext[index * CHUNK_BYTES : (index + 1) * CHUNK_BYTES])
        for index in range(region.num_chunks)
    ]
    assert [c.ciphertext for c in sealed] == [c.ciphertext for c in per_chunk]
    assert [c.tag for c in sealed] == [c.tag for c in per_chunk]
    assert fast.unseal_region_data(sealed) == plaintext


@pytest.mark.parametrize("chunk_bytes", [512, 4096])
def test_fast_chunk_seal_throughput(benchmark, chunk_bytes):
    """pytest-benchmark view of one fast-path chunk seal (for trend tracking)."""
    key = random_bytes(4, 16)
    engine = AesEngine(key, fast_crypto=True)
    iv = random_bytes(5, 12)
    chunk = random_bytes(6, chunk_bytes)
    engine.encrypt(iv, chunk)  # warm the vectorized key schedule
    result = benchmark(engine.encrypt, iv, chunk)
    assert len(result) == chunk_bytes
