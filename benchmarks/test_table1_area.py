"""Table 1: Shield component utilization on AWS F1 (BRAM / LUT / REG)."""

from benchmarks.conftest import run_and_report
from repro.sim.experiments import table1_experiment


def test_table1_component_utilization(benchmark):
    result = run_and_report(benchmark, table1_experiment)
    rows = {row["component"]: row for row in result.rows}
    assert rows["controller"]["lut"] == 2348
    assert rows["engine_set"]["bram"] == 2
    assert rows["aes_16x"]["lut"] == 2898
    assert rows["hmac"]["reg"] == 2636
    assert rows["pmac"]["lut"] < rows["hmac"]["lut"]
