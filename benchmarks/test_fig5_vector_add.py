"""Figure 5: vector-add throughput overhead vs input size (8 KB - 80 MB).

Paper shape: at small sizes execution is dominated by initialization, so the
normalized time is close to 1 for both configurations; at large sizes the
AES/4x configuration is limited by its encryption throughput (several times
slower), while raising the S-box parallelism to 16x keeps the slowdown below
1.5x at every size.  Section 6.2.2 also notes a matrix-multiply companion
microbenchmark whose overhead stays near 1.26x because compute per byte is
much higher.
"""

from benchmarks.conftest import run_and_report
from repro.sim.experiments import figure5_experiment, matmul_companion_experiment


def test_figure5_vector_add_sweep(benchmark):
    result = run_and_report(benchmark, figure5_experiment)
    series = {}
    for row in result.rows:
        series.setdefault(row["configuration"], []).append(row["normalized_time"])
    assert all(value < 1.5 for value in series["AES/16x"])
    assert series["AES/4x"][-1] > 2.0
    assert series["AES/4x"][-1] > series["AES/16x"][-1]
    assert series["AES/4x"][0] < series["AES/4x"][-1]


def test_figure5_matmul_companion(benchmark):
    result = run_and_report(benchmark, matmul_companion_experiment)
    rows = {row["configuration"]: row["normalized_time"] for row in result.rows}
    assert rows["AES/4x"] < 1.5
    assert rows["AES/16x"] <= rows["AES/4x"]
