"""Section 6.1: end-to-end secure-boot latency on the Ultra96 profile.

Paper: the ShEF boot process, from power-on to bitstream loading, completes in
5.1 seconds -- small compared to the ~40 s boot of a cloud VM plus ~6.2 s of
F1 bitstream loading time.
"""

from benchmarks.conftest import run_and_report
from repro.sim.experiments import boot_latency_experiment


def test_boot_latency(benchmark):
    result = run_and_report(benchmark, boot_latency_experiment)
    total = result.metadata["total_seconds"]
    assert 4.0 <= total <= 6.5
    assert total < result.metadata["vm_boot_reference_seconds"]
