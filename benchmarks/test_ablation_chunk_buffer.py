"""Ablations: chunk size (C_mem) and on-chip buffer size.

These are the two central per-region knobs the Shield exposes (Section 5.2.2):
larger chunks amortize MAC-tag overheads for streaming patterns but hurt
fine-grained access; larger buffers absorb reuse in random-access regions.
"""

from benchmarks.conftest import run_and_report
from repro.sim.experiments import ablation_buffer_size, ablation_chunk_size


def test_chunk_size_sweep(benchmark):
    result = run_and_report(benchmark, ablation_chunk_size)
    values = {row["chunk_size"]: row["normalized_time"] for row in result.rows}
    assert len(values) == 6
    assert all(v >= 1.0 for v in values.values())


def test_buffer_size_sweep(benchmark):
    result = run_and_report(benchmark, ablation_buffer_size)
    values = [row["normalized_time"] for row in result.rows]
    # More buffer never hurts, and the largest buffer is strictly better than none.
    assert values[-1] <= values[0]
