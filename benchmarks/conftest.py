"""Shared helpers for the benchmark harness.

Each benchmark regenerates one table or figure of the paper: the timed body is
the experiment itself (so ``pytest-benchmark`` reports how long the model
takes), and the resulting rows are printed so the run log contains the same
series the paper reports.  EXPERIMENTS.md records paper-vs-measured values.

The crypto fast-path benchmarks additionally record their measured speedup
factors into a machine-readable ``BENCH_fastpath.json`` (path overridable via
``BENCH_FASTPATH_JSON``); CI uploads it as a workflow artifact so the perf
trajectory of the AES and MAC fast paths is tracked across PRs.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import numpy as np

from repro.sim.reporting import render_experiment


def random_bytes(seed: int, length: int) -> bytes:
    """Deterministic pseudo-random payload for the fast-path benchmarks."""
    return np.random.default_rng(seed).integers(0, 256, length, dtype=np.uint8).tobytes()

_BENCH_JSON = Path(
    os.environ.get(
        "BENCH_FASTPATH_JSON",
        Path(__file__).resolve().parent.parent / "BENCH_fastpath.json",
    )
)


def record_fastpath_speedup(name: str, speedup: float, **extra) -> None:
    """Merge one fast-path speedup measurement into ``BENCH_fastpath.json``."""
    data = {}
    if _BENCH_JSON.exists():
        try:
            data = json.loads(_BENCH_JSON.read_text())
        except ValueError:
            data = {}
    entry = {"speedup": round(speedup, 2)}
    entry.update(extra)
    data[name] = entry
    _BENCH_JSON.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def run_and_report(benchmark, experiment_fn, *args, **kwargs):
    """Benchmark an experiment function and print its rendered table."""
    result = benchmark(experiment_fn, *args, **kwargs)
    print()
    print(render_experiment(result))
    return result
