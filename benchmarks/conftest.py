"""Shared helpers for the benchmark harness.

Each benchmark regenerates one table or figure of the paper: the timed body is
the experiment itself (so ``pytest-benchmark`` reports how long the model
takes), and the resulting rows are printed so the run log contains the same
series the paper reports.  EXPERIMENTS.md records paper-vs-measured values.
"""

from __future__ import annotations

from repro.sim.reporting import render_experiment


def run_and_report(benchmark, experiment_fn, *args, **kwargs):
    """Benchmark an experiment function and print its rendered table."""
    result = benchmark(experiment_fn, *args, **kwargs)
    print()
    print(render_experiment(result))
    return result
