"""Shared helpers for the benchmark harness.

Each benchmark regenerates one table or figure of the paper: the timed body is
the experiment itself (so ``pytest-benchmark`` reports how long the model
takes), and the resulting rows are printed so the run log contains the same
series the paper reports.  EXPERIMENTS.md records paper-vs-measured values.

The crypto fast-path benchmarks additionally record their measured speedup
factors into a machine-readable ``BENCH_fastpath.json`` (path overridable via
``BENCH_FASTPATH_JSON``), the scheduling benchmarks record warm-affinity
makespan ratios into ``BENCH_sched.json`` (``BENCH_SCHED_JSON``), and the
observability overhead gate records its disabled/enabled ratios into
``BENCH_obs.json`` (``BENCH_OBS_JSON``), and the async serving benchmarks
record concurrent-vs-sync throughput and latency percentiles into
``BENCH_serve.json`` (``BENCH_SERVE_JSON``), and the vectorized Merkle
replay-protection gate records its scalar-vs-batched ratios into
``BENCH_merkle.json`` (``BENCH_MERKLE_JSON``), and the shard-scale replay
gate records its throughput, tail-wait, and utilization figures into
``BENCH_shard.json`` (``BENCH_SHARD_JSON``); CI uploads all of these as
workflow artifacts so the perf trajectory of the fast paths, the scheduler,
the observability layer, and the request path is tracked across PRs.

``record_stage_percentiles`` stamps per-stage latency percentiles (from a
live metrics registry's ``cloud.stage_seconds`` histograms) into any of the
bench JSONs, so BENCH_sched/BENCH_fastpath entries carry stage timings
alongside their headline ratios.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import numpy as np

from repro.sim.reporting import render_experiment


def random_bytes(seed: int, length: int) -> bytes:
    """Deterministic pseudo-random payload for the fast-path benchmarks."""
    return np.random.default_rng(seed).integers(0, 256, length, dtype=np.uint8).tobytes()

_REPO_ROOT = Path(__file__).resolve().parent.parent

_BENCH_JSON = Path(
    os.environ.get("BENCH_FASTPATH_JSON", _REPO_ROOT / "BENCH_fastpath.json")
)

_BENCH_SCHED_JSON = Path(
    os.environ.get("BENCH_SCHED_JSON", _REPO_ROOT / "BENCH_sched.json")
)


def _merge_bench_entry(path: Path, name: str, entry: dict) -> None:
    """Merge one named measurement into a machine-readable bench JSON."""
    data = {}
    if path.exists():
        try:
            data = json.loads(path.read_text())
        except ValueError:
            data = {}
    data[name] = entry
    path.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def record_fastpath_speedup(name: str, speedup: float, **extra) -> None:
    """Merge one fast-path speedup measurement into ``BENCH_fastpath.json``."""
    entry = {"speedup": round(speedup, 2)}
    entry.update(extra)
    _merge_bench_entry(_BENCH_JSON, name, entry)


def record_sched_metric(name: str, **fields) -> None:
    """Merge one scheduling measurement into ``BENCH_sched.json``."""
    _merge_bench_entry(_BENCH_SCHED_JSON, name, dict(fields))


_BENCH_OBS_JSON = Path(
    os.environ.get("BENCH_OBS_JSON", _REPO_ROOT / "BENCH_obs.json")
)


def record_obs_metric(name: str, **fields) -> None:
    """Merge one observability measurement into ``BENCH_obs.json``."""
    _merge_bench_entry(_BENCH_OBS_JSON, name, dict(fields))


_BENCH_SERVE_JSON = Path(
    os.environ.get("BENCH_SERVE_JSON", _REPO_ROOT / "BENCH_serve.json")
)


def record_serve_metric(name: str, **fields) -> None:
    """Merge one serving-path measurement into ``BENCH_serve.json``."""
    _merge_bench_entry(_BENCH_SERVE_JSON, name, dict(fields))


_BENCH_MERKLE_JSON = Path(
    os.environ.get("BENCH_MERKLE_JSON", _REPO_ROOT / "BENCH_merkle.json")
)


def record_merkle_metric(name: str, **fields) -> None:
    """Merge one Merkle-datapath measurement into ``BENCH_merkle.json``."""
    _merge_bench_entry(_BENCH_MERKLE_JSON, name, dict(fields))


_BENCH_SHARD_JSON = Path(
    os.environ.get("BENCH_SHARD_JSON", _REPO_ROOT / "BENCH_shard.json")
)


def record_shard_metric(name: str, **fields) -> None:
    """Merge one shard-scale replay measurement into ``BENCH_shard.json``."""
    _merge_bench_entry(_BENCH_SHARD_JSON, name, dict(fields))


def stage_percentiles(metrics, stages=("shield_load", "input_seal", "execute")) -> dict:
    """Per-stage p50/p95/p99 (seconds) from ``cloud.stage_seconds`` histograms.

    Reads the labelled histograms a :class:`~repro.cloud.service
    .ShieldCloudService` run populates; stages with no samples are skipped so
    a partial run still produces a well-formed entry.
    """
    out = {}
    for stage in stages:
        summary = metrics.histogram("cloud.stage_seconds", stage=stage).summary()
        if summary["count"]:
            out[stage] = {
                "p50_s": summary["p50"],
                "p95_s": summary["p95"],
                "p99_s": summary["p99"],
            }
    return out


def record_stage_percentiles(record_fn, name: str, metrics, **extra) -> None:
    """Stamp per-stage timing percentiles into a bench JSON via ``record_fn``.

    ``record_fn`` is one of :func:`record_sched_metric` /
    :func:`record_fastpath_speedup`-style writers taking ``(name, **fields)``.
    """
    stages = stage_percentiles(metrics)
    if stages:
        record_fn(name, stages=stages, **extra)


def crypto_percentiles(metrics) -> dict:
    """Seal/unseal duration percentiles per crypto path from a live registry.

    Reads the ``crypto.{seal,unseal}_seconds`` histograms a
    :class:`~repro.core.sealing.RegionSealer` populates (labelled
    ``fast``/``scalar``); empty series are skipped.
    """
    out = {}
    for op in ("seal", "unseal"):
        for path in ("fast", "scalar"):
            summary = metrics.histogram(f"crypto.{op}_seconds", path=path).summary()
            if summary["count"]:
                out[f"{op}_{path}"] = {
                    "count": summary["count"],
                    "p50_s": summary["p50"],
                    "p99_s": summary["p99"],
                }
    return out


def run_and_report(benchmark, experiment_fn, *args, **kwargs):
    """Benchmark an experiment function and print its rendered table."""
    result = benchmark(experiment_fn, *args, **kwargs)
    print()
    print(render_experiment(result))
    return result
