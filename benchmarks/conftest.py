"""Shared helpers for the benchmark harness.

Each benchmark regenerates one table or figure of the paper: the timed body is
the experiment itself (so ``pytest-benchmark`` reports how long the model
takes), and the resulting rows are printed so the run log contains the same
series the paper reports.  EXPERIMENTS.md records paper-vs-measured values.

The crypto fast-path benchmarks additionally record their measured speedup
factors into a machine-readable ``BENCH_fastpath.json`` (path overridable via
``BENCH_FASTPATH_JSON``), and the scheduling benchmarks record warm-affinity
makespan ratios into ``BENCH_sched.json`` (``BENCH_SCHED_JSON``); CI uploads
both as workflow artifacts so the perf trajectory of the fast paths and the
scheduler is tracked across PRs.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import numpy as np

from repro.sim.reporting import render_experiment


def random_bytes(seed: int, length: int) -> bytes:
    """Deterministic pseudo-random payload for the fast-path benchmarks."""
    return np.random.default_rng(seed).integers(0, 256, length, dtype=np.uint8).tobytes()

_REPO_ROOT = Path(__file__).resolve().parent.parent

_BENCH_JSON = Path(
    os.environ.get("BENCH_FASTPATH_JSON", _REPO_ROOT / "BENCH_fastpath.json")
)

_BENCH_SCHED_JSON = Path(
    os.environ.get("BENCH_SCHED_JSON", _REPO_ROOT / "BENCH_sched.json")
)


def _merge_bench_entry(path: Path, name: str, entry: dict) -> None:
    """Merge one named measurement into a machine-readable bench JSON."""
    data = {}
    if path.exists():
        try:
            data = json.loads(path.read_text())
        except ValueError:
            data = {}
    data[name] = entry
    path.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def record_fastpath_speedup(name: str, speedup: float, **extra) -> None:
    """Merge one fast-path speedup measurement into ``BENCH_fastpath.json``."""
    entry = {"speedup": round(speedup, 2)}
    entry.update(extra)
    _merge_bench_entry(_BENCH_JSON, name, entry)


def record_sched_metric(name: str, **fields) -> None:
    """Merge one scheduling measurement into ``BENCH_sched.json``."""
    _merge_bench_entry(_BENCH_SCHED_JSON, name, dict(fields))


def run_and_report(benchmark, experiment_fn, *args, **kwargs):
    """Benchmark an experiment function and print its rendered table."""
    result = benchmark(experiment_fn, *args, **kwargs)
    print()
    print(render_experiment(result))
    return result
