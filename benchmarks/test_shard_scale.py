"""Shard-scale replay: the 10^5-job / 8-shard throughput gate.

The seed simulator replayed ~12 jobs in ~1.4 ms (``BENCH_sched.json``'s
``replay_seconds``) -- about 117 us per job, with per-dispatch linear scans
that go quadratic on deep queues.  The indexed policy queues, incremental
board index, and zero-overhead untraced path exist so replay stays *linear*
at six-figure job counts; this benchmark proves it end-to-end through the
sharded driver: generate a 10^5-job Poisson trace, route it across 8 shard
fleets with the consistent-hash :class:`~repro.cloud.shard.ShardRouter`, and
replay every shard on its own worker.  The gate demands a per-job replay
rate >= 10x the seed anchor; the full report (p50/p99/p999 wait, per-shard
utilization, affinity hit-rate, throughput) lands in ``BENCH_shard.json``.

``SHARD_BENCH_JOBS`` / ``SHARD_BENCH_SHARDS`` shrink the trace for CI's
quick-bench smoke (the committed artifact comes from a full-size run).
"""

from __future__ import annotations

import os
import time

from benchmarks.conftest import record_shard_metric
from repro.cloud.shard import QueueDepthAutoscaler, replay_sharded
from repro.sim.traces import generate_trace

NUM_JOBS = int(os.environ.get("SHARD_BENCH_JOBS", "100000"))
NUM_SHARDS = int(os.environ.get("SHARD_BENCH_SHARDS", "8"))
BOARDS_PER_SHARD = 8
#: Seed anchor: BENCH_sched.json's replay_seconds was ~1.4 ms for a 12-job
#: trace on the pre-indexed simulator (~117 us/job).
SEED_REPLAY_SECONDS = 0.0014
SEED_REPLAY_JOBS = 12
MIN_SPEEDUP_VS_SEED = 10.0


def test_shard_scale_replay_rate_gate():
    trace = generate_trace(
        NUM_JOBS, seed=42, arrival="poisson", rate_jobs_per_s=200.0
    )
    # Two timed runs, best-of: the first pays one-time costs (pricing-cache
    # fills, thread-pool spin-up) that are noise against a >=10^5-job trace
    # but dominate a reduced CI smoke run.
    wall = report = None
    for _ in range(2):
        start = time.perf_counter()
        candidate = replay_sharded(
            trace,
            num_shards=NUM_SHARDS,
            boards_per_shard=BOARDS_PER_SHARD,
            executor="thread",
        )
        elapsed = time.perf_counter() - start
        if wall is None or elapsed < wall:
            wall, report = elapsed, candidate

    per_job_us = wall / report.jobs * 1e6
    seed_per_job_us = SEED_REPLAY_SECONDS / SEED_REPLAY_JOBS * 1e6
    speedup = seed_per_job_us / per_job_us
    utilization = {
        str(shard): round(value, 4)
        for shard, value in sorted(report.utilization_by_shard.items())
    }
    print(
        f"\nshard-scale replay: {report.jobs} jobs / {len(report.shard_stats)} "
        f"shards x {BOARDS_PER_SHARD} boards in {wall:.2f}s "
        f"({report.jobs / wall:.0f} jobs/s, {per_job_us:.2f} us/job; "
        f"seed anchor {seed_per_job_us:.0f} us/job -> {speedup:.1f}x)"
    )
    print(
        f"wait p50={report.wait_percentile(50.0):.1f}s "
        f"p99={report.wait_percentile(99.0):.1f}s "
        f"p999={report.wait_percentile(99.9):.1f}s, "
        f"affinity hit rate {report.affinity_hit_rate:.1%}, "
        f"utilization {utilization}"
    )
    record_shard_metric(
        "shard_scale_replay",
        jobs=report.jobs,
        shards=len(report.shard_stats),
        boards_per_shard=BOARDS_PER_SHARD,
        executor=report.executor,
        wall_s=round(wall, 4),
        jobs_per_sec=round(report.jobs / wall, 1),
        per_job_us=round(per_job_us, 2),
        seed_per_job_us=round(seed_per_job_us, 1),
        speedup_vs_seed=round(speedup, 1),
        modelled_makespan_s=round(report.makespan_s, 1),
        wait_p50_s=round(report.wait_percentile(50.0), 3),
        wait_p99_s=round(report.wait_percentile(99.0), 3),
        wait_p999_s=round(report.wait_percentile(99.9), 3),
        affinity_hit_rate=round(report.affinity_hit_rate, 4),
        utilization_by_shard=utilization,
    )
    assert report.jobs == NUM_JOBS, "the router must not drop or duplicate jobs"
    assert len(report.shard_stats) == NUM_SHARDS
    assert all(jobs > 0 for jobs in report.shard_jobs.values()), (
        "every shard should receive traffic under a balanced ring"
    )
    assert speedup >= MIN_SPEEDUP_VS_SEED, (
        f"sharded replay ran at {per_job_us:.2f} us/job, only {speedup:.1f}x "
        f"the seed rate (need >= {MIN_SPEEDUP_VS_SEED}x of "
        f"{seed_per_job_us:.0f} us/job)"
    )


def test_autoscaled_heavy_tail_replay_recorded():
    """Not a gate -- a tracked series: a bursty heavy-tailed trace on
    deliberately undersized shards with the queue-depth autoscaler enabled,
    so scaling behaviour (events, final fleet sizes, tail waits) is visible
    in the artifact across PRs."""
    jobs = max(1000, NUM_JOBS // 5)
    trace = generate_trace(
        jobs, seed=11, arrival="heavy_tailed", rate_jobs_per_s=200.0
    )
    report = replay_sharded(
        trace,
        num_shards=NUM_SHARDS,
        boards_per_shard=2,
        autoscaler_factory=lambda shard: QueueDepthAutoscaler(
            min_boards=2, max_boards=32, high_watermark=4.0,
            low_watermark=0.5, cooldown_s=120.0,
        ),
    )
    scale_events = sum(len(s.scale_events) for s in report.shard_stats.values())
    final_boards = {
        str(shard): stats.final_boards
        for shard, stats in sorted(report.shard_stats.items())
    }
    print(
        f"\nautoscaled heavy-tail replay: {report.jobs} jobs, "
        f"{scale_events} scale events, final boards {final_boards}, "
        f"p99 wait {report.wait_percentile(99.0):.1f}s"
    )
    record_shard_metric(
        "autoscaled_heavy_tail",
        jobs=report.jobs,
        shards=len(report.shard_stats),
        start_boards_per_shard=2,
        scale_events=scale_events,
        final_boards_by_shard=final_boards,
        wait_p99_s=round(report.wait_percentile(99.0), 3),
        affinity_hit_rate=round(report.affinity_hit_rate, 4),
    )
    assert scale_events > 0, "a bursty overload must trigger the autoscaler"
    assert all(
        boards >= 2 for boards in final_boards.values()
    ), "drain-only shrink can never go below min_boards"
