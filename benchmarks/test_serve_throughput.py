"""The serving-path throughput gate: async overlap must beat the sync drain.

The workload models what the async front-end exists for: jobs whose bodies
spend most of their wall time *blocked on the FPGA* (``_TimedVectorAdd``
sleeps for a modelled device latency inside ``run``, standing in for the
host polling a real board's doorbell -- the GIL is released, exactly like
hardware).  The synchronous drain runs those jobs one at a time; the
front-end overlaps them across boards via its per-board executor threads,
so with two boards the device time of two tenants overlaps almost fully.

Gate (recorded in ``BENCH_serve.json`` for the CI artifact):

* concurrent throughput >= 1.5x the sync drain on a 2-board fleet, with
  per-job p99 latency for both paths recorded alongside;
* a second, rate-limited phase records its shed/ratelimited counts and
  asserts the backpressure events are visible on the trace stream.
"""

from __future__ import annotations

import asyncio
import time

import repro.obs as obs_api
from benchmarks.conftest import record_serve_metric
from repro.accelerators import VectorAddAccelerator
from repro.cloud import JobState, ShieldCloudService
from repro.obs.stats import summarize
from repro.serve import AsyncShieldFrontend

NUM_BOARDS = 2
JOBS_PER_TENANT = 3
TENANTS = ("alice", "bob")
VECTOR_BYTES = 8 * 1024
#: Modelled FPGA execution time per job: the host blocks on the device (a
#: sleep releases the GIL just like a real doorbell poll), so this is the
#: part concurrency can overlap.  Chosen to dominate the ~0.35 s of
#: GIL-bound host crypto per job -- matching real deployments, where the
#: device computation dwarfs the host's seal/unseal work -- so the gate
#: measures board overlap, not numpy scheduling noise.
DEVICE_LATENCY_S = 1.0
MIN_SPEEDUP = 1.5


class _TimedVectorAdd(VectorAddAccelerator):
    """Vector add whose execution models a real board's device latency."""

    def __init__(self, vector_bytes: int, device_latency_s: float):
        super().__init__(vector_bytes)
        self.device_latency_s = device_latency_s

    def run(self, memory, **params):
        time.sleep(self.device_latency_s)
        return super().run(memory, **params)


def _build_service():
    service = ShieldCloudService(num_boards=NUM_BOARDS, fast_crypto=True)
    accels = {
        tenant: _TimedVectorAdd(VECTOR_BYTES, DEVICE_LATENCY_S) for tenant in TENANTS
    }
    sessions = {
        tenant: service.admit_tenant(tenant, accel) for tenant, accel in accels.items()
    }
    workload = [
        (tenant, seed)
        for seed in range(JOBS_PER_TENANT)
        for tenant in TENANTS
    ]
    return service, accels, sessions, workload


def _run_sync() -> tuple:
    """Drain the workload sequentially; returns (elapsed_s, latencies)."""
    service, accels, sessions, workload = _build_service()
    start = time.perf_counter()
    jobs = [
        service.submit_job(
            sessions[tenant].session_id, inputs=accels[tenant].prepare_inputs(seed=seed)
        )
        for tenant, seed in workload
    ]
    submit_done = {job.job_id: time.perf_counter() - start for job in jobs}
    latencies = []
    while True:
        job = service.run_next_job()
        if job is None:
            break
        latencies.append((time.perf_counter() - start) - submit_done[job.job_id])
    elapsed = time.perf_counter() - start
    assert all(job.state is JobState.COMPLETED for job in jobs)
    return elapsed, latencies


def _run_async() -> tuple:
    """Serve the same workload concurrently; returns (elapsed_s, latencies)."""
    service, accels, sessions, workload = _build_service()
    latencies = []

    async def main():
        start = time.perf_counter()
        async with AsyncShieldFrontend(service) as frontend:
            futures = []
            for tenant, seed in workload:
                submitted = time.perf_counter()
                future = frontend.submit_nowait(
                    sessions[tenant].session_id,
                    inputs=accels[tenant].prepare_inputs(seed=seed),
                )
                future.add_done_callback(
                    lambda _, t0=submitted: latencies.append(time.perf_counter() - t0)
                )
                futures.append(future)
            jobs = await asyncio.gather(*futures)
            elapsed = time.perf_counter() - start
        assert all(job.state is JobState.COMPLETED for job in jobs)
        return elapsed

    return asyncio.run(main()), latencies


def test_concurrent_throughput_beats_sync_drain():
    sync_elapsed, sync_latencies = _run_sync()
    async_elapsed, async_latencies = _run_async()
    total_jobs = len(TENANTS) * JOBS_PER_TENANT
    sync_jobs_per_s = total_jobs / sync_elapsed
    async_jobs_per_s = total_jobs / async_elapsed
    speedup = async_jobs_per_s / sync_jobs_per_s
    sync_p99 = summarize(sync_latencies)["p99"]
    async_p99 = summarize(async_latencies)["p99"]
    record_serve_metric(
        "concurrent_throughput",
        boards=NUM_BOARDS,
        jobs=total_jobs,
        device_latency_s=DEVICE_LATENCY_S,
        sync_jobs_per_s=round(sync_jobs_per_s, 2),
        async_jobs_per_s=round(async_jobs_per_s, 2),
        speedup=round(speedup, 2),
        sync_p99_latency_s=round(sync_p99, 3),
        async_p99_latency_s=round(async_p99, 3),
        min_speedup=MIN_SPEEDUP,
    )
    print(
        f"\nsync: {sync_jobs_per_s:.2f} job/s (p99 {sync_p99:.2f}s)  "
        f"async: {async_jobs_per_s:.2f} job/s (p99 {async_p99:.2f}s)  "
        f"speedup {speedup:.2f}x"
    )
    assert speedup >= MIN_SPEEDUP, (
        f"async front-end reached only {speedup:.2f}x the sync drain "
        f"({async_jobs_per_s:.2f} vs {sync_jobs_per_s:.2f} job/s); "
        f"the gate requires {MIN_SPEEDUP}x on {NUM_BOARDS} boards"
    )


def test_backpressure_events_reach_the_trace_stream():
    with obs_api.scoped() as handle:
        service = ShieldCloudService(num_boards=1, fast_crypto=True)
        accel = VectorAddAccelerator(VECTOR_BYTES)
        clock_value = [0.0]

        async def main():
            session = service.admit_tenant("alice", accel)
            async with AsyncShieldFrontend(
                service,
                rate_limit=1.0,
                burst=2.0,
                max_pending=1,
                clock=lambda: clock_value[0],
            ) as frontend:
                futures = [
                    frontend.submit_nowait(
                        session.session_id, inputs=accel.prepare_inputs(seed=seed)
                    )
                    for seed in range(4)
                ]
                return await asyncio.gather(*futures)

        jobs = asyncio.run(main())

    rejected = [job for job in jobs if job.state is JobState.REJECTED]
    assert rejected, "the tight bucket/queue bound must shed something"
    stats = service.stats
    assert stats.jobs_ratelimited + stats.jobs_shed == len(rejected)
    marks = [
        event
        for event in handle.tracer.events
        if event.kind == "mark" and event.name in ("ratelimited", "shed")
    ]
    assert len(marks) == len(rejected)
    enqueue_outcomes = [
        event.attrs["outcome"] for event in handle.tracer.spans("enqueue")
    ]
    assert set(enqueue_outcomes) & {"ratelimited", "shed"}
    record_serve_metric(
        "backpressure_visibility",
        submitted=len(jobs),
        completed=sum(1 for job in jobs if job.state is JobState.COMPLETED),
        ratelimited=stats.jobs_ratelimited,
        shed=stats.jobs_shed,
        trace_marks=len(marks),
    )
