"""Scalar-vs-vectorized Merkle replay protection on a 4096-chunk tree.

Acceptance gate for the batched Merkle datapath: building a 4096-chunk Bonsai
counter tree and running a batched read + increment workload over it must be
at least 5x faster through the vectorized path (multi-message HMAC per tree
level, coalesced AXI bursts) than through the scalar per-node reference --
while producing byte-identical roots and identical per-node
:class:`~repro.core.merkle.MerkleStats`.  The measured ratios land in
``BENCH_merkle.json`` for the CI artifact.
"""

from __future__ import annotations

import time

from benchmarks.conftest import record_merkle_metric
from repro.core.merkle import BonsaiMerkleCounterTree
from repro.hw.axi import AxiPort, memory_backed_handler
from repro.hw.memory import DeviceMemory

NUM_CHUNKS = 4096
ARITY = 8
SAMPLE = 512
MIN_SPEEDUP = 5.0


def _build_tree(fast_hash: bool) -> BonsaiMerkleCounterTree:
    memory = DeviceMemory(1 << 22)
    port = AxiPort("merkle-bench", memory_backed_handler(memory))
    return BonsaiMerkleCounterTree(
        port,
        base_address=0x10000,
        num_chunks=NUM_CHUNKS,
        arity=ARITY,
        key=b"\x5a" * 32,
        fast_hash=fast_hash,
    )


def _workload_indices() -> list:
    # A strided sample touching every subtree: reads then read-modify-writes.
    return [(i * 97) % NUM_CHUNKS for i in range(SAMPLE)]


def test_vectorized_merkle_is_5x_faster_and_identical():
    indices = _workload_indices()

    start = time.perf_counter()
    scalar = _build_tree(fast_hash=False)
    scalar_build = time.perf_counter() - start
    start = time.perf_counter()
    scalar_reads = [scalar.read_counter(index) for index in indices]
    scalar_increments = [scalar.increment_counter(index) for index in indices]
    scalar_access = time.perf_counter() - start

    def fast_pass():
        start = time.perf_counter()
        tree = _build_tree(fast_hash=True)
        build = time.perf_counter() - start
        start = time.perf_counter()
        reads = tree.read_counters(indices)
        increments = tree.increment_counters(indices)
        access = time.perf_counter() - start
        return build, access, tree, reads, increments

    # The fast pass is sub-second; best of two absorbs CI scheduling noise.
    fast_build, fast_access, fast, fast_reads, fast_increments = fast_pass()
    second = fast_pass()
    fast_build = min(fast_build, second[0])
    fast_access = min(fast_access, second[1])

    assert fast_reads == scalar_reads
    assert fast_increments == scalar_increments
    assert fast.root() == scalar.root(), "batched Merkle root must be byte-identical"
    assert (
        fast.stats.node_reads,
        fast.stats.node_writes,
        fast.stats.bytes_read,
        fast.stats.bytes_written,
    ) == (
        scalar.stats.node_reads,
        scalar.stats.node_writes,
        scalar.stats.bytes_read,
        scalar.stats.bytes_written,
    ), "per-node traffic accounting must not depend on the datapath"

    scalar_seconds = scalar_build + scalar_access
    fast_seconds = fast_build + fast_access
    speedup = scalar_seconds / fast_seconds
    build_speedup = scalar_build / fast_build
    access_speedup = scalar_access / fast_access
    print(
        f"\n4096-chunk Merkle tree: scalar {scalar_seconds:.2f}s "
        f"(build {scalar_build:.2f}s, {SAMPLE} reads+increments {scalar_access:.2f}s), "
        f"fast {fast_seconds:.3f}s, speedup {speedup:.0f}x "
        f"(build {build_speedup:.0f}x, access {access_speedup:.0f}x)"
    )
    record_merkle_metric(
        "merkle_4096_chunk_tree",
        speedup=round(speedup, 2),
        build_speedup=round(build_speedup, 2),
        access_speedup=round(access_speedup, 2),
        scalar_seconds=round(scalar_seconds, 3),
        fast_seconds=round(fast_seconds, 4),
        num_chunks=NUM_CHUNKS,
        arity=ARITY,
        sampled_accesses=SAMPLE,
    )
    assert speedup >= MIN_SPEEDUP, (
        f"vectorized Merkle only {speedup:.1f}x faster (need >= {MIN_SPEEDUP}x)"
    )
