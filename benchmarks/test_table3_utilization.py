"""Table 3: inclusive Shield resource utilization for the largest configurations.

Paper values (% of the F1 device): Convolution 2.9/11/5.2, Digit Recognition
0.71/3.3/1.4, Affine 2.1/11/5.2, DNNWeaver 3.1/7.1/3.5, Bitcoin 0/1.4/0.42
(BRAM/LUT/REG).  The model composes Table 1's per-component costs according to
each accelerator's Section 6.2.4 configuration.
"""

from benchmarks.conftest import run_and_report
from repro.sim.experiments import table3_experiment


def test_table3_per_accelerator_area(benchmark):
    result = run_and_report(benchmark, table3_experiment)
    rows = {row["workload"]: row for row in result.rows}
    # Everything stays in the single-digit-to-low-teens percent range.
    for row in rows.values():
        assert row["lut_percent"] < 15
        assert row["bram_percent"] < 10
        assert row["reg_percent"] < 10
    # Bitcoin's register-only Shield is the cheapest; convolution's 12 engine
    # sets are the most LUT-hungry, as in the paper.
    assert rows["bitcoin"]["lut_percent"] < 2
    assert rows["bitcoin"]["bram_percent"] == 0
    assert rows["convolution"]["lut_percent"] >= rows["dnnweaver"]["lut_percent"]
    assert rows["digit_recognition"]["lut_percent"] < rows["convolution"]["lut_percent"]
