"""Ablation: ShEF's on-chip integrity counters vs a Bonsai Merkle tree.

Section 5.2.2 argues that FPGAs should spend on-chip RAM on flat counters
instead of walking a Merkle tree in DRAM.  This benchmark quantifies the claim
two ways: analytically (extra DRAM bytes per protected access) and
functionally (DRAM transactions actually issued by the Merkle baseline).
"""

from benchmarks.conftest import run_and_report
from repro.core.merkle import BonsaiMerkleCounterTree
from repro.hw.axi import AxiPort, memory_backed_handler
from repro.hw.memory import DeviceMemory
from repro.sim.experiments import ablation_replay_protection


def test_replay_protection_dram_overhead(benchmark):
    result = run_and_report(benchmark, ablation_replay_protection, num_chunks=16_384)
    rows = {row["scheme"]: row for row in result.rows}
    assert rows["shef_counters"]["extra_dram_bytes_per_access"] == 0.0
    for arity in (4, 8, 16):
        assert rows[f"merkle_arity_{arity}"]["extra_dram_bytes_per_access"] > 0
    # Wider trees trade DRAM traffic per access differently, but none reach zero.
    assert rows["merkle_arity_4"]["on_chip_bytes"] == 32


def test_functional_merkle_traffic(benchmark):
    """Count real DRAM transactions for a batch of counter updates."""

    def run_updates():
        memory = DeviceMemory(1 << 22)
        port = AxiPort("merkle", memory_backed_handler(memory))
        tree = BonsaiMerkleCounterTree(port, 0x100000, num_chunks=256, arity=8, key=b"k" * 32)
        tree.stats.node_reads = 0
        tree.stats.node_writes = 0
        for chunk in range(0, 256, 16):
            tree.increment_counter(chunk)
        return tree.stats

    stats = benchmark(run_updates)
    print(f"\nMerkle baseline: {stats.node_reads} node reads, {stats.node_writes} node writes "
          f"for 16 counter updates (ShEF counters: 0 DRAM accesses)")
    assert stats.node_reads > 16
    assert stats.node_writes >= 16
