"""Figure 6: execution time of five accelerators across Shield configurations.

Paper ranges (normalized execution time): Convolution 1.20-1.35, Digit
Recognition 1.85-3.15, Affine 1.41-2.22, DNNWeaver 3.20-3.83 (2.31 with the
PMAC substitution), Bitcoin ~1.0.  The assertions below check the shape: the
ordering of workloads, the benefit of 16x S-box parallelism, the near-zero
cost for the register-only miner, and the PMAC fix for DNNWeaver.
"""

from benchmarks.conftest import run_and_report
from repro.sim.experiments import figure6_experiment


def test_figure6_workload_overheads(benchmark):
    result = run_and_report(benchmark, figure6_experiment)
    table = {}
    for row in result.rows:
        table.setdefault(row["workload"], {})[row["configuration"]] = row["normalized_time"]

    # Bitcoin: securing a register-only accelerator is essentially free.
    assert all(value <= 1.05 for value in table["bitcoin"].values())

    # Convolution: batched streaming with high compute intensity -> small overheads.
    assert table["convolution"]["AES-128/16x"] < 1.5

    # DNNWeaver is the most expensive workload and PMAC recovers much of it.
    assert table["dnnweaver"]["AES-128/16x"] > 2.5
    assert table["dnnweaver"]["AES-128/16x-PMAC"] < 0.75 * table["dnnweaver"]["AES-128/16x"]

    # More S-box parallelism never hurts; AES-256 never beats AES-128.
    for workload, configs in table.items():
        assert configs["AES-128/4x"] >= configs["AES-128/16x"] - 1e-9
        assert configs["AES-256/16x"] >= configs["AES-128/16x"] - 1e-9

    # Relative ordering of the memory-bound workloads matches the paper.
    assert (
        table["convolution"]["AES-128/16x"]
        <= table["affine"]["AES-128/16x"]
        <= table["dnnweaver"]["AES-128/16x"]
    )
    assert table["digit_recognition"]["AES-128/16x"] > table["convolution"]["AES-128/16x"]
