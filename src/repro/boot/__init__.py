"""Secure-boot chain: Manufacturer provisioning, SPB firmware, Security Kernel.

This package implements the chain of trust of Sections 3-4: the Manufacturer
provisions device keys and sealed firmware, the BootROM (in :mod:`repro.hw.spb`)
decrypts that firmware, the firmware measures the Security Kernel and derives
the device-and-kernel-bound Attestation Key, and the Security Kernel then
serves attestation, loads accelerator bitstreams, and monitors tamper sensors.
"""

from repro.boot.certificates import (
    Certificate,
    CertificateAuthority,
    sign_binding,
    verify_binding,
    verify_certificate_with_key,
)
from repro.boot.firmware import KernelLaunchRecord, SpbFirmware
from repro.boot.manufacturer import (
    FIRMWARE_VERSION,
    Manufacturer,
    ProvisionedDevice,
    build_firmware_payload,
    parse_firmware_payload,
)
from repro.boot.measurement import MeasurementLog, measure, measure_many
from repro.boot.process import (
    F1_BITSTREAM_LOAD_SECONDS,
    TYPICAL_VM_BOOT_SECONDS,
    SecureBootResult,
    install_security_kernel,
    perform_secure_boot,
)
from repro.boot.security_kernel import (
    DEFAULT_SECURITY_KERNEL_BINARY,
    DEFAULT_SOFT_CPU_BITSTREAM,
    SecurityKernel,
)

__all__ = [
    "Certificate",
    "CertificateAuthority",
    "sign_binding",
    "verify_binding",
    "verify_certificate_with_key",
    "KernelLaunchRecord",
    "SpbFirmware",
    "FIRMWARE_VERSION",
    "Manufacturer",
    "ProvisionedDevice",
    "build_firmware_payload",
    "parse_firmware_payload",
    "MeasurementLog",
    "measure",
    "measure_many",
    "F1_BITSTREAM_LOAD_SECONDS",
    "TYPICAL_VM_BOOT_SECONDS",
    "SecureBootResult",
    "install_security_kernel",
    "perform_secure_boot",
    "DEFAULT_SECURITY_KERNEL_BINARY",
    "DEFAULT_SOFT_CPU_BITSTREAM",
    "SecurityKernel",
]
