"""The Manufacturer's role: device key provisioning and firmware sealing.

Figure 2, steps 1-2: during production the Manufacturer burns an AES device
key into the e-fuses (optionally PUF-wrapped), embeds an asymmetric private
device key inside the SPB firmware, encrypts that firmware under the AES
device key, and registers the public device key with a trusted certificate
authority.  After provisioning, the Manufacturer retains no control over the
device -- everything later in the workflow authenticates back to the
certificate it published.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from repro.boot.certificates import Certificate, CertificateAuthority
from repro.crypto.drbg import HmacDrbg
from repro.crypto.ecc import EcPrivateKey
from repro.crypto.keys import AesDeviceKey, DeviceKeySet
from repro.errors import BootError
from repro.hw.board import FpgaBoard
from repro.hw.spb import seal_firmware_image

FIRMWARE_VERSION = "shef-spb-firmware-1.0"


def build_firmware_payload(device_key_set: DeviceKeySet, version: str = FIRMWARE_VERSION) -> bytes:
    """Serialize the SPB firmware payload (embeds the private device key)."""
    body = {
        "version": version,
        "device_serial": device_key_set.device_serial,
        # The private scalar is embedded by design: this payload only ever
        # travels sealed under the AES device key (seal_firmware_image).
        "device_private_scalar": hex(device_key_set.private_key.scalar),  # lint: allow[secret-flow]
    }
    return json.dumps(body, sort_keys=True).encode("utf-8")


def parse_firmware_payload(payload: bytes) -> dict:
    """Parse a firmware payload; raises :class:`BootError` on malformed input."""
    try:
        body = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise BootError("SPB firmware payload is corrupt") from exc
    for field_name in ("version", "device_serial", "device_private_scalar"):
        if field_name not in body:
            raise BootError(f"SPB firmware payload missing field {field_name!r}")
    return body


@dataclass
class ProvisionedDevice:
    """What the Manufacturer publishes about a provisioned device."""

    serial: str
    device_certificate: Certificate


class Manufacturer:
    """The FPGA manufacturer: provisions devices and runs the device CA."""

    def __init__(self, name: str = "fpga-manufacturer", seed: int = 1):
        self.name = name
        self._rng = HmacDrbg(seed.to_bytes(8, "big"), b"manufacturer")
        # The CA root key is derived from this manufacturer's own secret seed,
        # not just its name, so two manufacturers never share a root of trust.
        self.certificate_authority = CertificateAuthority(name, seed=self._rng.generate(32))
        # The manufacturer's private production records; never leaves the factory.
        self._device_records: dict[str, DeviceKeySet] = {}

    def provision_device(
        self, board: FpgaBoard, use_puf_wrapping: bool = False
    ) -> ProvisionedDevice:
        """Provision a fresh board: burn keys, seal firmware, publish the certificate."""
        if board.fuses.is_provisioned:
            raise BootError(f"board {board.serial!r} has already been provisioned")

        aes_key = AesDeviceKey(self._rng.generate(32))
        private_device_key = EcPrivateKey.generate(self._rng)
        key_set = DeviceKeySet(
            aes_key=aes_key,
            private_key=private_device_key,
            device_serial=board.serial,
        )
        self._device_records[board.serial] = key_set

        # Step 1: burn the AES device key (optionally wrapped by the PUF so a
        # physical fuse readout is useless off-device).
        if use_puf_wrapping:
            board.enable_puf_key_wrapping()
            board.fuses.program_aes_key(board.puf.wrap_key(aes_key.material))
        else:
            board.fuses.program_aes_key(aes_key.material)
        board.fuses.program_public_key_hash(private_device_key.public_key.fingerprint())

        # Step 2: embed the private device key in the firmware, seal it under
        # the AES device key, and place it on the boot medium.
        payload = build_firmware_payload(key_set)
        sealed = seal_firmware_image(payload, aes_key.material)
        board.boot_medium.store("spb_firmware", sealed)

        # Publish the public device key through the certificate authority.
        certificate = self.certificate_authority.issue(
            subject=board.serial,
            public_key=private_device_key.public_key.encode(),
            claims={"role": "fpga-device", "manufacturer": self.name},
        )
        return ProvisionedDevice(serial=board.serial, device_certificate=certificate)

    def device_certificate(self, serial: str) -> Certificate:
        """Look up the published certificate for a device serial."""
        return self.certificate_authority.lookup(serial)
