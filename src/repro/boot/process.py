"""The end-to-end secure-boot process and its latency model.

``perform_secure_boot`` chains BootROM -> SPB firmware -> Security Kernel on a
provisioned board, returning the running :class:`SecurityKernel` plus a
per-phase latency breakdown.  The latencies come from the board profile and
reproduce the Section 6.1 measurement: on the Ultra96 the whole process from
power-on to bitstream loading completes in roughly 5 seconds, which the paper
contrasts with the ~40 s boot of a cloud VM plus ~6 s of F1 bitstream loading.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.boot.firmware import KernelLaunchRecord, SpbFirmware
from repro.boot.security_kernel import (
    DEFAULT_SECURITY_KERNEL_BINARY,
    DEFAULT_SOFT_CPU_BITSTREAM,
    SecurityKernel,
)
from repro.errors import BootError
from repro.hw.board import FpgaBoard

# Reference points the paper cites for comparison (Section 6.1).
TYPICAL_VM_BOOT_SECONDS = 40.0
F1_BITSTREAM_LOAD_SECONDS = 6.2


@dataclass
class SecureBootResult:
    """Outcome of a secure boot: the running kernel and the latency breakdown."""

    kernel: SecurityKernel
    launch_record: KernelLaunchRecord
    phase_seconds: dict = field(default_factory=dict)

    @property
    def total_seconds(self) -> float:
        return sum(self.phase_seconds.values())


def install_security_kernel(
    board: FpgaBoard,
    kernel_binary: bytes = DEFAULT_SECURITY_KERNEL_BINARY,
    soft_cpu_bitstream: bytes = DEFAULT_SOFT_CPU_BITSTREAM,
) -> None:
    """Place the Security Kernel binary (and soft-CPU bitstream) on the boot medium.

    The boot medium is attacker-writable storage; nothing is trusted until the
    firmware measures it.
    """
    board.boot_medium.store("security_kernel", kernel_binary)
    if board.security_kernel_processor.is_soft:
        board.boot_medium.store("soft_cpu_bitstream", soft_cpu_bitstream)


def perform_secure_boot(
    board: FpgaBoard, include_partial_reconfig_time: bool = True
) -> SecureBootResult:
    """Run the full secure-boot chain on a provisioned board.

    Phases and their latency contributions (seconds, from the board profile):

    * ``boot_rom`` -- BootROM fetches and decrypts the SPB firmware,
    * ``firmware`` -- firmware initialization,
    * ``kernel_measure_and_launch`` -- hashing the kernel, deriving the
      Attestation Key, loading the dedicated processor,
    * ``partial_reconfiguration`` -- (optional) the later bitstream-load time,
      included so the total matches the paper's "power-on to bitstream
      loading" definition.
    """
    if "security_kernel" not in board.boot_medium:
        raise BootError(
            "no Security Kernel on the boot medium; call install_security_kernel first"
        )
    profile = board.profile
    phases: dict[str, float] = {}

    # Phase 1: BootROM.
    firmware_payload = board.spb.boot_rom_load_firmware(board.boot_medium)
    phases["boot_rom"] = profile.boot_rom_seconds

    # Phase 2: firmware comes up.
    firmware = SpbFirmware.from_payload(firmware_payload)
    phases["firmware"] = profile.firmware_load_seconds

    # Phase 3: measure + launch the Security Kernel.
    kernel_binary = board.boot_medium.load("security_kernel")
    soft_bitstream = (
        board.boot_medium.load("soft_cpu_bitstream")
        if board.security_kernel_processor.is_soft
        else b""
    )
    launch_record = firmware.measure_and_launch_kernel(
        board, kernel_binary, soft_cpu_bitstream=soft_bitstream
    )
    phases["kernel_measure_and_launch"] = profile.kernel_load_seconds

    if include_partial_reconfig_time:
        phases["partial_reconfiguration"] = profile.partial_reconfig_seconds

    kernel = SecurityKernel(board, launch_record)
    board.clock.advance(int(sum(phases.values()) * profile.clock_hz))
    return SecureBootResult(kernel=kernel, launch_record=launch_record, phase_seconds=phases)
