"""The ShEF Security Kernel.

The Security Kernel is open-source software running on a dedicated processor
with private on-chip memory.  It holds no long-term secrets -- only the
per-boot Attestation Key pair the firmware placed in its private memory -- and
has three jobs (Section 3):

1. serve remote-attestation requests from IP Vendors / Data Owners,
2. mediate all access to the fabric: launch the CSP's Shell into the static
   region, then decrypt (with the Bitstream Key received over the attested
   session) and load the accelerator bitstream into the user region,
3. continuously poll the hardware tamper monitors (JTAG / programming ports).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.attestation.messages import (
    AttestationChallenge,
    AttestationReport,
    EncryptedKeyDelivery,
    SignedAttestationReport,
)
from repro.boot.firmware import KernelLaunchRecord
from repro.crypto.authenc import AuthenticatedCipher, AuthenticatedMessage
from repro.crypto.ecc import EcPublicKey, derive_session_key, ecdsa_sign
from repro.crypto.mac import MAC_TAG_SIZES
from repro.errors import AttestationError, BitstreamError, BootError
from repro.hw.bitstream import Bitstream, EncryptedBitstream, decrypt_bitstream
from repro.hw.board import FpgaBoard

# The "binary" of the reference Security Kernel.  Its hash is what IP Vendors
# whitelist; changing a byte changes the measurement and attestation fails.
DEFAULT_SECURITY_KERNEL_BINARY = (
    b"ShEF Security Kernel v1.0\n"
    b"services: remote-attestation, bitstream-load, tamper-monitor\n"
)

# Bitstream of the soft Security Kernel Processor (used on boards without a
# spare hard core, e.g. the F1 profile); measured alongside the kernel binary.
DEFAULT_SOFT_CPU_BITSTREAM = b"ShEF MicroBlaze Security Kernel Processor v1.0\n"


@dataclass
class AttestationSessionState:
    """Per-attestation state the kernel keeps between challenge and key delivery."""

    session_cipher: AuthenticatedCipher
    verification_public_key: bytes
    nonce: bytes


class SecurityKernel:
    """A running Security Kernel instance bound to one board and one boot."""

    def __init__(self, board: FpgaBoard, launch_record: KernelLaunchRecord):
        processor = board.security_kernel_processor
        if processor.running_binary_hash != launch_record.kernel_hash:
            raise BootError("Security Kernel processor is not running the measured binary")
        self.board = board
        self.kernel_hash = launch_record.kernel_hash
        self.device_serial = launch_record.device_serial
        self._attestation_key = launch_record.attestation_key
        self._kernel_certificate_signature = launch_record.kernel_certificate_signature
        self._staged_bitstream: Optional[EncryptedBitstream] = None
        self._bitstream_key: Optional[bytes] = None
        self._session: Optional[AttestationSessionState] = None
        self.loaded_bitstream: Optional[Bitstream] = None
        self.attestations_served = 0

    # -- Shell and bitstream management ----------------------------------------

    def launch_shell(self, shell_bitstream: Bitstream) -> None:
        """Load the CSP's Shell into the static region (auditable: kernel-mediated)."""
        self.board.fabric.program_region(FpgaBoard.SHELL_REGION, shell_bitstream)

    def stage_encrypted_bitstream(self, encrypted: EncryptedBitstream) -> None:
        """Receive the encrypted accelerator bitstream from the FPGA driver."""
        self._staged_bitstream = encrypted

    @property
    def staged_bitstream_hash(self) -> bytes:
        """``H(Enc_BitstrKey(Accelerator))`` over the currently staged bitstream."""
        if self._staged_bitstream is None:
            raise AttestationError("no encrypted bitstream has been staged")
        return self._staged_bitstream.measurement()

    # -- remote attestation ------------------------------------------------------

    def handle_challenge(self, challenge: AttestationChallenge) -> SignedAttestationReport:
        """Respond to an IP Vendor challenge with a signed attestation report.

        Implements steps 3-4 of Figure 3: hash the staged encrypted bitstream,
        derive the SessionKey with ECDH, sign the SessionKey and the report
        with the Attestation private key.
        """
        self.monitor_ports()
        bitstream_hash = self.staged_bitstream_hash
        verification_key = EcPublicKey.decode(challenge.verification_public_key)
        session_key = derive_session_key(
            self._attestation_key.private_key, verification_key
        )
        session_key_signature = ecdsa_sign(
            self._attestation_key.private_key, b"shef-session-key" + session_key
        )
        report = AttestationReport(
            nonce=challenge.nonce,
            encrypted_bitstream_hash=bitstream_hash,
            attestation_public_key=self._attestation_key.public_key.encode(),
            kernel_hash=self.kernel_hash,
            kernel_certificate_signature=self._kernel_certificate_signature,
            device_serial=self.device_serial,
        )
        report_signature = ecdsa_sign(
            self._attestation_key.private_key, report.canonical_bytes()
        )
        self._session = AttestationSessionState(
            session_cipher=AuthenticatedCipher(session_key, "HMAC"),
            verification_public_key=challenge.verification_public_key,
            nonce=challenge.nonce,
        )
        self.attestations_served += 1
        return SignedAttestationReport(
            report=report,
            report_signature=report_signature,
            session_key_signature=session_key_signature,
        )

    def receive_bitstream_key(self, delivery: EncryptedKeyDelivery) -> None:
        """Decrypt the Bitstream Key sent by the IP Vendor over the attested session."""
        if self._session is None:
            raise AttestationError("bitstream key delivered before attestation completed")
        message = AuthenticatedMessage.deserialize(
            delivery.sealed_payload, tag_size=MAC_TAG_SIZES["HMAC"]
        )
        self._bitstream_key = self._session.session_cipher.open(
            message, associated_data=b"bitstream-key" + self._session.nonce
        )

    # -- accelerator loading -------------------------------------------------------

    def load_accelerator(self) -> Bitstream:
        """Decrypt the staged bitstream and program it into the user region.

        The plaintext bitstream (containing the IP and the Shield's private
        key) only ever exists inside this method's scope and the fabric model,
        mirroring "handled only in secure on-chip memory".
        """
        if self._staged_bitstream is None:
            raise BitstreamError("no encrypted bitstream staged for loading")
        if self._bitstream_key is None:
            raise BitstreamError("the Bitstream Key has not been provisioned")
        self.monitor_ports()
        plaintext = decrypt_bitstream(self._staged_bitstream, self._bitstream_key)
        self.board.fabric.program_region(FpgaBoard.USER_REGION, plaintext)
        self.loaded_bitstream = plaintext
        return plaintext

    # -- isolated execution ----------------------------------------------------------

    def monitor_ports(self) -> None:
        """Poll tamper monitors; any unexpected JTAG/ICAP access aborts the flow."""
        self.board.tamper_monitor.assert_untampered()

    def holds_device_secrets(self) -> bool:
        """The kernel never holds device keys -- used by tests to assert the TCB claim."""
        return False
