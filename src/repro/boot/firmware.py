"""The SPB firmware: bootstrapping trust from the device key to the Security Kernel.

After the BootROM decrypts and authenticates the firmware (see
:mod:`repro.hw.spb`), the firmware's job (Section 4, "Secure Boot") is to:

1. read the Security Kernel binary from the boot medium and hash it,
2. sign that hash with the private device key and use the signature to seed a
   key generator, producing the per-boot **Attestation Key** pair that is
   cryptographically bound to (device, kernel binary),
3. issue the certificate ``sigma_SecKrnl = Sign_DeviceKey(H(SecKrnl), AttestKey_pub)``,
4. load the Security Kernel onto its dedicated processor and place the
   Attestation Key pair and certificate into the kernel's private memory.

The firmware holds the private device key; the Security Kernel never does.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.boot.manufacturer import parse_firmware_payload
from repro.boot.measurement import measure, measure_many
from repro.boot.certificates import sign_binding
from repro.crypto.ecc import (
    GENERATOR,
    EcPrivateKey,
    EcPublicKey,
    ecdsa_sign,
    scalar_multiply,
)
from repro.crypto.keys import AttestationKeyPair
from repro.errors import BootError
from repro.hw.board import FpgaBoard


@dataclass(frozen=True)
class KernelLaunchRecord:
    """Everything the firmware hands to the Security Kernel's private memory."""

    kernel_hash: bytes
    attestation_key: AttestationKeyPair
    kernel_certificate_signature: bytes
    device_serial: str


class SpbFirmware:
    """The decrypted, running SPB firmware."""

    def __init__(self, device_private_key: EcPrivateKey, device_serial: str, version: str):
        self._device_private_key = device_private_key
        self.device_serial = device_serial
        self.version = version

    @staticmethod
    def from_payload(payload: bytes) -> "SpbFirmware":
        """Instantiate the firmware from the plaintext payload the BootROM produced."""
        body = parse_firmware_payload(payload)
        scalar = int(body["device_private_scalar"], 16)
        public_key = EcPublicKey(scalar_multiply(scalar, GENERATOR))
        private_key = EcPrivateKey(scalar, public_key)
        return SpbFirmware(private_key, body["device_serial"], body["version"])

    @property
    def device_public_key_encoding(self) -> bytes:
        return self._device_private_key.public_key.encode()

    # -- the core secure-boot step -------------------------------------------

    def measure_and_launch_kernel(
        self, board: FpgaBoard, kernel_binary: bytes, soft_cpu_bitstream: bytes = b""
    ) -> KernelLaunchRecord:
        """Measure the Security Kernel, derive the Attestation Key, and launch it.

        If the Security Kernel Processor is a soft CPU, its bitstream is
        measured alongside the kernel binary (Section 4).
        """
        if not kernel_binary:
            raise BootError("no Security Kernel binary present on the boot medium")
        processor = board.security_kernel_processor
        if processor.is_soft:
            if not soft_cpu_bitstream:
                raise BootError(
                    "a soft Security Kernel Processor requires its bitstream to be measured"
                )
            kernel_hash = measure_many(kernel_binary, soft_cpu_bitstream)
        else:
            kernel_hash = measure(kernel_binary)

        # Sign the measurement with the device key; the signature seeds the
        # Attestation Key generator, binding the key to (device, kernel).
        seed_signature = ecdsa_sign(self._device_private_key, b"attestation-key-seed" + kernel_hash)
        attestation_private = EcPrivateKey.from_seed(seed_signature, label="attestation-key")
        attestation_key = AttestationKeyPair(
            private_key=attestation_private, kernel_hash=kernel_hash
        )

        # sigma_SecKrnl binds the kernel hash and Attestation public key under
        # the device key; the IP Vendor verifies it against the CA-published
        # device certificate.
        kernel_certificate_signature = sign_binding(
            self._device_private_key,
            kernel_hash,
            attestation_key.public_key.encode(),
        )

        record = KernelLaunchRecord(
            kernel_hash=kernel_hash,
            attestation_key=attestation_key,
            kernel_certificate_signature=kernel_certificate_signature,
            device_serial=self.device_serial,
        )
        processor.load(
            binary_hash=kernel_hash,
            private_data={
                "attestation_key": attestation_key,
                "kernel_certificate_signature": kernel_certificate_signature,
                "device_serial": self.device_serial,
            },
        )
        return record
