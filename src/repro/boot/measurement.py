"""Measurement helpers: hashing boot components and chaining measurements.

Secure boot "extends trust by cryptographically measuring each component
during boot" (Section 2.1).  :func:`measure` is the single hash primitive used
everywhere, and :class:`MeasurementLog` is a TPM-PCR-style extend chain used
by the firmware to accumulate the kernel (and, for soft Security Kernel
Processors, the soft-CPU bitstream) into one value.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.annotations import scalar_reference
from repro.crypto.hashes import sha256


def measure(data: bytes) -> bytes:
    """Measure a boot component: SHA-256 over its bytes."""
    return sha256(data)


@scalar_reference("measure")
def measure_many(*components: bytes) -> bytes:
    """Measure several components in order with length framing."""
    body = b"".join(len(c).to_bytes(8, "big") + c for c in components)
    return sha256(body)


@dataclass
class MeasurementLog:
    """An extend-style measurement chain with a readable event log."""

    value: bytes = b"\x00" * 32
    events: list = field(default_factory=list)

    def extend(self, name: str, data: bytes) -> bytes:
        """Extend the chain with a named component and return the new value."""
        digest = measure(data)
        self.value = sha256(self.value + digest)
        self.events.append((name, digest))
        return self.value

    def digest(self) -> bytes:
        """Current chain value."""
        return self.value

    def event_names(self) -> list:
        """Names of all measured components, in order."""
        return [name for name, _ in self.events]
