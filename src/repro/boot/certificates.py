"""Certificates and certificate authorities for the ShEF trust chain.

Two certificate relationships exist in the paper's workflow:

* the **Manufacturer** registers each FPGA's public device key with a trusted
  certificate authority (step 2 of Figure 2), which is how the IP Vendor later
  validates that an attestation report came from a legitimate device, and
* the **SPB firmware** issues a per-boot certificate sigma_SecKrnl over the
  Security Kernel hash and the derived Attestation public key, binding the
  Attestation Key to a specific device and kernel binary.

Certificates here are simple canonical byte structures signed with ECDSA; no
X.509 machinery is needed for the protocols to be faithful.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.crypto.drbg import HmacDrbg
from repro.crypto.ecc import EcPrivateKey, EcPublicKey, ecdsa_sign, ecdsa_verify
from repro.errors import SignatureError


@dataclass(frozen=True)
class Certificate:
    """A signed binding between a subject, a public key, and a set of claims."""

    subject: str
    issuer: str
    public_key: bytes
    claims: dict = field(default_factory=dict)
    signature: bytes = b""

    def canonical_bytes(self) -> bytes:
        """The byte string that is signed (signature field excluded)."""
        body = {
            "subject": self.subject,
            "issuer": self.issuer,
            "public_key": self.public_key.hex(),
            "claims": {k: str(v) for k, v in sorted(self.claims.items())},
        }
        return json.dumps(body, sort_keys=True).encode("utf-8")

    def with_signature(self, signature: bytes) -> "Certificate":
        return Certificate(
            subject=self.subject,
            issuer=self.issuer,
            public_key=self.public_key,
            claims=dict(self.claims),
            signature=signature,
        )

    def subject_public_key(self) -> EcPublicKey:
        """Decode the certified public key (assumed to be a P-256 point)."""
        return EcPublicKey.decode(self.public_key)


class CertificateAuthority:
    """A minimal CA: issues and verifies :class:`Certificate` objects."""

    def __init__(self, name: str, seed: bytes | None = None):
        self.name = name
        seed = seed if seed is not None else name.encode("utf-8")
        self._root_key = EcPrivateKey.from_seed(seed, label=f"ca-{name}")
        self._registry: dict[str, Certificate] = {}

    @property
    def root_public_key(self) -> EcPublicKey:
        return self._root_key.public_key

    def issue(self, subject: str, public_key: bytes, claims: dict | None = None) -> Certificate:
        """Issue and register a certificate for ``subject``."""
        certificate = Certificate(
            subject=subject,
            issuer=self.name,
            public_key=public_key,
            claims=dict(claims or {}),
        )
        signature = ecdsa_sign(self._root_key, certificate.canonical_bytes())
        certificate = certificate.with_signature(signature)
        self._registry[subject] = certificate
        return certificate

    def lookup(self, subject: str) -> Certificate:
        """Fetch the published certificate for ``subject``."""
        try:
            return self._registry[subject]
        except KeyError:
            raise SignatureError(f"no certificate registered for {subject!r}") from None

    def verify(self, certificate: Certificate) -> None:
        """Check that ``certificate`` was signed by this CA; raise on failure."""
        if certificate.issuer != self.name:
            raise SignatureError(
                f"certificate issued by {certificate.issuer!r}, expected {self.name!r}"
            )
        if not ecdsa_verify(
            self.root_public_key, certificate.canonical_bytes(), certificate.signature
        ):
            raise SignatureError(
                f"certificate for {certificate.subject!r} has an invalid signature"
            )


def verify_certificate_with_key(
    certificate: Certificate, issuer_public_key: EcPublicKey
) -> None:
    """Verify a certificate against an explicit issuer public key."""
    if not ecdsa_verify(
        issuer_public_key, certificate.canonical_bytes(), certificate.signature
    ):
        raise SignatureError(
            f"certificate for {certificate.subject!r} has an invalid signature"
        )


def sign_binding(
    signer: EcPrivateKey, *parts: bytes
) -> bytes:
    """Sign a concatenation of length-prefixed parts (used for sigma_SecKrnl)."""
    message = b"".join(len(p).to_bytes(4, "big") + p for p in parts)
    return ecdsa_sign(signer, message)


def verify_binding(
    public_key: EcPublicKey, signature: bytes, *parts: bytes
) -> bool:
    """Verify a signature produced by :func:`sign_binding`."""
    message = b"".join(len(p).to_bytes(4, "big") + p for p in parts)
    return ecdsa_verify(public_key, message, signature)


def make_rng(label: str, seed: int = 0) -> HmacDrbg:
    """Convenience deterministic RNG factory used by the boot chain."""
    return HmacDrbg(seed.to_bytes(8, "big"), label.encode("utf-8"))
