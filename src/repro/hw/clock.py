"""Cycle accounting for the simulated FPGA.

Components that model latency or throughput (engines, DRAM, boot phases)
charge cycles against a shared :class:`CycleClock`.  The clock is purely a
counter -- there is no event-driven scheduler -- because the Shield timing
model in :mod:`repro.core.timing` computes per-burst latencies analytically
and only needs a place to accumulate them.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class CycleClock:
    """A monotonically advancing cycle counter with a nominal frequency."""

    frequency_hz: float = 250e6
    cycles: int = 0
    _checkpoints: dict = field(default_factory=dict)

    def advance(self, cycles: int) -> int:
        """Advance the clock by ``cycles`` (must be non-negative); return the new time."""
        if cycles < 0:
            raise ValueError("cannot advance the clock by a negative amount")
        self.cycles += int(cycles)
        return self.cycles

    def now(self) -> int:
        """Current cycle count."""
        return self.cycles

    def elapsed_seconds(self) -> float:
        """Wall-clock equivalent of the elapsed cycles at the nominal frequency."""
        return self.cycles / self.frequency_hz

    def checkpoint(self, name: str) -> None:
        """Record the current cycle count under ``name`` (e.g. a boot phase)."""
        self._checkpoints[name] = self.cycles

    def since(self, name: str) -> int:
        """Cycles elapsed since the named checkpoint."""
        if name not in self._checkpoints:
            raise KeyError(f"unknown checkpoint {name!r}")
        return self.cycles - self._checkpoints[name]

    def reset(self) -> None:
        """Reset the counter and forget all checkpoints."""
        self.cycles = 0
        self._checkpoints.clear()
