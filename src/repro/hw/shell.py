"""The CSP's Shell: the untrusted "operating system" of the cloud FPGA.

The Shell is static logic owned by the cloud provider.  It virtualizes the
board peripherals and is the *only* way user logic reaches the outside world:
an AXI4-Lite register interface mastered by the host, an AXI4 memory interface
to device DRAM, and a DMA engine the host uses to move bulk data.  ShEF's
threat model explicitly allows the Shell to be malicious, so every path
through this class supports interposers/taps that the attack library uses to
snoop or corrupt traffic.  Whatever is connected behind the Shell (the Shield,
in a ShEF deployment) must assume all of it is hostile.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.errors import ShieldError
from repro.hw.axi import (
    AxiBurst,
    AxiLiteTransaction,
    AxiPort,
    BurstKind,
    memory_backed_handler,
)
from repro.hw.memory import DeviceMemory


@dataclass
class ShellStats:
    """Traffic counters on the Shell's external interfaces."""

    register_reads: int = 0
    register_writes: int = 0
    dma_bytes_in: int = 0
    dma_bytes_out: int = 0


class Shell:
    """The untrusted Shell connecting host, device memory, and user logic."""

    def __init__(self, device_memory: DeviceMemory, name: str = "aws-f1-shell"):
        self.name = name
        self.device_memory = device_memory
        self.stats = ShellStats()
        # The memory port is what user logic (Shield or bare accelerator)
        # drives to reach DRAM.
        self.memory_port = AxiPort(
            name=f"{name}.memory", slave_handler=memory_backed_handler(device_memory)
        )
        # The register slave is installed by whatever user logic is loaded.
        self._register_slave: Optional[Callable[[AxiLiteTransaction], bytes]] = None
        self._register_tap: Optional[Callable[[AxiLiteTransaction], None]] = None
        self._dma_taps: list[Callable[[str, int, bytes], None]] = []

    # -- user-logic side -------------------------------------------------------

    def connect_register_slave(
        self, handler: Callable[[AxiLiteTransaction], bytes]
    ) -> None:
        """Attach the logic that services host register accesses (the Shield)."""
        self._register_slave = handler

    def disconnect_user_logic(self) -> None:
        """Detach user logic (partial reconfiguration of the user region)."""
        self._register_slave = None

    # -- host side --------------------------------------------------------------

    def host_register_write(self, address: int, data: bytes) -> None:
        """Host program writes a 32-bit register through AXI4-Lite."""
        txn = AxiLiteTransaction(BurstKind.WRITE, address, bytes(data))
        self.stats.register_writes += 1
        if self._register_tap is not None:
            self._register_tap(txn)
        if self._register_slave is None:
            raise ShieldError("no user logic is connected to the Shell register port")
        self._register_slave(txn)

    def host_register_read(self, address: int) -> bytes:
        """Host program reads a 32-bit register through AXI4-Lite."""
        txn = AxiLiteTransaction(BurstKind.READ, address)
        self.stats.register_reads += 1
        if self._register_tap is not None:
            self._register_tap(txn)
        if self._register_slave is None:
            raise ShieldError("no user logic is connected to the Shell register port")
        return self._register_slave(txn)

    def host_dma_write(self, address: int, data: bytes) -> None:
        """Host-initiated DMA into device memory (used to stage encrypted inputs)."""
        for tap in self._dma_taps:
            tap("write", address, bytes(data))
        self.stats.dma_bytes_in += len(data)
        self.device_memory.write(address, data)

    def host_dma_read(self, address: int, length: int) -> bytes:
        """Host-initiated DMA out of device memory (used to fetch encrypted outputs)."""
        data = self.device_memory.read(address, length)
        for tap in self._dma_taps:
            tap("read", address, data)
        self.stats.dma_bytes_out += length
        return data

    # -- adversary hooks ---------------------------------------------------------

    def install_memory_interposer(
        self, interposer: Callable[[AxiBurst], AxiBurst]
    ) -> None:
        """A malicious Shell build can observe/alter every memory burst."""
        self.memory_port.interposer = interposer

    def install_register_tap(
        self, tap: Callable[[AxiLiteTransaction], None]
    ) -> None:
        """A malicious Shell build can observe every register access."""
        self._register_tap = tap

    def install_dma_tap(self, tap: Callable[[str, int, bytes], None]) -> None:
        """Attach an observer of every DMA transfer.

        Taps stack rather than replace: a malicious Shell build snooping DMA
        cannot sever an auditor (e.g. the cloud service's per-board ledger)
        that was installed earlier, and vice versa.
        """
        self._dma_taps.append(tap)
