"""Board profiles and the composed FPGA board model.

Two profiles mirror the paper's evaluation platforms:

* ``ULTRA96`` -- the local Xilinx Ultra96 (Zynq UltraScale+ MPSoC) board used
  for the end-to-end secure boot and attestation measurement (Section 6.1),
  with a hardened Cortex-R5 available as the Security Kernel Processor.
* ``AWS_F1`` -- an AWS EC2 F1 instance with a Virtex UltraScale+ VU9P, 64 GiB
  of DDR4 device memory, and the CSP's Shell occupying a static region
  (Sections 2.3 and 6.2).

:class:`FpgaBoard` wires the fuses, PUF, SPB, fabric, device memory, on-chip
memory, tamper monitors, and Shell together into one object that the boot
chain, workflow, and simulator all share.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.crypto.drbg import HmacDrbg
from repro.hw.clock import CycleClock
from repro.hw.fabric import Fabric, FabricResources
from repro.hw.fuses import KeyFuses
from repro.hw.jtag import TamperMonitor
from repro.hw.memory import DeviceMemory, OnChipMemory
from repro.hw.puf import Puf
from repro.hw.shell import Shell
from repro.hw.spb import BootMedium, SecurityKernelProcessor, SecurityProcessorBlock


class BoardModel(Enum):
    """Supported board profiles."""

    ULTRA96 = "ultra96"
    AWS_F1 = "aws-f1"


@dataclass(frozen=True)
class BoardProfile:
    """Static description of a board's resources."""

    model: BoardModel
    device_memory_bytes: int
    on_chip_memory_bytes: int
    total_resources: FabricResources
    shell_fraction: float
    clock_hz: float
    security_kernel_processor: str
    boot_rom_seconds: float
    firmware_load_seconds: float
    kernel_load_seconds: float
    partial_reconfig_seconds: float


# The VU9P on F1: ~1,182k LUTs, ~2,364k registers, 75.9 Mb BRAM + 270 Mb URAM
# (the paper quotes 382 Mb of on-chip memory as the configurable maximum).
AWS_F1_PROFILE = BoardProfile(
    model=BoardModel.AWS_F1,
    device_memory_bytes=64 * 1024 ** 3,
    on_chip_memory_bytes=int(382e6 / 8),
    total_resources=FabricResources(
        luts=1_182_000, registers=2_364_000, bram_kb=9_475, uram_kb=34_560
    ),
    shell_fraction=0.2,
    clock_hz=250e6,
    security_kernel_processor="microblaze",
    boot_rom_seconds=0.4,
    firmware_load_seconds=1.1,
    kernel_load_seconds=1.2,
    partial_reconfig_seconds=6.2,
)

# The Ultra96 (ZU3EG): much smaller fabric, 2 GiB LPDDR4, hard Cortex-R5.
ULTRA96_PROFILE = BoardProfile(
    model=BoardModel.ULTRA96,
    device_memory_bytes=2 * 1024 ** 3,
    on_chip_memory_bytes=int(7.6e6 / 8) * 8,
    total_resources=FabricResources(
        luts=71_000, registers=141_000, bram_kb=950, uram_kb=0
    ),
    shell_fraction=0.15,
    clock_hz=150e6,
    security_kernel_processor="cortex-r5",
    boot_rom_seconds=0.3,
    firmware_load_seconds=0.9,
    kernel_load_seconds=1.1,
    partial_reconfig_seconds=2.8,
)

_PROFILES = {
    BoardModel.ULTRA96: ULTRA96_PROFILE,
    BoardModel.AWS_F1: AWS_F1_PROFILE,
}


class FpgaBoard:
    """A fully composed FPGA board instance."""

    SHELL_REGION = "shell"
    USER_REGION = "user"

    def __init__(self, profile: BoardProfile, serial: str = "fpga-0001"):
        self.profile = profile
        self.serial = serial
        self.clock = CycleClock(frequency_hz=profile.clock_hz)
        self.fuses = KeyFuses()
        # The silicon fingerprint is a per-device physical property; derive it
        # from the serial so simulations are reproducible per board instance.
        self.puf = Puf(
            HmacDrbg(serial.encode("utf-8"), b"silicon-fingerprint").generate(32)
        )
        self.boot_medium = BootMedium()
        self.spb = SecurityProcessorBlock(self.fuses, puf=None)
        self.security_kernel_processor = SecurityKernelProcessor(
            kind=profile.security_kernel_processor
        )
        self.device_memory = DeviceMemory(profile.device_memory_bytes)
        self.on_chip_memory = OnChipMemory(profile.on_chip_memory_bytes)
        self.fabric = Fabric(profile.total_resources)
        self.fabric.add_region(
            self.SHELL_REGION,
            profile.total_resources.scaled(profile.shell_fraction),
            static=True,
        )
        self.fabric.add_region(
            self.USER_REGION,
            profile.total_resources.scaled(1.0 - profile.shell_fraction),
            static=False,
        )
        self.tamper_monitor = TamperMonitor()
        self.tamper_monitor.add_port("jtag")
        self.tamper_monitor.add_port("icap")
        self.tamper_monitor.add_port("pcap")
        self.shell = Shell(self.device_memory)

    @property
    def user_region_resources(self) -> FabricResources:
        """Resources available to the user's accelerator + Shield."""
        return self.fabric.region(self.USER_REGION).resources

    def enable_puf_key_wrapping(self) -> None:
        """Switch the SPB to PUF-wrapped device keys (optional hardening)."""
        self.spb.puf = self.puf

    def reset_user_region(self) -> None:
        """Clear the user region (the FPGA driver does this before secure boot)."""
        region = self.fabric.region(self.USER_REGION)
        if region.is_programmed:
            self.fabric.clear_region(self.USER_REGION)
        self.shell.disconnect_user_logic()


def make_board(model: BoardModel | str, serial: str = "fpga-0001") -> FpgaBoard:
    """Construct a board from a profile name or :class:`BoardModel`."""
    if isinstance(model, str):
        model = BoardModel(model)
    return FpgaBoard(_PROFILES[model], serial=serial)
