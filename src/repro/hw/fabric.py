"""The reconfigurable fabric: static (Shell) and dynamic (user) regions.

AWS F1 configures each FPGA with two partial bitstreams -- the CSP's Shell in
a static region and the user accelerator in a reconfigurable region (Section
2.3).  The fabric model tracks which design occupies which region, enforces
the region's resource budget, and lets the Security Kernel perform partial
reconfiguration of the user region without touching the Shell.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import FabricError
from repro.hw.bitstream import Bitstream


@dataclass(frozen=True)
class FabricResources:
    """Resource totals for a device or a region (Table 1 reports percentages of these)."""

    luts: int
    registers: int
    bram_kb: int
    uram_kb: int = 0

    @property
    def on_chip_memory_bytes(self) -> int:
        return (self.bram_kb + self.uram_kb) * 1024

    def scaled(self, fraction: float) -> "FabricResources":
        """Return a copy with every resource scaled by ``fraction``."""
        return FabricResources(
            luts=int(self.luts * fraction),
            registers=int(self.registers * fraction),
            bram_kb=int(self.bram_kb * fraction),
            uram_kb=int(self.uram_kb * fraction),
        )


@dataclass
class FabricRegion:
    """One spatially-isolated region of the fabric."""

    name: str
    resources: FabricResources
    static: bool = False
    loaded_design: Optional[Bitstream] = None
    load_count: int = 0

    @property
    def is_programmed(self) -> bool:
        return self.loaded_design is not None


class Fabric:
    """The whole programmable fabric, divided into named regions."""

    def __init__(self, total_resources: FabricResources):
        self.total_resources = total_resources
        self._regions: dict[str, FabricRegion] = {}

    def add_region(
        self, name: str, resources: FabricResources, static: bool = False
    ) -> FabricRegion:
        """Carve out a named region with its own resource budget."""
        if name in self._regions:
            raise FabricError(f"fabric region {name!r} already exists")
        region = FabricRegion(name=name, resources=resources, static=static)
        self._regions[name] = region
        return region

    def region(self, name: str) -> FabricRegion:
        """Look up a region by name."""
        try:
            return self._regions[name]
        except KeyError:
            raise FabricError(f"no fabric region named {name!r}") from None

    @property
    def regions(self) -> dict[str, FabricRegion]:
        return dict(self._regions)

    def program_region(self, name: str, bitstream: Bitstream, force: bool = False) -> None:
        """Program a plaintext bitstream into a region (partial reconfiguration).

        Static regions may only be programmed once (the Shell is persistent);
        dynamic regions may be reprogrammed.  The bitstream's declared resource
        usage must fit the region budget.
        """
        region = self.region(name)
        if region.static and region.is_programmed and not force:
            raise FabricError(f"static region {name!r} is already programmed")
        usage = bitstream.resources or {}
        if usage.get("luts", 0) > region.resources.luts:
            raise FabricError(
                f"design {bitstream.accelerator_name!r} needs {usage['luts']} LUTs, "
                f"region {name!r} has {region.resources.luts}"
            )
        if usage.get("registers", 0) > region.resources.registers:
            raise FabricError(
                f"design {bitstream.accelerator_name!r} exceeds register budget of region {name!r}"
            )
        region.loaded_design = bitstream
        region.load_count += 1

    def clear_region(self, name: str) -> None:
        """Erase the design loaded in a dynamic region."""
        region = self.region(name)
        if region.static:
            raise FabricError("the static Shell region cannot be cleared at runtime")
        region.loaded_design = None
