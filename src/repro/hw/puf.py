"""Physically-unclonable function (PUF) model.

The paper notes the AES device key can be further encrypted by a PUF so that
even physical extraction of the fuse contents does not reveal the key.  A real
SRAM PUF derives a device-unique value from silicon variation; this model
derives it deterministically from a hidden per-device silicon fingerprint so
that behaviour is reproducible while preserving the property that *only this
device instance* can unwrap a PUF-encrypted value.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.aes import AES
from repro.crypto.kdf import hkdf
from repro.crypto.modes import ctr_transform
from repro.errors import DeviceError


@dataclass
class Puf:
    """A key-encryption PUF bound to a device's silicon fingerprint."""

    silicon_fingerprint: bytes

    def __post_init__(self) -> None:
        if len(self.silicon_fingerprint) < 16:
            raise DeviceError("PUF silicon fingerprint must be at least 16 bytes")

    def _derived_key(self, challenge: bytes) -> bytes:
        return hkdf(self.silicon_fingerprint, 32, salt=b"puf", info=challenge)

    def response(self, challenge: bytes) -> bytes:
        """Return the 32-byte PUF response for a challenge."""
        return self._derived_key(challenge)

    def wrap_key(self, key: bytes, challenge: bytes = b"device-key") -> bytes:
        """Encrypt ``key`` so only this physical device can recover it."""
        cipher = AES(self._derived_key(challenge))
        return ctr_transform(cipher, b"\x00" * 12, key)

    def unwrap_key(self, wrapped: bytes, challenge: bytes = b"device-key") -> bytes:
        """Recover a key previously wrapped by this device's PUF."""
        cipher = AES(self._derived_key(challenge))
        return ctr_transform(cipher, b"\x00" * 12, wrapped)
