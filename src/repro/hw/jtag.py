"""JTAG / ICAP programming and debug ports with tamper monitoring.

The Security Kernel "continuously checks existing hardware monitors ... (e.g.
JTAG and programming ports)" (Section 3).  Each sensitive port is modelled as
a :class:`DebugPort` that records access attempts; the Security Kernel polls
the monitor and treats any unexpected access as a tamper event.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import TamperError


@dataclass
class AccessAttempt:
    """One recorded attempt to use a sensitive port."""

    actor: str
    operation: str
    cycle: int = 0


@dataclass
class DebugPort:
    """A JTAG/ICAP-style port that can be locked and audited."""

    name: str
    locked: bool = True
    attempts: list = field(default_factory=list)

    def attempt_access(self, actor: str, operation: str = "connect", cycle: int = 0) -> bool:
        """Record an access attempt; returns True only if the port is unlocked."""
        self.attempts.append(AccessAttempt(actor=actor, operation=operation, cycle=cycle))
        return not self.locked

    def lock(self) -> None:
        self.locked = True

    def unlock(self, actor: str) -> None:
        """Unlock the port (only legitimate during manufacturing / secure provisioning)."""
        if actor != "manufacturer":
            raise TamperError(f"{actor!r} may not unlock debug port {self.name!r}")
        self.locked = False


class TamperMonitor:
    """Aggregates all sensitive ports and answers the Security Kernel's polls."""

    def __init__(self) -> None:
        self.ports: dict[str, DebugPort] = {}
        self._acknowledged = 0

    def add_port(self, name: str, locked: bool = True) -> DebugPort:
        if name in self.ports:
            raise TamperError(f"debug port {name!r} already registered")
        port = DebugPort(name=name, locked=locked)
        self.ports[name] = port
        return port

    def port(self, name: str) -> DebugPort:
        try:
            return self.ports[name]
        except KeyError:
            raise TamperError(f"no debug port named {name!r}") from None

    def pending_events(self) -> list:
        """All access attempts that have not been acknowledged yet."""
        events = []
        for port in self.ports.values():
            events.extend(port.attempts)
        return events[self._acknowledged :]

    def acknowledge(self) -> list:
        """Return pending events and mark them as seen."""
        events = self.pending_events()
        self._acknowledged += len(events)
        return events

    def assert_untampered(self) -> None:
        """Raise :class:`TamperError` if any unacknowledged access attempt exists."""
        events = self.pending_events()
        if events:
            first = events[0]
            raise TamperError(
                f"tamper event: {first.actor!r} attempted {first.operation!r}"
            )
