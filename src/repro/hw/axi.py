"""AXI4 and AXI4-Lite transaction models.

The Shell exposes two interfaces to user logic (Section 5.1): an AXI4-Lite
register interface mastered by the Shell (host writes commands / small data)
and a full AXI4 interface to device memory driven by the accelerator.  The
Shield interposes on both.  Transactions here are burst-level objects rather
than cycle-level channel signalling -- that is the right granularity for both
the functional model (what bytes moved) and the timing model (how many beats).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, Optional

from repro.analysis.annotations import hot_path, scalar_reference
from repro.errors import MemoryAccessError

AXI_DATA_WIDTH_BYTES = 64  # 512-bit data bus, as on the F1 Shell.
AXI_LITE_DATA_WIDTH_BYTES = 4
MAX_BURST_BYTES = 4096  # AXI4 forbids bursts crossing a 4 KiB boundary.


class BurstKind(Enum):
    """Whether a burst is a read or a write."""

    READ = "read"
    WRITE = "write"


@dataclass
class AxiBurst:
    """A single AXI4 burst transaction.

    ``data`` is present for writes and filled in by the slave for reads.
    """

    kind: BurstKind
    address: int
    length_bytes: int
    data: bytes = b""
    region_hint: Optional[str] = None

    def __post_init__(self) -> None:
        if self.length_bytes <= 0:
            raise MemoryAccessError("AXI burst length must be positive")
        if self.kind is BurstKind.WRITE and len(self.data) != self.length_bytes:
            raise MemoryAccessError("AXI write burst data length mismatch")

    @property
    def beats(self) -> int:
        """Number of data beats on a 512-bit bus."""
        return -(-self.length_bytes // AXI_DATA_WIDTH_BYTES)

    @property
    def end_address(self) -> int:
        return self.address + self.length_bytes

    def split_at_boundary(self, boundary: int = MAX_BURST_BYTES) -> list["AxiBurst"]:
        """Split the burst so no piece crosses a ``boundary``-aligned address."""
        pieces: list[AxiBurst] = []
        address = self.address
        remaining = self.length_bytes
        offset = 0
        while remaining > 0:
            room = boundary - (address % boundary)
            size = min(room, remaining)
            data = self.data[offset : offset + size] if self.kind is BurstKind.WRITE else b""
            pieces.append(
                AxiBurst(self.kind, address, size, data, region_hint=self.region_hint)
            )
            address += size
            offset += size
            remaining -= size
        return pieces


@dataclass
class AxiLiteTransaction:
    """A single 32-bit AXI4-Lite register access."""

    kind: BurstKind
    address: int
    data: bytes = b""

    def __post_init__(self) -> None:
        if self.kind is BurstKind.WRITE and len(self.data) != AXI_LITE_DATA_WIDTH_BYTES:
            raise MemoryAccessError("AXI-Lite writes carry exactly 4 bytes")


@dataclass
class AxiPort:
    """A point-to-point AXI connection: the master submits, the slave handles.

    An optional ``interposer`` callback sees every transaction before the
    slave does -- this is where the Shield slots in, and also where the attack
    library models a snooping/tampering Shell.
    """

    name: str
    slave_handler: Callable[[AxiBurst], bytes]
    interposer: Optional[Callable[[AxiBurst], AxiBurst]] = None
    log: list = field(default_factory=list)
    record_traffic: bool = False

    def submit(self, burst: AxiBurst) -> bytes:
        """Issue a burst; returns read data (or ``b""`` for writes)."""
        if self.interposer is not None:
            burst = self.interposer(burst)
        if self.record_traffic:
            self.log.append(burst)
        return self.slave_handler(burst)

    def read(self, address: int, length: int, region_hint: Optional[str] = None) -> bytes:
        """Convenience wrapper for a read burst."""
        return self.submit(
            AxiBurst(BurstKind.READ, address, length, region_hint=region_hint)
        )

    def write(self, address: int, data: bytes, region_hint: Optional[str] = None) -> None:
        """Convenience wrapper for a write burst."""
        self.submit(
            AxiBurst(BurstKind.WRITE, address, len(data), bytes(data), region_hint)
        )

    # -- multi-entry helpers (coalesced bursts) ------------------------------------

    @hot_path
    @scalar_reference("read")
    def read_many(
        self, spans: list, region_hint: Optional[str] = None
    ) -> list:
        """Read many ``(address, length)`` spans, coalescing DRAM traffic.

        Overlapping, duplicate, and back-to-back spans are merged into maximal
        contiguous runs, each run is fetched with bursts split at the AXI
        4 KiB boundary, and the requested spans are sliced back out in input
        order.  This is what lets a batched Merkle walk touch a whole tree
        level in a handful of bursts while its caller still accounts traffic
        per node.
        """
        if not spans:
            return []
        for _, length in spans:
            if length <= 0:
                raise MemoryAccessError("read_many span length must be positive")
        runs: list[list[int]] = []  # [start, end) of each merged run
        for address, length in sorted(set(spans)):
            if runs and address <= runs[-1][1]:
                runs[-1][1] = max(runs[-1][1], address + length)
            else:
                runs.append([address, address + length])
        data: dict[int, bytes] = {}
        for start, end in runs:
            pieces = AxiBurst(
                BurstKind.READ, start, end - start, region_hint=region_hint
            ).split_at_boundary()
            data[start] = b"".join(self.submit(piece) for piece in pieces)
        blobs = []
        for address, length in spans:
            for start, end in runs:
                if start <= address and address + length <= end:
                    offset = address - start
                    blobs.append(data[start][offset : offset + length])
                    break
        return blobs

    @hot_path
    @scalar_reference("write")
    def write_many(
        self, entries: list, region_hint: Optional[str] = None
    ) -> None:
        """Write many ``(address, data)`` entries, coalescing DRAM traffic.

        Exactly back-to-back entries are merged into one run (entries are
        issued in address order; overlapping entries are not merged, so a
        later entry still wins at the slave).  Each run goes out as write
        bursts split at the AXI 4 KiB boundary.
        """
        runs: list[tuple[int, list]] = []  # (start address, [data pieces])
        last_end = None
        for address, data in sorted(entries, key=lambda entry: entry[0]):
            if last_end is not None and address == last_end:
                runs[-1][1].append(data)
            else:
                runs.append((address, [data]))
            last_end = address + len(data)
        for start, pieces in runs:
            blob = b"".join(pieces)
            for piece in AxiBurst(
                BurstKind.WRITE, start, len(blob), blob, region_hint=region_hint
            ).split_at_boundary():
                self.submit(piece)


def memory_backed_handler(memory) -> Callable[[AxiBurst], bytes]:
    """Build a slave handler that services bursts directly from a :class:`DeviceMemory`."""

    def handler(burst: AxiBurst) -> bytes:
        if burst.kind is BurstKind.READ:
            return memory.read(burst.address, burst.length_bytes)
        memory.write(burst.address, burst.data)
        return b""

    return handler
