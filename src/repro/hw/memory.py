"""Memory models: off-chip device DRAM and on-chip BRAM/UltraRAM.

The Shield's whole purpose is to treat device DRAM as untrusted -- the
adversary can read and modify it at will (physical bus attacks or interception
through the Shell).  :class:`DeviceMemory` therefore exposes, besides the
normal read/write path, explicit ``tamper_*`` methods that the attack library
uses to model spoofing, splicing, and replay.

:class:`OnChipMemory` models the trusted BRAM/UltraRAM budget inside the
reconfigurable fabric.  The Shield's plaintext buffers and integrity counters
must fit within it; allocations are tracked so the area model can report
on-chip memory usage (Table 1's "OCM Variable" row).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import CapacityError, MemoryAccessError

_PAGE_SIZE = 4096


@dataclass
class MemoryStats:
    """Traffic counters used by the timing model and by tests."""

    reads: int = 0
    writes: int = 0
    bytes_read: int = 0
    bytes_written: int = 0

    def record_read(self, size: int) -> None:
        self.reads += 1
        self.bytes_read += size

    def record_write(self, size: int) -> None:
        self.writes += 1
        self.bytes_written += size

    @property
    def total_bytes(self) -> int:
        return self.bytes_read + self.bytes_written

    def reset(self) -> None:
        self.reads = 0
        self.writes = 0
        self.bytes_read = 0
        self.bytes_written = 0


class DeviceMemory:
    """Byte-addressable off-chip DRAM, stored sparsely in 4 KiB pages.

    The AWS F1 profile advertises 64 GiB of DDR4; a sparse page map lets the
    model advertise that full address space without allocating it.
    Uninitialized bytes read as zero.
    """

    def __init__(self, size_bytes: int):
        if size_bytes <= 0:
            raise MemoryAccessError("device memory size must be positive")
        self.size_bytes = size_bytes
        self._pages: dict[int, bytearray] = {}
        self.stats = MemoryStats()

    # -- bounds helpers ------------------------------------------------------

    def _check_range(self, address: int, length: int) -> None:
        if address < 0 or length < 0 or address + length > self.size_bytes:
            raise MemoryAccessError(
                f"access [{address:#x}, {address + length:#x}) outside device memory "
                f"of {self.size_bytes} bytes"
            )

    def _raw_read(self, address: int, length: int) -> bytes:
        out = bytearray(length)
        offset = 0
        while offset < length:
            page_index, page_offset = divmod(address + offset, _PAGE_SIZE)
            chunk = min(length - offset, _PAGE_SIZE - page_offset)
            page = self._pages.get(page_index)
            if page is not None:
                out[offset : offset + chunk] = page[page_offset : page_offset + chunk]
            offset += chunk
        return bytes(out)

    def _raw_write(self, address: int, data: bytes) -> None:
        offset = 0
        length = len(data)
        while offset < length:
            page_index, page_offset = divmod(address + offset, _PAGE_SIZE)
            chunk = min(length - offset, _PAGE_SIZE - page_offset)
            page = self._pages.get(page_index)
            if page is None:
                page = bytearray(_PAGE_SIZE)
                self._pages[page_index] = page
            page[page_offset : page_offset + chunk] = data[offset : offset + chunk]
            offset += chunk

    # -- the normal (accounted) access path ----------------------------------

    def read(self, address: int, length: int) -> bytes:
        """Read ``length`` bytes, counting the access in :attr:`stats`."""
        self._check_range(address, length)
        self.stats.record_read(length)
        return self._raw_read(address, length)

    def write(self, address: int, data: bytes) -> None:
        """Write ``data``, counting the access in :attr:`stats`."""
        self._check_range(address, len(data))
        self.stats.record_write(len(data))
        self._raw_write(address, bytes(data))

    # -- the adversary's access path (not accounted as accelerator traffic) ---

    def tamper_read(self, address: int, length: int) -> bytes:
        """Adversarial snoop of raw memory contents (physical/Shell attack)."""
        self._check_range(address, length)
        return self._raw_read(address, length)

    def tamper_write(self, address: int, data: bytes) -> None:
        """Adversarial modification of raw memory contents."""
        self._check_range(address, len(data))
        self._raw_write(address, bytes(data))

    @property
    def allocated_pages(self) -> int:
        """Number of 4 KiB pages actually backed by storage."""
        return len(self._pages)


@dataclass
class OnChipAllocation:
    """A named slice of on-chip memory handed to a Shield component."""

    name: str
    size_bytes: int
    data: bytearray = field(repr=False, default_factory=bytearray)

    def __post_init__(self) -> None:
        if not self.data:
            self.data = bytearray(self.size_bytes)

    def read(self, offset: int, length: int) -> bytes:
        if offset < 0 or offset + length > self.size_bytes:
            raise MemoryAccessError(
                f"on-chip read outside allocation {self.name!r}"
            )
        return bytes(self.data[offset : offset + length])

    def write(self, offset: int, data: bytes) -> None:
        if offset < 0 or offset + len(data) > self.size_bytes:
            raise MemoryAccessError(
                f"on-chip write outside allocation {self.name!r}"
            )
        self.data[offset : offset + len(data)] = data


class OnChipMemory:
    """The FPGA's trusted BRAM/UltraRAM pool with a hard capacity budget."""

    def __init__(self, capacity_bytes: int):
        if capacity_bytes <= 0:
            raise CapacityError("on-chip memory capacity must be positive")
        self.capacity_bytes = capacity_bytes
        self._allocations: dict[str, OnChipAllocation] = {}

    @property
    def used_bytes(self) -> int:
        return sum(a.size_bytes for a in self._allocations.values())

    @property
    def free_bytes(self) -> int:
        return self.capacity_bytes - self.used_bytes

    def allocate(self, name: str, size_bytes: int) -> OnChipAllocation:
        """Reserve ``size_bytes`` under ``name``; raises :class:`CapacityError` if it does not fit."""
        if size_bytes <= 0:
            raise CapacityError("on-chip allocations must be positive")
        if name in self._allocations:
            raise CapacityError(f"on-chip allocation {name!r} already exists")
        if size_bytes > self.free_bytes:
            raise CapacityError(
                f"on-chip allocation {name!r} of {size_bytes} bytes exceeds the "
                f"remaining {self.free_bytes} bytes"
            )
        allocation = OnChipAllocation(name, size_bytes)
        self._allocations[name] = allocation
        return allocation

    def free(self, name: str) -> None:
        """Release a previous allocation."""
        if name not in self._allocations:
            raise CapacityError(f"no on-chip allocation named {name!r}")
        del self._allocations[name]

    def allocation(self, name: str) -> OnChipAllocation:
        """Look up an existing allocation by name."""
        try:
            return self._allocations[name]
        except KeyError:
            raise CapacityError(f"no on-chip allocation named {name!r}") from None

    def allocation_names(self) -> tuple:
        """Names of all live allocations (used to tear Shields off shared boards)."""
        return tuple(self._allocations)

    def utilization(self) -> float:
        """Fraction of the on-chip budget currently allocated."""
        return self.used_bytes / self.capacity_bytes
