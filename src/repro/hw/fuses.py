"""One-time-programmable key storage: e-fuses and battery-backed RAM (BBRAM).

Section 2.2 of the paper: the Security Processor Block has access to two
pieces of information embedded in secure, on-chip, non-volatile storage -- an
AES key and the hash of a public asymmetric key.  This module models that
storage with the two properties that matter for the protocol:

* writes are one-time (a second programming attempt is rejected), and
* reads are only possible for the SPB (callers must present the SPB's access
  token), so no soft logic or host software can ever dump the device key.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import FuseError

SPB_ACCESS_TOKEN = "security-processor-block"


@dataclass
class FuseBank:
    """A single named one-time-programmable fuse slot."""

    name: str
    _value: bytes | None = None
    _locked: bool = False

    def program(self, value: bytes) -> None:
        """Burn a value into the fuse bank; only possible once."""
        if self._locked:
            raise FuseError(f"fuse bank {self.name!r} has already been programmed")
        if not value:
            raise FuseError("cannot program an empty value into a fuse bank")
        self._value = bytes(value)
        self._locked = True

    def read(self, access_token: str) -> bytes:
        """Read the fuse value; only the SPB's access token is accepted."""
        if access_token != SPB_ACCESS_TOKEN:
            raise FuseError(
                f"access to fuse bank {self.name!r} denied for {access_token!r}"
            )
        if self._value is None:
            raise FuseError(f"fuse bank {self.name!r} has not been programmed")
        return self._value

    @property
    def is_programmed(self) -> bool:
        return self._locked


@dataclass
class KeyFuses:
    """The FPGA's secure key storage: AES device key fuses + public-key-hash fuses.

    An optional BBRAM slot is modelled as well (Xilinx devices allow the AES
    key to live in BBRAM instead of e-fuses); functionally both behave the
    same here, except BBRAM can be zeroized on a tamper event.
    """

    aes_key_fuse: FuseBank = field(default_factory=lambda: FuseBank("aes-device-key"))
    public_key_hash_fuse: FuseBank = field(
        default_factory=lambda: FuseBank("public-key-hash")
    )
    bbram: FuseBank = field(default_factory=lambda: FuseBank("bbram-aes-key"))
    use_bbram: bool = False
    _zeroized: bool = False

    def program_aes_key(self, key: bytes) -> None:
        """Burn the AES device key (manufacturing step 1 in Figure 2)."""
        if self.use_bbram:
            self.bbram.program(key)
        else:
            self.aes_key_fuse.program(key)

    def program_public_key_hash(self, key_hash: bytes) -> None:
        """Burn the hash of the developer/manufacturer public key."""
        self.public_key_hash_fuse.program(key_hash)

    def read_aes_key(self, access_token: str) -> bytes:
        """Read the AES device key (SPB only); fails after zeroization."""
        if self._zeroized:
            raise FuseError("key storage has been zeroized after a tamper event")
        bank = self.bbram if self.use_bbram else self.aes_key_fuse
        return bank.read(access_token)

    def read_public_key_hash(self, access_token: str) -> bytes:
        """Read the programmed public-key hash (SPB only)."""
        return self.public_key_hash_fuse.read(access_token)

    def zeroize(self) -> None:
        """Erase BBRAM-held keys in response to tamper detection."""
        self._zeroized = True

    @property
    def is_provisioned(self) -> bool:
        bank = self.bbram if self.use_bbram else self.aes_key_fuse
        return bank.is_programmed
