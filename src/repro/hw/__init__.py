"""Simulated FPGA hardware substrate.

This package models every piece of FPGA hardware the ShEF workflow touches:
key fuses and the PUF, the Security Processor Block and boot medium, the
reconfigurable fabric with its static (Shell) and dynamic (user) regions,
device DRAM and on-chip BRAM/URAM, AXI4/AXI4-Lite interfaces, the untrusted
Shell, and tamper-monitored debug ports.  Two board profiles (Ultra96 and AWS
F1) mirror the paper's evaluation platforms.
"""

from repro.hw.axi import (
    AXI_DATA_WIDTH_BYTES,
    AxiBurst,
    AxiLiteTransaction,
    AxiPort,
    BurstKind,
    memory_backed_handler,
)
from repro.hw.bitstream import (
    Bitstream,
    EncryptedBitstream,
    decrypt_bitstream,
    encrypt_bitstream,
)
from repro.hw.board import (
    AWS_F1_PROFILE,
    ULTRA96_PROFILE,
    BoardModel,
    BoardProfile,
    FpgaBoard,
    make_board,
)
from repro.hw.clock import CycleClock
from repro.hw.fabric import Fabric, FabricRegion, FabricResources
from repro.hw.fuses import SPB_ACCESS_TOKEN, FuseBank, KeyFuses
from repro.hw.jtag import DebugPort, TamperMonitor
from repro.hw.memory import DeviceMemory, MemoryStats, OnChipAllocation, OnChipMemory
from repro.hw.puf import Puf
from repro.hw.shell import Shell, ShellStats
from repro.hw.spb import (
    BootMedium,
    SecurityKernelProcessor,
    SecurityProcessorBlock,
    seal_firmware_image,
    unseal_firmware_image,
)

__all__ = [
    "AXI_DATA_WIDTH_BYTES",
    "AxiBurst",
    "AxiLiteTransaction",
    "AxiPort",
    "BurstKind",
    "memory_backed_handler",
    "Bitstream",
    "EncryptedBitstream",
    "decrypt_bitstream",
    "encrypt_bitstream",
    "AWS_F1_PROFILE",
    "ULTRA96_PROFILE",
    "BoardModel",
    "BoardProfile",
    "FpgaBoard",
    "make_board",
    "CycleClock",
    "Fabric",
    "FabricRegion",
    "FabricResources",
    "SPB_ACCESS_TOKEN",
    "FuseBank",
    "KeyFuses",
    "DebugPort",
    "TamperMonitor",
    "DeviceMemory",
    "MemoryStats",
    "OnChipAllocation",
    "OnChipMemory",
    "Puf",
    "Shell",
    "ShellStats",
    "BootMedium",
    "SecurityKernelProcessor",
    "SecurityProcessorBlock",
    "seal_firmware_image",
    "unseal_firmware_image",
]
