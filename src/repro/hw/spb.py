"""The Security Processor Block (SPB), its BootROM, and the boot medium.

Xilinx and Intel FPGAs embed redundant hardened processors that execute from
BootROM and programmable firmware and have exclusive access to the key fuses
(Section 2.2).  ShEF builds its chain of trust on exactly that hardware, so
the model keeps the two properties the protocols rely on:

* only the SPB can read the AES device key out of the fuses, and
* the BootROM will only hand control to firmware that decrypts and
  authenticates correctly under that key.

The firmware's *logic* (measuring the Security Kernel, deriving the
Attestation Key) lives in :mod:`repro.boot.firmware`; this module only models
the hardware that loads it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.crypto.aes import AES
from repro.crypto.kdf import derive_subkey
from repro.crypto.mac import aes_cmac, constant_time_equal
from repro.crypto.modes import ctr_transform
from repro.errors import BootError, DeviceError
from repro.hw.fuses import SPB_ACCESS_TOKEN, KeyFuses
from repro.hw.puf import Puf

FIRMWARE_IV = b"spb-firmware"  # 12 bytes, fixed: one firmware image per device key.


class BootMedium:
    """External non-volatile storage (flash / SD) holding boot artifacts.

    Everything on the boot medium is attacker-writable -- its contents are
    only trusted after decryption/measurement by the SPB or firmware.
    """

    def __init__(self) -> None:
        self._blobs: dict[str, bytes] = {}

    def store(self, name: str, blob: bytes) -> None:
        """Write (or overwrite) a named blob."""
        self._blobs[name] = bytes(blob)

    def load(self, name: str) -> bytes:
        """Read a named blob; raises :class:`BootError` if missing."""
        try:
            return self._blobs[name]
        except KeyError:
            raise BootError(f"boot medium has no blob named {name!r}") from None

    def tamper(self, name: str, blob: bytes) -> None:
        """Adversarial overwrite (alias of :meth:`store`, kept explicit for tests)."""
        self._blobs[name] = bytes(blob)

    def __contains__(self, name: str) -> bool:
        return name in self._blobs


def seal_firmware_image(firmware_payload: bytes, aes_device_key: bytes) -> bytes:
    """Encrypt + authenticate a firmware payload under the AES device key.

    This is the Manufacturer's step 2 in Figure 2: the firmware (which embeds
    the private device key) is encrypted with the AES device key so it carries
    the same level of trust.
    """
    enc_key = derive_subkey(aes_device_key, "spb-firmware-encrypt", len(aes_device_key))
    mac_key = derive_subkey(aes_device_key, "spb-firmware-mac", 16)
    ciphertext = ctr_transform(AES(enc_key), FIRMWARE_IV, firmware_payload)
    tag = aes_cmac(mac_key, FIRMWARE_IV + ciphertext)
    return tag + ciphertext


def unseal_firmware_image(sealed: bytes, aes_device_key: bytes) -> bytes:
    """Decrypt + authenticate a sealed firmware image (BootROM's job)."""
    if len(sealed) < 16:
        raise BootError("sealed firmware image is too short")
    tag, ciphertext = sealed[:16], sealed[16:]
    enc_key = derive_subkey(aes_device_key, "spb-firmware-encrypt", len(aes_device_key))
    mac_key = derive_subkey(aes_device_key, "spb-firmware-mac", 16)
    if not constant_time_equal(aes_cmac(mac_key, FIRMWARE_IV + ciphertext), tag):
        raise BootError("firmware authentication failed: wrong device key or tampering")
    return ctr_transform(AES(enc_key), FIRMWARE_IV, ciphertext)


@dataclass
class SecurityKernelProcessor:
    """The dedicated processor that runs the Security Kernel.

    On the Ultra96 this is a hardened Cortex-R5 with private on-chip memory;
    on devices without a spare hard core it is a soft MicroBlaze/Nios loaded
    from a static bitstream (whose hash is then included in the measurement).
    """

    kind: str = "cortex-r5"
    private_memory: dict = field(default_factory=dict)
    running_binary_hash: Optional[bytes] = None

    @property
    def is_soft(self) -> bool:
        return self.kind not in ("cortex-r5", "hard-cpu")

    def load(self, binary_hash: bytes, private_data: dict) -> None:
        """Load a measured binary and place secrets into private memory."""
        self.running_binary_hash = binary_hash
        self.private_memory = dict(private_data)

    def reset(self) -> None:
        self.running_binary_hash = None
        self.private_memory = {}


class SecurityProcessorBlock:
    """The SPB: BootROM + exclusive fuse access + firmware loading."""

    def __init__(self, fuses: KeyFuses, puf: Optional[Puf] = None):
        self.fuses = fuses
        self.puf = puf
        self.boot_count = 0

    # -- key access (SPB-internal only) --------------------------------------

    def _device_aes_key(self) -> bytes:
        key = self.fuses.read_aes_key(SPB_ACCESS_TOKEN)
        if self.puf is not None:
            # When the PUF is enabled the fuses store a wrapped key; only this
            # physical device can unwrap it.
            key = self.puf.unwrap_key(key)
        return key

    # -- BootROM --------------------------------------------------------------

    def boot_rom_load_firmware(self, boot_medium: BootMedium) -> bytes:
        """Execute the BootROM: fetch, decrypt, and authenticate the SPB firmware.

        Returns the plaintext firmware payload (which embeds the private
        device key) -- the caller hands it to :class:`repro.boot.firmware.SpbFirmware`.
        """
        if not self.fuses.is_provisioned:
            raise BootError("device has no AES device key provisioned")
        sealed = boot_medium.load("spb_firmware")
        payload = unseal_firmware_image(sealed, self._device_aes_key())
        self.boot_count += 1
        return payload

    # -- crypto services exposed to firmware over the internal bus ------------

    def encrypt_with_device_key(self, plaintext: bytes, context: str) -> bytes:
        """Seal data under the device key (used to persist firmware state)."""
        key = derive_subkey(self._device_aes_key(), f"spb-seal-{context}", 32)
        cipher = AES(key)
        return ctr_transform(cipher, b"\x00" * 12, plaintext)

    def decrypt_with_device_key(self, ciphertext: bytes, context: str) -> bytes:
        """Unseal data sealed by :meth:`encrypt_with_device_key`."""
        return self.encrypt_with_device_key(ciphertext, context)

    def assert_exclusive_crypto_access(self, actor: str) -> None:
        """Only the SPB firmware and BootROM may drive the hardware crypto blocks."""
        if actor not in ("bootrom", "spb-firmware"):
            raise DeviceError(
                f"{actor!r} attempted to use SPB crypto hardware directly"
            )
