"""Bitstream containers: the unit of deployment for FPGA logic.

In the real flow an accelerator design is compiled by Vivado into a partial
bitstream, encrypted with the IP Vendor's Bitstream Encryption Key, and
distributed to Data Owners.  What the ShEF protocols care about is:

* the bitstream is an opaque byte container whose *encrypted* form is hashed
  during attestation (``H(Enc_BitstrKey(Accel))`` in Figure 3),
* the plaintext embeds sensitive IP and the Shield's private Shield Encryption
  Key, so it must only ever be decrypted inside the device, and
* the Security Kernel must be able to authenticate it before loading.

:class:`Bitstream` is the plaintext container (accelerator spec + Shield
configuration + embedded Shield private key) and :class:`EncryptedBitstream`
is the distributable, authenticated ciphertext.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.crypto.aes import AES
from repro.crypto.hashes import sha256
from repro.crypto.kdf import derive_subkey
from repro.crypto.mac import aes_cmac, constant_time_equal
from repro.crypto.modes import ctr_transform
from repro.errors import BitstreamError

_MAGIC = b"SHEFBITS"
_FORMAT_VERSION = 1


@dataclass
class Bitstream:
    """A plaintext partial bitstream.

    Parameters
    ----------
    accelerator_name:
        Human-readable accelerator identifier (e.g. ``"dnnweaver"``).
    vendor:
        The IP Vendor that produced the design.
    accelerator_spec:
        JSON-serializable description of the accelerator logic (the simulator
        re-instantiates the accelerator model from this).
    shield_config:
        JSON-serializable Shield configuration dictionary.
    shield_private_key_blob:
        Serialized private Shield Encryption Key embedded in the Shield logic.
    resources:
        Estimated LUT/REG/BRAM usage of the accelerator logic itself (the
        Shield's own area comes from the area model).
    """

    accelerator_name: str
    vendor: str
    accelerator_spec: dict = field(default_factory=dict)
    shield_config: dict = field(default_factory=dict)
    shield_private_key_blob: bytes = b""
    resources: dict = field(default_factory=dict)

    def serialize(self) -> bytes:
        """Canonical byte encoding (stable across runs for hashing)."""
        header = {
            "accelerator_name": self.accelerator_name,
            "vendor": self.vendor,
            "accelerator_spec": self.accelerator_spec,
            "shield_config": self.shield_config,
            "resources": self.resources,
        }
        header_bytes = json.dumps(header, sort_keys=True).encode("utf-8")
        return (
            _MAGIC
            + _FORMAT_VERSION.to_bytes(2, "big")
            + len(header_bytes).to_bytes(4, "big")
            + header_bytes
            + len(self.shield_private_key_blob).to_bytes(4, "big")
            + self.shield_private_key_blob
        )

    @staticmethod
    def deserialize(data: bytes) -> "Bitstream":
        """Parse a container produced by :meth:`serialize`."""
        if len(data) < 14 or data[:8] != _MAGIC:
            raise BitstreamError("not a ShEF bitstream container")
        version = int.from_bytes(data[8:10], "big")
        if version != _FORMAT_VERSION:
            raise BitstreamError(f"unsupported bitstream format version {version}")
        header_len = int.from_bytes(data[10:14], "big")
        header_end = 14 + header_len
        if header_end + 4 > len(data):
            raise BitstreamError("truncated bitstream header")
        try:
            header = json.loads(data[14:header_end].decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise BitstreamError("corrupt bitstream header") from exc
        key_len = int.from_bytes(data[header_end : header_end + 4], "big")
        key_blob = data[header_end + 4 : header_end + 4 + key_len]
        if len(key_blob) != key_len:
            raise BitstreamError("truncated embedded key blob")
        return Bitstream(
            accelerator_name=header["accelerator_name"],
            vendor=header["vendor"],
            accelerator_spec=header["accelerator_spec"],
            shield_config=header["shield_config"],
            shield_private_key_blob=key_blob,
            resources=header.get("resources", {}),
        )

    def measurement(self) -> bytes:
        """SHA-256 over the plaintext container."""
        return sha256(self.serialize())


@dataclass(frozen=True)
class EncryptedBitstream:
    """The distributable form: AES-CTR ciphertext + CMAC tag over it."""

    ciphertext: bytes
    iv: bytes
    tag: bytes
    accelerator_name: str
    vendor: str

    def serialize(self) -> bytes:
        """Flat wire form; this is exactly what the attestation hash covers."""
        meta = json.dumps(
            {"accelerator_name": self.accelerator_name, "vendor": self.vendor},
            sort_keys=True,
        ).encode("utf-8")
        return (
            _MAGIC
            + b"ENC1"
            + len(meta).to_bytes(4, "big")
            + meta
            + self.iv
            + self.tag
            + len(self.ciphertext).to_bytes(8, "big")
            + self.ciphertext
        )

    def measurement(self) -> bytes:
        """``H(Enc_BitstrKey(Accelerator))`` from the attestation protocol."""
        return sha256(self.serialize())


def encrypt_bitstream(bitstream: Bitstream, bitstream_key: bytes, iv: bytes) -> EncryptedBitstream:
    """Encrypt and authenticate a plaintext bitstream under the Bitstream Encryption Key."""
    if len(iv) != 12:
        raise BitstreamError("bitstream IV must be 12 bytes")
    plaintext = bitstream.serialize()
    enc_key = derive_subkey(bitstream_key, "bitstream-encrypt", len(bitstream_key))
    mac_key = derive_subkey(bitstream_key, "bitstream-mac", 16)
    ciphertext = ctr_transform(AES(enc_key), iv, plaintext)
    tag = aes_cmac(mac_key, iv + ciphertext)
    return EncryptedBitstream(
        ciphertext=ciphertext,
        iv=iv,
        tag=tag,
        accelerator_name=bitstream.accelerator_name,
        vendor=bitstream.vendor,
    )


def decrypt_bitstream(encrypted: EncryptedBitstream, bitstream_key: bytes) -> Bitstream:
    """Authenticate and decrypt an encrypted bitstream; raises on tampering."""
    enc_key = derive_subkey(bitstream_key, "bitstream-encrypt", len(bitstream_key))
    mac_key = derive_subkey(bitstream_key, "bitstream-mac", 16)
    expected_tag = aes_cmac(mac_key, encrypted.iv + encrypted.ciphertext)
    if not constant_time_equal(expected_tag, encrypted.tag):
        raise BitstreamError("bitstream authentication failed: wrong key or tampering")
    plaintext = ctr_transform(AES(enc_key), encrypted.iv, encrypted.ciphertext)
    return Bitstream.deserialize(plaintext)
