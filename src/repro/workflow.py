"""The end-to-end ShEF workflow (Figure 2, steps 1-11).

``deploy_accelerator`` wires together every party and phase of the framework:

1.  the Manufacturer provisions the board (device keys, sealed firmware, CA),
2.  the IP Vendor packages the accelerator with its Shield configuration and
    encrypts the bitstream,
3.  the Data Owner rents the board; the CSP's driver resets it and runs secure
    boot, producing a running Security Kernel,
4.  the kernel launches the Shell and receives the staged encrypted bitstream,
5.  remote attestation runs over an untrusted host channel; the kernel obtains
    the Bitstream Key and the Data Owner obtains the Load Key,
6.  the kernel decrypts and loads the accelerator, the Shield comes up, and
    the host runtime delivers the Load Key so the datapath goes live.

The returned :class:`Deployment` exposes every actor so examples, tests, and
benchmarks can continue the story (stage data, run the accelerator, attack the
system, measure latency) without repeating the ceremony.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.attestation.channel import HostProxiedChannel
from repro.attestation.data_owner import DataOwner
from repro.attestation.ip_vendor import IpVendor, PackagedAccelerator
from repro.attestation.protocol import AttestationOutcome, run_remote_attestation
from repro.boot.manufacturer import Manufacturer, ProvisionedDevice
from repro.boot.process import SecureBootResult
from repro.boot.security_kernel import SecurityKernel
from repro.core.config import ShieldConfig
from repro.core.shield import Shield
from repro.crypto.rsa import RsaPrivateKey
from repro.host.driver import FpgaDriver
from repro.host.runtime import ShefHostRuntime
from repro.hw.board import BoardModel, FpgaBoard, make_board


@dataclass
class Deployment:
    """Everything a fully deployed ShEF accelerator consists of."""

    board: FpgaBoard
    manufacturer: Manufacturer
    provisioned_device: ProvisionedDevice
    ip_vendor: IpVendor
    data_owner: DataOwner = field(repr=False)
    driver: FpgaDriver = field(repr=False)
    security_kernel: SecurityKernel
    boot_result: SecureBootResult
    package: PackagedAccelerator
    attestation: AttestationOutcome
    shield: Shield
    shield_config: ShieldConfig
    host_runtime: ShefHostRuntime
    channel: HostProxiedChannel
    phase_seconds: dict = field(default_factory=dict)

    @property
    def total_deploy_seconds(self) -> float:
        return sum(self.phase_seconds.values())


def deploy_accelerator(
    accelerator_name: str,
    shield_config: ShieldConfig,
    accelerator_spec: Optional[dict] = None,
    board_model: BoardModel | str = BoardModel.AWS_F1,
    board_serial: str = "fpga-0001",
    vendor_name: str = "shef-ip-vendor",
    owner_name: str = "shef-data-owner",
    channel: Optional[HostProxiedChannel] = None,
    manufacturer: Optional[Manufacturer] = None,
    ip_vendor: Optional[IpVendor] = None,
) -> Deployment:
    """Run the complete Figure 2 workflow and return the live deployment."""
    shield_config.validate()
    accelerator_spec = dict(accelerator_spec or {"kind": accelerator_name})

    # Steps 1-2: manufacturing.
    board = make_board(board_model, serial=board_serial)
    manufacturer = manufacturer or Manufacturer()
    provisioned = manufacturer.provision_device(board)

    # Steps 3-4: accelerator development and packaging.
    ip_vendor = ip_vendor or IpVendor(vendor_name)
    package = ip_vendor.package_accelerator(
        accelerator_name, accelerator_spec, shield_config.to_dict()
    )

    # Steps 5-7: deployment, reset, and secure boot.
    driver = FpgaDriver(board)
    boot_result = driver.reset_and_boot()
    kernel = driver.security_kernel
    ip_vendor.trust_security_kernel(kernel.kernel_hash)
    driver.load_shell()
    driver.stage_accelerator(package.encrypted_bitstream)

    # Step 8: remote attestation over the untrusted host channel.
    data_owner = DataOwner(owner_name)
    channel = channel or HostProxiedChannel()
    attestation = run_remote_attestation(
        ip_vendor,
        data_owner,
        kernel,
        accelerator_name,
        provisioned.device_certificate,
        manufacturer.certificate_authority.root_public_key,
        channel=channel,
        shield_id=shield_config.shield_id,
    )

    # Steps 9-10: bitstream decryption, accelerator + Shield loading.
    loaded_bitstream = driver.load_accelerator()
    loaded_config = ShieldConfig.from_dict(loaded_bitstream.shield_config)
    shield_private_key = RsaPrivateKey.decode(loaded_bitstream.shield_private_key_blob)
    shield = Shield(loaded_config, board.shell, board.on_chip_memory, shield_private_key)

    # Step 11: the host runtime forwards the Load Key; the Shield goes live.
    host_runtime = ShefHostRuntime(board.shell, loaded_config)
    host_runtime.deliver_load_key(shield, attestation.load_key)

    phase_seconds = dict(boot_result.phase_seconds)
    phase_seconds["attestation"] = 0.4  # network round trips, modelled constant
    return Deployment(
        board=board,
        manufacturer=manufacturer,
        provisioned_device=provisioned,
        ip_vendor=ip_vendor,
        data_owner=data_owner,
        driver=driver,
        security_kernel=kernel,
        boot_result=boot_result,
        package=package,
        attestation=attestation,
        shield=shield,
        shield_config=loaded_config,
        host_runtime=host_runtime,
        channel=channel,
        phase_seconds=phase_seconds,
    )
