"""Affine-transformation accelerator (the Xilinx vision example of Figure 6).

The kernel applies an affine warp to a 512x512 greyscale image using inverse
mapping: for every destination pixel it computes the source coordinate and
gathers the source pixel.  The reads are therefore *non-sequential* (they
follow the warp) but each source address is read at most a handful of times
and nothing is written back to the input, so Section 6.2.4 disables integrity
counters, uses a small 64-byte C_mem matched to the access granularity, eight
input engine sets (32 KB of buffer total), and four output engine sets
(16 KB).  Overheads land at 1.41x-2.22x, dominated by the per-access latency
of fetching and verifying small chunks.
"""

from __future__ import annotations

import numpy as np

from repro.accelerators.base import Accelerator, AcceleratorResult, MemoryInterface
from repro.core.config import EngineSetConfig, RegionConfig, ShieldConfig
from repro.core.timing import RegionTraffic, WorkloadProfile

_CHUNK_SIZE = 64

# Paper-scale image.
PAPER_IMAGE_SIZE = 512

_NUM_INPUT_SETS = 8
_NUM_OUTPUT_SETS = 4


def _round_up(value: int, granularity: int) -> int:
    return -(-value // granularity) * granularity


class AffineTransformAccelerator(Accelerator):
    """Inverse-mapped affine image warp with data-dependent reads."""

    access_characteristics = "RA"

    BASELINE_BYTES_PER_CYCLE = 16.0
    PIXELS_PER_CYCLE = 4.0
    INIT_CYCLES = 20_000.0

    def __init__(self, image_size: int = 64):
        super().__init__("affine")
        self._require(image_size >= 8, "image must be at least 8x8")
        self.image_size = image_size

    @property
    def image_bytes(self) -> int:
        return _round_up(self.image_size * self.image_size, _CHUNK_SIZE)

    def _region_layout(self) -> list:
        return [
            ("source", 0, self.image_bytes, "in0", False),
            ("destination", self.image_bytes, self.image_bytes, "out0", True),
        ]

    def region_base(self, name: str) -> int:
        for region_name, base, _, _, _ in self._region_layout():
            if region_name == name:
                return base
        raise KeyError(name)

    # -- Shield configuration --------------------------------------------------------

    def build_shield_config(
        self,
        aes_key_bits: int = 128,
        sbox_parallelism: int = 16,
        mac_algorithm: str = "HMAC",
    ) -> ShieldConfig:
        engine_sets = [
            EngineSetConfig(
                name="in0", sbox_parallelism=sbox_parallelism, aes_key_bits=aes_key_bits,
                mac_algorithm=mac_algorithm, buffer_bytes=32 * 1024 // _NUM_INPUT_SETS,
            ),
            EngineSetConfig(
                name="out0", sbox_parallelism=sbox_parallelism, aes_key_bits=aes_key_bits,
                mac_algorithm=mac_algorithm, buffer_bytes=16 * 1024 // _NUM_OUTPUT_SETS,
            ),
        ]
        regions = [
            RegionConfig(
                name=name, base_address=base, size_bytes=size, chunk_size=_CHUNK_SIZE,
                engine_set=engine_set, streaming_write_only=write_only,
                access_pattern="random" if name == "source" else "streaming",
            )
            for name, base, size, engine_set, write_only in self._region_layout()
        ]
        return ShieldConfig(shield_id="affine", engine_sets=engine_sets, regions=regions)

    def paper_shield_config(
        self,
        aes_key_bits: int = 128,
        sbox_parallelism: int = 16,
        mac_algorithm: str = "HMAC",
    ) -> ShieldConfig:
        """The Section 6.2.4 configuration: 8 input + 4 output engine sets."""
        image_bytes = _round_up(
            PAPER_IMAGE_SIZE * PAPER_IMAGE_SIZE, _CHUNK_SIZE * _NUM_INPUT_SETS
        )
        engine_sets = []
        regions = []
        cursor = 0
        slice_bytes = image_bytes // _NUM_INPUT_SETS
        for index in range(_NUM_INPUT_SETS):
            engine_sets.append(
                EngineSetConfig(
                    name=f"in{index}", sbox_parallelism=sbox_parallelism,
                    aes_key_bits=aes_key_bits, mac_algorithm=mac_algorithm,
                    buffer_bytes=32 * 1024 // _NUM_INPUT_SETS,
                )
            )
            regions.append(
                RegionConfig(
                    name=f"source{index}", base_address=cursor, size_bytes=slice_bytes,
                    chunk_size=_CHUNK_SIZE, engine_set=f"in{index}", access_pattern="random",
                )
            )
            cursor += slice_bytes
        out_slice = _round_up(image_bytes // _NUM_OUTPUT_SETS, _CHUNK_SIZE)
        for index in range(_NUM_OUTPUT_SETS):
            engine_sets.append(
                EngineSetConfig(
                    name=f"out{index}", sbox_parallelism=sbox_parallelism,
                    aes_key_bits=aes_key_bits, mac_algorithm=mac_algorithm,
                    buffer_bytes=16 * 1024 // _NUM_OUTPUT_SETS,
                )
            )
            regions.append(
                RegionConfig(
                    name=f"destination{index}", base_address=cursor, size_bytes=out_slice,
                    chunk_size=_CHUNK_SIZE, engine_set=f"out{index}",
                    streaming_write_only=True, access_pattern="streaming",
                )
            )
            cursor += out_slice
        return ShieldConfig(shield_id="affine", engine_sets=engine_sets, regions=regions)

    # -- analytical profile ---------------------------------------------------------------

    def profile(self, paper_scale: bool = True) -> WorkloadProfile:
        size = PAPER_IMAGE_SIZE if paper_scale else self.image_size
        image_bytes = size * size
        if paper_scale:
            regions = tuple(
                RegionTraffic(
                    region_name=f"source{i}",
                    bytes_read=image_bytes // _NUM_INPUT_SETS,
                    access_size=_CHUNK_SIZE,
                    access_pattern="random",
                    reuse_factor=1.0,
                )
                for i in range(_NUM_INPUT_SETS)
            ) + tuple(
                RegionTraffic(
                    region_name=f"destination{i}",
                    bytes_written=image_bytes // _NUM_OUTPUT_SETS,
                    access_size=_CHUNK_SIZE,
                )
                for i in range(_NUM_OUTPUT_SETS)
            )
        else:
            regions = (
                RegionTraffic(
                    "source", bytes_read=image_bytes, access_size=_CHUNK_SIZE,
                    access_pattern="random",
                ),
                RegionTraffic("destination", bytes_written=image_bytes, access_size=_CHUNK_SIZE),
            )
        return WorkloadProfile(
            name="affine",
            regions=regions,
            compute_cycles=size * size / self.PIXELS_PER_CYCLE,
            init_cycles=self.INIT_CYCLES,
            baseline_bytes_per_cycle=self.BASELINE_BYTES_PER_CYCLE,
        )

    # -- functional execution ----------------------------------------------------------------

    def prepare_inputs(self, seed: int = 0) -> dict:
        rng = np.random.default_rng(seed)
        image = rng.integers(0, 256, size=(self.image_size, self.image_size), dtype=np.uint8)
        raw = image.tobytes()
        return {"source": raw + b"\x00" * (self.image_bytes - len(raw))}

    def run(
        self,
        memory: MemoryInterface,
        angle_degrees: float = 15.0,
        scale: float = 1.1,
        **params,
    ) -> AcceleratorResult:
        size = self.image_size
        raw = memory.read(self.region_base("source"), self.image_bytes)
        source = np.frombuffer(raw[: size * size], dtype=np.uint8).reshape(size, size)

        theta = np.deg2rad(angle_degrees)
        centre = (size - 1) / 2.0
        inverse = np.array(
            [
                [np.cos(theta) / scale, np.sin(theta) / scale],
                [-np.sin(theta) / scale, np.cos(theta) / scale],
            ]
        )
        destination = np.zeros((size, size), dtype=np.uint8)
        ys, xs = np.meshgrid(np.arange(size), np.arange(size), indexing="ij")
        coords = np.stack([ys - centre, xs - centre]).reshape(2, -1)
        src = inverse @ coords
        src_y = np.rint(src[0] + centre).astype(np.int64)
        src_x = np.rint(src[1] + centre).astype(np.int64)
        valid = (0 <= src_y) & (src_y < size) & (0 <= src_x) & (src_x < size)
        flat = destination.reshape(-1)
        flat[valid] = source[src_y[valid], src_x[valid]]
        destination = flat.reshape(size, size)

        out = destination.tobytes()
        memory.write(self.region_base("destination"), out + b"\x00" * (self.image_bytes - len(out)))
        return AcceleratorResult(
            name=self.name,
            outputs={"image": destination},
            bytes_read=self.image_bytes,
            bytes_written=self.image_bytes,
        )
