"""Bitcoin-mining accelerator (the register-only workload of Figure 6).

The miner receives a 76-byte block-header prefix and a difficulty target over
the shielded *register interface*, grinds nonces with double SHA-256 entirely
on-chip, and returns only the 4-byte winning nonce.  No device memory is
touched at all, so the Shield configuration is just the register interface
with one AES and one HMAC engine (Section 6.2.4), and because each input
triggers an enormous amount of compute, the measured overhead is essentially
zero -- the cheapest possible bespoke TEE.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.accelerators.base import Accelerator, AcceleratorResult, MemoryInterface
from repro.core.config import RegisterInterfaceConfig, ShieldConfig
from repro.core.timing import WorkloadProfile
from repro.crypto.hashes import sha256
from repro.errors import SimulationError

HEADER_PREFIX_BYTES = 76
NONCE_BYTES = 4

# Paper-scale difficulty (leading zero bits of the double-SHA256 digest).
PAPER_DIFFICULTY_BITS = 24


def double_sha256(data: bytes) -> bytes:
    """Bitcoin's block hash: SHA-256 applied twice."""
    return sha256(sha256(data))


def leading_zero_bits(digest: bytes) -> int:
    """Number of leading zero bits in a digest."""
    bits = 0
    for byte in digest:
        if byte == 0:
            bits += 8
            continue
        for shift in range(7, -1, -1):
            if byte >> shift:
                return bits + (7 - shift)
        return bits
    return bits


@dataclass
class MiningResult:
    """Outcome of a mining run."""

    nonce: int
    digest: bytes
    attempts: int


class BitcoinAccelerator(Accelerator):
    """A register-only double-SHA256 miner."""

    access_characteristics = "REG"

    #: Hash attempts the pipelined core completes per cycle.
    HASHES_PER_CYCLE = 1.0
    INIT_CYCLES = 5_000.0

    def __init__(self, difficulty_bits: int = 12, max_attempts: int = 2_000_000):
        super().__init__("bitcoin")
        self._require(0 < difficulty_bits <= 64, "difficulty must be 1-64 bits")
        self.difficulty_bits = difficulty_bits
        self.max_attempts = max_attempts

    # -- Shield configuration --------------------------------------------------------

    def build_shield_config(
        self,
        aes_key_bits: int = 128,
        sbox_parallelism: int = 16,
        mac_algorithm: str = "HMAC",
    ) -> ShieldConfig:
        return ShieldConfig(
            shield_id="bitcoin",
            engine_sets=[],
            regions=[],
            register_interface=RegisterInterfaceConfig(
                num_registers=32,
                encrypt_addresses=True,
                aes_key_bits=aes_key_bits,
                sbox_parallelism=sbox_parallelism,
                mac_algorithm=mac_algorithm,
            ),
        )

    # -- analytical profile ---------------------------------------------------------------

    def profile(self, difficulty_bits: int | None = None) -> WorkloadProfile:
        difficulty = difficulty_bits or PAPER_DIFFICULTY_BITS
        expected_attempts = float(2 ** difficulty)
        return WorkloadProfile(
            name="bitcoin",
            regions=(),
            compute_cycles=expected_attempts / self.HASHES_PER_CYCLE,
            init_cycles=self.INIT_CYCLES,
            register_operations=24,  # header prefix (19 words) + difficulty + nonce readback
        )

    # -- functional execution ----------------------------------------------------------------

    def mine(self, header_prefix: bytes) -> MiningResult:
        """Grind nonces until the double-SHA256 digest meets the difficulty."""
        if len(header_prefix) != HEADER_PREFIX_BYTES:
            raise SimulationError(
                f"block header prefix must be {HEADER_PREFIX_BYTES} bytes"
            )
        for nonce in range(self.max_attempts):
            digest = double_sha256(header_prefix + nonce.to_bytes(NONCE_BYTES, "little"))
            if leading_zero_bits(digest) >= self.difficulty_bits:
                return MiningResult(nonce=nonce, digest=digest, attempts=nonce + 1)
        raise SimulationError(
            f"no nonce meeting {self.difficulty_bits} bits found in {self.max_attempts} attempts"
        )

    def run(self, memory: MemoryInterface, header_prefix: bytes = b"", **params) -> AcceleratorResult:
        """Register-only workload: ``memory`` is unused by design."""
        header_prefix = header_prefix or bytes(range(HEADER_PREFIX_BYTES))
        result = self.mine(header_prefix)
        return AcceleratorResult(
            name=self.name,
            outputs={
                "nonce": result.nonce,
                "digest": result.digest,
                "attempts": result.attempts,
            },
        )

    def run_via_registers(self, register_file, channel_client, header_prefix: bytes) -> MiningResult:
        """Drive the miner purely through the shielded register interface.

        ``register_file`` is the Shield's plaintext-side register file and
        ``channel_client`` the Data Owner's sealed-command client; this method
        mirrors how the host program would operate the miner end to end.
        """
        if len(header_prefix) != HEADER_PREFIX_BYTES:
            raise SimulationError(
                f"block header prefix must be {HEADER_PREFIX_BYTES} bytes"
            )
        # The Data Owner would push the header through sealed register writes;
        # here we verify the plumbing by reading it back out of the plaintext
        # register file the way the accelerator logic would.
        words = [header_prefix[i : i + 4] for i in range(0, HEADER_PREFIX_BYTES, 4)]
        header = b"".join(register_file.read_register(index) for index in range(len(words)))
        result = self.mine(header)
        register_file.write_register(30, result.nonce.to_bytes(4, "big"))
        register_file.write_register(31, result.attempts.to_bytes(4, "big"))
        return result
