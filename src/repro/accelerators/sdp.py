"""SDP storage node: the GDPR-compliant secure-storage application (Section 6.2.3).

SDP (Software-Defined data Protection) couples smart Storage Nodes -- each an
FPGA providing encryption-at-rest and line-rate throughput -- with a central
Controller Node that provisions per-user keys after attesting every node.
The paper builds the Storage Node as a key-value store on top of the Shield:
file traffic to the storage device is protected with the user's key and
traffic to the application with a TLS session key, which maps onto two engine
sets (``storage`` and ``tls``), each with a 16 KB buffer and a 4 KB
authentication block (C_mem).  Table 2 sweeps the engine configuration of
those two sets -- 4/8/16 AES engines, 4x/16x S-box parallelism, HMAC vs PMAC
-- and reports steady-state overhead for 1 MB file accesses, which is the
experiment ``benchmarks/test_table2_sdp.py`` reproduces.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.accelerators.base import Accelerator, AcceleratorResult, MemoryInterface
from repro.core.config import EngineSetConfig, RegionConfig, ShieldConfig
from repro.core.timing import RegionTraffic, WorkloadProfile
from repro.errors import SimulationError

DEFAULT_AUTH_BLOCK = 4096

# Paper-scale experiment: steady-state 1 MB file accesses.
PAPER_FILE_BYTES = 1 * 1024 * 1024
PAPER_FILES_PER_RUN = 8


def _round_up(value: int, granularity: int) -> int:
    return -(-value // granularity) * granularity


@dataclass
class FileRecord:
    """Where a stored file lives inside the storage region."""

    user: str
    name: str
    offset: int
    length: int


@dataclass
class SdpAccessLog:
    """Operations performed during a functional run."""

    puts: int = 0
    gets: int = 0
    bytes_stored: int = 0
    bytes_served: int = 0
    denied: int = 0
    records: list = field(default_factory=list)


class SdpStorageNodeAccelerator(Accelerator):
    """A key-value Storage Node with per-user access control behind the Shield."""

    access_characteristics = "STR"

    BASELINE_BYTES_PER_CYCLE = 64.0
    #: Key-value engine bookkeeping cycles per file operation.
    CYCLES_PER_OPERATION = 600.0
    INIT_CYCLES = 15_000.0

    def __init__(
        self,
        storage_bytes: int = 256 * 1024,
        tls_bytes: int = 64 * 1024,
        auth_block: int = DEFAULT_AUTH_BLOCK,
    ):
        super().__init__("sdp")
        self._require(auth_block > 0, "authentication block size must be positive")
        self.auth_block = auth_block
        self.storage_bytes = _round_up(storage_bytes, auth_block)
        self.tls_bytes = _round_up(tls_bytes, auth_block)
        self._directory: dict[tuple, FileRecord] = {}
        self._next_offset = 0
        self._access_policy: dict[str, set] = {}
        self.log = SdpAccessLog()

    # -- address map -----------------------------------------------------------------

    @property
    def storage_base(self) -> int:
        return 0

    @property
    def tls_base(self) -> int:
        return self.storage_bytes

    # -- Shield configuration ------------------------------------------------------------

    def build_shield_config(
        self,
        aes_key_bits: int = 128,
        sbox_parallelism: int = 16,
        mac_algorithm: str = "HMAC",
        num_aes_engines: int = 4,
        num_mac_engines: int = 1,
        buffer_bytes: int = 16 * 1024,
    ) -> ShieldConfig:
        """Two identical engine sets (storage-side and TLS-side), per Section 6.2.3."""
        engine_sets = [
            EngineSetConfig(
                name=name,
                num_aes_engines=num_aes_engines,
                sbox_parallelism=sbox_parallelism,
                aes_key_bits=aes_key_bits,
                mac_algorithm=mac_algorithm,
                num_mac_engines=num_mac_engines,
                buffer_bytes=buffer_bytes,
            )
            for name in ("storage", "tls")
        ]
        regions = [
            RegionConfig(
                name="storage", base_address=self.storage_base, size_bytes=self.storage_bytes,
                chunk_size=self.auth_block, engine_set="storage", access_pattern="streaming",
            ),
            RegionConfig(
                name="tls", base_address=self.tls_base, size_bytes=self.tls_bytes,
                chunk_size=self.auth_block, engine_set="tls",
                streaming_write_only=True, access_pattern="streaming",
            ),
        ]
        return ShieldConfig(shield_id="sdp", engine_sets=engine_sets, regions=regions)

    # -- analytical profile -----------------------------------------------------------------

    def profile(
        self,
        file_bytes: int = PAPER_FILE_BYTES,
        files_per_run: int = PAPER_FILES_PER_RUN,
        auth_block: int | None = None,
    ) -> WorkloadProfile:
        auth_block = auth_block or self.auth_block
        total = file_bytes * files_per_run
        regions = (
            RegionTraffic(
                "storage", bytes_read=total, access_size=auth_block,
                access_pattern="streaming", store_and_forward=True,
            ),
            RegionTraffic(
                "tls", bytes_written=total, access_size=auth_block,
                access_pattern="streaming", store_and_forward=True,
            ),
        )
        return WorkloadProfile(
            name="sdp",
            regions=regions,
            compute_cycles=files_per_run * self.CYCLES_PER_OPERATION,
            init_cycles=self.INIT_CYCLES,
            baseline_bytes_per_cycle=self.BASELINE_BYTES_PER_CYCLE,
        )

    # -- access policy (the Controller Node's job) ----------------------------------------------

    def provision_user(self, user: str, allowed_files: list) -> None:
        """Install an access policy entry (done by the CN after attestation)."""
        self._access_policy.setdefault(user, set()).update(allowed_files)

    def _check_access(self, user: str, name: str) -> bool:
        return name in self._access_policy.get(user, set())

    # -- key-value operations ----------------------------------------------------------------------

    def put(self, memory: MemoryInterface, user: str, name: str, data: bytes) -> FileRecord:
        """Store a file for ``user`` (data arrives via the TLS side in practice)."""
        if not self._check_access(user, name):
            self.log.denied += 1
            raise SimulationError(f"user {user!r} may not write file {name!r}")
        length = len(data)
        padded = _round_up(length, self.auth_block)
        if self._next_offset + padded > self.storage_bytes:
            raise SimulationError("storage region is full")
        record = FileRecord(user=user, name=name, offset=self._next_offset, length=length)
        memory.write(self.storage_base + record.offset, data + b"\x00" * (padded - length))
        self._directory[(user, name)] = record
        self._next_offset += padded
        self.log.puts += 1
        self.log.bytes_stored += length
        self.log.records.append(record)
        return record

    def get(self, memory: MemoryInterface, user: str, name: str) -> bytes:
        """Serve a file to ``user``: read from storage, stage into the TLS region."""
        if not self._check_access(user, name):
            self.log.denied += 1
            raise SimulationError(f"user {user!r} may not read file {name!r}")
        record = self._directory.get((user, name))
        if record is None:
            raise SimulationError(f"no file {name!r} stored for user {user!r}")
        data = memory.read(self.storage_base + record.offset, record.length)
        staged = data + b"\x00" * (_round_up(record.length, self.auth_block) - record.length)
        if len(staged) > self.tls_bytes:
            raise SimulationError("file does not fit in the TLS staging region")
        memory.write(self.tls_base, staged)
        self.log.gets += 1
        self.log.bytes_served += record.length
        return data

    # -- canonical functional run ---------------------------------------------------------------------

    def prepare_inputs(self, seed: int = 0) -> dict:
        """SDP stages nothing up front; files arrive through put()."""
        return {}

    def run(
        self,
        memory: MemoryInterface,
        users: int = 2,
        files_per_user: int = 2,
        file_bytes: int = 8 * 1024,
        seed: int = 0,
        **params,
    ) -> AcceleratorResult:
        """Store and then serve a small population of per-user files."""
        rng = np.random.default_rng(seed)
        contents: dict[tuple, bytes] = {}
        for user_index in range(users):
            user = f"user{user_index}"
            names = [f"file{user_index}_{i}" for i in range(files_per_user)]
            self.provision_user(user, names)
            for name in names:
                data = rng.integers(0, 256, size=file_bytes, dtype=np.uint8).tobytes()
                contents[(user, name)] = data
                self.put(memory, user, name, data)
        served: dict[str, bytes] = {}
        for (user, name), expected in contents.items():
            served[f"{user}/{name}"] = self.get(memory, user, name)
        return AcceleratorResult(
            name=self.name,
            outputs={"served": served, "expected": {f"{u}/{n}": d for (u, n), d in contents.items()}},
            bytes_read=self.log.bytes_served,
            bytes_written=self.log.bytes_stored,
        )
