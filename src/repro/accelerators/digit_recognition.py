"""Digit-recognition accelerator (the Rosetta benchmark used in Figure 6).

Rosetta's digit recognition is a k-nearest-neighbour classifier over binarized
MNIST digits: each test digit (a 196-bit vector) is compared by Hamming
distance against a training set, and the label of the closest neighbours wins.
The workload streams the training set in from device memory without batching,
so the paper secures it with two input engine sets (24 KB of buffer in total)
and one output engine set (12 KB), each with one AES and one HMAC engine, and
a 512-byte C_mem; the measured overheads are 1.85x-3.15x because there is
relatively little compute to hide the crypto behind.
"""

from __future__ import annotations

import numpy as np

from repro.accelerators.base import Accelerator, AcceleratorResult, MemoryInterface
from repro.core.config import EngineSetConfig, RegionConfig, ShieldConfig
from repro.core.timing import RegionTraffic, WorkloadProfile

_CHUNK_SIZE = 512
_DIGIT_WORDS = 4          # each digit packs 196 bits into four 64-bit words
_DIGIT_BYTES = _DIGIT_WORDS * 8

# Paper-scale workload: the Rosetta training set (18,000 digits) and 2,000 tests.
PAPER_TRAINING_DIGITS = 18_000
PAPER_TEST_DIGITS = 2_000


def _round_up(value: int, granularity: int) -> int:
    return -(-value // granularity) * granularity


class DigitRecognitionAccelerator(Accelerator):
    """KNN digit recognition over binarized digits (streaming, unbatched)."""

    access_characteristics = "STR"

    BASELINE_BYTES_PER_CYCLE = 24.0
    #: Hamming-distance comparisons per cycle across the parallel distance units.
    COMPARES_PER_CYCLE = 720.0
    INIT_CYCLES = 20_000.0
    K_NEIGHBOURS = 3

    def __init__(self, training_digits: int = 512, test_digits: int = 16):
        super().__init__("digit_recognition")
        self._require(training_digits > 0 and test_digits > 0, "digit counts must be positive")
        self.training_digits = training_digits
        self.test_digits = test_digits

    # -- geometry ---------------------------------------------------------------------

    @property
    def training_bytes(self) -> int:
        return _round_up(self.training_digits * _DIGIT_BYTES, 2 * _CHUNK_SIZE)

    @property
    def test_bytes(self) -> int:
        return _round_up(self.test_digits * _DIGIT_BYTES, _CHUNK_SIZE)

    @property
    def label_bytes(self) -> int:
        return _round_up(self.training_digits * 4, _CHUNK_SIZE)

    @property
    def output_bytes(self) -> int:
        return _round_up(self.test_digits * 4, _CHUNK_SIZE)

    def _region_layout(self) -> list:
        cursor = 0
        layout = []
        for name, size, engine_set, write_only in (
            ("training", self.training_bytes, "in0", False),
            ("labels", self.label_bytes, "in0", False),
            ("tests", self.test_bytes, "in1", False),
            ("results", self.output_bytes, "out0", True),
        ):
            layout.append((name, cursor, size, engine_set, write_only))
            cursor += size
        return layout

    def region_base(self, name: str) -> int:
        for region_name, base, _, _, _ in self._region_layout():
            if region_name == name:
                return base
        raise KeyError(name)

    # -- Shield configuration ------------------------------------------------------------

    def build_shield_config(
        self,
        aes_key_bits: int = 128,
        sbox_parallelism: int = 16,
        mac_algorithm: str = "HMAC",
    ) -> ShieldConfig:
        engine_sets = [
            EngineSetConfig(
                name="in0", sbox_parallelism=sbox_parallelism, aes_key_bits=aes_key_bits,
                mac_algorithm=mac_algorithm, buffer_bytes=12 * 1024,
            ),
            EngineSetConfig(
                name="in1", sbox_parallelism=sbox_parallelism, aes_key_bits=aes_key_bits,
                mac_algorithm=mac_algorithm, buffer_bytes=12 * 1024,
            ),
            EngineSetConfig(
                name="out0", sbox_parallelism=sbox_parallelism, aes_key_bits=aes_key_bits,
                mac_algorithm=mac_algorithm, buffer_bytes=12 * 1024,
            ),
        ]
        regions = [
            RegionConfig(
                name=name, base_address=base, size_bytes=size, chunk_size=_CHUNK_SIZE,
                engine_set=engine_set, streaming_write_only=write_only,
                access_pattern="streaming",
            )
            for name, base, size, engine_set, write_only in self._region_layout()
        ]
        return ShieldConfig(shield_id="digit-recognition", engine_sets=engine_sets, regions=regions)

    # -- analytical profile ------------------------------------------------------------------

    def profile(self, paper_scale: bool = True) -> WorkloadProfile:
        if paper_scale:
            training = PAPER_TRAINING_DIGITS
            tests = PAPER_TEST_DIGITS
        else:
            training = self.training_digits
            tests = self.test_digits
        # The training set streams through once (all test digits are held
        # on-chip), but the stream is unbatched: the compare pipeline waits on
        # each chunk before requesting the next, hence store_and_forward.
        regions = (
            RegionTraffic(
                "training", bytes_read=training * _DIGIT_BYTES, access_size=_CHUNK_SIZE,
                store_and_forward=True,
            ),
            RegionTraffic(
                "labels", bytes_read=training * 4, access_size=_CHUNK_SIZE,
                store_and_forward=True,
            ),
            RegionTraffic(
                "tests", bytes_read=tests * _DIGIT_BYTES, access_size=_CHUNK_SIZE,
                store_and_forward=True,
            ),
            RegionTraffic("results", bytes_written=tests * 4, access_size=_CHUNK_SIZE),
        )
        compares = training * tests
        return WorkloadProfile(
            name="digit_recognition",
            regions=regions,
            compute_cycles=compares / self.COMPARES_PER_CYCLE,
            init_cycles=self.INIT_CYCLES,
            baseline_bytes_per_cycle=self.BASELINE_BYTES_PER_CYCLE,
        )

    # -- functional execution --------------------------------------------------------------------

    def prepare_inputs(self, seed: int = 0) -> dict:
        rng = np.random.default_rng(seed)
        training = rng.integers(0, 2 ** 49, size=(self.training_digits, _DIGIT_WORDS), dtype=np.uint64)
        labels = rng.integers(0, 10, size=self.training_digits, dtype=np.int32)
        tests = rng.integers(0, 2 ** 49, size=(self.test_digits, _DIGIT_WORDS), dtype=np.uint64)
        return {
            "training": self._pad(training.tobytes(), self.training_bytes),
            "labels": self._pad(labels.tobytes(), self.label_bytes),
            "tests": self._pad(tests.tobytes(), self.test_bytes),
        }

    @staticmethod
    def _pad(raw: bytes, size: int) -> bytes:
        return raw + b"\x00" * (size - len(raw))

    @staticmethod
    def _popcount(values: np.ndarray) -> np.ndarray:
        counts = np.zeros(values.shape, dtype=np.int64)
        work = values.copy()
        for _ in range(64):
            counts += (work & 1).astype(np.int64)
            work >>= np.uint64(1)
        return counts

    def run(self, memory: MemoryInterface, **params) -> AcceleratorResult:
        raw_training = memory.read(self.region_base("training"), self.training_bytes)
        raw_labels = memory.read(self.region_base("labels"), self.label_bytes)
        raw_tests = memory.read(self.region_base("tests"), self.test_bytes)
        training = np.frombuffer(
            raw_training[: self.training_digits * _DIGIT_BYTES], dtype=np.uint64
        ).reshape(self.training_digits, _DIGIT_WORDS)
        labels = np.frombuffer(raw_labels[: self.training_digits * 4], dtype=np.int32)
        tests = np.frombuffer(
            raw_tests[: self.test_digits * _DIGIT_BYTES], dtype=np.uint64
        ).reshape(self.test_digits, _DIGIT_WORDS)

        predictions = np.zeros(self.test_digits, dtype=np.int32)
        for index in range(self.test_digits):
            xor = training ^ tests[index]
            distances = self._popcount(xor).sum(axis=1)
            nearest = np.argsort(distances, kind="stable")[: self.K_NEIGHBOURS]
            votes = labels[nearest]
            predictions[index] = np.bincount(votes, minlength=10).argmax()

        out = self._pad(predictions.tobytes(), self.output_bytes)
        memory.write(self.region_base("results"), out)
        return AcceleratorResult(
            name=self.name,
            outputs={"predictions": predictions},
            bytes_read=self.training_bytes + self.label_bytes + self.test_bytes,
            bytes_written=self.output_bytes,
        )
