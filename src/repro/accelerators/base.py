"""Accelerator model base classes and memory-interface adapters.

Each evaluation workload from the paper (vector add, matrix multiply, the
convolution layer, Rosetta digit recognition, affine transformation,
DNNWeaver/LeNet, Bitcoin, and the SDP storage node) is modelled as an
:class:`Accelerator` with three faces:

* ``build_shield_config`` -- the Shield configuration the paper's Section
  6.2.4 describes for that workload (engine sets, chunk sizes, buffers,
  counters), parameterized by the AES variant being evaluated;
* ``profile`` -- a compact :class:`~repro.core.timing.WorkloadProfile` used by
  the analytical timing model for the large benchmark sweeps;
* ``run`` -- a functional execution against a memory interface (either the
  real Shield or a direct, unshielded connection), used by tests and examples
  to show that results computed behind the Shield are bit-identical to the
  unprotected baseline.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.core.config import ShieldConfig
from repro.core.shield import Shield
from repro.core.timing import WorkloadProfile
from repro.errors import SimulationError
from repro.hw.memory import DeviceMemory


class MemoryInterface(ABC):
    """What an accelerator model needs from its memory system."""

    @abstractmethod
    def read(self, address: int, length: int) -> bytes:
        """Read ``length`` bytes at ``address``."""

    @abstractmethod
    def write(self, address: int, data: bytes) -> None:
        """Write ``data`` at ``address``."""


class ShieldMemoryAdapter(MemoryInterface):
    """Routes accelerator accesses through a provisioned Shield."""

    def __init__(self, shield: Shield):
        self._shield = shield

    def read(self, address: int, length: int) -> bytes:
        return self._shield.memory_read(address, length)

    def write(self, address: int, data: bytes) -> None:
        self._shield.memory_write(address, data)

    def flush(self) -> None:
        self._shield.flush()


class DirectMemoryAdapter(MemoryInterface):
    """The insecure baseline: accesses go straight to device DRAM."""

    def __init__(self, device_memory: DeviceMemory):
        self._memory = device_memory

    def read(self, address: int, length: int) -> bytes:
        return self._memory.read(address, length)

    def write(self, address: int, data: bytes) -> None:
        self._memory.write(address, data)

    def flush(self) -> None:
        """No-op: the direct path has nothing to flush."""


@dataclass
class AcceleratorResult:
    """Outcome of a functional accelerator run."""

    name: str
    outputs: dict
    bytes_read: int = 0
    bytes_written: int = 0


class Accelerator(ABC):
    """Base class for all workload models."""

    #: Access characteristics tag used in Figure 6's legend
    #: (STR = streaming, RA = random access, REG = register only).
    access_characteristics: str = "STR"

    def __init__(self, name: str):
        self.name = name

    # -- configuration ------------------------------------------------------------

    @abstractmethod
    def build_shield_config(
        self,
        aes_key_bits: int = 128,
        sbox_parallelism: int = 16,
        mac_algorithm: str = "HMAC",
    ) -> ShieldConfig:
        """The per-accelerator Shield configuration from Section 6.2.4."""

    # -- analytical profile ----------------------------------------------------------

    @abstractmethod
    def profile(self, **params) -> WorkloadProfile:
        """Traffic/compute summary for the timing model."""

    # -- functional execution -----------------------------------------------------------

    @abstractmethod
    def run(self, memory: MemoryInterface, **params) -> AcceleratorResult:
        """Execute the workload against a memory interface."""

    # -- helpers -----------------------------------------------------------------------------

    def describe(self) -> dict:
        """Human-readable summary used by examples and reporting."""
        return {
            "name": self.name,
            "access_characteristics": self.access_characteristics,
        }

    @staticmethod
    def _require(condition: bool, message: str) -> None:
        if not condition:
            raise SimulationError(message)
