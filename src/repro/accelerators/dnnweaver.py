"""DNNWeaver-style DNN accelerator running LeNet (Figure 6 and Section 6.2.4).

DNNWeaver executes a whole network layer by layer: weights are streamed in
once per layer in large chunks, while feature maps are read and written
repeatedly in small chunks as layers consume and produce them.  The paper's
Shield configuration therefore uses two engine sets with very different
parameters:

* the **weights** set -- C_mem of 4 KB, four AES engines and one HMAC engine,
  128 KB of buffer, no integrity counters (weights are read-only), and
* the **feature-map** set -- C_mem of 64 bytes, four AES engines and one HMAC
  engine, 64 KB of buffer, *with* integrity counters because feature maps are
  both read and written.

The resulting overheads are the largest in Figure 6 (3.20x-3.83x), dominated
by HMAC computation over the 4 KB weight chunks; replacing that HMAC engine
with four PMAC engines drops the AES-128/16x overhead to 2.31x.
"""

from __future__ import annotations

import numpy as np

from repro.accelerators.base import Accelerator, AcceleratorResult, MemoryInterface
from repro.core.config import EngineSetConfig, RegionConfig, ShieldConfig
from repro.core.timing import RegionTraffic, WorkloadProfile

_WEIGHT_CHUNK = 4096
_FMAP_CHUNK = 64
_ELEMENT_BYTES = 4

# Paper-scale traffic (LeNet on DNNWeaver): weights ~1.7 MB as 32-bit values,
# re-streamed for every image of a small inference batch; feature maps cover
# roughly 1 MB of memory, of which the Shield sees the portion that spills
# past the accelerator's internal buffers.
PAPER_WEIGHT_BYTES = 1_720_000
PAPER_INFERENCE_BATCH = 6
PAPER_FEATURE_MAP_BYTES = 1_048_576
PAPER_FEATURE_MAP_SPILL_BYTES = 512 * 1024
PAPER_FEATURE_MAP_REUSE = 2.0


def _round_up(value: int, granularity: int) -> int:
    return -(-value // granularity) * granularity


class DnnWeaverAccelerator(Accelerator):
    """A small LeNet-like network with streamed weights and random-access feature maps."""

    access_characteristics = "STR+RA"

    BASELINE_BYTES_PER_CYCLE = 20.0
    MACS_PER_CYCLE = 400.0
    INIT_CYCLES = 30_000.0

    def __init__(
        self,
        input_size: int = 16,
        conv_channels: tuple = (4, 8),
        fc_units: int = 32,
        classes: int = 10,
    ):
        super().__init__("dnnweaver")
        self.input_size = input_size
        self.conv_channels = tuple(conv_channels)
        self.fc_units = fc_units
        self.classes = classes

    # -- geometry ---------------------------------------------------------------------

    def _layer_dims(self) -> dict:
        size = self.input_size
        c1, c2 = self.conv_channels
        pooled1 = size // 2
        pooled2 = pooled1 // 2
        flat = pooled2 * pooled2 * c2
        return {
            "conv1_w": (c1, 3, 3, 1),
            "conv2_w": (c2, 3, 3, c1),
            "fc1_w": (self.fc_units, flat),
            "fc2_w": (self.classes, self.fc_units),
            "flat": flat,
            "pooled1": pooled1,
            "pooled2": pooled2,
        }

    @property
    def weight_bytes(self) -> int:
        dims = self._layer_dims()
        total = 0
        for key in ("conv1_w", "conv2_w", "fc1_w", "fc2_w"):
            total += int(np.prod(dims[key])) * _ELEMENT_BYTES
        return _round_up(total, _WEIGHT_CHUNK)

    @property
    def feature_map_bytes(self) -> int:
        dims = self._layer_dims()
        c1, c2 = self.conv_channels
        biggest = max(
            self.input_size ** 2,
            self.input_size ** 2 * c1,
            dims["pooled1"] ** 2 * c1,
            dims["pooled1"] ** 2 * c2,
            dims["pooled2"] ** 2 * c2,
            dims["flat"],
            self.fc_units,
            self.classes,
        )
        # Double-buffered scratchpad for layer inputs and outputs.
        return _round_up(2 * biggest * _ELEMENT_BYTES, _FMAP_CHUNK)

    def _region_layout(self) -> list:
        return [
            ("weights", 0, self.weight_bytes, "weights", False),
            ("feature_maps", self.weight_bytes, self.feature_map_bytes, "fmaps", False),
        ]

    def region_base(self, name: str) -> int:
        for region_name, base, _, _, _ in self._region_layout():
            if region_name == name:
                return base
        raise KeyError(name)

    # -- Shield configuration -------------------------------------------------------------

    def build_shield_config(
        self,
        aes_key_bits: int = 128,
        sbox_parallelism: int = 16,
        mac_algorithm: str = "HMAC",
        pmac_weights: bool = False,
    ) -> ShieldConfig:
        """Two engine sets per Section 6.2.4; ``pmac_weights`` applies the PMAC fix."""
        weight_mac = "PMAC" if pmac_weights else mac_algorithm
        weight_mac_engines = 4 if pmac_weights else 1
        engine_sets = [
            EngineSetConfig(
                name="weights", num_aes_engines=4, sbox_parallelism=sbox_parallelism,
                aes_key_bits=aes_key_bits, mac_algorithm=weight_mac,
                num_mac_engines=weight_mac_engines, buffer_bytes=128 * 1024,
            ),
            EngineSetConfig(
                name="fmaps", num_aes_engines=4, sbox_parallelism=sbox_parallelism,
                aes_key_bits=aes_key_bits, mac_algorithm=mac_algorithm,
                num_mac_engines=1, buffer_bytes=64 * 1024,
            ),
        ]
        regions = [
            RegionConfig(
                name="weights", base_address=0, size_bytes=self.weight_bytes,
                chunk_size=_WEIGHT_CHUNK, engine_set="weights", access_pattern="streaming",
            ),
            RegionConfig(
                name="feature_maps", base_address=self.weight_bytes,
                size_bytes=self.feature_map_bytes, chunk_size=_FMAP_CHUNK,
                engine_set="fmaps", replay_protected=True, access_pattern="random",
            ),
        ]
        return ShieldConfig(shield_id="dnnweaver", engine_sets=engine_sets, regions=regions)

    # -- analytical profile ------------------------------------------------------------------

    def profile(self, paper_scale: bool = True, pmac_weights: bool = False) -> WorkloadProfile:
        if paper_scale:
            weight_bytes = PAPER_WEIGHT_BYTES * PAPER_INFERENCE_BATCH
            fmap_spill = PAPER_FEATURE_MAP_SPILL_BYTES
            fmap_working_set = PAPER_FEATURE_MAP_BYTES // 4
            reuse = PAPER_FEATURE_MAP_REUSE
        else:
            weight_bytes = self.weight_bytes
            fmap_spill = self.feature_map_bytes
            fmap_working_set = self.feature_map_bytes
            reuse = 2.0
        regions = (
            RegionTraffic(
                # Weight bursts are issued one 4 KB chunk at a time and the
                # accelerator stalls on the chunk's MAC before requesting the
                # next -- exactly the HMAC bottleneck the paper describes.
                "weights", bytes_read=weight_bytes, access_size=_WEIGHT_CHUNK,
                access_pattern="streaming", serialized_mac=True,
            ),
            RegionTraffic(
                "feature_maps",
                bytes_read=fmap_spill // 2,
                bytes_written=fmap_spill // 2,
                access_size=_FMAP_CHUNK,
                access_pattern="random",
                reuse_factor=reuse,
                working_set_bytes=fmap_working_set,
            ),
        )
        macs = weight_bytes / _ELEMENT_BYTES * 48  # each weight participates in ~48 MACs
        return WorkloadProfile(
            name="dnnweaver",
            regions=regions,
            compute_cycles=macs / self.MACS_PER_CYCLE,
            init_cycles=self.INIT_CYCLES,
            baseline_bytes_per_cycle=self.BASELINE_BYTES_PER_CYCLE,
        )

    # -- functional execution --------------------------------------------------------------------

    def prepare_inputs(self, seed: int = 0) -> dict:
        rng = np.random.default_rng(seed)
        dims = self._layer_dims()
        blobs = []
        for key in ("conv1_w", "conv2_w", "fc1_w", "fc2_w"):
            blobs.append(rng.integers(-4, 5, size=dims[key], dtype=np.int32).tobytes())
        weights = b"".join(blobs)
        image = rng.integers(0, 16, size=(self.input_size, self.input_size), dtype=np.int32)
        feature_maps = image.tobytes()
        return {
            "weights": weights + b"\x00" * (self.weight_bytes - len(weights)),
            "feature_maps": feature_maps
            + b"\x00" * (self.feature_map_bytes - len(feature_maps)),
        }

    # Layer helpers operate on plaintext numpy arrays; the accelerator streams
    # them through the memory interface between layers (which is what makes the
    # feature-map region read/write and therefore replay-protected).

    @staticmethod
    def _relu(x: np.ndarray) -> np.ndarray:
        return np.maximum(x, 0)

    @staticmethod
    def _conv2d(image: np.ndarray, weights: np.ndarray) -> np.ndarray:
        out_channels, kh, kw, in_channels = weights.shape
        height, width = image.shape[0], image.shape[1]
        pad = kh // 2
        padded = np.pad(image, ((pad, pad), (pad, pad), (0, 0)))
        out = np.zeros((height, width, out_channels), dtype=np.int64)
        for dy in range(kh):
            for dx in range(kw):
                window = padded[dy : dy + height, dx : dx + width, :]
                out += np.einsum("hwc,oc->hwo", window.astype(np.int64), weights[:, dy, dx, :].astype(np.int64))
        return out

    @staticmethod
    def _maxpool2(feature_map: np.ndarray) -> np.ndarray:
        height, width, channels = feature_map.shape
        reshaped = feature_map[: height // 2 * 2, : width // 2 * 2, :]
        reshaped = reshaped.reshape(height // 2, 2, width // 2, 2, channels)
        return reshaped.max(axis=(1, 3))

    def run(self, memory: MemoryInterface, **params) -> AcceleratorResult:
        dims = self._layer_dims()
        weights_raw = memory.read(self.region_base("weights"), self.weight_bytes)
        offset = 0
        tensors = {}
        for key in ("conv1_w", "conv2_w", "fc1_w", "fc2_w"):
            count = int(np.prod(dims[key]))
            tensors[key] = np.frombuffer(
                weights_raw[offset : offset + count * _ELEMENT_BYTES], dtype=np.int32
            ).reshape(dims[key])
            offset += count * _ELEMENT_BYTES

        fmap_base = self.region_base("feature_maps")
        image_raw = memory.read(fmap_base, self.input_size ** 2 * _ELEMENT_BYTES)
        image = np.frombuffer(image_raw, dtype=np.int32).reshape(self.input_size, self.input_size, 1)

        # Layer 1: conv + ReLU + pool; spill the activation through the Shield.
        act1 = self._relu(self._conv2d(image, tensors["conv1_w"]))
        act1 = self._maxpool2(act1).astype(np.int32)
        memory.write(fmap_base, act1.tobytes())
        act1 = np.frombuffer(
            memory.read(fmap_base, act1.size * _ELEMENT_BYTES), dtype=np.int32
        ).reshape(act1.shape)

        # Layer 2: conv + ReLU + pool.
        act2 = self._relu(self._conv2d(act1, tensors["conv2_w"]))
        act2 = self._maxpool2(act2).astype(np.int32)
        half = self.feature_map_bytes // 2
        memory.write(fmap_base + half, act2.tobytes())
        act2 = np.frombuffer(
            memory.read(fmap_base + half, act2.size * _ELEMENT_BYTES), dtype=np.int32
        ).reshape(act2.shape)

        # Fully connected layers.
        flat = act2.reshape(-1).astype(np.int64)
        fc1 = self._relu(tensors["fc1_w"].astype(np.int64) @ flat)
        logits = tensors["fc2_w"].astype(np.int64) @ fc1
        logits32 = logits.astype(np.int32)
        memory.write(fmap_base, logits32.tobytes())

        return AcceleratorResult(
            name=self.name,
            outputs={"logits": logits32, "prediction": int(np.argmax(logits32))},
            bytes_read=self.weight_bytes,
            bytes_written=logits32.nbytes,
        )
