"""Matrix-multiplication microbenchmark (Section 6.2.2 companion remark).

The paper notes that a matrix-multiply microbenchmark showed the same trends
as vector add but much less pronounced (a maximum overhead of 1.26x for
AES/4x) because matrix multiplication performs far more computation per byte
transferred.  The model reproduces that: the compute term grows as N^3 while
traffic grows as N^2, so the Shield's encryption-rate ceiling is mostly hidden
behind compute.
"""

from __future__ import annotations

import numpy as np

from repro.accelerators.base import Accelerator, AcceleratorResult, MemoryInterface
from repro.core.config import EngineSetConfig, RegionConfig, ShieldConfig
from repro.core.timing import RegionTraffic, WorkloadProfile

_CHUNK_SIZE = 512
_ELEMENT_BYTES = 4


class MatMulAccelerator(Accelerator):
    """Dense int32 matrix multiplication C = A x B with streaming inputs."""

    access_characteristics = "STR"

    BASELINE_BYTES_PER_CYCLE = 48.0
    #: MACs per cycle of the systolic array (drives the compute term).
    MACS_PER_CYCLE = 640.0
    INIT_CYCLES = 25_000.0

    def __init__(self, dimension: int = 64):
        super().__init__("matmul")
        self._require(dimension > 0, "matrix dimension must be positive")
        self.dimension = dimension

    @property
    def matrix_bytes(self) -> int:
        raw = self.dimension * self.dimension * _ELEMENT_BYTES
        return -(-raw // _CHUNK_SIZE) * _CHUNK_SIZE

    def _region_layout(self) -> list:
        size = self.matrix_bytes
        return [
            ("a", 0, size, "in0", False),
            ("b", size, size, "in1", False),
            ("c", 2 * size, size, "out0", True),
        ]

    def region_base(self, name: str) -> int:
        for region_name, base, _, _, _ in self._region_layout():
            if region_name == name:
                return base
        raise KeyError(name)

    def build_shield_config(
        self,
        aes_key_bits: int = 128,
        sbox_parallelism: int = 16,
        mac_algorithm: str = "HMAC",
    ) -> ShieldConfig:
        engine_sets = [
            EngineSetConfig(
                name=name,
                num_aes_engines=1,
                sbox_parallelism=sbox_parallelism,
                aes_key_bits=aes_key_bits,
                mac_algorithm=mac_algorithm,
                buffer_bytes=16 * 1024,
            )
            for name in ("in0", "in1", "out0")
        ]
        regions = [
            RegionConfig(
                name=name,
                base_address=base,
                size_bytes=size,
                chunk_size=_CHUNK_SIZE,
                engine_set=engine_set,
                streaming_write_only=write_only,
                access_pattern="streaming",
            )
            for name, base, size, engine_set, write_only in self._region_layout()
        ]
        return ShieldConfig(shield_id="matmul", engine_sets=engine_sets, regions=regions)

    def profile(self, dimension: int | None = None) -> WorkloadProfile:
        dimension = dimension or self.dimension
        matrix_bytes = dimension * dimension * _ELEMENT_BYTES
        regions = (
            RegionTraffic("a", bytes_read=matrix_bytes, access_size=_CHUNK_SIZE),
            RegionTraffic("b", bytes_read=matrix_bytes, access_size=_CHUNK_SIZE),
            RegionTraffic("c", bytes_written=matrix_bytes, access_size=_CHUNK_SIZE),
        )
        compute_cycles = dimension ** 3 / self.MACS_PER_CYCLE
        return WorkloadProfile(
            name="matmul",
            regions=regions,
            compute_cycles=compute_cycles,
            init_cycles=self.INIT_CYCLES,
            baseline_bytes_per_cycle=self.BASELINE_BYTES_PER_CYCLE,
        )

    def prepare_inputs(self, seed: int = 0) -> dict:
        rng = np.random.default_rng(seed)
        n = self.dimension
        inputs = {}
        for name in ("a", "b"):
            matrix = rng.integers(-128, 128, size=(n, n), dtype=np.int32)
            raw = matrix.tobytes()
            inputs[name] = raw + b"\x00" * (self.matrix_bytes - len(raw))
        return inputs

    def run(self, memory: MemoryInterface, **params) -> AcceleratorResult:
        n = self.dimension
        raw_a = memory.read(self.region_base("a"), self.matrix_bytes)
        raw_b = memory.read(self.region_base("b"), self.matrix_bytes)
        a = np.frombuffer(raw_a[: n * n * _ELEMENT_BYTES], dtype=np.int32).reshape(n, n)
        b = np.frombuffer(raw_b[: n * n * _ELEMENT_BYTES], dtype=np.int32).reshape(n, n)
        c = (a @ b).astype(np.int32)
        out = c.tobytes()
        out = out + b"\x00" * (self.matrix_bytes - len(out))
        memory.write(self.region_base("c"), out)
        return AcceleratorResult(
            name=self.name,
            outputs={"c": c},
            bytes_read=2 * self.matrix_bytes,
            bytes_written=self.matrix_bytes,
        )
