"""Evaluation workloads: the accelerators the paper wraps with the Shield.

Six Figure 6 / Table 2 accelerators (convolution, digit recognition, affine
transformation, DNNWeaver, Bitcoin, SDP storage node) plus the two
microbenchmarks (vector add for Figure 5 and matrix multiply).  Each exposes
its paper Shield configuration, an analytical traffic profile for the timing
model, and a functional run used to check bit-exact results behind the Shield.
"""

from repro.accelerators.affine import AffineTransformAccelerator
from repro.accelerators.base import (
    Accelerator,
    AcceleratorResult,
    DirectMemoryAdapter,
    MemoryInterface,
    ShieldMemoryAdapter,
)
from repro.accelerators.bitcoin import BitcoinAccelerator, double_sha256, leading_zero_bits
from repro.accelerators.convolution import ConvolutionAccelerator
from repro.accelerators.digit_recognition import DigitRecognitionAccelerator
from repro.accelerators.dnnweaver import DnnWeaverAccelerator
from repro.accelerators.matmul import MatMulAccelerator
from repro.accelerators.sdp import SdpStorageNodeAccelerator
from repro.accelerators.vector_add import VectorAddAccelerator

ALL_ACCELERATORS = {
    "vector_add": VectorAddAccelerator,
    "matmul": MatMulAccelerator,
    "convolution": ConvolutionAccelerator,
    "digit_recognition": DigitRecognitionAccelerator,
    "affine": AffineTransformAccelerator,
    "dnnweaver": DnnWeaverAccelerator,
    "bitcoin": BitcoinAccelerator,
    "sdp": SdpStorageNodeAccelerator,
}

__all__ = [
    "Accelerator",
    "AcceleratorResult",
    "DirectMemoryAdapter",
    "MemoryInterface",
    "ShieldMemoryAdapter",
    "AffineTransformAccelerator",
    "BitcoinAccelerator",
    "double_sha256",
    "leading_zero_bits",
    "ConvolutionAccelerator",
    "DigitRecognitionAccelerator",
    "DnnWeaverAccelerator",
    "MatMulAccelerator",
    "SdpStorageNodeAccelerator",
    "VectorAddAccelerator",
    "ALL_ACCELERATORS",
]
