"""Vector-vector addition microbenchmark (Figure 5 of the paper).

The workload streams in two int32 vectors, adds them element-wise, and streams
the sum back out.  There is almost no compute per byte, so it is strictly
bound by off-chip memory bandwidth -- which is exactly why the paper uses it
to expose the Shield's encryption-throughput limits: the input and output
vectors are partitioned across four engine sets each (one AES + one HMAC
engine per set, 512-byte chunks), and Figure 5 sweeps the vector size from
8 KB to 80 MB for AES/4x and AES/16x S-box parallelism.
"""

from __future__ import annotations

import numpy as np

from repro.accelerators.base import Accelerator, AcceleratorResult, MemoryInterface
from repro.core.config import EngineSetConfig, RegionConfig, ShieldConfig
from repro.core.timing import RegionTraffic, WorkloadProfile

_NUM_PARTITIONS = 4
_CHUNK_SIZE = 512
_ELEMENT_BYTES = 4


class VectorAddAccelerator(Accelerator):
    """Streaming vector addition partitioned across four engine sets per direction."""

    access_characteristics = "STR"

    #: Calibration constants for the analytical model (see DESIGN.md section 5).
    BASELINE_BYTES_PER_CYCLE = 64.0
    COMPUTE_CYCLES_PER_ELEMENT = 0.05
    INIT_CYCLES = 25_000.0

    def __init__(self, vector_bytes: int = 8 * 1024):
        super().__init__("vector_add")
        self._require(vector_bytes % (_NUM_PARTITIONS * _CHUNK_SIZE) == 0,
                      "vector size must be a multiple of 4 partitions x 512-byte chunks")
        self.vector_bytes = vector_bytes

    # -- address map ----------------------------------------------------------------

    @property
    def partition_bytes(self) -> int:
        return self.vector_bytes // _NUM_PARTITIONS

    def _region_layout(self) -> list:
        """(name, base, size, engine_set, write_only) for every region."""
        layout = []
        cursor = 0
        for vector in ("a", "b"):
            for part in range(_NUM_PARTITIONS):
                layout.append(
                    (f"{vector}{part}", cursor, self.partition_bytes, f"in{part}", False)
                )
                cursor += self.partition_bytes
        for part in range(_NUM_PARTITIONS):
            layout.append((f"c{part}", cursor, self.partition_bytes, f"out{part}", True))
            cursor += self.partition_bytes
        return layout

    def region_base(self, name: str) -> int:
        for region_name, base, _, _, _ in self._region_layout():
            if region_name == name:
                return base
        raise KeyError(name)

    # -- Shield configuration --------------------------------------------------------

    def build_shield_config(
        self,
        aes_key_bits: int = 128,
        sbox_parallelism: int = 16,
        mac_algorithm: str = "HMAC",
    ) -> ShieldConfig:
        engine_sets = []
        for part in range(_NUM_PARTITIONS):
            for prefix in ("in", "out"):
                engine_sets.append(
                    EngineSetConfig(
                        name=f"{prefix}{part}",
                        num_aes_engines=1,
                        sbox_parallelism=sbox_parallelism,
                        aes_key_bits=aes_key_bits,
                        mac_algorithm=mac_algorithm,
                        num_mac_engines=1,
                        buffer_bytes=0,
                    )
                )
        regions = [
            RegionConfig(
                name=name,
                base_address=base,
                size_bytes=size,
                chunk_size=_CHUNK_SIZE,
                engine_set=engine_set,
                streaming_write_only=write_only,
                access_pattern="streaming",
            )
            for name, base, size, engine_set, write_only in self._region_layout()
        ]
        return ShieldConfig(shield_id="vector-add", engine_sets=engine_sets, regions=regions)

    # -- analytical profile ---------------------------------------------------------------

    def profile(self, vector_bytes: int | None = None) -> WorkloadProfile:
        vector_bytes = vector_bytes or self.vector_bytes
        partition = vector_bytes // _NUM_PARTITIONS
        regions = []
        for vector in ("a", "b"):
            for part in range(_NUM_PARTITIONS):
                regions.append(
                    RegionTraffic(
                        region_name=f"{vector}{part}",
                        bytes_read=partition,
                        access_size=_CHUNK_SIZE,
                        access_pattern="streaming",
                    )
                )
        for part in range(_NUM_PARTITIONS):
            regions.append(
                RegionTraffic(
                    region_name=f"c{part}",
                    bytes_written=partition,
                    access_size=_CHUNK_SIZE,
                    access_pattern="streaming",
                )
            )
        elements = vector_bytes // _ELEMENT_BYTES
        return WorkloadProfile(
            name="vector_add",
            regions=tuple(regions),
            compute_cycles=elements * self.COMPUTE_CYCLES_PER_ELEMENT,
            init_cycles=self.INIT_CYCLES,
            baseline_bytes_per_cycle=self.BASELINE_BYTES_PER_CYCLE,
        )

    # -- functional execution -----------------------------------------------------------------

    def prepare_inputs(self, seed: int = 0) -> dict:
        """Synthesize the two input vectors, keyed by region name."""
        rng = np.random.default_rng(seed)
        elements = self.partition_bytes // _ELEMENT_BYTES
        inputs = {}
        for vector in ("a", "b"):
            for part in range(_NUM_PARTITIONS):
                data = rng.integers(-(2 ** 20), 2 ** 20, size=elements, dtype=np.int32)
                inputs[f"{vector}{part}"] = data.tobytes()
        return inputs

    def run(self, memory: MemoryInterface, **params) -> AcceleratorResult:
        """Stream both vectors through ``memory``, add, and stream out the sum."""
        outputs = {}
        bytes_read = 0
        bytes_written = 0
        for part in range(_NUM_PARTITIONS):
            a_bytes = memory.read(self.region_base(f"a{part}"), self.partition_bytes)
            b_bytes = memory.read(self.region_base(f"b{part}"), self.partition_bytes)
            bytes_read += 2 * self.partition_bytes
            a = np.frombuffer(a_bytes, dtype=np.int32)
            b = np.frombuffer(b_bytes, dtype=np.int32)
            c = (a + b).astype(np.int32)
            memory.write(self.region_base(f"c{part}"), c.tobytes())
            bytes_written += self.partition_bytes
            outputs[f"c{part}"] = c
        return AcceleratorResult(
            name=self.name,
            outputs=outputs,
            bytes_read=bytes_read,
            bytes_written=bytes_written,
        )
