"""Convolutional-layer accelerator (the Xilinx reference design of Figure 6).

The paper evaluates a single convolutional layer with a 27x27x96 input, 5x5
filters, and a 27x27x256 output, streamed in batches.  The Shield
configuration from Section 6.2.4: eight engine sets for the input feature maps
and weights, four engine sets for the output feature maps, one AES and one
HMAC engine per set, a total of 128 KB of read buffer and 64 KB of write
buffer, and a 512-byte C_mem to maximize AXI burst length.  Because the
accelerator performs substantial multiply-accumulate work per byte streamed,
the measured overheads are small (1.20x-1.35x).
"""

from __future__ import annotations

import numpy as np

from repro.accelerators.base import Accelerator, AcceleratorResult, MemoryInterface
from repro.core.config import EngineSetConfig, RegionConfig, ShieldConfig
from repro.core.timing import RegionTraffic, WorkloadProfile

_CHUNK_SIZE = 512
_ELEMENT_BYTES = 4

# Paper-scale layer dimensions (used by the analytical profile).
PAPER_INPUT = (27, 27, 96)
PAPER_FILTER = 5
PAPER_OUTPUT_CHANNELS = 256
PAPER_BATCH = 16

_NUM_INPUT_SETS = 8
_NUM_OUTPUT_SETS = 4


def _round_up(value: int, granularity: int) -> int:
    return -(-value // granularity) * granularity


class ConvolutionAccelerator(Accelerator):
    """A single 2-D convolution layer with batched streaming I/O."""

    access_characteristics = "STR"

    BASELINE_BYTES_PER_CYCLE = 40.0
    #: Effective MACs retired per cycle by the fully unrolled/batched systolic
    #: datapath (calibrated so compute roughly balances streaming time, which
    #: is what gives the paper its small 1.2-1.35x overheads).
    MACS_PER_CYCLE = 14_400.0
    INIT_CYCLES = 30_000.0

    def __init__(
        self,
        input_size: int = 8,
        input_channels: int = 4,
        filter_size: int = 3,
        output_channels: int = 8,
        batch: int = 2,
    ):
        super().__init__("convolution")
        self._require(filter_size % 2 == 1, "filter size must be odd")
        self.input_size = input_size
        self.input_channels = input_channels
        self.filter_size = filter_size
        self.output_channels = output_channels
        self.batch = batch

    # -- geometry -----------------------------------------------------------------

    @property
    def output_size(self) -> int:
        return self.input_size  # "same" padding, as in the reference design

    @property
    def input_bytes(self) -> int:
        raw = self.batch * self.input_size ** 2 * self.input_channels * _ELEMENT_BYTES
        return _round_up(raw, _CHUNK_SIZE)

    @property
    def weight_bytes(self) -> int:
        raw = (
            self.output_channels
            * self.input_channels
            * self.filter_size ** 2
            * _ELEMENT_BYTES
        )
        return _round_up(raw, _CHUNK_SIZE)

    @property
    def output_bytes(self) -> int:
        raw = self.batch * self.output_size ** 2 * self.output_channels * _ELEMENT_BYTES
        return _round_up(raw, _CHUNK_SIZE)

    def _region_layout(self) -> list:
        return [
            ("inputs", 0, self.input_bytes, "in0", False),
            ("weights", self.input_bytes, self.weight_bytes, "in1", False),
            ("outputs", self.input_bytes + self.weight_bytes, self.output_bytes, "out0", True),
        ]

    def region_base(self, name: str) -> int:
        for region_name, base, _, _, _ in self._region_layout():
            if region_name == name:
                return base
        raise KeyError(name)

    # -- Shield configuration -----------------------------------------------------------

    def build_shield_config(
        self,
        aes_key_bits: int = 128,
        sbox_parallelism: int = 16,
        mac_algorithm: str = "HMAC",
    ) -> ShieldConfig:
        """Functional config: one input, one weight, and one output engine set.

        The functional model keeps three engine sets (inputs, weights,
        outputs); the paper-scale parallelism (8 input + 4 output sets) is
        what :meth:`paper_shield_config` and the Figure 6 benchmark use.
        """
        engine_sets = [
            EngineSetConfig(
                name="in0", sbox_parallelism=sbox_parallelism, aes_key_bits=aes_key_bits,
                mac_algorithm=mac_algorithm, buffer_bytes=16 * 1024,
            ),
            EngineSetConfig(
                name="in1", sbox_parallelism=sbox_parallelism, aes_key_bits=aes_key_bits,
                mac_algorithm=mac_algorithm, buffer_bytes=16 * 1024,
            ),
            EngineSetConfig(
                name="out0", sbox_parallelism=sbox_parallelism, aes_key_bits=aes_key_bits,
                mac_algorithm=mac_algorithm, buffer_bytes=16 * 1024,
            ),
        ]
        regions = [
            RegionConfig(
                name=name, base_address=base, size_bytes=size, chunk_size=_CHUNK_SIZE,
                engine_set=engine_set, streaming_write_only=write_only,
                access_pattern="streaming",
            )
            for name, base, size, engine_set, write_only in self._region_layout()
        ]
        return ShieldConfig(shield_id="convolution", engine_sets=engine_sets, regions=regions)

    def paper_shield_config(
        self,
        aes_key_bits: int = 128,
        sbox_parallelism: int = 16,
        mac_algorithm: str = "HMAC",
    ) -> ShieldConfig:
        """The Section 6.2.4 configuration: 8 input + 4 output engine sets."""
        input_bytes = _round_up(
            PAPER_BATCH * PAPER_INPUT[0] * PAPER_INPUT[1] * PAPER_INPUT[2] * _ELEMENT_BYTES,
            _CHUNK_SIZE * _NUM_INPUT_SETS,
        )
        weight_bytes = _round_up(
            PAPER_OUTPUT_CHANNELS * PAPER_INPUT[2] * PAPER_FILTER ** 2 * _ELEMENT_BYTES,
            _CHUNK_SIZE * _NUM_INPUT_SETS,
        )
        output_bytes = _round_up(
            PAPER_BATCH * PAPER_INPUT[0] * PAPER_INPUT[1] * PAPER_OUTPUT_CHANNELS * _ELEMENT_BYTES,
            _CHUNK_SIZE * _NUM_OUTPUT_SETS,
        )
        engine_sets = []
        regions = []
        cursor = 0
        read_buffer_each = 128 * 1024 // _NUM_INPUT_SETS
        write_buffer_each = 64 * 1024 // _NUM_OUTPUT_SETS
        stream_bytes = (input_bytes + weight_bytes) // _NUM_INPUT_SETS
        for index in range(_NUM_INPUT_SETS):
            engine_sets.append(
                EngineSetConfig(
                    name=f"in{index}", sbox_parallelism=sbox_parallelism,
                    aes_key_bits=aes_key_bits, mac_algorithm=mac_algorithm,
                    buffer_bytes=read_buffer_each,
                )
            )
            regions.append(
                RegionConfig(
                    name=f"stream_in{index}", base_address=cursor, size_bytes=stream_bytes,
                    chunk_size=_CHUNK_SIZE, engine_set=f"in{index}",
                    access_pattern="streaming",
                )
            )
            cursor += stream_bytes
        out_bytes_each = output_bytes // _NUM_OUTPUT_SETS
        for index in range(_NUM_OUTPUT_SETS):
            engine_sets.append(
                EngineSetConfig(
                    name=f"out{index}", sbox_parallelism=sbox_parallelism,
                    aes_key_bits=aes_key_bits, mac_algorithm=mac_algorithm,
                    buffer_bytes=write_buffer_each,
                )
            )
            regions.append(
                RegionConfig(
                    name=f"stream_out{index}", base_address=cursor, size_bytes=out_bytes_each,
                    chunk_size=_CHUNK_SIZE, engine_set=f"out{index}",
                    streaming_write_only=True, access_pattern="streaming",
                )
            )
            cursor += out_bytes_each
        return ShieldConfig(shield_id="convolution", engine_sets=engine_sets, regions=regions)

    # -- analytical profile ----------------------------------------------------------------

    def profile(self, paper_scale: bool = True) -> WorkloadProfile:
        if paper_scale:
            input_bytes = PAPER_BATCH * PAPER_INPUT[0] * PAPER_INPUT[1] * PAPER_INPUT[2] * _ELEMENT_BYTES
            weight_bytes = PAPER_OUTPUT_CHANNELS * PAPER_INPUT[2] * PAPER_FILTER ** 2 * _ELEMENT_BYTES
            output_bytes = PAPER_BATCH * PAPER_INPUT[0] * PAPER_INPUT[1] * PAPER_OUTPUT_CHANNELS * _ELEMENT_BYTES
            macs = (
                PAPER_BATCH
                * PAPER_INPUT[0] * PAPER_INPUT[1]
                * PAPER_OUTPUT_CHANNELS
                * PAPER_INPUT[2]
                * PAPER_FILTER ** 2
            )
            stream_in = input_bytes + weight_bytes
            regions = tuple(
                RegionTraffic(
                    region_name=f"stream_in{i}", bytes_read=stream_in // _NUM_INPUT_SETS,
                    access_size=_CHUNK_SIZE,
                )
                for i in range(_NUM_INPUT_SETS)
            ) + tuple(
                RegionTraffic(
                    region_name=f"stream_out{i}", bytes_written=output_bytes // _NUM_OUTPUT_SETS,
                    access_size=_CHUNK_SIZE,
                )
                for i in range(_NUM_OUTPUT_SETS)
            )
        else:
            regions = (
                RegionTraffic("inputs", bytes_read=self.input_bytes, access_size=_CHUNK_SIZE),
                RegionTraffic("weights", bytes_read=self.weight_bytes, access_size=_CHUNK_SIZE),
                RegionTraffic("outputs", bytes_written=self.output_bytes, access_size=_CHUNK_SIZE),
            )
            macs = (
                self.batch * self.output_size ** 2 * self.output_channels
                * self.input_channels * self.filter_size ** 2
            )
        return WorkloadProfile(
            name="convolution",
            regions=regions,
            compute_cycles=macs / self.MACS_PER_CYCLE,
            init_cycles=self.INIT_CYCLES,
            baseline_bytes_per_cycle=self.BASELINE_BYTES_PER_CYCLE,
        )

    # -- functional execution -------------------------------------------------------------------

    def prepare_inputs(self, seed: int = 0) -> dict:
        rng = np.random.default_rng(seed)
        inputs = rng.integers(
            -64, 64,
            size=(self.batch, self.input_size, self.input_size, self.input_channels),
            dtype=np.int32,
        )
        weights = rng.integers(
            -8, 8,
            size=(self.output_channels, self.filter_size, self.filter_size, self.input_channels),
            dtype=np.int32,
        )
        input_raw = inputs.tobytes()
        weight_raw = weights.tobytes()
        return {
            "inputs": input_raw + b"\x00" * (self.input_bytes - len(input_raw)),
            "weights": weight_raw + b"\x00" * (self.weight_bytes - len(weight_raw)),
        }

    def run(self, memory: MemoryInterface, **params) -> AcceleratorResult:
        raw_inputs = memory.read(self.region_base("inputs"), self.input_bytes)
        raw_weights = memory.read(self.region_base("weights"), self.weight_bytes)
        in_count = self.batch * self.input_size ** 2 * self.input_channels
        w_count = self.output_channels * self.filter_size ** 2 * self.input_channels
        inputs = np.frombuffer(raw_inputs[: in_count * _ELEMENT_BYTES], dtype=np.int32).reshape(
            self.batch, self.input_size, self.input_size, self.input_channels
        )
        weights = np.frombuffer(raw_weights[: w_count * _ELEMENT_BYTES], dtype=np.int32).reshape(
            self.output_channels, self.filter_size, self.filter_size, self.input_channels
        )
        pad = self.filter_size // 2
        padded = np.pad(inputs, ((0, 0), (pad, pad), (pad, pad), (0, 0)))
        output = np.zeros(
            (self.batch, self.output_size, self.output_size, self.output_channels),
            dtype=np.int64,
        )
        for dy in range(self.filter_size):
            for dx in range(self.filter_size):
                window = padded[:, dy : dy + self.input_size, dx : dx + self.input_size, :]
                # window: (B, H, W, Cin); weights slice: (Cout, Cin)
                output += np.einsum(
                    "bhwc,oc->bhwo", window.astype(np.int64), weights[:, dy, dx, :].astype(np.int64)
                )
        output32 = output.astype(np.int32)
        raw_out = output32.tobytes()
        raw_out = raw_out + b"\x00" * (self.output_bytes - len(raw_out))
        memory.write(self.region_base("outputs"), raw_out)
        return AcceleratorResult(
            name=self.name,
            outputs={"feature_map": output32},
            bytes_read=self.input_bytes + self.weight_bytes,
            bytes_written=self.output_bytes,
        )
