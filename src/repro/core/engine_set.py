"""The per-region authenticated-encryption pipeline (an engine set at work).

A :class:`RegionPipeline` is the runtime datapath that an engine set provides
for one protected memory region: on reads it fetches ciphertext chunks and
their tags from DRAM through the untrusted Shell, verifies and decrypts them,
and serves the accelerator from an optional on-chip plaintext buffer; on
writes it updates the buffer (or performs read-modify-write without one) and
re-seals dirty chunks back to DRAM, bumping the on-chip integrity counter for
replay-protected regions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.analysis.annotations import hot_path
from repro.core.buffer import PlaintextBuffer
from repro.core.config import EngineSetConfig, RegionConfig, ShieldConfig, MAC_TAG_BYTES
from repro.core.counters import IntegrityCounterStore
from repro.core.sealing import RegionSealer
from repro.errors import ShieldError
from repro.hw.axi import AxiPort
from repro.hw.memory import OnChipMemory


@dataclass
class PipelineStats:
    """Per-region traffic statistics (DRAM side and accelerator side)."""

    accel_bytes_read: int = 0
    accel_bytes_written: int = 0
    dram_bytes_read: int = 0
    dram_bytes_written: int = 0
    chunks_fetched: int = 0
    chunks_written_back: int = 0
    tag_bytes: int = 0
    integrity_failures: int = 0


class RegionPipeline:
    """Authenticated-encryption datapath for one region behind one engine set."""

    def __init__(
        self,
        shield_config: ShieldConfig,
        region: RegionConfig,
        engine_config: EngineSetConfig,
        data_encryption_key: bytes,
        memory_port: AxiPort,
        on_chip_memory: OnChipMemory,
        buffer_bytes: Optional[int] = None,
    ):
        self.shield_config = shield_config
        self.region = region
        self.engine_config = engine_config
        self._port = memory_port
        self._sealer = RegionSealer(data_encryption_key, region, engine_config)
        self.stats = PipelineStats()
        #: Chunk indices this pipeline has sealed to DRAM at least once.  For
        #: ``streaming_write_only`` regions this decides whether a partial
        #: write may zero-fill the rest of the chunk (nothing stored yet) or
        #: must read the sealed chunk back (a previous burst already landed).
        self._sealed_chunk_indices: set = set()

        buffer_budget = engine_config.buffer_bytes if buffer_bytes is None else buffer_bytes
        if buffer_budget:
            on_chip_memory.allocate(
                f"{shield_config.shield_id}:{region.name}:buffer", buffer_budget
            )
        self.buffer = PlaintextBuffer(buffer_budget, region.chunk_size)

        self.counters: Optional[IntegrityCounterStore] = None
        if region.replay_protected:
            allocation = on_chip_memory.allocate(
                f"{shield_config.shield_id}:{region.name}:counters",
                4 * region.num_chunks,
            )
            self.counters = IntegrityCounterStore(allocation, region.num_chunks)

    # -- chunk-level DRAM operations ---------------------------------------------

    def _chunk_address(self, chunk_index: int) -> int:
        return self.region.base_address + chunk_index * self.region.chunk_size

    def _current_version(self, chunk_index: int) -> int:
        return self.counters.read(chunk_index) if self.counters is not None else 0

    def _fetch_chunk(self, chunk_index: int) -> bytes:
        """Read, verify, and decrypt one chunk from DRAM."""
        return self._fetch_chunks([chunk_index])[0]

    @hot_path
    def _fetch_chunks(self, chunk_indices: list) -> list:
        """Read, verify, and decrypt a batch of chunks from DRAM.

        All ciphertext spans go out as one coalesced
        :meth:`~repro.hw.axi.AxiPort.read_many` request (adjacent chunks merge
        into long bursts), tags as a second one, and the whole batch is
        verified and decrypted in a single
        :meth:`~repro.core.sealing.RegionSealer.unseal_chunks` pass.  Traffic
        statistics are identical to fetching the chunks one at a time.
        """
        if not chunk_indices:
            return []
        chunk_size = self.region.chunk_size
        ciphertexts = self._port.read_many(
            [(self._chunk_address(index), chunk_size) for index in chunk_indices],
            region_hint=self.region.name,
        )
        tags = self._port.read_many(
            [
                (self.shield_config.tag_address(self.region, index), MAC_TAG_BYTES)
                for index in chunk_indices
            ],
            region_hint="tags",
        )
        count = len(chunk_indices)
        self.stats.dram_bytes_read += count * (chunk_size + MAC_TAG_BYTES)
        self.stats.tag_bytes += count * MAC_TAG_BYTES
        self.stats.chunks_fetched += count
        versions = [self._current_version(index) for index in chunk_indices]
        try:
            return self._sealer.unseal_chunks(chunk_indices, ciphertexts, tags, versions)
        except Exception:
            self.stats.integrity_failures += 1
            raise

    def _store_chunk(self, chunk_index: int, plaintext: bytes) -> None:
        """Seal and write one chunk (and its tag) back to DRAM."""
        if self.counters is not None:
            version = self.counters.increment(chunk_index)
        else:
            version = 0
        self._write_sealed(self._sealer.seal_chunk(chunk_index, plaintext, version))

    def _write_sealed(self, sealed) -> None:
        """Write one sealed chunk (ciphertext + tag) to DRAM and account it."""
        self._port.write(
            self._chunk_address(sealed.chunk_index),
            sealed.ciphertext,
            region_hint=self.region.name,
        )
        self._port.write(
            self.shield_config.tag_address(self.region, sealed.chunk_index),
            sealed.tag,
            region_hint="tags",
        )
        self.stats.dram_bytes_written += len(sealed.ciphertext) + MAC_TAG_BYTES
        self.stats.tag_bytes += MAC_TAG_BYTES
        self.stats.chunks_written_back += 1
        self._sealed_chunk_indices.add(sealed.chunk_index)

    # -- buffer-mediated access -----------------------------------------------------

    def _chunk_plaintext_for_read(self, chunk_index: int):
        """Chunk plaintext for a read, as read-only bytes-like data.

        Buffered hits hand back the buffer line's storage directly and misses
        return the unseal output (a memoryview on the fast path); callers copy
        the span they need, so no per-chunk ``bytes`` materialization happens.
        """
        if self.buffer.enabled:
            line = self.buffer.lookup(chunk_index)
            if line is not None:
                return line.data
            plaintext = self._fetch_chunk(chunk_index)
            evicted = self.buffer.insert(chunk_index, plaintext, dirty=False)
            if evicted is not None:
                self._store_chunk(evicted.chunk_index, bytes(evicted.data))
            return plaintext
        return self._fetch_chunk(chunk_index)

    def _zero_fill_ok(self, chunk_index: int) -> bool:
        """Whether a partial write to a streaming chunk may start from zeros.

        Only until the chunk's first seal: a ``streaming_write_only`` region
        has no Data-Owner-staged contents to preserve, but once this pipeline
        has sealed the chunk, earlier bursts live in DRAM and zero-filling
        would silently destroy them -- the chunk must be read back instead.
        """
        return (
            self.region.streaming_write_only
            and chunk_index not in self._sealed_chunk_indices
        )

    def _write_span(self, chunk_index: int, offset: int, data: bytes) -> None:
        chunk_size = self.region.chunk_size
        full_chunk_write = offset == 0 and len(data) == chunk_size
        if self.buffer.enabled:
            line = self.buffer.lookup(chunk_index)
            if line is None:
                if full_chunk_write or self._zero_fill_ok(chunk_index):
                    base = bytearray(chunk_size)
                else:
                    base = bytearray(self._fetch_chunk(chunk_index))
                evicted = self.buffer.insert(chunk_index, bytes(base), dirty=False)
                if evicted is not None:
                    self._store_chunk(evicted.chunk_index, bytes(evicted.data))
                line = self.buffer.peek(chunk_index)
            line.data[offset : offset + len(data)] = data
            line.dirty = True
            return
        # No buffer: read-modify-write unless the write covers the whole chunk.
        if full_chunk_write:
            self._store_chunk(chunk_index, data)
            return
        if self._zero_fill_ok(chunk_index):
            base = bytearray(chunk_size)
        else:
            base = bytearray(self._fetch_chunk(chunk_index))
        base[offset : offset + len(data)] = data
        self._store_chunk(chunk_index, bytes(base))

    # -- accelerator-facing API --------------------------------------------------------

    def read(self, address: int, length: int) -> bytes:
        """Read plaintext on behalf of the accelerator.

        Without an on-chip buffer every chunk the span touches is fetched in
        one batched :meth:`_fetch_chunks` call (coalesced DRAM bursts, one
        vectorized unseal pass) and the result is assembled into a single
        preallocated output buffer.  With a buffer the chunk-at-a-time lookup
        order is preserved so hit/miss and eviction behavior stay identical.
        """
        self._check_bounds(address, length)
        self.stats.accel_bytes_read += length
        if length == 0:
            return b""
        plaintexts = None
        if not self.buffer.enabled:
            first = self.region.chunk_index(address)
            last = self.region.chunk_index(address + length - 1)
            chunk_indices = list(range(first, last + 1))
            plaintexts = dict(zip(chunk_indices, self._fetch_chunks(chunk_indices)))
        out = bytearray(length)
        out_offset = 0
        cursor = address
        remaining = length
        while remaining > 0:
            chunk_index = self.region.chunk_index(cursor)
            chunk_base = self._chunk_address(chunk_index)
            offset = cursor - chunk_base
            take = min(remaining, self.region.chunk_size - offset)
            if plaintexts is not None:
                plaintext = plaintexts[chunk_index]
            else:
                plaintext = self._chunk_plaintext_for_read(chunk_index)
            out[out_offset : out_offset + take] = plaintext[offset : offset + take]
            cursor += take
            out_offset += take
            remaining -= take
        return bytes(out)

    def write(self, address: int, data: bytes) -> None:
        """Write plaintext on behalf of the accelerator."""
        self._check_bounds(address, len(data))
        self.stats.accel_bytes_written += len(data)
        cursor = address
        offset_in_data = 0
        remaining = len(data)
        while remaining > 0:
            chunk_index = self.region.chunk_index(cursor)
            chunk_base = self._chunk_address(chunk_index)
            offset = cursor - chunk_base
            take = min(remaining, self.region.chunk_size - offset)
            self._write_span(chunk_index, offset, data[offset_in_data : offset_in_data + take])
            cursor += take
            offset_in_data += take
            remaining -= take

    def flush(self) -> None:
        """Write every dirty buffered chunk back to DRAM in one sealed batch.

        All dirty lines are sealed through one
        :meth:`~repro.core.sealing.RegionSealer.seal_chunks` call (counter
        increments happen first, exactly as the chunk-at-a-time path would),
        so a fast-crypto engine set encrypts the whole write-back set in a
        single vectorized pass before the per-chunk DRAM writes go out.
        """
        lines = list(self.buffer.dirty_lines())
        if not lines:
            return
        indices = [line.chunk_index for line in lines]
        versions = [
            self.counters.increment(index) if self.counters is not None else 0
            for index in indices
        ]
        sealed_chunks = self._sealer.seal_chunks(
            indices, [line.data for line in lines], versions
        )
        for line, sealed in zip(lines, sealed_chunks):
            self._write_sealed(sealed)
            line.dirty = False

    def _check_bounds(self, address: int, length: int) -> None:
        if not self.region.contains(address, max(length, 1)):
            raise ShieldError(
                f"access [{address:#x}, {address + length:#x}) outside region "
                f"{self.region.name!r}"
            )
