"""The engine set's on-chip plaintext buffer (a cache with C_mem-sized lines).

Section 5.2.2: each engine set optionally includes a Block-RAM/UltraRAM buffer
holding decrypted, authenticated plaintext chunks.  Hits are served entirely
on-chip; misses fetch and verify the whole chunk; dirty evictions re-seal the
chunk and write it (plus its tag) back to DRAM.  The buffer is allocated out
of the board's :class:`~repro.hw.memory.OnChipMemory` budget so configurations
that do not fit raise :class:`~repro.errors.CapacityError` just like an
over-provisioned RTL design would fail placement.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.errors import ShieldError


@dataclass
class BufferStats:
    """Hit/miss/eviction counters for one buffer."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    writebacks: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0


@dataclass
class BufferLine:
    """One cached chunk of plaintext."""

    chunk_index: int
    data: bytearray
    dirty: bool = False
    version: int = 0


class PlaintextBuffer:
    """An LRU cache of decrypted chunks for one (engine set, region) pair."""

    def __init__(self, capacity_bytes: int, chunk_size: int):
        if chunk_size <= 0:
            raise ShieldError("buffer chunk size must be positive")
        self.chunk_size = chunk_size
        self.capacity_lines = capacity_bytes // chunk_size if capacity_bytes else 0
        self._lines: OrderedDict[int, BufferLine] = OrderedDict()
        self.stats = BufferStats()

    @property
    def enabled(self) -> bool:
        return self.capacity_lines > 0

    def lookup(self, chunk_index: int) -> BufferLine | None:
        """Return the cached line for a chunk (refreshing LRU order) or None."""
        line = self._lines.get(chunk_index)
        if line is None:
            self.stats.misses += 1
            return None
        self._lines.move_to_end(chunk_index)
        self.stats.hits += 1
        return line

    def peek(self, chunk_index: int) -> BufferLine | None:
        """Return a line without updating statistics or LRU order."""
        return self._lines.get(chunk_index)

    def insert(
        self, chunk_index: int, data: bytes, dirty: bool = False, version: int = 0
    ) -> BufferLine | None:
        """Insert (or replace) a line; returns an evicted dirty line, if any.

        The caller is responsible for writing the evicted line back to DRAM.
        """
        if not self.enabled:
            raise ShieldError("this engine set has no on-chip buffer configured")
        if len(data) != self.chunk_size:
            raise ShieldError("buffer lines must be exactly one chunk in size")
        evicted: BufferLine | None = None
        if chunk_index not in self._lines and len(self._lines) >= self.capacity_lines:
            _, candidate = self._lines.popitem(last=False)
            self.stats.evictions += 1
            if candidate.dirty:
                self.stats.writebacks += 1
                evicted = candidate
        self._lines[chunk_index] = BufferLine(
            chunk_index=chunk_index, data=bytearray(data), dirty=dirty, version=version
        )
        self._lines.move_to_end(chunk_index)
        return evicted

    def mark_dirty(self, chunk_index: int) -> None:
        line = self._lines.get(chunk_index)
        if line is None:
            raise ShieldError(f"chunk {chunk_index} is not resident in the buffer")
        line.dirty = True

    def dirty_lines(self) -> list:
        """All dirty lines, oldest first (used by flush)."""
        return [line for line in self._lines.values() if line.dirty]

    def invalidate(self) -> None:
        """Drop every line (dirty contents are discarded; callers must flush first)."""
        self._lines.clear()

    def resident_chunks(self) -> list:
        return list(self._lines.keys())

    def __len__(self) -> int:
        return len(self._lines)
