"""The ShEF Shield: the trusted wrapper between accelerator and Shell.

The Shield (Figure 4 of the paper) interposes on both Shell interfaces:

* the AXI4 memory interface -- every accelerator burst is routed by the burst
  decoder to a per-region :class:`~repro.core.engine_set.RegionPipeline` that
  performs authenticated encryption with the engine set configured for that
  region, and
* the AXI4-Lite register interface -- host commands arrive sealed and are
  verified/decrypted by the :class:`~repro.core.register_interface.ShieldedRegisterFile`.

The Shield is instantiated from a :class:`~repro.core.config.ShieldConfig`
(compiled into the bitstream by the IP Vendor) and the private Shield
Encryption Key embedded alongside it.  It becomes operational only after the
Data Owner's Load Key has been provisioned.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

import repro.obs as obs_api
from repro.core.burst_decoder import BurstDecoder
from repro.core.config import ShieldConfig
from repro.core.engine_set import RegionPipeline
from repro.core.key_store import ShieldKeyStore
from repro.core.register_interface import ShieldedRegisterFile
from repro.crypto.rsa import RsaPrivateKey
from repro.errors import ShieldError
from repro.hw.axi import AxiLiteTransaction
from repro.hw.memory import OnChipMemory
from repro.hw.shell import Shell


@dataclass
class ShieldStats:
    """Aggregate Shield statistics (summed over region pipelines)."""

    accel_bytes_read: int = 0
    accel_bytes_written: int = 0
    dram_bytes_read: int = 0
    dram_bytes_written: int = 0
    tag_bytes: int = 0
    chunks_fetched: int = 0
    chunks_written_back: int = 0
    integrity_failures: int = 0
    buffer_hits: int = 0
    buffer_misses: int = 0


class Shield:
    """A configured Shield instance bound to a Shell and an on-chip memory budget."""

    def __init__(
        self,
        config: ShieldConfig,
        shell: Shell,
        on_chip_memory: OnChipMemory,
        shield_private_key: RsaPrivateKey,
        obs=None,
    ):
        config.validate()
        self.obs = obs if obs is not None else obs_api.current()
        self.config = config
        self.shell = shell
        self.on_chip_memory = on_chip_memory
        self.key_store = ShieldKeyStore(shield_private_key)
        self.burst_decoder = BurstDecoder(config)
        self._pipelines: dict[str, RegionPipeline] = {}
        self._pipeline_allocations: list[str] = []
        self._register_file: Optional[ShieldedRegisterFile] = None
        # The Shield owns the Shell's register slave port from the moment it
        # is loaded; before key provisioning it rejects everything.
        shell.connect_register_slave(self._axi_lite_handler)

    # -- key provisioning ----------------------------------------------------------

    def provision_load_key(self, wrapped_key: bytes, slot: str = "default") -> None:
        """Unwrap a Load Key and bring the datapath online.

        Re-provisioning a fresh Load Key on an already-operational Shield
        re-keys the datapath: the old pipelines (and their on-chip
        allocations) are discarded and rebuilt under the new Data Encryption
        Key.  This is what lets a *warm* Shield stay resident on a board
        between jobs of the same session without reusing AES-CTR keystream.
        """
        start = time.perf_counter() if self.obs.metrics.enabled else 0.0
        self.key_store.provision_load_key(wrapped_key, slot)
        data_key = self.key_store.data_key(slot)
        self._register_file = ShieldedRegisterFile(self.config.register_interface, data_key)
        self._build_pipelines(data_key)
        if self.obs.metrics.enabled:
            self.obs.metrics.histogram("shield.provision_seconds").observe(
                time.perf_counter() - start
            )

    def _build_pipelines(self, data_key: bytes) -> None:
        for name in self._pipeline_allocations:
            self.on_chip_memory.free(name)
        self._pipeline_allocations = []
        self._pipelines = {}
        allocations_before = set(self.on_chip_memory.allocation_names())
        try:
            self._build_pipelines_inner(data_key)
        finally:
            # Track even the allocations of a build that failed midway, so
            # ``unload`` always restores the board to its pre-load state.
            self._pipeline_allocations = [
                name
                for name in self.on_chip_memory.allocation_names()
                if name not in allocations_before
            ]

    def _build_pipelines_inner(self, data_key: bytes) -> None:
        for region in self.config.regions:
            engine_config = self.config.engine_set(region.engine_set)
            served = self.config.regions_for_engine_set(region.engine_set)
            # The engine set's buffer budget is split across the regions it serves.
            buffer_share = engine_config.buffer_bytes // len(served) if served else 0
            buffer_share = (buffer_share // region.chunk_size) * region.chunk_size
            self._pipelines[region.name] = RegionPipeline(
                shield_config=self.config,
                region=region,
                engine_config=engine_config,
                data_encryption_key=data_key,
                memory_port=self.shell.memory_port,
                on_chip_memory=self.on_chip_memory,
                buffer_bytes=buffer_share,
            )

    def unload(self) -> None:
        """Tear the Shield off the board: free on-chip state, drop the port.

        Idempotent -- the serving layer calls this both per-job (affinity
        off) and at warm-Shield eviction (a different session is about to
        load, or the owning session closed).
        """
        for name in self._pipeline_allocations:
            self.on_chip_memory.free(name)
        self._pipeline_allocations = []
        self._pipelines = {}
        self._register_file = None
        self.key_store.clear()
        self.shell.disconnect_user_logic()

    @property
    def operational(self) -> bool:
        """True once a Data Encryption Key has been provisioned.

        A Shield with memory regions is operational when its region pipelines
        exist; a region-less Shield (register-interface-only designs) is
        operational as soon as the key arrives.  The conditions are grouped
        explicitly -- the previous ``a and b or a and not c`` form relied on
        operator precedence and read ambiguously.
        """
        return self.key_store.provisioned and (
            bool(self._pipelines) or not self.config.regions
        )

    # -- accelerator-facing memory interface ------------------------------------------

    def memory_read(self, address: int, length: int) -> bytes:
        """Read plaintext for the accelerator through the protected datapath."""
        self._require_operational()
        out = bytearray()
        for piece in self.burst_decoder.route(address, length):
            pipeline = self._pipelines[piece.region.name]
            out += pipeline.read(piece.address, piece.length)
        return bytes(out)

    def memory_write(self, address: int, data: bytes) -> None:
        """Write plaintext for the accelerator through the protected datapath."""
        self._require_operational()
        cursor = 0
        for piece in self.burst_decoder.route(address, len(data)):
            pipeline = self._pipelines[piece.region.name]
            pipeline.write(piece.address, data[cursor : cursor + piece.length])
            cursor += piece.length

    def flush(self) -> None:
        """Write back all dirty buffered chunks (end of accelerator execution)."""
        start = time.perf_counter() if self.obs.metrics.enabled else 0.0
        for pipeline in self._pipelines.values():
            pipeline.flush()
        if self.obs.metrics.enabled:
            self.obs.metrics.histogram("shield.flush_seconds").observe(
                time.perf_counter() - start
            )

    # -- register interface ----------------------------------------------------------------

    @property
    def register_file(self) -> ShieldedRegisterFile:
        """The plaintext register file (accelerator side)."""
        if self._register_file is None:
            raise ShieldError("the Shield has not been provisioned with a Data Encryption Key")
        return self._register_file

    def _axi_lite_handler(self, transaction: AxiLiteTransaction) -> bytes:
        if self._register_file is None:
            # Before provisioning, host register traffic is black-holed.
            return b"\x00" * 4
        return self._register_file.handle_axi_lite(transaction)

    # -- statistics ---------------------------------------------------------------------------

    def pipeline(self, region_name: str) -> RegionPipeline:
        """The pipeline serving a region (for tests and reporting)."""
        try:
            return self._pipelines[region_name]
        except KeyError:
            raise ShieldError(f"no pipeline for region {region_name!r}") from None

    def stats(self) -> ShieldStats:
        """Aggregate statistics across all region pipelines."""
        total = ShieldStats()
        for pipeline in self._pipelines.values():
            total.accel_bytes_read += pipeline.stats.accel_bytes_read
            total.accel_bytes_written += pipeline.stats.accel_bytes_written
            total.dram_bytes_read += pipeline.stats.dram_bytes_read
            total.dram_bytes_written += pipeline.stats.dram_bytes_written
            total.tag_bytes += pipeline.stats.tag_bytes
            total.chunks_fetched += pipeline.stats.chunks_fetched
            total.chunks_written_back += pipeline.stats.chunks_written_back
            total.integrity_failures += pipeline.stats.integrity_failures
            total.buffer_hits += pipeline.buffer.stats.hits
            total.buffer_misses += pipeline.buffer.stats.misses
        return total

    def _require_operational(self) -> None:
        if not self.key_store.provisioned:
            raise ShieldError(
                "the Shield cannot move data before a Load Key is provisioned"
            )
