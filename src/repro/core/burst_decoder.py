"""The Shield's burst decoder: routing accelerator bursts to engine sets.

Section 5.2.2: "Each burst request is transformed by a burst decoder in the
Shield, which consults a map of IP Vendor-specified memory regions and maps
each address range to one of the engine sets."  The decoder also splits bursts
that span region boundaries so each piece is handled by exactly one engine
set, and rejects accesses that fall outside every protected region (the Shield
never lets the accelerator touch unprotected DRAM).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import RegionConfig, ShieldConfig
from repro.errors import ShieldError


@dataclass(frozen=True)
class RoutedAccess:
    """One piece of a burst, mapped to a single region."""

    region: RegionConfig
    address: int
    length: int

    @property
    def end_address(self) -> int:
        return self.address + self.length


class BurstDecoder:
    """Maps (address, length) accesses onto the Shield's protected regions."""

    def __init__(self, config: ShieldConfig):
        self._config = config
        self._regions = sorted(config.regions, key=lambda r: r.base_address)

    def region_for(self, address: int) -> RegionConfig:
        """The region containing ``address``; raises if unmapped."""
        for region in self._regions:
            if region.contains(address):
                return region
        raise ShieldError(
            f"address {address:#x} is not mapped to any protected region"
        )

    def route(self, address: int, length: int) -> list:
        """Split an access into per-region pieces (raises on unmapped bytes)."""
        if length <= 0:
            raise ShieldError("burst length must be positive")
        pieces: list[RoutedAccess] = []
        cursor = address
        end = address + length
        while cursor < end:
            region = self.region_for(cursor)
            piece_end = min(end, region.end_address)
            pieces.append(RoutedAccess(region=region, address=cursor, length=piece_end - cursor))
            cursor = piece_end
        return pieces

    def chunk_spans(self, access: RoutedAccess) -> list:
        """Break a routed access into (chunk_index, offset_in_chunk, length) tuples."""
        region = access.region
        spans = []
        cursor = access.address
        remaining = access.length
        while remaining > 0:
            chunk_index = region.chunk_index(cursor)
            chunk_base = region.base_address + chunk_index * region.chunk_size
            offset = cursor - chunk_base
            take = min(remaining, region.chunk_size - offset)
            spans.append((chunk_index, offset, take))
            cursor += take
            remaining -= take
        return spans
