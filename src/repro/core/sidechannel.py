"""Side-channel countermeasures the Shield can be configured with (Section 5.2.2).

The paper does not claim to close every side channel, but it ships two
concrete mitigations and one design guideline, all reproduced here:

* **Active fence** -- a block of dummy switching logic placed next to the
  accelerator that masks data-dependent power draw from remote power-analysis
  attacks (Krautter et al.); the original artifact generates it with a script,
  this module models the fence's size and area cost so deployments can budget
  for it.
* **Controlled-channel mitigation** -- data-dependent memory access patterns
  leak through page-fault/access-pattern channels; enlarging C_mem reduces the
  number of distinct data-dependent accesses the adversary can observe, at a
  bandwidth and on-chip-storage cost.  ``recommend_chunk_size`` captures that
  trade-off.
* **Constant-time engines** -- the Shield's crypto engines take a fixed number
  of cycles per chunk regardless of data; ``engine_timing_is_data_independent``
  states the property the tests check against the functional engines.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.area import ResourceVector
from repro.core.config import RegionConfig
from repro.errors import ConfigurationError

# Area cost of one fence "cell" (a small ring of switching LUTs + registers).
FENCE_CELL_LUTS = 8
FENCE_CELL_REGISTERS = 8


@dataclass(frozen=True)
class ActiveFenceConfig:
    """Configuration of the active fence surrounding a shielded accelerator."""

    cells: int
    toggle_rate: float = 0.5  # fraction of cells switching per cycle

    def __post_init__(self) -> None:
        if self.cells <= 0:
            raise ConfigurationError("an active fence needs at least one cell")
        if not 0.0 < self.toggle_rate <= 1.0:
            raise ConfigurationError("fence toggle rate must be in (0, 1]")

    def area(self) -> ResourceVector:
        """LUT/REG cost of the fence (no BRAM)."""
        return ResourceVector(
            bram_blocks=0,
            luts=self.cells * FENCE_CELL_LUTS,
            registers=self.cells * FENCE_CELL_REGISTERS,
        )

    def masking_power(self, accelerator_dynamic_power: float) -> float:
        """Relative magnitude of the fence's switching activity vs the accelerator's.

        A fence is considered effective when its own (data-independent)
        switching is at least comparable to the signal it hides; the returned
        ratio is what a deployment would check against its target (>= 1.0).
        """
        if accelerator_dynamic_power <= 0:
            raise ConfigurationError("accelerator dynamic power must be positive")
        fence_activity = self.cells * self.toggle_rate
        return fence_activity / accelerator_dynamic_power


def size_fence_for(accelerator_luts: int, coverage: float = 0.15) -> ActiveFenceConfig:
    """Size an active fence as a fraction of the accelerator's own logic.

    The paper's script generates fences proportional to the protected design;
    ``coverage`` is the fence-to-accelerator LUT ratio (15% by default, in line
    with the active-fence literature the paper cites).
    """
    if accelerator_luts <= 0:
        raise ConfigurationError("accelerator LUT count must be positive")
    if not 0.0 < coverage <= 1.0:
        raise ConfigurationError("fence coverage must be in (0, 1]")
    cells = max(1, int(accelerator_luts * coverage) // FENCE_CELL_LUTS)
    return ActiveFenceConfig(cells=cells)


def observable_accesses(region: RegionConfig, data_dependent_accesses: int) -> int:
    """How many distinct data-dependent chunk accesses an adversary can observe.

    With chunk size C_mem, accesses that fall into the same chunk are
    indistinguishable to an observer of the memory bus, so the observable
    count is bounded by the number of chunks actually touched.
    """
    if data_dependent_accesses < 0:
        raise ConfigurationError("access count cannot be negative")
    return min(data_dependent_accesses, region.num_chunks)


def recommend_chunk_size(
    region_bytes: int,
    max_observable_accesses: int,
    minimum_chunk: int = 64,
) -> int:
    """Smallest power-of-two C_mem that caps observable data-dependent accesses.

    This is the Section 5.2.2 controlled-channel guidance made executable:
    "IP vendors can significantly reduce the number of data-dependent memory
    accesses by increasing C_mem".  The returned chunk size guarantees the
    region contains at most ``max_observable_accesses`` chunks.
    """
    if region_bytes <= 0 or max_observable_accesses <= 0:
        raise ConfigurationError("region size and access budget must be positive")
    chunk = minimum_chunk
    while region_bytes // chunk > max_observable_accesses and chunk < region_bytes:
        chunk *= 2
    return min(chunk, region_bytes)


def engine_timing_is_data_independent(engine, chunk_size: int, trials: int = 3) -> bool:
    """Check that an AES engine's modelled cost does not depend on the data.

    The functional engines charge work per byte, never per value; this helper
    exists so the test suite can assert the property explicitly (the paper:
    "we ensure that the timing of Shield cryptographic engines does not depend
    on any confidential information").
    """
    costs = set()
    for value in range(trials):
        before = engine.stats.bytes_encrypted
        engine.encrypt(b"\x00" * 12, bytes([value]) * chunk_size)
        costs.add(engine.stats.bytes_encrypted - before)
    return len(costs) == 1
