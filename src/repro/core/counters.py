"""On-chip integrity counters: ShEF's replay-protection mechanism.

Instead of a Merkle tree, ShEF keeps a per-chunk write counter in on-chip
memory for the regions that need replay protection (Section 5.2.2, "Advanced
integrity verification").  Every write of chunk *i* increments ``ctr_i``; every
read verifies a MAC computed over (address, ciphertext, ``ctr_i``).  Because
the counters never leave the chip, an adversary who replays an old
(ciphertext, tag) pair fails verification -- the tag was computed under an
older counter value -- at the cost of only 4 bytes of on-chip storage per
chunk and zero extra DRAM traffic.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ShieldError
from repro.hw.memory import OnChipAllocation

COUNTER_BYTES = 4


@dataclass
class CounterStats:
    """Counter activity, for tests and reporting."""

    increments: int = 0
    reads: int = 0


class IntegrityCounterStore:
    """Per-chunk write counters backed by an on-chip memory allocation."""

    def __init__(self, allocation: OnChipAllocation, num_chunks: int):
        required = num_chunks * COUNTER_BYTES
        if allocation.size_bytes < required:
            raise ShieldError(
                f"integrity counter store needs {required} bytes on-chip, "
                f"allocation {allocation.name!r} has {allocation.size_bytes}"
            )
        self._allocation = allocation
        self.num_chunks = num_chunks
        self.stats = CounterStats()

    def read(self, chunk_index: int) -> int:
        """Current write version of a chunk."""
        self._check_index(chunk_index)
        self.stats.reads += 1
        raw = self._allocation.read(chunk_index * COUNTER_BYTES, COUNTER_BYTES)
        return int.from_bytes(raw, "big")

    def increment(self, chunk_index: int) -> int:
        """Bump the write version of a chunk; returns the new value."""
        self._check_index(chunk_index)
        value = self.read(chunk_index) + 1
        self._allocation.write(
            chunk_index * COUNTER_BYTES, (value & 0xFFFFFFFF).to_bytes(COUNTER_BYTES, "big")
        )
        self.stats.increments += 1
        return value

    def on_chip_bytes(self) -> int:
        """On-chip storage consumed by this counter store."""
        return self.num_chunks * COUNTER_BYTES

    def _check_index(self, chunk_index: int) -> None:
        if not 0 <= chunk_index < self.num_chunks:
            raise ShieldError(
                f"chunk index {chunk_index} outside counter store of {self.num_chunks}"
            )
