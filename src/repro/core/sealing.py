"""The Shield's on-DRAM data format: per-chunk sealing and unsealing.

Every protected region is stored in device DRAM as AES-CTR ciphertext, chunk
by chunk, with a 16-byte MAC tag per chunk kept in a separate tag area
(Section 5.2: "Each chunk is authenticated via a 16-byte MAC tag in
encrypt-then-MAC mode stored in DRAM").  The MAC binds the chunk's *address*
(defeating spoofing and splicing) and, for replay-protected regions, the
chunk's current *write version* from the on-chip counters (defeating replay).

Both the Shield's engine sets and the Data Owner's client library use these
helpers: the Data Owner seals input data before DMA-ing it into device memory
and unseals results coming back, so the format must be shared.  Sub-keys are
derived per (Data Encryption Key, region name) so no two regions share keys.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

import repro.obs as obs_api
from repro.analysis import sanitizer
from repro.analysis.annotations import hot_path, scalar_reference, secret
from repro.core.config import EngineSetConfig, RegionConfig
from repro.core.engines import AesEngine, MacEngine, build_engines
from repro.crypto.hashes import sha256
from repro.crypto.kdf import derive_subkey
from repro.errors import IntegrityError, ShieldError


@secret
def region_key(data_encryption_key: bytes, region_name: str) -> bytes:
    """Derive the per-region sub-key from the Data Encryption Key."""
    return derive_subkey(data_encryption_key, f"region:{region_name}", 32)


def chunk_iv(region: RegionConfig, chunk_index: int, version: int = 0) -> bytes:
    """The 12-byte IV for a chunk: region seed || chunk index || write version.

    The paper increments a 12-byte IV by one per successive chunk; folding the
    write version in as well keeps CTR key streams unique across rewrites of
    replay-protected chunks.
    """
    seed = sha256(region.name.encode("utf-8"))[:4]
    return seed + chunk_index.to_bytes(4, "big") + (version & 0xFFFFFFFF).to_bytes(4, "big")


def chunk_mac_context(region: RegionConfig, chunk_index: int, version: int) -> bytes:
    """The associated data bound by each chunk's MAC tag."""
    address = region.base_address + chunk_index * region.chunk_size
    return (
        b"shef-chunk"
        + address.to_bytes(8, "big")
        + (version & 0xFFFFFFFF).to_bytes(4, "big")
    )


@dataclass
class SealedChunk:
    """One sealed chunk: ciphertext plus its 16-byte tag.

    On the vectorized fast path the ciphertext is a :class:`memoryview` row
    sliced out of one flat batch buffer (every chunk of a batched seal shares
    the same backing allocation); scalar seals produce plain :class:`bytes`.
    Consumers should treat it as read-only bytes-like data.
    """

    chunk_index: int
    ciphertext: bytes | memoryview
    tag: bytes


class RegionSealer:
    """Seals and unseals chunks of one region under one Data Encryption Key."""

    def __init__(
        self,
        data_encryption_key: bytes,
        region: RegionConfig,
        engine_config: EngineSetConfig,
        obs=None,
    ):
        self.region = region
        key = region_key(data_encryption_key, region.name)
        self._aes_engine, self._mac_engine = build_engines(engine_config, key)
        self._obs = obs if obs is not None else obs_api.current()
        #: Metrics label distinguishing the vectorized fast path from scalar.
        self._path = "fast" if self._aes_engine.uses_fast_path else "scalar"

    @property
    def aes_engine(self) -> AesEngine:
        return self._aes_engine

    @property
    def mac_engine(self) -> MacEngine:
        return self._mac_engine

    def _observe(self, op: str, nbytes: int, seconds: float) -> None:
        """Record one seal/unseal operation (bytes moved + duration, labelled
        fast/scalar).  Callers only reach this when metrics are enabled."""
        metrics = self._obs.metrics
        metrics.counter(f"crypto.{op}_bytes", path=self._path).inc(nbytes)
        metrics.histogram(f"crypto.{op}_seconds", path=self._path).observe(seconds)

    def _mac_failure(self, exc: IntegrityError, chunk_indices) -> None:
        """Publish a failed tag verification on the security stream."""
        if self._obs.tracer.enabled:
            self._obs.tracer.security(
                "mac_failure",
                region=self.region.name,
                chunks=list(chunk_indices),
                error=str(exc),
            )

    def seal_chunk(self, chunk_index: int, plaintext: bytes, version: int = 0) -> SealedChunk:
        """Encrypt-then-MAC one chunk of plaintext."""
        if len(plaintext) != self.region.chunk_size:
            raise ShieldError(
                f"chunk plaintext must be exactly {self.region.chunk_size} bytes"
            )
        timed = self._obs.metrics.enabled
        start = time.perf_counter() if timed else 0.0
        iv = chunk_iv(self.region, chunk_index, version)
        ciphertext = self._aes_engine.encrypt(iv, plaintext)
        context = chunk_mac_context(self.region, chunk_index, version)
        tag = self._mac_engine.tag(context + ciphertext)
        if timed:
            self._observe("seal", len(plaintext), time.perf_counter() - start)
        return SealedChunk(chunk_index=chunk_index, ciphertext=ciphertext, tag=tag)

    def unseal_chunk(
        self, chunk_index: int, ciphertext: bytes, tag: bytes, version: int = 0
    ) -> bytes:
        """Verify and decrypt one chunk; raises :class:`IntegrityError` on tampering."""
        timed = self._obs.metrics.enabled
        start = time.perf_counter() if timed else 0.0
        context = chunk_mac_context(self.region, chunk_index, version)
        try:
            self._mac_engine.verify(context + ciphertext, tag)
        except IntegrityError as exc:
            self._mac_failure(exc, [chunk_index])
            raise
        iv = chunk_iv(self.region, chunk_index, version)
        plaintext = self._aes_engine.decrypt(iv, ciphertext)
        if timed:
            self._observe("unseal", len(plaintext), time.perf_counter() - start)
        return plaintext

    # -- batched (vectorized) datapath ---------------------------------------------

    def _fast_batch(self) -> bool:
        """True when both engines run vectorized, enabling the array datapath."""
        return self._aes_engine.uses_fast_path and self._mac_engine.uses_fast_path

    def _chunk_ivs_array(self, indices: list, versions: list) -> np.ndarray:
        """Vectorized :func:`chunk_iv`: one ``(n, 12)`` uint8 array for a batch."""
        n = len(indices)
        ivs = np.empty((n, 12), dtype=np.uint8)
        seed = sha256(self.region.name.encode("utf-8"))[:4]
        ivs[:, :4] = np.frombuffer(seed, dtype=np.uint8)
        ivs[:, 4:8] = np.asarray(indices, dtype=">u4").view(np.uint8).reshape(n, 4)
        ivs[:, 8:] = (
            (np.asarray(versions, dtype=np.uint64) & 0xFFFFFFFF)
            .astype(">u4")
            .view(np.uint8)
            .reshape(n, 4)
        )
        return ivs

    def _chunk_contexts_array(self, indices: list, versions: list) -> np.ndarray:
        """Vectorized :func:`chunk_mac_context`: one ``(n, 22)`` uint8 array."""
        n = len(indices)
        contexts = np.empty((n, 22), dtype=np.uint8)
        contexts[:, :10] = np.frombuffer(b"shef-chunk", dtype=np.uint8)
        addresses = (
            self.region.base_address
            + np.asarray(indices, dtype=np.uint64) * self.region.chunk_size
        )
        contexts[:, 10:18] = addresses.astype(">u8").view(np.uint8).reshape(n, 8)
        contexts[:, 18:] = (
            (np.asarray(versions, dtype=np.uint64) & 0xFFFFFFFF)
            .astype(">u4")
            .view(np.uint8)
            .reshape(n, 4)
        )
        return contexts

    def seal_chunks(self, indices: list, plaintexts: list, versions=0) -> list:
        """Seal many whole chunks at once (one batched cipher pass on the fast path).

        ``versions`` is either one write version shared by every chunk or a
        per-chunk list (what a buffered pipeline flush produces).  On the fast
        path the batch is packed into a single ``(n, chunk_size)`` array and
        handed to :meth:`seal_chunks_array`, so the whole seal costs one
        cipher pass, one MAC pass, and exactly one ciphertext allocation; the
        scalar path keeps the list-based reference flow.
        """
        indices = list(indices)
        if isinstance(versions, int):
            versions = [versions] * len(indices)
        if len(versions) != len(indices) or len(plaintexts) != len(indices):
            raise ShieldError("seal_chunks needs matching indices/plaintexts/versions")
        chunk_size = self.region.chunk_size
        for plaintext in plaintexts:
            if len(plaintext) != chunk_size:
                raise ShieldError(
                    f"chunk plaintext must be exactly {chunk_size} bytes"
                )
        if not self._fast_batch():
            return self._seal_chunk_list(indices, plaintexts, versions)
        plaintext_array = np.empty((len(indices), chunk_size), dtype=np.uint8)
        for row, plaintext in enumerate(plaintexts):
            plaintext_array[row] = np.frombuffer(plaintext, dtype=np.uint8)
        return self._seal_array(indices, plaintext_array, versions)

    @hot_path
    @scalar_reference("seal_chunk")
    def seal_chunks_array(
        self, indices: list, plaintext_array: np.ndarray, versions=0
    ) -> list:
        """Seal a batch already staged as an ``(n, chunk_size)`` uint8 array.

        The zero-copy entry point: on the fast path the rows are encrypted and
        MACed in place-order without ever being sliced into per-chunk ``bytes``
        objects, and the resulting :class:`SealedChunk` ciphertexts are
        memoryview rows of one shared output buffer.
        """
        indices = list(indices)
        if isinstance(versions, int):
            versions = [versions] * len(indices)
        if len(versions) != len(indices) or plaintext_array.shape[0] != len(indices):
            raise ShieldError("seal_chunks needs matching indices/plaintexts/versions")
        if (
            plaintext_array.ndim != 2
            or plaintext_array.shape[1] != self.region.chunk_size
        ):
            raise ShieldError(
                f"chunk plaintext must be exactly {self.region.chunk_size} bytes"
            )
        if not self._fast_batch():
            rows = [row.tobytes() for row in plaintext_array]  # lint: allow[hot-copy] scalar fallback
            sanitizer.note_copy("seal_chunks_array.scalar_fallback", plaintext_array.size)
            return self._seal_chunk_list(indices, rows, versions)
        return self._seal_array(indices, plaintext_array, versions)

    def _seal_chunk_list(self, indices: list, plaintexts: list, versions: list) -> list:
        """Scalar reference flow: list-based batch seal, bytes ciphertexts."""
        timed = self._obs.metrics.enabled
        start = time.perf_counter() if timed else 0.0
        ivs = [
            chunk_iv(self.region, index, version)
            for index, version in zip(indices, versions)
        ]
        ciphertexts = self._aes_engine.encrypt_many(ivs, plaintexts)
        tags = self._mac_engine.tag_many(
            [
                chunk_mac_context(self.region, index, version) + ciphertext
                for index, version, ciphertext in zip(indices, versions, ciphertexts)
            ]
        )
        if timed:
            self._observe(
                "seal", sum(len(p) for p in plaintexts), time.perf_counter() - start
            )
        return [
            SealedChunk(chunk_index=index, ciphertext=ciphertext, tag=tag)
            for index, ciphertext, tag in zip(indices, ciphertexts, tags)
        ]

    @hot_path
    def _seal_array(
        self, indices: list, plaintext_array: np.ndarray, versions: list
    ) -> list:
        """Fast-path batch seal over an ``(n, chunk_size)`` array."""
        timed = self._obs.metrics.enabled
        start = time.perf_counter() if timed else 0.0
        chunk_size = self.region.chunk_size
        ivs = self._chunk_ivs_array(indices, versions)
        ciphertext_array = self._aes_engine.encrypt_many_array(ivs, plaintext_array)
        messages = np.empty((len(indices), 22 + chunk_size), dtype=np.uint8)
        messages[:, :22] = self._chunk_contexts_array(indices, versions)
        messages[:, 22:] = ciphertext_array
        tags = self._mac_engine.tag_many_array(messages)
        if timed:
            self._observe("seal", plaintext_array.size, time.perf_counter() - start)
        sanitizer.freeze(ciphertext_array)
        flat = ciphertext_array.reshape(-1).data
        return [
            SealedChunk(
                chunk_index=index,
                ciphertext=flat[row * chunk_size : (row + 1) * chunk_size],
                tag=tags[row].tobytes(),  # lint: allow[hot-copy] 16-byte tag, SealedChunk.tag is bytes
            )
            for row, index in enumerate(indices)
        ]

    def seal_region_data(self, plaintext: bytes, start_chunk: int = 0) -> list:
        """Seal a contiguous run of chunks (padding the tail with zeros).

        Returns a list of :class:`SealedChunk`; used by the Data Owner to
        prepare inputs for DMA and by tests to stage expected ciphertext.
        The plaintext is staged as one ``(n, chunk_size)`` array view (a
        single zero-padded allocation when the length is not an exact multiple
        of the chunk size) instead of being sliced and padded chunk by chunk.
        """
        chunk_size = self.region.chunk_size
        if len(plaintext) == 0:
            return []
        num_chunks = -(-len(plaintext) // chunk_size)
        if start_chunk + num_chunks > self.region.num_chunks:
            first_bad = max(start_chunk, self.region.num_chunks)
            raise ShieldError(
                f"data does not fit in region {self.region.name!r}: chunk {first_bad} "
                f"exceeds {self.region.num_chunks} chunks"
            )
        data = np.frombuffer(plaintext, dtype=np.uint8)
        if len(plaintext) % chunk_size == 0:
            plaintext_array = data.reshape(num_chunks, chunk_size)
        else:
            plaintext_array = np.zeros((num_chunks, chunk_size), dtype=np.uint8)
            plaintext_array.reshape(-1)[: len(plaintext)] = data
        indices = list(range(start_chunk, start_chunk + num_chunks))
        return self.seal_chunks_array(indices, plaintext_array)

    def unseal_region_data(
        self, sealed_chunks: list, length: int | None = None, versions=0
    ) -> bytes:
        """Unseal a list of :class:`SealedChunk` back into contiguous plaintext.

        ``versions`` is one write version shared by every chunk (0 for
        write-once regions) or a per-chunk list (replay-protected regions).
        All tags are verified first in one batched
        :meth:`~repro.core.engines.MacEngine.verify_many` pass (any tampering
        raises :class:`~repro.errors.IntegrityError` before a single byte is
        decrypted), then all ciphertexts go through one batched decrypt pass.
        """
        if isinstance(versions, int):
            versions = [versions] * len(sealed_chunks)
        if len(versions) != len(sealed_chunks):
            raise ShieldError("unseal_region_data needs one version per chunk")
        timed = self._obs.metrics.enabled
        start = time.perf_counter() if timed else 0.0
        indices = [chunk.chunk_index for chunk in sealed_chunks]
        ciphertexts = [chunk.ciphertext for chunk in sealed_chunks]
        tags = [chunk.tag for chunk in sealed_chunks]
        if self._batchable(ciphertexts):
            plaintext_array = self._unseal_batch_array(
                indices, ciphertexts, tags, versions
            )
            flat = plaintext_array.reshape(-1)
            if timed:
                self._observe("unseal", flat.size, time.perf_counter() - start)
            return flat.tobytes() if length is None else flat[:length].tobytes()
        try:
            self._mac_engine.verify_many(
                [
                    chunk_mac_context(self.region, index, version) + bytes(ciphertext)
                    for index, version, ciphertext in zip(indices, versions, ciphertexts)
                ],
                tags,
            )
        except IntegrityError as exc:
            self._mac_failure(exc, indices)
            raise
        ivs = [
            chunk_iv(self.region, index, version)
            for index, version in zip(indices, versions)
        ]
        pieces = self._aes_engine.decrypt_many(
            ivs, [bytes(ciphertext) for ciphertext in ciphertexts]
        )
        plaintext = b"".join(pieces)
        if timed:
            self._observe("unseal", len(plaintext), time.perf_counter() - start)
        return plaintext if length is None else plaintext[:length]

    def _batchable(self, ciphertexts: list) -> bool:
        """Whether a batch can take the array path: fast engines, equal sizes."""
        if not self._fast_batch() or not ciphertexts:
            return False
        chunk_len = len(ciphertexts[0])
        return chunk_len > 0 and all(len(c) == chunk_len for c in ciphertexts)

    def _unseal_batch_array(
        self, indices: list, ciphertexts: list, tags: list, versions: list
    ) -> np.ndarray:
        """Fast-path batch unseal; returns the ``(n, chunk_len)`` plaintext array.

        One ``(n, 22 + chunk_len)`` staging array carries every MAC message
        (context rows are computed vectorized), verification and decryption
        each run as a single batched engine pass, and the returned plaintext
        lives in one contiguous buffer.
        """
        chunk_len = len(ciphertexts[0])
        messages = np.empty((len(indices), 22 + chunk_len), dtype=np.uint8)
        messages[:, :22] = self._chunk_contexts_array(indices, versions)
        for row, ciphertext in enumerate(ciphertexts):
            messages[row, 22:] = np.frombuffer(ciphertext, dtype=np.uint8)
        try:
            self._mac_engine.verify_many_array(messages, tags)
        except IntegrityError as exc:
            self._mac_failure(exc, indices)
            raise
        ivs = self._chunk_ivs_array(indices, versions)
        return self._aes_engine.decrypt_many_array(ivs, messages[:, 22:])

    @hot_path
    @scalar_reference("unseal_chunk")
    def unseal_chunks(
        self, indices: list, ciphertexts: list, tags: list, versions=0
    ) -> list:
        """Verify and decrypt many chunks in one batched pass.

        The read-back twin of :meth:`seal_chunks`: the pipeline hands over the
        raw per-chunk ciphertext and tag blobs it fetched from DRAM, and gets
        back one plaintext per chunk.  On the fast path the plaintexts are
        memoryview rows of a single shared buffer (no per-chunk ``bytes``
        allocation); the scalar path falls back to per-chunk
        :meth:`unseal_chunk` calls.
        """
        indices = list(indices)
        if isinstance(versions, int):
            versions = [versions] * len(indices)
        if not (len(ciphertexts) == len(tags) == len(versions) == len(indices)):
            raise ShieldError(
                "unseal_chunks needs matching indices/ciphertexts/tags/versions"
            )
        if not self._batchable(ciphertexts):
            sanitizer.note_copy(
                "unseal_chunks.scalar_fallback", sum(len(c) for c in ciphertexts)
            )
            return [
                self.unseal_chunk(index, bytes(ciphertext), bytes(tag), version)  # lint: allow[hot-copy] scalar fallback
                for index, ciphertext, tag, version in zip(
                    indices, ciphertexts, tags, versions
                )
            ]
        timed = self._obs.metrics.enabled
        start = time.perf_counter() if timed else 0.0
        plaintext_array = self._unseal_batch_array(indices, ciphertexts, tags, versions)
        if timed:
            self._observe("unseal", plaintext_array.size, time.perf_counter() - start)
        chunk_len = plaintext_array.shape[1]
        sanitizer.freeze(plaintext_array)
        flat = plaintext_array.reshape(-1).data
        return [
            flat[row * chunk_len : (row + 1) * chunk_len]
            for row in range(len(indices))
        ]
