"""The Shield's on-DRAM data format: per-chunk sealing and unsealing.

Every protected region is stored in device DRAM as AES-CTR ciphertext, chunk
by chunk, with a 16-byte MAC tag per chunk kept in a separate tag area
(Section 5.2: "Each chunk is authenticated via a 16-byte MAC tag in
encrypt-then-MAC mode stored in DRAM").  The MAC binds the chunk's *address*
(defeating spoofing and splicing) and, for replay-protected regions, the
chunk's current *write version* from the on-chip counters (defeating replay).

Both the Shield's engine sets and the Data Owner's client library use these
helpers: the Data Owner seals input data before DMA-ing it into device memory
and unseals results coming back, so the format must be shared.  Sub-keys are
derived per (Data Encryption Key, region name) so no two regions share keys.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import repro.obs as obs_api
from repro.core.config import RegionConfig
from repro.core.engines import AesEngine, MacEngine, build_engines
from repro.core.config import EngineSetConfig
from repro.crypto.hashes import sha256
from repro.crypto.kdf import derive_subkey
from repro.errors import IntegrityError, ShieldError


def region_key(data_encryption_key: bytes, region_name: str) -> bytes:
    """Derive the per-region sub-key from the Data Encryption Key."""
    return derive_subkey(data_encryption_key, f"region:{region_name}", 32)


def chunk_iv(region: RegionConfig, chunk_index: int, version: int = 0) -> bytes:
    """The 12-byte IV for a chunk: region seed || chunk index || write version.

    The paper increments a 12-byte IV by one per successive chunk; folding the
    write version in as well keeps CTR key streams unique across rewrites of
    replay-protected chunks.
    """
    seed = sha256(region.name.encode("utf-8"))[:4]
    return seed + chunk_index.to_bytes(4, "big") + (version & 0xFFFFFFFF).to_bytes(4, "big")


def chunk_mac_context(region: RegionConfig, chunk_index: int, version: int) -> bytes:
    """The associated data bound by each chunk's MAC tag."""
    address = region.base_address + chunk_index * region.chunk_size
    return (
        b"shef-chunk"
        + address.to_bytes(8, "big")
        + (version & 0xFFFFFFFF).to_bytes(4, "big")
    )


@dataclass
class SealedChunk:
    """One sealed chunk: ciphertext plus its 16-byte tag."""

    chunk_index: int
    ciphertext: bytes
    tag: bytes


class RegionSealer:
    """Seals and unseals chunks of one region under one Data Encryption Key."""

    def __init__(
        self,
        data_encryption_key: bytes,
        region: RegionConfig,
        engine_config: EngineSetConfig,
        obs=None,
    ):
        self.region = region
        key = region_key(data_encryption_key, region.name)
        self._aes_engine, self._mac_engine = build_engines(engine_config, key)
        self._obs = obs if obs is not None else obs_api.current()
        #: Metrics label distinguishing the vectorized fast path from scalar.
        self._path = "fast" if self._aes_engine.uses_fast_path else "scalar"

    @property
    def aes_engine(self) -> AesEngine:
        return self._aes_engine

    @property
    def mac_engine(self) -> MacEngine:
        return self._mac_engine

    def _observe(self, op: str, nbytes: int, seconds: float) -> None:
        """Record one seal/unseal operation (bytes moved + duration, labelled
        fast/scalar).  Callers only reach this when metrics are enabled."""
        metrics = self._obs.metrics
        metrics.counter(f"crypto.{op}_bytes", path=self._path).inc(nbytes)
        metrics.histogram(f"crypto.{op}_seconds", path=self._path).observe(seconds)

    def _mac_failure(self, exc: IntegrityError, chunk_indices) -> None:
        """Publish a failed tag verification on the security stream."""
        if self._obs.tracer.enabled:
            self._obs.tracer.security(
                "mac_failure",
                region=self.region.name,
                chunks=list(chunk_indices),
                error=str(exc),
            )

    def seal_chunk(self, chunk_index: int, plaintext: bytes, version: int = 0) -> SealedChunk:
        """Encrypt-then-MAC one chunk of plaintext."""
        if len(plaintext) != self.region.chunk_size:
            raise ShieldError(
                f"chunk plaintext must be exactly {self.region.chunk_size} bytes"
            )
        timed = self._obs.metrics.enabled
        start = time.perf_counter() if timed else 0.0
        iv = chunk_iv(self.region, chunk_index, version)
        ciphertext = self._aes_engine.encrypt(iv, plaintext)
        context = chunk_mac_context(self.region, chunk_index, version)
        tag = self._mac_engine.tag(context + ciphertext)
        if timed:
            self._observe("seal", len(plaintext), time.perf_counter() - start)
        return SealedChunk(chunk_index=chunk_index, ciphertext=ciphertext, tag=tag)

    def unseal_chunk(
        self, chunk_index: int, ciphertext: bytes, tag: bytes, version: int = 0
    ) -> bytes:
        """Verify and decrypt one chunk; raises :class:`IntegrityError` on tampering."""
        timed = self._obs.metrics.enabled
        start = time.perf_counter() if timed else 0.0
        context = chunk_mac_context(self.region, chunk_index, version)
        try:
            self._mac_engine.verify(context + ciphertext, tag)
        except IntegrityError as exc:
            self._mac_failure(exc, [chunk_index])
            raise
        iv = chunk_iv(self.region, chunk_index, version)
        plaintext = self._aes_engine.decrypt(iv, ciphertext)
        if timed:
            self._observe("unseal", len(plaintext), time.perf_counter() - start)
        return plaintext

    def seal_chunks(self, indices: list, plaintexts: list, versions=0) -> list:
        """Seal many whole chunks at once (one batched cipher pass on the fast path).

        ``versions`` is either one write version shared by every chunk or a
        per-chunk list (what a buffered pipeline flush produces).  Encryption
        for every chunk is submitted to the AES engine in a single
        :meth:`~repro.core.engines.AesEngine.encrypt_many` call, and all chunk
        MACs go through one :meth:`~repro.core.engines.MacEngine.tag_many`
        pass (every tag still binds its own per-chunk context, exactly as in
        :meth:`seal_chunk`) -- so the vectorized fast path amortizes both the
        cipher and the authentication over the whole batch.
        """
        if isinstance(versions, int):
            versions = [versions] * len(indices)
        if len(versions) != len(indices) or len(plaintexts) != len(indices):
            raise ShieldError("seal_chunks needs matching indices/plaintexts/versions")
        for plaintext in plaintexts:
            if len(plaintext) != self.region.chunk_size:
                raise ShieldError(
                    f"chunk plaintext must be exactly {self.region.chunk_size} bytes"
                )
        timed = self._obs.metrics.enabled
        start = time.perf_counter() if timed else 0.0
        ivs = [
            chunk_iv(self.region, index, version)
            for index, version in zip(indices, versions)
        ]
        ciphertexts = self._aes_engine.encrypt_many(ivs, plaintexts)
        tags = self._mac_engine.tag_many(
            [
                chunk_mac_context(self.region, index, version) + ciphertext
                for index, version, ciphertext in zip(indices, versions, ciphertexts)
            ]
        )
        if timed:
            self._observe(
                "seal", sum(len(p) for p in plaintexts), time.perf_counter() - start
            )
        return [
            SealedChunk(chunk_index=index, ciphertext=ciphertext, tag=tag)
            for index, ciphertext, tag in zip(indices, ciphertexts, tags)
        ]

    def seal_region_data(self, plaintext: bytes, start_chunk: int = 0) -> list:
        """Seal a contiguous run of chunks (padding the tail with zeros).

        Returns a list of :class:`SealedChunk`; used by the Data Owner to
        prepare inputs for DMA and by tests to stage expected ciphertext.
        """
        chunk_size = self.region.chunk_size
        pieces: list[bytes] = []
        indices: list[int] = []
        offset = 0
        index = start_chunk
        while offset < len(plaintext):
            piece = plaintext[offset : offset + chunk_size]
            if len(piece) < chunk_size:
                piece = piece + b"\x00" * (chunk_size - len(piece))
            if index >= self.region.num_chunks:
                raise ShieldError(
                    f"data does not fit in region {self.region.name!r}: chunk {index} "
                    f"exceeds {self.region.num_chunks} chunks"
                )
            pieces.append(piece)
            indices.append(index)
            offset += chunk_size
            index += 1
        return self.seal_chunks(indices, pieces)

    def unseal_region_data(
        self, sealed_chunks: list, length: int | None = None, versions=0
    ) -> bytes:
        """Unseal a list of :class:`SealedChunk` back into contiguous plaintext.

        ``versions`` is one write version shared by every chunk (0 for
        write-once regions) or a per-chunk list (replay-protected regions).
        All tags are verified first in one batched
        :meth:`~repro.core.engines.MacEngine.verify_many` pass (any tampering
        raises :class:`~repro.errors.IntegrityError` before a single byte is
        decrypted), then all ciphertexts go through one batched decrypt pass.
        """
        if isinstance(versions, int):
            versions = [versions] * len(sealed_chunks)
        if len(versions) != len(sealed_chunks):
            raise ShieldError("unseal_region_data needs one version per chunk")
        timed = self._obs.metrics.enabled
        start = time.perf_counter() if timed else 0.0
        try:
            self._mac_engine.verify_many(
                [
                    chunk_mac_context(self.region, chunk.chunk_index, version)
                    + chunk.ciphertext
                    for chunk, version in zip(sealed_chunks, versions)
                ],
                [chunk.tag for chunk in sealed_chunks],
            )
        except IntegrityError as exc:
            self._mac_failure(exc, [chunk.chunk_index for chunk in sealed_chunks])
            raise
        ivs = [
            chunk_iv(self.region, chunk.chunk_index, version)
            for chunk, version in zip(sealed_chunks, versions)
        ]
        pieces = self._aes_engine.decrypt_many(ivs, [c.ciphertext for c in sealed_chunks])
        plaintext = b"".join(pieces)
        if timed:
            self._observe("unseal", len(plaintext), time.perf_counter() - start)
        return plaintext if length is None else plaintext[:length]
