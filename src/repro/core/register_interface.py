"""The shielded AXI4-Lite register interface.

Section 5.1: the host program reads and writes accelerator registers through
the Shell's AXI4-Lite port, but everything crossing that port is encrypted and
authenticated with the Data Owner's Data Encryption Key.  The Shield exposes a
plaintext register file to the accelerator and a mailbox-style protocol to the
host:

* the host (forwarding sealed blobs produced by the Data Owner) writes a
  sealed command word-by-word into the *inbox* window, then rings a doorbell;
* the Shield verifies and decrypts the command, applies it to the plaintext
  register file (writes) or seals the requested value into the *outbox*
  (reads), which the host then reads word-by-word and forwards back.

Commands carry a monotonically increasing sequence number bound into the MAC,
so a malicious host cannot replay an old command.  Optionally the register
*index* travels inside the sealed payload only (``encrypt_addresses``), hiding
access patterns from the Shell.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import RegisterInterfaceConfig
from repro.crypto.authenc import AuthenticatedCipher, AuthenticatedMessage
from repro.crypto.kdf import derive_subkey
from repro.crypto.mac import MAC_TAG_SIZES
from repro.errors import IntegrityError, ReplayError, ShieldError
from repro.hw.axi import AxiLiteTransaction, BurstKind

REGISTER_BYTES = 4

# AXI4-Lite address map of the shielded register window.
DOORBELL_ADDRESS = 0x0000
STATUS_ADDRESS = 0x0004
INBOX_BASE = 0x1000
OUTBOX_BASE = 0x2000
MAILBOX_BYTES = 0x1000

STATUS_IDLE = 0
STATUS_OK = 1
STATUS_ERROR = 2

OPCODE_WRITE = 1
OPCODE_READ = 2


@dataclass
class RegisterStats:
    """Host-side register traffic counters."""

    commands: int = 0
    rejected: int = 0
    host_words_written: int = 0
    host_words_read: int = 0


class RegisterChannelClient:
    """The Data Owner's side of the register channel: seals commands, opens replies.

    This code runs on the Data Owner's trusted machine (or inside the ShEF
    runtime acting for them); the host program in between only ever sees the
    sealed byte blobs.
    """

    def __init__(self, data_encryption_key: bytes, config: RegisterInterfaceConfig):
        key = derive_subkey(data_encryption_key, "register-interface", 32)
        self._cipher = AuthenticatedCipher(key, config.mac_algorithm)
        self._config = config
        self._sequence = 0

    def _next_iv(self) -> bytes:
        self._sequence += 1
        return b"regchan#" + self._sequence.to_bytes(4, "big")

    @property
    def sequence(self) -> int:
        return self._sequence

    def seal_write(self, register_index: int, value: bytes) -> bytes:
        """Seal a register-write command."""
        if len(value) != REGISTER_BYTES:
            raise ShieldError("register values are exactly 4 bytes")
        payload = bytes([OPCODE_WRITE, register_index & 0xFF]) + value
        message = self._cipher.seal(
            self._next_iv(), payload, associated_data=b"reg-cmd" + self._sequence.to_bytes(4, "big")
        )
        return message.serialize()

    def seal_read_request(self, register_index: int) -> bytes:
        """Seal a register-read request."""
        payload = bytes([OPCODE_READ, register_index & 0xFF]) + b"\x00" * REGISTER_BYTES
        message = self._cipher.seal(
            self._next_iv(), payload, associated_data=b"reg-cmd" + self._sequence.to_bytes(4, "big")
        )
        return message.serialize()

    def open_read_response(self, blob: bytes) -> bytes:
        """Verify and decrypt a sealed read response (the 4-byte register value)."""
        message = AuthenticatedMessage.deserialize(
            blob, tag_size=MAC_TAG_SIZES[self._config.mac_algorithm]
        )
        value = self._cipher.open(
            message, associated_data=b"reg-resp" + self._sequence.to_bytes(4, "big")
        )
        return value


class ShieldedRegisterFile:
    """The Shield-side register interface: plaintext inside, sealed outside."""

    def __init__(self, config: RegisterInterfaceConfig, data_encryption_key: bytes):
        config.validate()
        self.config = config
        key = derive_subkey(data_encryption_key, "register-interface", 32)
        self._cipher = AuthenticatedCipher(key, config.mac_algorithm)
        self._tag_size = MAC_TAG_SIZES[config.mac_algorithm]
        self._registers = [b"\x00" * REGISTER_BYTES for _ in range(config.num_registers)]
        self._inbox = bytearray(MAILBOX_BYTES)
        self._inbox_length = 0
        self._outbox = b""
        self._status = STATUS_IDLE
        self._last_sequence = 0
        self.stats = RegisterStats()

    # -- accelerator-facing (trusted) side -------------------------------------------

    def read_register(self, index: int) -> bytes:
        """Plaintext register read by the accelerator logic."""
        self._check_index(index)
        return self._registers[index]

    def write_register(self, index: int, value: bytes) -> None:
        """Plaintext register write by the accelerator logic."""
        self._check_index(index)
        if len(value) != REGISTER_BYTES:
            raise ShieldError("register values are exactly 4 bytes")
        self._registers[index] = bytes(value)

    # -- Shell/host-facing (untrusted) side --------------------------------------------

    def handle_axi_lite(self, transaction: AxiLiteTransaction) -> bytes:
        """Service one AXI4-Lite access from the Shell."""
        address = transaction.address
        if transaction.kind is BurstKind.WRITE:
            self.stats.host_words_written += 1
            if address == DOORBELL_ADDRESS:
                self._ring_doorbell(int.from_bytes(transaction.data, "big"))
            elif INBOX_BASE <= address < INBOX_BASE + MAILBOX_BYTES:
                offset = address - INBOX_BASE
                self._inbox[offset : offset + REGISTER_BYTES] = transaction.data
                self._inbox_length = max(self._inbox_length, offset + REGISTER_BYTES)
            else:
                # Writes anywhere else are ignored: nothing outside the mailbox
                # is host-writable.
                self.stats.rejected += 1
            return b""
        # Reads.
        self.stats.host_words_read += 1
        if address == STATUS_ADDRESS:
            return self._status.to_bytes(REGISTER_BYTES, "big")
        if OUTBOX_BASE <= address < OUTBOX_BASE + MAILBOX_BYTES:
            offset = address - OUTBOX_BASE
            window = self._outbox[offset : offset + REGISTER_BYTES]
            return window + b"\x00" * (REGISTER_BYTES - len(window))
        return b"\x00" * REGISTER_BYTES

    # -- command processing --------------------------------------------------------------

    def _ring_doorbell(self, declared_length: int) -> None:
        length = declared_length or self._inbox_length
        blob = bytes(self._inbox[:length])
        self._inbox_length = 0
        self.stats.commands += 1
        try:
            self._process_command(blob)
            self._status = STATUS_OK
        except (IntegrityError, ReplayError, ShieldError):
            self.stats.rejected += 1
            self._status = STATUS_ERROR

    def _process_command(self, blob: bytes) -> None:
        message = AuthenticatedMessage.deserialize(blob, tag_size=self._tag_size)
        sequence = int.from_bytes(message.iv[-4:], "big")
        if sequence <= self._last_sequence:
            raise ReplayError("register command replay detected (stale sequence number)")
        payload = self._cipher.open(
            message, associated_data=b"reg-cmd" + sequence.to_bytes(4, "big")
        )
        self._last_sequence = sequence
        if len(payload) != 2 + REGISTER_BYTES:
            raise ShieldError("malformed register command payload")
        opcode, index = payload[0], payload[1]
        self._check_index(index)
        if opcode == OPCODE_WRITE:
            self._registers[index] = payload[2:6]
            self._outbox = b""
        elif opcode == OPCODE_READ:
            response = self._cipher.seal(
                b"regresp#" + sequence.to_bytes(4, "big"),
                self._registers[index],
                associated_data=b"reg-resp" + sequence.to_bytes(4, "big"),
            )
            self._outbox = response.serialize()
        else:
            raise ShieldError(f"unknown register opcode {opcode}")

    def outbox_size(self) -> int:
        """Size of the sealed response currently in the outbox."""
        return len(self._outbox)

    def _check_index(self, index: int) -> None:
        if not 0 <= index < self.config.num_registers:
            raise ShieldError(
                f"register index {index} outside file of {self.config.num_registers}"
            )
