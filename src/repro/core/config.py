"""Shield configuration: the knobs an IP Vendor turns to build a bespoke TEE.

Section 5.2.2 of the paper enumerates the configuration space: one or more
engine sets, each with configurable AES engines (count, S-box parallelism,
key size), configurable authentication engines (HMAC or PMAC, count), a chunk
size ``C_mem`` per memory region, optional on-chip plaintext buffers, and
optional integrity counters for replay protection.  The register interface can
additionally encrypt register addresses.  These dataclasses capture that
space, validate it, and serialize into the bitstream container so the exact
configuration travels with the design.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError

VALID_SBOX_PARALLELISM = (1, 2, 4, 8, 16)
VALID_AES_KEY_BITS = (128, 256)
VALID_MAC_ALGORITHMS = ("HMAC", "PMAC", "CMAC")
MAC_TAG_BYTES = 16  # tags stored in DRAM are 16 bytes (HMAC tags truncated)


@dataclass(frozen=True)
class EngineSetConfig:
    """Configuration of one engine set (crypto engines + buffer + counters).

    ``fast_crypto`` selects the functional AES-CTR implementation backing this
    engine set: ``True`` forces the vectorized numpy fast path, ``False``
    forces the scalar pure-Python reference, and ``None`` (the default)
    inherits the process-wide setting from :mod:`repro.crypto.fastpath`.  The
    flag changes simulation speed only -- both paths produce byte-identical
    ciphertext and tags.
    """

    name: str
    num_aes_engines: int = 1
    sbox_parallelism: int = 4
    aes_key_bits: int = 128
    mac_algorithm: str = "HMAC"
    num_mac_engines: int = 1
    buffer_bytes: int = 0
    fast_crypto: bool | None = None

    def validate(self) -> None:
        if self.num_aes_engines < 1:
            raise ConfigurationError(f"engine set {self.name!r} needs >= 1 AES engine")
        if self.sbox_parallelism not in VALID_SBOX_PARALLELISM:
            raise ConfigurationError(
                f"engine set {self.name!r}: S-box parallelism must be one of "
                f"{VALID_SBOX_PARALLELISM}, got {self.sbox_parallelism}"
            )
        if self.aes_key_bits not in VALID_AES_KEY_BITS:
            raise ConfigurationError(
                f"engine set {self.name!r}: AES key must be 128 or 256 bits"
            )
        if self.mac_algorithm not in VALID_MAC_ALGORITHMS:
            raise ConfigurationError(
                f"engine set {self.name!r}: MAC must be one of {VALID_MAC_ALGORITHMS}"
            )
        if self.num_mac_engines < 1:
            raise ConfigurationError(f"engine set {self.name!r} needs >= 1 MAC engine")
        if self.buffer_bytes < 0:
            raise ConfigurationError(f"engine set {self.name!r}: negative buffer size")
        if self.fast_crypto not in (None, True, False):
            raise ConfigurationError(
                f"engine set {self.name!r}: fast_crypto must be True, False, or None"
            )

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "num_aes_engines": self.num_aes_engines,
            "sbox_parallelism": self.sbox_parallelism,
            "aes_key_bits": self.aes_key_bits,
            "mac_algorithm": self.mac_algorithm,
            "num_mac_engines": self.num_mac_engines,
            "buffer_bytes": self.buffer_bytes,
            "fast_crypto": self.fast_crypto,
        }

    @staticmethod
    def from_dict(data: dict) -> "EngineSetConfig":
        return EngineSetConfig(**data)


@dataclass(frozen=True)
class RegionConfig:
    """One protected memory region, served by exactly one engine set.

    ``chunk_size`` is the paper's C_mem: the granularity of authenticated
    encryption.  ``replay_protected`` enables on-chip integrity counters.
    ``streaming_write_only`` marks regions that are written once and never
    read back by the accelerator, letting the Shield zero-fill buffer lines
    instead of fetching them (Section 5.2.2, "On-chip buffers").
    """

    name: str
    base_address: int
    size_bytes: int
    chunk_size: int
    engine_set: str
    replay_protected: bool = False
    streaming_write_only: bool = False
    access_pattern: str = "streaming"  # "streaming" | "random" (documentation + timing hint)

    def validate(self) -> None:
        if self.base_address < 0:
            raise ConfigurationError(f"region {self.name!r}: negative base address")
        if self.size_bytes <= 0:
            raise ConfigurationError(f"region {self.name!r}: size must be positive")
        if self.chunk_size <= 0:
            raise ConfigurationError(f"region {self.name!r}: chunk size must be positive")
        if self.chunk_size > self.size_bytes:
            raise ConfigurationError(
                f"region {self.name!r}: chunk size {self.chunk_size} exceeds region size"
            )
        if self.size_bytes % self.chunk_size != 0:
            raise ConfigurationError(
                f"region {self.name!r}: size must be a multiple of the chunk size"
            )
        if self.access_pattern not in ("streaming", "random"):
            raise ConfigurationError(
                f"region {self.name!r}: access pattern must be 'streaming' or 'random'"
            )

    @property
    def end_address(self) -> int:
        return self.base_address + self.size_bytes

    @property
    def num_chunks(self) -> int:
        return self.size_bytes // self.chunk_size

    def contains(self, address: int, length: int = 1) -> bool:
        return self.base_address <= address and address + length <= self.end_address

    def chunk_index(self, address: int) -> int:
        """Index of the chunk containing ``address`` (region-relative)."""
        if not self.contains(address):
            raise ConfigurationError(
                f"address {address:#x} not inside region {self.name!r}"
            )
        return (address - self.base_address) // self.chunk_size

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "base_address": self.base_address,
            "size_bytes": self.size_bytes,
            "chunk_size": self.chunk_size,
            "engine_set": self.engine_set,
            "replay_protected": self.replay_protected,
            "streaming_write_only": self.streaming_write_only,
            "access_pattern": self.access_pattern,
        }

    @staticmethod
    def from_dict(data: dict) -> "RegionConfig":
        return RegionConfig(**data)


@dataclass(frozen=True)
class RegisterInterfaceConfig:
    """Configuration of the AXI4-Lite register shield."""

    num_registers: int = 32
    encrypt_addresses: bool = False
    aes_key_bits: int = 128
    sbox_parallelism: int = 4
    mac_algorithm: str = "HMAC"

    def validate(self) -> None:
        if self.num_registers < 1:
            raise ConfigurationError("register interface needs at least one register")
        if self.aes_key_bits not in VALID_AES_KEY_BITS:
            raise ConfigurationError("register interface: AES key must be 128 or 256 bits")
        if self.sbox_parallelism not in VALID_SBOX_PARALLELISM:
            raise ConfigurationError("register interface: invalid S-box parallelism")
        if self.mac_algorithm not in VALID_MAC_ALGORITHMS:
            raise ConfigurationError("register interface: invalid MAC algorithm")

    def to_dict(self) -> dict:
        return {
            "num_registers": self.num_registers,
            "encrypt_addresses": self.encrypt_addresses,
            "aes_key_bits": self.aes_key_bits,
            "sbox_parallelism": self.sbox_parallelism,
            "mac_algorithm": self.mac_algorithm,
        }

    @staticmethod
    def from_dict(data: dict) -> "RegisterInterfaceConfig":
        return RegisterInterfaceConfig(**data)


@dataclass
class ShieldConfig:
    """The complete configuration of one Shield instance."""

    shield_id: str
    engine_sets: list = field(default_factory=list)
    regions: list = field(default_factory=list)
    register_interface: RegisterInterfaceConfig = field(
        default_factory=RegisterInterfaceConfig
    )
    tag_base_address: int | None = None

    # -- validation ------------------------------------------------------------

    def validate(self) -> None:
        """Check internal consistency; raises :class:`ConfigurationError`."""
        if not self.shield_id:
            raise ConfigurationError("shield_id must be a non-empty string")
        names = [e.name for e in self.engine_sets]
        if len(names) != len(set(names)):
            raise ConfigurationError("engine set names must be unique")
        for engine_set in self.engine_sets:
            engine_set.validate()
        self.register_interface.validate()

        region_names = [r.name for r in self.regions]
        if len(region_names) != len(set(region_names)):
            raise ConfigurationError("region names must be unique")
        for region in self.regions:
            region.validate()
            if region.engine_set not in names:
                raise ConfigurationError(
                    f"region {region.name!r} references unknown engine set "
                    f"{region.engine_set!r}"
                )
        ordered = sorted(self.regions, key=lambda r: r.base_address)
        for earlier, later in zip(ordered, ordered[1:]):
            if earlier.end_address > later.base_address:
                raise ConfigurationError(
                    f"regions {earlier.name!r} and {later.name!r} overlap"
                )
        if self.regions:
            tag_base = self.effective_tag_base()
            for region in self.regions:
                if region.base_address < tag_base + self.total_tag_bytes() and region.end_address > tag_base:
                    raise ConfigurationError(
                        f"region {region.name!r} overlaps the MAC tag area"
                    )

    # -- lookups ----------------------------------------------------------------

    def engine_set(self, name: str) -> EngineSetConfig:
        for engine_set in self.engine_sets:
            if engine_set.name == name:
                return engine_set
        raise ConfigurationError(f"no engine set named {name!r}")

    def region(self, name: str) -> RegionConfig:
        for region in self.regions:
            if region.name == name:
                return region
        raise ConfigurationError(f"no region named {name!r}")

    def region_for_address(self, address: int, length: int = 1) -> RegionConfig:
        for region in self.regions:
            if region.contains(address, length):
                return region
        raise ConfigurationError(
            f"address range [{address:#x}, {address + length:#x}) is not mapped "
            "to any protected region"
        )

    def regions_for_engine_set(self, name: str) -> list:
        return [r for r in self.regions if r.engine_set == name]

    # -- tag area layout ----------------------------------------------------------

    def effective_tag_base(self) -> int:
        """Base DRAM address of the MAC tag area (after the last region by default)."""
        if self.tag_base_address is not None:
            return self.tag_base_address
        if not self.regions:
            return 0
        highest = max(r.end_address for r in self.regions)
        # Align up to 4 KiB.
        return (highest + 4095) // 4096 * 4096

    def total_tag_bytes(self) -> int:
        return sum(r.num_chunks * MAC_TAG_BYTES for r in self.regions)

    def tag_address(self, region: RegionConfig, chunk_index: int) -> int:
        """DRAM address of the MAC tag for ``chunk_index`` of ``region``."""
        offset = 0
        for candidate in self.regions:
            if candidate.name == region.name:
                return self.effective_tag_base() + offset + chunk_index * MAC_TAG_BYTES
            offset += candidate.num_chunks * MAC_TAG_BYTES
        raise ConfigurationError(f"region {region.name!r} is not part of this Shield")

    # -- counter storage ------------------------------------------------------------

    def counter_bytes_required(self) -> int:
        """On-chip bytes needed by integrity counters (4 bytes per protected chunk)."""
        return sum(4 * r.num_chunks for r in self.regions if r.replay_protected)

    def buffer_bytes_required(self) -> int:
        """On-chip bytes needed by all engine-set buffers."""
        return sum(e.buffer_bytes for e in self.engine_sets)

    def on_chip_bytes_required(self) -> int:
        return self.counter_bytes_required() + self.buffer_bytes_required()

    # -- serialization ----------------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "shield_id": self.shield_id,
            "engine_sets": [e.to_dict() for e in self.engine_sets],
            "regions": [r.to_dict() for r in self.regions],
            "register_interface": self.register_interface.to_dict(),
            "tag_base_address": self.tag_base_address,
        }

    @staticmethod
    def from_dict(data: dict) -> "ShieldConfig":
        return ShieldConfig(
            shield_id=data["shield_id"],
            engine_sets=[EngineSetConfig.from_dict(e) for e in data.get("engine_sets", [])],
            regions=[RegionConfig.from_dict(r) for r in data.get("regions", [])],
            register_interface=RegisterInterfaceConfig.from_dict(
                data.get("register_interface", RegisterInterfaceConfig().to_dict())
            ),
            tag_base_address=data.get("tag_base_address"),
        )
