"""Ephemeral key storage inside the Shield.

The Shield's key storage holds two things: the private Shield Encryption Key
that the IP Vendor embedded in the bitstream, and the Data Encryption Key(s)
that arrive at runtime wrapped as Load Keys (Figure 2, step 11).  Data
Encryption Keys only ever exist in this ephemeral store -- a reset clears
them, and nothing outside the Shield can read them back.
"""

from __future__ import annotations

from repro.crypto.rsa import RsaPrivateKey, rsa_decrypt
from repro.errors import ShieldError


class ShieldKeyStore:
    """Unwraps Load Keys and holds Data Encryption Keys for the Shield's lifetime."""

    def __init__(self, shield_private_key: RsaPrivateKey):
        self._shield_private_key = shield_private_key
        self._data_keys: dict[str, bytes] = {}

    def provision_load_key(self, wrapped_key: bytes, slot: str = "default") -> None:
        """Decrypt a Load Key into the named Data Encryption Key slot."""
        try:
            data_key = rsa_decrypt(self._shield_private_key, wrapped_key)
        except Exception as exc:
            raise ShieldError("Load Key could not be unwrapped by this Shield") from exc
        if len(data_key) not in (16, 32):
            raise ShieldError("unwrapped Data Encryption Key has an invalid length")
        self._data_keys[slot] = data_key

    def data_key(self, slot: str = "default") -> bytes:
        """The Data Encryption Key for ``slot``; raises if not provisioned."""
        try:
            return self._data_keys[slot]
        except KeyError:
            raise ShieldError(
                f"no Data Encryption Key provisioned in slot {slot!r}"
            ) from None

    @property
    def provisioned(self) -> bool:
        return bool(self._data_keys)

    def clear(self) -> None:
        """Erase all Data Encryption Keys (Shield reset)."""
        self._data_keys.clear()
