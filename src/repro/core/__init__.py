"""The paper's primary contribution: the ShEF Shield and its models.

This package contains the configurable Shield (burst decoder, engine sets with
AES/HMAC/PMAC engines, on-chip plaintext buffers, integrity counters, the
Bonsai-Merkle baseline, and the shielded register interface), plus the area
and timing models used to reproduce the paper's evaluation, and the end-to-end
workflow that ties the Shield to secure boot and remote attestation.
"""

from repro.core.area import (
    ResourceVector,
    component_area,
    shield_area,
    shield_utilization,
    table1_rows,
)
from repro.core.buffer import BufferStats, PlaintextBuffer
from repro.core.burst_decoder import BurstDecoder, RoutedAccess
from repro.core.config import (
    MAC_TAG_BYTES,
    EngineSetConfig,
    RegionConfig,
    RegisterInterfaceConfig,
    ShieldConfig,
)
from repro.core.counters import IntegrityCounterStore
from repro.core.engine_set import PipelineStats, RegionPipeline
from repro.core.engines import (
    AesEngine,
    MacEngine,
    engine_set_authentication_rate,
    engine_set_crypto_rate,
    engine_set_encryption_rate,
)
from repro.core.key_store import ShieldKeyStore
from repro.core.merkle import BonsaiMerkleCounterTree, merkle_extra_dram_bytes
from repro.core.register_interface import RegisterChannelClient, ShieldedRegisterFile
from repro.core.sealing import RegionSealer, SealedChunk, chunk_iv, region_key
from repro.core.shield import Shield, ShieldStats
from repro.core.sidechannel import (
    ActiveFenceConfig,
    recommend_chunk_size,
    size_fence_for,
)
from repro.core.timing import (
    RegionTraffic,
    TimingBreakdown,
    TimingModel,
    WorkloadProfile,
)

__all__ = [
    "ResourceVector",
    "component_area",
    "shield_area",
    "shield_utilization",
    "table1_rows",
    "BufferStats",
    "PlaintextBuffer",
    "BurstDecoder",
    "RoutedAccess",
    "MAC_TAG_BYTES",
    "EngineSetConfig",
    "RegionConfig",
    "RegisterInterfaceConfig",
    "ShieldConfig",
    "IntegrityCounterStore",
    "PipelineStats",
    "RegionPipeline",
    "AesEngine",
    "MacEngine",
    "engine_set_authentication_rate",
    "engine_set_crypto_rate",
    "engine_set_encryption_rate",
    "ShieldKeyStore",
    "BonsaiMerkleCounterTree",
    "merkle_extra_dram_bytes",
    "RegisterChannelClient",
    "ShieldedRegisterFile",
    "RegionSealer",
    "SealedChunk",
    "chunk_iv",
    "region_key",
    "Shield",
    "ShieldStats",
    "ActiveFenceConfig",
    "recommend_chunk_size",
    "size_fence_for",
    "RegionTraffic",
    "TimingBreakdown",
    "TimingModel",
    "WorkloadProfile",
]
