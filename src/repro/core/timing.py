"""Analytical timing model of the Shield.

The functional Shield (:mod:`repro.core.shield`) moves real bytes through real
crypto, which is what the correctness tests exercise.  For the paper's
performance experiments -- which sweep input sizes up to 80 MB and compare
dozens of Shield configurations -- this module provides a calibrated
analytical model that works from a compact *workload profile* (bytes moved per
region, burst sizes, access pattern, compute intensity) instead of touching
every byte.

The model, in one paragraph: the baseline accelerator is limited by the larger
of its memory time (bytes divided by the rate it can sustain through the
Shell) and its compute time, plus a fixed initialization cost.  The Shield
keeps the same structure but (a) caps each region's streaming rate at the
serving engine set's authenticated-encryption rate, (b) adds MAC-tag traffic
to the DRAM total, (c) adds a per-chunk pipeline penalty for access patterns
that cannot be prefetched (random, data-dependent, or store-and-forward), and
(d) models the on-chip buffer by scaling DRAM traffic with the expected miss
rate.  Engine rates come from :mod:`repro.core.engines`; the constants below
are calibrated against the paper's reported overheads (Table 2, Figures 5-6),
not derived from RTL synthesis.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import MAC_TAG_BYTES, ShieldConfig
from repro.core.engines import (
    engine_set_authentication_rate,
    engine_set_crypto_rate,
    engine_set_encryption_rate,
)
from repro.errors import SimulationError

# -- calibrated constants (bytes per Shield clock cycle / cycles) ----------------

DRAM_BYTES_PER_CYCLE = 64.0          # peak 512-bit AXI4 rate through the Shell
BASE_BURST_LATENCY_CYCLES = 40       # DRAM access latency for latency-bound patterns
CHUNK_PIPELINE_LATENCY_CYCLES = 12   # non-overlappable Shield latency per chunk access
CHUNK_DRAM_OVERHEAD_CYCLES = 3       # extra DRAM transaction cost of the per-chunk tag fetch
MAC_TAIL_FRACTION = 0.15             # trailing MAC work that cannot overlap forwarding
SHIELD_INIT_EXTRA_CYCLES = 2_000     # Load-Key unwrap + engine key schedule at start


@dataclass(frozen=True)
class RegionTraffic:
    """Traffic summary for one protected region of a workload.

    ``reuse_factor`` is the average number of times each byte of the working
    set is touched (1.0 = read/written once); with an on-chip buffer larger
    than the working set, repeated touches become hits.
    ``store_and_forward`` marks regions where each chunk must be fully
    verified before the accelerator can proceed (e.g. SDP's per-auth-block
    forwarding), which exposes the per-chunk pipeline latency.
    ``serialized_mac`` models accelerators that do not prefetch past an
    in-flight chunk at all (DNNWeaver's weight bursts): the whole MAC latency
    of every chunk lands on the critical path.
    """

    region_name: str
    bytes_read: int = 0
    bytes_written: int = 0
    access_size: int = 512
    access_pattern: str = "streaming"  # "streaming" | "random"
    reuse_factor: float = 1.0
    working_set_bytes: int = 0
    store_and_forward: bool = False
    serialized_mac: bool = False

    @property
    def total_bytes(self) -> int:
        return self.bytes_read + self.bytes_written

    @property
    def num_accesses(self) -> int:
        if self.access_size <= 0:
            return 0
        return -(-self.total_bytes // self.access_size)


@dataclass(frozen=True)
class WorkloadProfile:
    """Compact description of one accelerator execution."""

    name: str
    regions: tuple
    compute_cycles: float = 0.0
    init_cycles: float = 20_000.0
    baseline_bytes_per_cycle: float = DRAM_BYTES_PER_CYCLE
    register_operations: int = 4
    latency_bound: bool = False

    @property
    def total_bytes(self) -> int:
        return sum(r.total_bytes for r in self.regions)


@dataclass
class TimingBreakdown:
    """Cycle breakdown for one run (baseline or shielded)."""

    memory_cycles: float = 0.0
    crypto_cycles: float = 0.0
    serial_latency_cycles: float = 0.0
    compute_cycles: float = 0.0
    init_cycles: float = 0.0
    dram_bytes: float = 0.0
    details: dict = field(default_factory=dict)

    @property
    def total_cycles(self) -> float:
        datapath = max(self.memory_cycles, self.crypto_cycles, self.compute_cycles)
        return datapath + self.serial_latency_cycles + self.init_cycles


class TimingModel:
    """Estimates execution time for a workload, with and without a Shield."""

    def __init__(
        self,
        dram_bytes_per_cycle: float = DRAM_BYTES_PER_CYCLE,
        burst_latency_cycles: float = BASE_BURST_LATENCY_CYCLES,
        chunk_pipeline_latency_cycles: float = CHUNK_PIPELINE_LATENCY_CYCLES,
        mac_tail_fraction: float = MAC_TAIL_FRACTION,
    ):
        self.dram_bytes_per_cycle = dram_bytes_per_cycle
        self.burst_latency_cycles = burst_latency_cycles
        self.chunk_pipeline_latency_cycles = chunk_pipeline_latency_cycles
        self.mac_tail_fraction = mac_tail_fraction

    # -- baseline ---------------------------------------------------------------

    def baseline(self, profile: WorkloadProfile) -> TimingBreakdown:
        """Execution time of the accelerator connected directly to the Shell."""
        rate = min(profile.baseline_bytes_per_cycle, self.dram_bytes_per_cycle)
        memory_cycles = profile.total_bytes / rate if profile.total_bytes else 0.0
        serial = 0.0
        for traffic in profile.regions:
            if traffic.access_pattern == "random" or profile.latency_bound:
                serial += traffic.num_accesses * self.burst_latency_cycles
        return TimingBreakdown(
            memory_cycles=memory_cycles,
            compute_cycles=profile.compute_cycles,
            serial_latency_cycles=serial,
            init_cycles=profile.init_cycles,
            dram_bytes=float(profile.total_bytes),
        )

    # -- shielded ------------------------------------------------------------------

    def shielded(self, profile: WorkloadProfile, config: ShieldConfig) -> TimingBreakdown:
        """Execution time of the accelerator behind the given Shield configuration."""
        rate = min(profile.baseline_bytes_per_cycle, self.dram_bytes_per_cycle)
        engine_set_bytes: dict[str, float] = {}
        engine_set_tail: dict[str, float] = {}
        dram_bytes = 0.0
        serial = 0.0
        details: dict = {}

        for traffic in profile.regions:
            region = config.region(traffic.region_name)
            engine_config = config.engine_set(region.engine_set)
            chunk = region.chunk_size

            # DRAM traffic: data plus one tag per chunk touched, amplified by
            # buffer misses (chunk-granular fetches for sub-chunk accesses).
            chunk_accesses = self._chunk_accesses(traffic, chunk)
            miss_rate = self._miss_rate(traffic, region, engine_config, chunk)
            fetched_chunks = chunk_accesses * miss_rate
            data_bytes = fetched_chunks * chunk
            # Streaming regions with accesses >= chunk size do not amplify.
            if traffic.access_pattern == "streaming" and traffic.access_size >= chunk:
                data_bytes = traffic.total_bytes * traffic.reuse_factor * miss_rate
                fetched_chunks = data_bytes / chunk
            tag_bytes = fetched_chunks * MAC_TAG_BYTES
            dram_bytes += data_bytes + tag_bytes

            # Crypto work handled by this region's engine set.
            crypto_bytes = data_bytes
            engine_set_bytes[region.engine_set] = (
                engine_set_bytes.get(region.engine_set, 0.0) + crypto_bytes
            )
            engine_set_tail[region.engine_set] = (
                engine_set_tail.get(region.engine_set, 0.0)
                + self.mac_tail_fraction
                * crypto_bytes
                / engine_set_authentication_rate(engine_config)
            )

            # Serial (non-overlappable) latency.
            if traffic.access_pattern == "random" or profile.latency_bound:
                # Data-dependent accesses cannot be prefetched, so each chunk
                # pays the DRAM latency plus the Shield pipeline latency plus
                # the chunk's own decrypt/verify latency.
                per_chunk_crypto = chunk / engine_set_encryption_rate(
                    engine_config
                ) + chunk / engine_set_authentication_rate(engine_config)
                serial += fetched_chunks * (
                    self.burst_latency_cycles
                    + self.chunk_pipeline_latency_cycles
                    + per_chunk_crypto
                )
            elif traffic.store_and_forward:
                serial += fetched_chunks * self.chunk_pipeline_latency_cycles
            if traffic.serialized_mac:
                # The accelerator stalls on every chunk's full MAC computation.
                serial += fetched_chunks * (
                    chunk / engine_set_authentication_rate(engine_config)
                )

            details[traffic.region_name] = {
                "fetched_chunks": fetched_chunks,
                "dram_bytes": data_bytes + tag_bytes,
                "miss_rate": miss_rate,
            }

        crypto_cycles = 0.0
        for set_name, set_bytes in engine_set_bytes.items():
            engine_config = config.engine_set(set_name)
            set_cycles = set_bytes / engine_set_crypto_rate(engine_config)
            set_cycles += engine_set_tail[set_name]
            crypto_cycles = max(crypto_cycles, set_cycles)
            details[f"engine_set:{set_name}"] = {
                "bytes": set_bytes,
                "encryption_rate": engine_set_encryption_rate(engine_config),
                "authentication_rate": engine_set_authentication_rate(engine_config),
                "cycles": set_cycles,
            }

        total_fetched_chunks = sum(row["fetched_chunks"] for row in details.values() if isinstance(row, dict) and "fetched_chunks" in row)
        memory_cycles = max(
            profile.total_bytes / rate if profile.total_bytes else 0.0,
            dram_bytes / self.dram_bytes_per_cycle,
        ) + total_fetched_chunks * CHUNK_DRAM_OVERHEAD_CYCLES
        return TimingBreakdown(
            memory_cycles=memory_cycles,
            crypto_cycles=crypto_cycles,
            compute_cycles=profile.compute_cycles,
            serial_latency_cycles=serial,
            init_cycles=profile.init_cycles + SHIELD_INIT_EXTRA_CYCLES,
            dram_bytes=dram_bytes,
            details=details,
        )

    # -- convenience ---------------------------------------------------------------------

    def overhead(self, profile: WorkloadProfile, config: ShieldConfig) -> float:
        """Normalized execution time (shielded / baseline)."""
        base = self.baseline(profile).total_cycles
        shielded = self.shielded(profile, config).total_cycles
        if base <= 0:
            raise SimulationError("baseline execution time is zero; check the profile")
        return shielded / base

    # -- helpers -------------------------------------------------------------------------------

    @staticmethod
    def _chunk_accesses(traffic: RegionTraffic, chunk_size: int) -> float:
        """How many chunk-granular operations the accesses translate into."""
        if traffic.access_size >= chunk_size:
            return traffic.total_bytes / chunk_size
        return float(traffic.num_accesses)

    @staticmethod
    def _miss_rate(traffic, region, engine_config, chunk_size: int) -> float:
        """Expected fraction of chunk accesses that go to DRAM.

        With no reuse every access misses (rate 1).  With reuse, the buffer
        captures repeats when the working set fits; otherwise misses scale
        with how much of the working set is resident.
        """
        if traffic.reuse_factor <= 1.0:
            return 1.0
        buffer_bytes = engine_config.buffer_bytes
        if buffer_bytes <= 0:
            return 1.0
        working_set = traffic.working_set_bytes or traffic.total_bytes
        coverage = min(1.0, buffer_bytes / working_set)
        # First touch always misses; repeats hit with probability `coverage`.
        repeats = traffic.reuse_factor - 1.0
        return (1.0 + repeats * (1.0 - coverage)) / traffic.reuse_factor
