"""Parametric area model of the Shield (Table 1 and Table 3 of the paper).

Table 1 reports the per-component FPGA resource usage of the Shield on AWS F1;
a full Shield's area is the sum of its configured components.  This model is
seeded with exactly those per-component numbers and composes them according to
a :class:`~repro.core.config.ShieldConfig`, so Table 1 is reproduced directly
and Table 3 / the SDP area figures follow from the per-accelerator
configurations.  On-chip memory (buffers + integrity counters) is converted to
36 Kb BRAM-block equivalents.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import EngineSetConfig, ShieldConfig
from repro.errors import ConfigurationError

# Device totals used to express utilization percentages (AWS F1 VU9P user-visible).
F1_TOTAL_LUTS = 900_000
F1_TOTAL_REGISTERS = 1_790_000
F1_TOTAL_BRAM_BLOCKS = 1_680
BRAM_BLOCK_BYTES = 4_608  # one 36 Kb block


@dataclass(frozen=True)
class ResourceVector:
    """A (BRAM blocks, LUTs, registers) triple."""

    bram_blocks: float = 0.0
    luts: float = 0.0
    registers: float = 0.0

    def __add__(self, other: "ResourceVector") -> "ResourceVector":
        return ResourceVector(
            self.bram_blocks + other.bram_blocks,
            self.luts + other.luts,
            self.registers + other.registers,
        )

    def scaled(self, factor: float) -> "ResourceVector":
        return ResourceVector(
            self.bram_blocks * factor, self.luts * factor, self.registers * factor
        )

    def utilization(self) -> dict:
        """Percent utilization of the F1 device."""
        return {
            "BRAM": 100.0 * self.bram_blocks / F1_TOTAL_BRAM_BLOCKS,
            "LUT": 100.0 * self.luts / F1_TOTAL_LUTS,
            "REG": 100.0 * self.registers / F1_TOTAL_REGISTERS,
        }


# Per-component costs (Table 1).  Base modules exclude crypto engines and OCM.
COMPONENT_AREAS = {
    "controller": ResourceVector(bram_blocks=0, luts=2348, registers=547),
    "engine_set": ResourceVector(bram_blocks=2, luts=1068, registers=2508),
    "register_interface": ResourceVector(bram_blocks=0, luts=3251, registers=1902),
    "aes_4x": ResourceVector(bram_blocks=0, luts=2435, registers=2347),
    "aes_16x": ResourceVector(bram_blocks=0, luts=2898, registers=2347),
    "hmac": ResourceVector(bram_blocks=0, luts=3926, registers=2636),
    "pmac": ResourceVector(bram_blocks=0, luts=2545, registers=2570),
    "cmac": ResourceVector(bram_blocks=0, luts=2250, registers=2100),
}


def component_area(name: str) -> ResourceVector:
    """Area of one named Shield component (Table 1 row)."""
    try:
        return COMPONENT_AREAS[name]
    except KeyError:
        raise ConfigurationError(f"unknown Shield component {name!r}") from None


def aes_engine_area(sbox_parallelism: int) -> ResourceVector:
    """AES engine area as a function of S-box parallelism.

    Table 1 gives the 4x and 16x points; intermediate values interpolate the
    LUT count linearly (registers are dominated by state and stay flat).
    """
    low = COMPONENT_AREAS["aes_4x"]
    high = COMPONENT_AREAS["aes_16x"]
    if sbox_parallelism <= 4:
        return low
    if sbox_parallelism >= 16:
        return high
    fraction = (sbox_parallelism - 4) / 12.0
    return ResourceVector(
        bram_blocks=0,
        luts=low.luts + fraction * (high.luts - low.luts),
        registers=low.registers,
    )


def mac_engine_area(algorithm: str) -> ResourceVector:
    """Authentication engine area (HMAC / PMAC / CMAC)."""
    key = algorithm.lower()
    if key not in ("hmac", "pmac", "cmac"):
        raise ConfigurationError(f"unknown MAC algorithm {algorithm!r}")
    return COMPONENT_AREAS[key]


def on_chip_memory_area(num_bytes: int) -> ResourceVector:
    """BRAM-block equivalents of buffers and counters."""
    if num_bytes <= 0:
        return ResourceVector()
    blocks = -(-num_bytes // BRAM_BLOCK_BYTES)
    return ResourceVector(bram_blocks=blocks, luts=0, registers=0)


def engine_set_area(config: EngineSetConfig, counter_bytes: int = 0) -> ResourceVector:
    """Total area of one engine set with its engines, buffer, and counters."""
    total = component_area("engine_set")
    total = total + aes_engine_area(config.sbox_parallelism).scaled(config.num_aes_engines)
    total = total + mac_engine_area(config.mac_algorithm).scaled(config.num_mac_engines)
    total = total + on_chip_memory_area(config.buffer_bytes + counter_bytes)
    return total


def register_interface_area(config: ShieldConfig) -> ResourceVector:
    """Area of the register interface including its own crypto engines."""
    reg = config.register_interface
    total = component_area("register_interface")
    total = total + aes_engine_area(reg.sbox_parallelism)
    total = total + mac_engine_area(reg.mac_algorithm)
    return total


def shield_area(config: ShieldConfig) -> ResourceVector:
    """Total area of a configured Shield (the Table 3 quantity)."""
    config.validate()
    total = component_area("controller")
    total = total + register_interface_area(config)
    for engine_set in config.engine_sets:
        counter_bytes = sum(
            4 * region.num_chunks
            for region in config.regions_for_engine_set(engine_set.name)
            if region.replay_protected
        )
        total = total + engine_set_area(engine_set, counter_bytes)
    return total


def shield_utilization(config: ShieldConfig) -> dict:
    """Percent utilization of the F1 device for a configured Shield."""
    return shield_area(config).utilization()


def table1_rows() -> dict:
    """The per-component rows of Table 1 with their F1 utilization percentages."""
    rows = {}
    for name, vector in COMPONENT_AREAS.items():
        rows[name] = {
            "BRAM": vector.bram_blocks,
            "LUT": vector.luts,
            "REG": vector.registers,
            "utilization": vector.utilization(),
        }
    return rows
