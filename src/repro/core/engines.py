"""Functional models of the Shield's cryptographic engines.

Each engine couples a *functional* implementation (real AES-CTR, HMAC, PMAC
from :mod:`repro.crypto`) with the *throughput* attributes the timing model
uses.  The throughput figures are behavioural calibrations, not RTL synthesis
results: they are chosen so that the relative performance of configurations
(4x vs 16x S-box parallelism, 128- vs 256-bit keys, HMAC vs PMAC, engine
counts) reproduces the shapes reported in the paper's Table 2 and Figures 5-6.

Key modelling choices (documented here because the benchmarks depend on them):

* An AES engine's throughput scales linearly with S-box parallelism (the
  paper's 4x/16x knob) and drops by 10/14 for 256-bit keys (more rounds).
* An HMAC-SHA256 engine processes a chunk sequentially; adding HMAC engines
  does not speed up a single chunk, which is why HMAC-bound configurations in
  Table 2 stay at ~300% overhead regardless of AES parallelism.
* A PMAC engine has lower per-engine throughput than HMAC (it is a smaller
  block, cf. Table 1's LUT counts) but is parallelizable: multiple PMAC
  engines multiply the per-chunk authentication bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.annotations import hot_path, scalar_reference
from repro.core.config import EngineSetConfig
from repro.crypto.aes import AES
from repro.crypto.fastaes import VectorAes
from repro.crypto.fasthash import BatchedMac
from repro.crypto.fastpath import fast_path_enabled
from repro.crypto.kdf import derive_subkey
from repro.crypto.mac import compute_mac, constant_time_equal
from repro.crypto.modes import ctr_transform
from repro.errors import IntegrityError, ShieldError

# Calibrated throughput constants (bytes per Shield clock cycle).
AES_BYTES_PER_CYCLE_PER_SBOX = 1.0        # 16x parallel S-box => 16 B/cycle
AES_256_THROUGHPUT_FACTOR = 10.0 / 14.0   # 14 rounds instead of 10
HMAC_BYTES_PER_CYCLE = 8.5                # sequential per chunk, engine count ignored
PMAC_BYTES_PER_CYCLE = 6.5                # per engine, parallelizable across engines
CMAC_BYTES_PER_CYCLE = 4.0                # sequential, like HMAC but slower


@dataclass
class EngineStats:
    """Byte counters per engine (used by tests and reporting)."""

    bytes_encrypted: int = 0
    bytes_decrypted: int = 0
    bytes_authenticated: int = 0
    operations: int = 0


class AesEngine:
    """A configurable AES-CTR encryption/decryption engine.

    ``fast_crypto`` picks the functional implementation: ``True`` uses the
    vectorized numpy path, ``False`` the scalar reference, and ``None``
    (default) defers to :func:`repro.crypto.fastpath.fast_path_enabled` at
    each call, so the process-wide switch can be flipped mid-run.  Both paths
    are byte-identical; only the simulator's wall-clock time changes.
    """

    def __init__(
        self,
        key: bytes,
        sbox_parallelism: int = 4,
        key_bits: int = 128,
        fast_crypto: bool | None = None,
    ):
        if len(key) * 8 != key_bits:
            raise ShieldError(
                f"AES engine configured for {key_bits}-bit keys got a "
                f"{len(key) * 8}-bit key"
            )
        self.sbox_parallelism = sbox_parallelism
        self.key_bits = key_bits
        self.fast_crypto = fast_crypto
        self._cipher = AES(key)
        self._vector_cipher: VectorAes | None = None
        self.stats = EngineStats()

    @property
    def bytes_per_cycle(self) -> float:
        """Modelled steady-state throughput of one engine instance."""
        rate = AES_BYTES_PER_CYCLE_PER_SBOX * self.sbox_parallelism
        if self.key_bits == 256:
            rate *= AES_256_THROUGHPUT_FACTOR
        return rate

    @property
    def uses_fast_path(self) -> bool:
        """Whether the next call will take the vectorized path."""
        if self.fast_crypto is None:
            return fast_path_enabled()
        return self.fast_crypto

    def _vector(self) -> VectorAes:
        if self._vector_cipher is None:
            self._vector_cipher = VectorAes(self._cipher)
        return self._vector_cipher

    def _transform(self, iv: bytes, data: bytes) -> bytes:
        if self.uses_fast_path:
            return self._vector().ctr_transform(iv, data)
        return ctr_transform(self._cipher, iv, data)

    def _transform_many(self, ivs: list, chunks: list) -> list:
        if len(ivs) != len(chunks):
            raise ShieldError("batched AES-CTR needs one IV per chunk")
        if self.uses_fast_path and chunks and all(
            len(c) == len(chunks[0]) for c in chunks
        ):
            return self._vector().ctr_transform_many(ivs, chunks)
        return [ctr_transform(self._cipher, iv, c) for iv, c in zip(ivs, chunks)]

    def encrypt(self, iv: bytes, plaintext: bytes) -> bytes:
        """AES-CTR encrypt ``plaintext`` under the per-chunk IV."""
        self.stats.bytes_encrypted += len(plaintext)
        self.stats.operations += 1
        return self._transform(iv, plaintext)

    def decrypt(self, iv: bytes, ciphertext: bytes) -> bytes:
        """AES-CTR decrypt ``ciphertext`` under the per-chunk IV."""
        self.stats.bytes_decrypted += len(ciphertext)
        self.stats.operations += 1
        return self._transform(iv, ciphertext)

    @scalar_reference("encrypt")
    def encrypt_many(self, ivs: list, plaintexts: list) -> list:
        """Encrypt a batch of chunks, one IV each, in a single fast-path pass."""
        self.stats.bytes_encrypted += sum(len(p) for p in plaintexts)
        self.stats.operations += len(plaintexts)
        return self._transform_many(ivs, plaintexts)

    @scalar_reference("decrypt")
    def decrypt_many(self, ivs: list, ciphertexts: list) -> list:
        """Decrypt a batch of chunks, one IV each, in a single fast-path pass."""
        self.stats.bytes_decrypted += sum(len(c) for c in ciphertexts)
        self.stats.operations += len(ciphertexts)
        return self._transform_many(ivs, ciphertexts)

    # -- zero-copy array batches ------------------------------------------------

    def _transform_array(self, ivs: np.ndarray, data: np.ndarray) -> np.ndarray:
        if ivs.shape[0] != data.shape[0]:
            raise ShieldError("batched AES-CTR needs one IV per chunk")
        if self.uses_fast_path:
            return self._vector().ctr_transform_array(ivs, data)
        out = np.empty_like(data)
        for row in range(data.shape[0]):
            out[row] = np.frombuffer(
                ctr_transform(self._cipher, ivs[row].tobytes(), data[row].tobytes()),
                dtype=np.uint8,
            )
        return out

    @hot_path
    @scalar_reference("encrypt")
    def encrypt_many_array(self, ivs: np.ndarray, plaintexts: np.ndarray) -> np.ndarray:
        """Encrypt an ``(n, chunk)`` uint8 array under ``(n, 12)`` IVs.

        Byte-identical to :meth:`encrypt_many`, but input and output stay one
        numpy buffer each -- the allocation-per-chunk-free path the region
        sealer uses.
        """
        self.stats.bytes_encrypted += plaintexts.size
        self.stats.operations += plaintexts.shape[0]
        return self._transform_array(ivs, plaintexts)

    @hot_path
    @scalar_reference("decrypt")
    def decrypt_many_array(self, ivs: np.ndarray, ciphertexts: np.ndarray) -> np.ndarray:
        """Decrypt an ``(n, chunk)`` uint8 array under ``(n, 12)`` IVs."""
        self.stats.bytes_decrypted += ciphertexts.size
        self.stats.operations += ciphertexts.shape[0]
        return self._transform_array(ivs, ciphertexts)


class MacEngine:
    """A configurable authentication engine (HMAC-SHA256, AES-PMAC, or AES-CMAC).

    ``fast_crypto`` mirrors :class:`AesEngine`: ``True`` routes the batched
    :meth:`tag_many` / :meth:`verify_many` entry points through the vectorized
    multi-message MACs in :mod:`repro.crypto.fasthash`, ``False`` forces the
    scalar reference, and ``None`` (default) defers to
    :func:`repro.crypto.fastpath.fast_path_enabled` at each call.  Both paths
    produce byte-identical tags.
    """

    def __init__(
        self, key: bytes, algorithm: str = "HMAC", fast_crypto: bool | None = None
    ):
        if algorithm not in ("HMAC", "PMAC", "CMAC"):
            raise ShieldError(f"unknown MAC algorithm {algorithm!r}")
        self.algorithm = algorithm
        self.fast_crypto = fast_crypto
        self._key = key if algorithm == "HMAC" else key[:16]
        self._batched: BatchedMac | None = None
        self.stats = EngineStats()

    @property
    def bytes_per_cycle(self) -> float:
        """Modelled per-engine throughput."""
        if self.algorithm == "HMAC":
            return HMAC_BYTES_PER_CYCLE
        if self.algorithm == "PMAC":
            return PMAC_BYTES_PER_CYCLE
        return CMAC_BYTES_PER_CYCLE

    @property
    def parallelizable(self) -> bool:
        """Whether multiple engines can cooperate on a single chunk."""
        return self.algorithm == "PMAC"

    @property
    def uses_fast_path(self) -> bool:
        """Whether the next batched call will take the vectorized path."""
        if self.fast_crypto is None:
            return fast_path_enabled()
        return self.fast_crypto

    def tag(self, message: bytes) -> bytes:
        """Compute a 16-byte tag (longer tags are truncated for DRAM storage)."""
        self.stats.bytes_authenticated += len(message)
        self.stats.operations += 1
        return compute_mac(self.algorithm, self._key, message)[:16]

    def verify(self, message: bytes, tag: bytes) -> None:
        """Verify a tag produced by :meth:`tag`; raises :class:`IntegrityError`."""
        if not constant_time_equal(self.tag(message), tag):
            raise IntegrityError(f"{self.algorithm} tag mismatch")

    @scalar_reference("tag")
    def tag_many(self, messages: list) -> list:
        """Tag a batch of messages in one vectorized MAC pass on the fast path.

        Byte-identical to calling :meth:`tag` per message; on the fast path
        all equal-length messages (the whole batch, for region chunk MACs)
        share a single multi-message pass.
        """
        self.stats.bytes_authenticated += sum(len(m) for m in messages)
        self.stats.operations += len(messages)
        if not messages:
            return []
        if self.uses_fast_path:
            tags = self._batched_mac().tag_many(messages)
        else:
            tags = [compute_mac(self.algorithm, self._key, m) for m in messages]
        return [tag[:16] for tag in tags]

    def _batched_mac(self) -> BatchedMac:
        # Per-key setup (HMAC pads, AES key schedule, PMAC/CMAC subkeys) is
        # done once and reused across batches, like AesEngine._vector().
        if self._batched is None:
            self._batched = BatchedMac(self.algorithm, self._key)
        return self._batched

    @hot_path
    @scalar_reference("tag")
    def tag_many_array(self, messages: np.ndarray) -> np.ndarray:
        """Tag an equal-length ``(n, length)`` uint8 batch; returns ``(n, 16)``.

        Byte-identical to :meth:`tag_many` over the same rows, but the batch
        stays one numpy buffer end-to-end (the region sealer's zero-copy
        chunk-MAC path).
        """
        self.stats.bytes_authenticated += messages.size
        self.stats.operations += messages.shape[0]
        if messages.shape[0] == 0:
            return np.empty((0, 16), dtype=np.uint8)
        if self.uses_fast_path:
            return self._batched_mac().tag_many_array(messages)[:, :16]
        out = np.empty((messages.shape[0], 16), dtype=np.uint8)
        for row in range(messages.shape[0]):
            tag = compute_mac(self.algorithm, self._key, messages[row].tobytes())  # lint: allow[hot-copy] scalar fallback
            out[row] = np.frombuffer(tag[:16], dtype=np.uint8)
        return out

    @scalar_reference("verify")
    def verify_many_array(self, messages: np.ndarray, tags: list) -> None:
        """Verify a batch of 16-byte tags over an ``(n, length)`` message array.

        Every row is checked (no early exit) before the batch is rejected
        with :class:`IntegrityError`, like :meth:`verify_many`.
        """
        if messages.shape[0] != len(tags):
            raise IntegrityError("verify_many needs exactly one tag per message")
        computed = self.tag_many_array(messages)
        matched = True
        for row, presented in zip(computed, tags):
            matched &= constant_time_equal(row.tobytes(), bytes(presented))
        if not matched:
            raise IntegrityError(f"{self.algorithm} tag mismatch")

    @scalar_reference("verify")
    def verify_many(self, messages: list, tags: list) -> None:
        """Verify a batch of tags produced by :meth:`tag` / :meth:`tag_many`.

        Every message is checked (no early exit) before the batch is rejected
        with :class:`IntegrityError`, so tampering with any chunk fails the
        whole batch exactly as the chunk-at-a-time loop would.
        """
        if len(messages) != len(tags):
            raise IntegrityError("verify_many needs exactly one tag per message")
        matched = True
        for computed, presented in zip(self.tag_many(messages), tags):
            matched &= constant_time_equal(computed, presented)
        if not matched:
            raise IntegrityError(f"{self.algorithm} tag mismatch")


def engine_set_encryption_rate(config: EngineSetConfig) -> float:
    """Aggregate encryption throughput (bytes/cycle) of an engine set."""
    rate = AES_BYTES_PER_CYCLE_PER_SBOX * config.sbox_parallelism
    if config.aes_key_bits == 256:
        rate *= AES_256_THROUGHPUT_FACTOR
    return rate * config.num_aes_engines


def engine_set_authentication_rate(config: EngineSetConfig) -> float:
    """Aggregate authentication throughput (bytes/cycle) of an engine set.

    HMAC/CMAC are sequential per chunk, so extra engines do not increase the
    single-stream rate; PMAC engines parallelize.
    """
    if config.mac_algorithm == "HMAC":
        return HMAC_BYTES_PER_CYCLE
    if config.mac_algorithm == "CMAC":
        return CMAC_BYTES_PER_CYCLE
    return PMAC_BYTES_PER_CYCLE * config.num_mac_engines


def engine_set_crypto_rate(config: EngineSetConfig) -> float:
    """The engine set's sustainable authenticated-encryption rate (bytes/cycle)."""
    return min(engine_set_encryption_rate(config), engine_set_authentication_rate(config))


def build_engines(
    config: EngineSetConfig, region_key: bytes
) -> tuple[AesEngine, MacEngine]:
    """Instantiate the functional engines of an engine set for a given region key."""
    enc_key = derive_subkey(region_key, "engine-encrypt", config.aes_key_bits // 8)
    mac_key = derive_subkey(region_key, "engine-mac", 32)
    return (
        AesEngine(
            enc_key,
            config.sbox_parallelism,
            config.aes_key_bits,
            fast_crypto=config.fast_crypto,
        ),
        MacEngine(mac_key, config.mac_algorithm, fast_crypto=config.fast_crypto),
    )
