"""Project-specific static analysis and runtime sanitizers.

The Shield reproduction carries three load-bearing invariants that ordinary
tests cannot police exhaustively:

1. **Secret hygiene** -- key material, derived sub-keys, and tenant plaintext
   must never escape the Shield boundary into logs, trace spans, metric
   labels, exception text, or ``repr`` output (the paper's core isolation
   guarantee, applied to the *observability* surface).
2. **Thread confinement** -- all scheduler and job-map state is owned by the
   event loop (PR 7's design rule); the executor-side job body may touch only
   its own board slot and session.
3. **Zero-copy aliasing** -- the batched datapath hands out ``memoryview``
   rows of shared backing buffers (PR 8); hot paths must not silently copy
   them back into ``bytes``, and nothing may mutate a backing array while
   rows are live.

This package enforces them twice over:

* ``python -m repro.analysis src/`` runs an AST-based lint pass
  (:mod:`repro.analysis.engine` + the checkers under
  :mod:`repro.analysis.checkers`) seeded by the :mod:`~repro.analysis.annotations`
  decorators that product code already carries (``@secret``, ``@loop_owned``,
  ``@executor_side``, ``@hot_path``, ``@scalar_reference``).
* ``REPRO_SANITIZE=1`` arms the runtime sanitizer
  (:mod:`repro.analysis.sanitizer`): shared ciphertext/plaintext backing
  arrays freeze while memoryview rows are live, loop-owned methods assert
  the calling thread, and hot paths report every fallback copy to a counter
  tests can fail on.

See ``docs/static-analysis.md`` for the invariants, the suppression/baseline
workflow, and the sanitizer mode.
"""

from __future__ import annotations

from repro.analysis.annotations import (
    executor_side,
    hot_path,
    loop_owned,
    scalar_reference,
    secret,
)
from repro.analysis.findings import Finding
from repro.analysis.sanitizer import SanitizerError

__all__ = [
    "Finding",
    "SanitizerError",
    "executor_side",
    "hot_path",
    "loop_owned",
    "scalar_reference",
    "secret",
]
