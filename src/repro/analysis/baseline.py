"""Baseline file: accepted findings that report but do not fail the run.

The baseline is a checked-in JSON file of finding fingerprints (see
:attr:`repro.analysis.findings.Finding.fingerprint` -- checker + path +
enclosing symbol + message, so entries survive unrelated line churn).  A
finding whose fingerprint appears in the baseline is still *reported* (and
marked ``[baselined]``) but does not flip the exit code; new findings do.

Regenerate with ``python -m repro.analysis src --write-baseline`` after an
intentional change; review the diff like any other code change.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, List

from repro.analysis.findings import Finding

_SCHEMA_VERSION = 1


def load_baseline(path: str) -> set:
    """The set of accepted fingerprints (empty for a missing file)."""
    file = Path(path)
    if not file.is_file():
        return set()
    payload = json.loads(file.read_text(encoding="utf-8"))
    return {entry["fingerprint"] for entry in payload.get("findings", [])}

def save_baseline(path: str, findings: Iterable[Finding]) -> None:
    """Write every current finding as an accepted baseline entry."""
    entries = sorted(
        (
            {
                "fingerprint": f.fingerprint,
                "checker": f.checker,
                "path": f.to_dict()["path"],
                "symbol": f.symbol,
                "message": f.message,
            }
            for f in findings
        ),
        key=lambda entry: (entry["path"], entry["checker"], entry["message"]),
    )
    payload = {"version": _SCHEMA_VERSION, "findings": entries}
    Path(path).write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

def apply_baseline(findings: Iterable[Finding], accepted: set) -> List[Finding]:
    """Mark accepted findings; returns the full list with flags set."""
    out = []
    for finding in findings:
        if finding.fingerprint in accepted:
            finding = Finding(
                checker=finding.checker,
                path=finding.path,
                line=finding.line,
                col=finding.col,
                message=finding.message,
                symbol=finding.symbol,
                baselined=True,
            )
        out.append(finding)
    return out
