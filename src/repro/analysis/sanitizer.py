"""The runtime half of the invariant tooling (armed by ``REPRO_SANITIZE=1``).

Static analysis catches what it can see; the sanitizer catches what it
cannot.  With ``REPRO_SANITIZE=1`` in the environment (or after
:func:`enable`):

* :func:`freeze` flips a shared backing array to ``writeable=False`` before
  its memoryview rows escape (the zero-copy seal/unseal buffers), so any
  later write through a live :class:`~repro.core.sealing.SealedChunk` row's
  backing storage raises immediately instead of silently corrupting
  ciphertext another consumer is still reading.
* :func:`assert_owner` (used by the ``@loop_owned`` decorator) binds each
  guarded object to the first thread that touches it and raises
  :class:`SanitizerError` when any *other* thread calls a loop-owned method
  -- the executable form of PR 7's "the event loop owns all scheduler state".
* :func:`note_copy` + :func:`counting_copies` expose a copy counter that the
  batched datapath's known fallback-copy sites report into, so a hot-path
  test can assert that a fast-path operation allocated nothing.

Everything here is stdlib-only and free when disabled: the product-code call
sites guard on :func:`enabled`, which is a plain module-global read.
"""

from __future__ import annotations

import os
import threading
from contextlib import contextmanager
from dataclasses import dataclass, field

__all__ = [
    "SanitizerError",
    "assert_owner",
    "counting_copies",
    "disable",
    "enable",
    "enabled",
    "freeze",
    "note_copy",
    "release_owner",
]


class SanitizerError(AssertionError):
    """An invariant the sanitizer polices was violated at runtime."""


_enabled = os.environ.get("REPRO_SANITIZE", "") not in ("", "0")


def enabled() -> bool:
    """Whether sanitizer checks are armed (``REPRO_SANITIZE=1`` or :func:`enable`)."""
    return _enabled


def enable() -> None:
    """Arm the sanitizer for this process (tests use this instead of the env var)."""
    global _enabled
    _enabled = True


def disable() -> None:
    global _enabled
    _enabled = False


# -- zero-copy aliasing ------------------------------------------------------------


def freeze(array) -> None:
    """Make a shared backing array read-only while memoryview rows are live.

    ``array`` is any object with numpy's ``flags.writeable`` protocol; taking
    it duck-typed keeps this module numpy-free.  No-op when the sanitizer is
    disabled, so the fast path's buffers stay writable for legitimate reuse
    patterns outside sanitize mode.
    """
    if _enabled:
        array.flags.writeable = False


# -- thread confinement ------------------------------------------------------------

#: Attribute slot used to bind a guarded object to its owning thread.
_OWNER_ATTR = "_sanitizer_owner_ident"


def assert_owner(obj, method_name: str) -> None:
    """Bind ``obj`` to the calling thread on first use; fail on any other thread.

    Lazy binding matches both drive modes: the synchronous drain binds the
    main thread, the async front-end binds the event-loop thread at the first
    submit -- and an executor worker touching a loop-owned method afterwards
    raises :class:`SanitizerError` naming the method and both threads.
    """
    if not _enabled:
        return
    ident = threading.get_ident()
    owner = getattr(obj, _OWNER_ATTR, None)
    if owner is None:
        try:
            setattr(obj, _OWNER_ATTR, ident)
        except AttributeError:  # frozen/slotted objects cannot be bound
            pass
        return
    if owner != ident:
        raise SanitizerError(
            f"{type(obj).__name__}.{method_name} is owned by thread {owner} "
            f"but was called from thread {ident} "
            f"({threading.current_thread().name!r}); scheduler state must "
            "only be touched from the event loop"
        )


def release_owner(obj) -> None:
    """Unbind a guarded object (tests that legitimately hand an object over)."""
    if hasattr(obj, _OWNER_ATTR):
        delattr(obj, _OWNER_ATTR)


# -- copy counting -----------------------------------------------------------------


@dataclass
class CopyCounter:
    """Copies the datapath reported while a :func:`counting_copies` scope was open."""

    copies: int = 0
    bytes: int = 0
    sites: dict = field(default_factory=dict)

    def record(self, site: str, nbytes: int) -> None:
        self.copies += 1
        self.bytes += nbytes
        self.sites[site] = self.sites.get(site, 0) + 1


_counter_stack: list = []
_counter_lock = threading.Lock()


def note_copy(site: str, nbytes: int) -> None:
    """Report one fallback copy of ``nbytes`` at ``site``.

    Called by the batched datapath wherever it materializes ``bytes`` from a
    shared buffer (the scalar fallbacks).  Free when no counter is open.
    """
    if not _counter_stack:
        return
    with _counter_lock:
        for counter in _counter_stack:
            counter.record(site, nbytes)


@contextmanager
def counting_copies():
    """Collect every :func:`note_copy` within the scope into a :class:`CopyCounter`.

    Hot-path tests run a fast-path batch inside the scope and assert
    ``counter.copies == 0``; scalar-fallback tests assert the copies (and
    their sites) were recorded.  Nested scopes each see all copies.
    """
    counter = CopyCounter()
    with _counter_lock:
        _counter_stack.append(counter)
    try:
        yield counter
    finally:
        with _counter_lock:
            _counter_stack.remove(counter)
