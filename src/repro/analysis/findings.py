"""The per-file finding model shared by every checker and reporter."""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field


@dataclass(frozen=True)
class Finding:
    """One invariant violation at one source location.

    ``symbol`` is the enclosing function/class qualname (empty at module
    level); it feeds the baseline fingerprint so accepted findings survive
    unrelated line-number churn.
    """

    checker: str
    path: str
    line: int
    col: int
    message: str
    symbol: str = ""
    #: True when a baseline entry accepted this finding (reported, not fatal).
    baselined: bool = field(default=False, compare=False)

    @property
    def fingerprint(self) -> str:
        """Stable identity for baseline matching (line-number independent)."""
        key = "\x1f".join((self.checker, _normalize_path(self.path), self.symbol, self.message))
        return hashlib.sha256(key.encode("utf-8")).hexdigest()[:16]

    def to_dict(self) -> dict:
        return {
            "checker": self.checker,
            "path": _normalize_path(self.path),
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "symbol": self.symbol,
            "fingerprint": self.fingerprint,
            "baselined": self.baselined,
        }

    def render(self) -> str:
        where = f"{self.path}:{self.line}:{self.col}"
        tag = " [baselined]" if self.baselined else ""
        return f"{where}: {self.checker}: {self.message}{tag}"


def _normalize_path(path: str) -> str:
    """Forward-slash path anchored at the repo tree so fingerprints match
    whether the tool was invoked with relative or absolute paths."""
    path = path.replace("\\", "/")
    for anchor in ("src/repro/", "tests/"):
        index = path.find(anchor)
        if index > 0:
            path = path[index:]
            break
    return path.lstrip("./")
