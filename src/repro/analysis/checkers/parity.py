"""Fast/scalar parity checker: every batched entry point needs a reference.

The batched datapath (``*_many`` / ``*_array`` functions) exists purely for
throughput; its contract is bit-for-bit agreement with the scalar
implementation it replaces.  That contract is only real if (a) the scalar
twin is named, and (b) a conformance test actually exercises the fast path.

For every *public* ``*_many`` / ``*_array`` def this checker requires:

* a ``@scalar_reference("<target>")`` decorator,
* the target to resolve -- a bare name must be defined in the same
  module/class scope, a dotted ``pkg.mod:name`` anywhere in the project,
* the fast path's own name to appear in the test corpus (when the runner was
  given a ``--tests-dir``).

Files under ``repro/analysis`` itself are exempt (the registry is not a
datapath), as are private (``_``-prefixed) helpers -- the public entry point
that wraps them carries the contract.
"""

from __future__ import annotations

import ast

from repro.analysis.engine import Checker, Project, SourceFile, decorator_names

FAST_SUFFIXES = ("_many", "_array")


def _is_fast_name(name: str) -> bool:
    return name.endswith(FAST_SUFFIXES) and not name.startswith("_")


class FastScalarParityChecker(Checker):
    id = "fast-parity"

    # -- phase 2 only (the decorator itself is read per-file) ----------------------

    def check(self, file: SourceFile, project: Project):
        if "repro/analysis" in file.path.replace("\\", "/"):
            return []
        findings = []
        for node in file.functions():
            if not _is_fast_name(node.name):
                continue
            target = self._reference_target(node)
            if target is None:
                findings.append(
                    self.finding(
                        file,
                        node,
                        f"fast path {node.name}() has no @scalar_reference; "
                        f"register its scalar twin",
                    )
                )
                continue
            if not self._resolves(target, file, node, project):
                findings.append(
                    self.finding(
                        file,
                        node,
                        f"scalar reference {target!r} for {node.name}() does "
                        f"not resolve to a known definition",
                    )
                )
            if project.tests_text and node.name not in project.tests_text:
                findings.append(
                    self.finding(
                        file,
                        node,
                        f"fast path {node.name}() is not exercised by any "
                        f"test; add a conformance test against {target!r}",
                    )
                )
        return findings

    @staticmethod
    def _reference_target(node):
        for name, call in decorator_names(node):
            if name == "scalar_reference" and call is not None and call.args:
                arg = call.args[0]
                if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
                    return arg.value
        return None

    @staticmethod
    def _resolves(target: str, file: SourceFile, node, project: Project) -> bool:
        if ":" in target:
            module, _, name = target.partition(":")
            return project.defines(module, name)
        # Bare name: same class scope first, then same module (top level or
        # any class in the file).
        scope = file.scope_of(node)
        if scope and project.defines(file.module, f"{scope}.{target}"):
            return True
        if project.defines(file.module, target):
            return True
        return any(
            qualname.rsplit(".", 1)[-1] == target
            for qualname in project.defs.get(file.module, ())
        )
