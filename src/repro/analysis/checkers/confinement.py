"""Thread-confinement checker: executor code must not touch loop state.

The serving stack splits every job into a loop-side phase (placement,
queueing, scheduler bookkeeping -- ``@loop_owned`` methods of
``ShieldCloudService`` / ``FleetScheduler`` / ``AsyncShieldFrontend``) and an
executor-side phase (the blocking job body -- ``@executor_side`` functions
such as ``execute_placed``).  The invariant is that the executor phase never
calls back into loop-owned methods and never mutates scheduler state: doing
so races the event loop's single-threaded view of queues and board
occupancy.

Both registries are collected syntactically from decorators, so the checker
works on fixture files that never import the real service.  Within an
``@executor_side`` function (and its nested defs) it flags:

* calls to any collected ``@loop_owned`` method name,
* calls routed through a scheduler attribute (``self.scheduler.evict(...)``),
* attribute stores whose target path mentions the scheduler or its private
  state (``_queue``, ``_free_boards``, ...),
* one-hop ``self._helper()`` calls where ``_helper`` on the same class is
  itself flagged (the classic "hide the evict behind a private method"
  laundering).
"""

from __future__ import annotations

import ast

from repro.analysis.engine import (
    Checker,
    Project,
    SourceFile,
    call_name,
    decorator_names,
    dotted_source,
)

#: Scheduler-private attribute names executor-side code must not store to.
SCHEDULER_STATE = frozenset(
    {
        "_queue",
        "_free_boards",
        "_submit_ts",
        "_futures",
        "_inflight",
        "_terminal_jobs",
    }
)


class LoopConfinementChecker(Checker):
    id = "loop-confinement"

    def __init__(self):
        #: Bare method names decorated @loop_owned anywhere in the project.
        self._loop_owned: set = set()
        #: Qualnames of @executor_side functions.
        self._executor_side: set = set()

    # -- phase 1 ------------------------------------------------------------------

    def collect(self, file: SourceFile, project: Project) -> None:
        for node in file.functions():
            for name, _ in decorator_names(node):
                if name == "loop_owned":
                    self._loop_owned.add(node.name)
                elif name == "executor_side":
                    self._executor_side.add(file.qualname(node))

    # -- phase 2 ------------------------------------------------------------------

    def check(self, file: SourceFile, project: Project):
        findings = []
        for node in file.functions():
            if file.qualname(node) not in self._executor_side:
                continue
            # First sweep: find this function's directly-offending helper
            # calls, plus which same-class helpers it invokes one hop away.
            helper_calls = self._check_body(file, node, findings)
            self._check_helpers(file, node, helper_calls, findings)
        return findings

    def _check_body(self, file: SourceFile, func, findings) -> dict:
        """Flag direct violations inside ``func``; return ``{helper: call_node}``."""
        helper_calls: dict = {}
        for node in ast.walk(func):
            if isinstance(node, ast.Call):
                callee = call_name(node)
                receiver = (
                    dotted_source(node.func.value)
                    if isinstance(node.func, ast.Attribute)
                    else ""
                )
                if callee in self._loop_owned:
                    findings.append(
                        self.finding(
                            file,
                            node,
                            f"executor-side code calls loop-owned method "
                            f".{callee}(); route through the event loop instead",
                        )
                    )
                elif ".scheduler" in f".{receiver}" or receiver == "scheduler":
                    findings.append(
                        self.finding(
                            file,
                            node,
                            f"executor-side code calls scheduler method "
                            f"{receiver}.{callee}(); scheduler state is loop-owned",
                        )
                    )
                elif receiver == "self" and callee.startswith("_"):
                    helper_calls.setdefault(callee, node)
            elif isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    if not isinstance(target, ast.Attribute):
                        continue
                    path = dotted_source(target)
                    if "scheduler" in path.split(".") or target.attr in SCHEDULER_STATE:
                        findings.append(
                            self.finding(
                                file,
                                node,
                                f"executor-side code mutates loop-owned state "
                                f"{path}; only the event loop may write it",
                            )
                        )
        return helper_calls

    def _check_helpers(self, file: SourceFile, func, helper_calls: dict, findings) -> None:
        """One-hop laundering: ``self._helper()`` where ``_helper`` offends."""
        if not helper_calls:
            return
        scope = file.scope_of(func)  # the enclosing class qualname, if any
        if not scope:
            return
        for other in file.functions():
            if file.scope_of(other) != scope or other.name not in helper_calls:
                continue
            if file.qualname(other) in self._executor_side:
                continue  # judged on its own
            probe: list = []
            self._check_body(file, other, probe)
            if probe:
                call_node = helper_calls[other.name]
                findings.append(
                    self.finding(
                        file,
                        call_node,
                        f"executor-side code calls self.{other.name}(), which "
                        f"touches loop-owned scheduler state",
                    )
                )
