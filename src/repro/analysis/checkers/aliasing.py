"""Zero-copy aliasing checker for the batched datapath.

The batched seal/unseal path earns its throughput by never materialising
per-chunk ``bytes``: ciphertext lives in one backing array and each
``SealedChunk`` carries a memoryview row of it.  Two classes of bug undo
that:

* a copy sneaks back in (``bytes(row)``, ``row.tobytes()``, ``arr.copy()``,
  ``np.array(..., copy=True)``) and the "zero-copy" path quietly allocates
  per chunk again;
* code writes to a backing array *after* exporting memoryview rows of it,
  silently corrupting every previously returned chunk.

Inside functions marked ``@hot_path`` this checker flags the copy calls
(suppressible with ``# lint: allow[hot-copy]`` on declared scalar
fallbacks), and flags subscript-stores to any array whose ``.data`` /
``.reshape(...).data`` memoryview has already been exported in the same
function.  The runtime sanitizer enforces the same aliasing rule
dynamically by flipping ``writeable=False`` on shared backing arrays.
"""

from __future__ import annotations

import ast

from repro.analysis.engine import (
    Checker,
    Project,
    SourceFile,
    call_name,
    decorator_names,
    dotted_source,
)

#: Method calls that materialise a copy of a buffer.
COPY_METHODS = frozenset({"copy", "tobytes", "deepcopy"})

#: Bare calls that materialise a copy when given a buffer argument.
COPY_CALLS = frozenset({"bytes", "bytearray"})


class HotCopyChecker(Checker):
    id = "hot-copy"

    def __init__(self):
        self._hot_paths: set = set()

    # -- phase 1 ------------------------------------------------------------------

    def collect(self, file: SourceFile, project: Project) -> None:
        for node in file.functions():
            for name, _ in decorator_names(node):
                if name == "hot_path":
                    self._hot_paths.add(file.qualname(node))

    # -- phase 2 ------------------------------------------------------------------

    def check(self, file: SourceFile, project: Project):
        findings = []
        for node in file.functions():
            if file.qualname(node) in self._hot_paths:
                self._check_hot_function(file, node, findings)
        return findings

    def _check_hot_function(self, file: SourceFile, func, findings) -> None:
        #: array root -> line of the first statement exporting a view of it.
        exported: dict = {}
        for statement in ast.walk(func):
            if isinstance(statement, ast.Call):
                self._check_copy_call(file, func, statement, findings)
            if isinstance(statement, (ast.Assign, ast.AnnAssign, ast.AugAssign, ast.Expr)):
                self._track_exports(statement, exported)
        for statement in ast.walk(func):
            if isinstance(statement, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                self._check_aliased_store(file, statement, exported, findings)

    def _check_copy_call(self, file: SourceFile, func, node: ast.Call, findings) -> None:
        callee = call_name(node)
        if isinstance(node.func, ast.Name):
            if callee in COPY_CALLS and node.args:
                findings.append(
                    self.finding(
                        file,
                        node,
                        f"{callee}() copies a buffer inside hot path "
                        f"{func.name}(); pass the memoryview through instead",
                    )
                )
            elif callee == "deepcopy" and node.args:
                findings.append(
                    self.finding(
                        file, node, f"deepcopy() inside hot path {func.name}()"
                    )
                )
        elif isinstance(node.func, ast.Attribute):
            receiver = dotted_source(node.func.value)
            if callee in COPY_METHODS:
                findings.append(
                    self.finding(
                        file,
                        node,
                        f"{receiver or '<expr>'}.{callee}() copies a buffer "
                        f"inside hot path {func.name}()",
                    )
                )
            elif callee in {"array", "copy"} and receiver in {"np", "numpy"}:
                if callee == "copy" or _np_array_copies(node):
                    findings.append(
                        self.finding(
                            file,
                            node,
                            f"{receiver}.{callee}() allocates a copy inside "
                            f"hot path {func.name}()",
                        )
                    )

    @staticmethod
    def _track_exports(statement, exported: dict) -> None:
        """Record backing arrays whose memoryviews escape this statement."""
        value = getattr(statement, "value", None)
        if value is None:
            return
        for node in ast.walk(value):
            if isinstance(node, ast.Attribute) and node.attr == "data":
                root = _array_root(node.value)
                if root:
                    line = getattr(statement, "lineno", 0)
                    exported[root] = min(exported.get(root, line), line)

    def _check_aliased_store(self, file: SourceFile, statement, exported: dict, findings) -> None:
        targets = (
            statement.targets
            if isinstance(statement, ast.Assign)
            else [statement.target]
        )
        for target in targets:
            if not isinstance(target, ast.Subscript):
                continue
            root = _array_root(target.value)
            if root in exported and getattr(statement, "lineno", 0) > exported[root]:
                findings.append(
                    self.finding(
                        file,
                        statement,
                        f"write to array {root!r} after exporting memoryview "
                        f"rows of it; live SealedChunk views would be corrupted",
                    )
                )


def _array_root(node: ast.AST) -> str:
    """The base name of an array expression, through reshape/view calls.

    ``arr`` -> 'arr'; ``arr.reshape(-1)`` -> 'arr'; ``self.buf.reshape(-1)``
    -> 'self.buf'.  Unrelated expressions yield ''.
    """
    while True:
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            if node.func.attr in {"reshape", "view", "ravel"}:
                node = node.func.value
                continue
            return ""
        break
    return dotted_source(node)


def _np_array_copies(node: ast.Call) -> bool:
    """True unless ``np.array(..., copy=False)`` was spelled out."""
    for keyword in node.keywords:
        if keyword.arg == "copy":
            return not (
                isinstance(keyword.value, ast.Constant)
                and keyword.value.value is False
            )
    return True
