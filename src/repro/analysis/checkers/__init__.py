"""The project-specific checkers (one module per invariant)."""

from __future__ import annotations

from repro.analysis.checkers.aliasing import HotCopyChecker
from repro.analysis.checkers.confinement import LoopConfinementChecker
from repro.analysis.checkers.parity import FastScalarParityChecker
from repro.analysis.checkers.secret_hygiene import SecretFlowChecker

#: Construction order == report order for equal locations.
ALL_CHECKERS = (
    SecretFlowChecker,
    LoopConfinementChecker,
    HotCopyChecker,
    FastScalarParityChecker,
)


def default_checkers() -> list:
    return [cls() for cls in ALL_CHECKERS]
