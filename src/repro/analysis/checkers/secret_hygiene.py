"""Secret-hygiene taint pass: key material must never reach text surfaces.

The paper's isolation guarantee is only as strong as the observability
surface: a Data Encryption Key that reaches a log line, a span attribute, a
metrics label, an exception message, or a ``repr`` has escaped the Shield
boundary just as surely as plaintext DMA'd through the host.

Taint seeds (per function, intra-procedural):

* calls to ``@secret``-annotated sources (collected syntactically from the
  whole project -- ``derive_subkey``, ``hkdf*``, ``region_key``,
  ``data_key``, ...),
* attribute reads of secret fields (``.material``, ``.scalar``,
  ``.private_exponent``),
* parameters with secret-bearing names (``plaintext``, ``master_key``, ...).

Taint propagates through assignment, slicing, concatenation,
``bytes``/``bytearray``/``memoryview`` wrapping, and ordinary calls; it is
*declassified* by encryption/sealing/wrapping/MAC/hash operations (their
output is ciphertext or a public digest) and by size/type queries.

Sinks: logging/print calls, tracer ``record_span``/``mark``/``security``
attributes, metrics label kwargs, ``raise`` messages, f-strings and
stringifiers.  A separate structural rule flags dataclasses whose
auto-generated ``__repr__`` would print a secret-named field.
"""

from __future__ import annotations

import ast

from repro.analysis.engine import Checker, Project, SourceFile, call_name, decorator_names

#: Attribute names whose read is secret material.
SECRET_ATTRS = frozenset({"material", "scalar", "private_exponent"})

#: Parameter names treated as secret-bearing at function entry.
SECRET_PARAMS = frozenset(
    {
        "plaintext",
        "plaintexts",
        "plaintext_array",
        "data_encryption_key",
        "input_key_material",
        "key_material",
        "master_key",
        "pseudo_random_key",
        "session_key",
        "secret",
    }
)

#: Dataclass fields an auto-generated __repr__ must not print.
SECRET_FIELDS = frozenset(
    {
        "material",
        "scalar",
        "private_exponent",
        "private_key",
        "shield_private_key",
        "data_encryption_key",
        "session_key",
        "data_owner",
    }
)

#: Calls whose result is public however secret the inputs (ciphertext,
#: digests, sizes).  Matched on the bare callee name.
DECLASSIFIER_NAMES = frozenset(
    {
        "len",
        "bool",
        "int",
        "float",
        "type",
        "id",
        "isinstance",
        "range",
        "sha256",
        "hmac_sha256",
        "compute_mac",
        "fingerprint",
        "constant_time_equal",
        "public_key",
    }
)
DECLASSIFIER_PREFIXES = (
    "encrypt",
    "seal",
    "wrap",
    "tag",
    "verify",
    "ctr_transform",
    "rsa_encrypt",
    "sign",
    "measure",
)

LOG_METHODS = frozenset({"debug", "info", "warning", "error", "exception", "critical", "log"})
TRACER_METHODS = frozenset({"record_span", "mark", "security"})
METRIC_METHODS = frozenset({"counter", "gauge", "histogram"})
STRINGIFIERS = frozenset({"str", "repr", "format", "ascii", "hex"})


def _declassifies(name: str) -> bool:
    return name in DECLASSIFIER_NAMES or name.startswith(DECLASSIFIER_PREFIXES)


class SecretFlowChecker(Checker):
    id = "secret-flow"

    def __init__(self):
        #: Bare names of @secret sources, collected project-wide.
        self._sources: set = set()

    # -- phase 1 ------------------------------------------------------------------

    def collect(self, file: SourceFile, project: Project) -> None:
        for node in file.functions():
            for name, _ in decorator_names(node):
                if name == "secret":
                    self._sources.add(node.name)

    # -- taint evaluation ---------------------------------------------------------

    def _tainted(self, node: ast.AST, names: set) -> bool:
        if isinstance(node, ast.Name):
            return node.id in names
        if isinstance(node, ast.Attribute):
            return node.attr in SECRET_ATTRS or self._tainted(node.value, names)
        if isinstance(node, ast.Call):
            callee = call_name(node)
            if _declassifies(callee):
                return False
            if callee in self._sources:
                return True
            children = list(node.args) + [kw.value for kw in node.keywords]
            if isinstance(node.func, ast.Attribute):
                children.append(node.func.value)
            return any(self._tainted(child, names) for child in children)
        if isinstance(node, ast.Compare):
            return False  # comparisons yield booleans
        if isinstance(node, (ast.Constant, ast.Lambda)):
            return False
        return any(
            self._tainted(child, names) for child in ast.iter_child_nodes(node)
        )

    # -- phase 2 ------------------------------------------------------------------

    def check(self, file: SourceFile, project: Project):
        findings = {}

        def emit(node, message):
            finding = self.finding(file, node, message)
            findings[(finding.line, finding.col, finding.message)] = finding

        for node in file.functions():
            self._check_function(file, node, emit)
        for node in file.classes():
            self._check_dataclass_repr(node, emit)
        return list(findings.values())

    def _check_function(self, file: SourceFile, func, emit) -> None:
        args = func.args
        params = [
            *args.posonlyargs, *args.args, *args.kwonlyargs,
            *( [args.vararg] if args.vararg else [] ),
            *( [args.kwarg] if args.kwarg else [] ),
        ]
        tainted = {arg.arg for arg in params if arg.arg in SECRET_PARAMS}
        for statement in func.body:
            self._walk_statement(statement, tainted, emit, func.name)

    def _walk_statement(self, statement, tainted: set, emit, func_name: str) -> None:
        self._find_sinks(statement, tainted, emit, func_name)
        if isinstance(statement, ast.Assign):
            value_tainted = self._tainted(statement.value, tainted)
            for target in statement.targets:
                self._assign(target, value_tainted, tainted)
        elif isinstance(statement, ast.AnnAssign) and statement.value is not None:
            self._assign(
                statement.target, self._tainted(statement.value, tainted), tainted
            )
        elif isinstance(statement, ast.AugAssign):
            if self._tainted(statement.value, tainted):
                self._assign(statement.target, True, tainted)
        elif isinstance(statement, (ast.For, ast.AsyncFor)):
            if self._tainted(statement.iter, tainted):
                self._assign(statement.target, True, tainted)
        elif isinstance(statement, (ast.With, ast.AsyncWith)):
            for item in statement.items:
                if item.optional_vars is not None and self._tainted(
                    item.context_expr, tainted
                ):
                    self._assign(item.optional_vars, True, tainted)
        for body in _nested_bodies(statement):
            for child in body:
                self._walk_statement(child, tainted, emit, func_name)

    @staticmethod
    def _assign(target, value_tainted: bool, tainted: set) -> None:
        if isinstance(target, ast.Name):
            if value_tainted:
                tainted.add(target.id)
            else:
                tainted.discard(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                SecretFlowChecker._assign(element, value_tainted, tainted)
        # Attribute/subscript stores are out of scope for the intra-procedural pass.

    def _find_sinks(self, statement, tainted: set, emit, func_name: str) -> None:
        nested = set()
        for body in _nested_bodies(statement):
            for child in body:
                nested.add(child)
                nested.update(ast.walk(child))
        if isinstance(statement, ast.Raise) and statement.exc is not None:
            exc = statement.exc
            exc_args = exc.args + [kw.value for kw in exc.keywords] if isinstance(exc, ast.Call) else [exc]
            for arg in exc_args:
                if self._tainted(arg, tainted):
                    emit(statement, f"secret-derived value reaches exception message in {func_name}()")
                    break
        for node in ast.walk(statement):
            if node in nested:
                continue
            if isinstance(node, ast.JoinedStr):
                for value in node.values:
                    if isinstance(value, ast.FormattedValue) and self._tainted(
                        value.value, tainted
                    ):
                        emit(node, f"secret-derived value formatted into an f-string in {func_name}()")
                        break
            elif isinstance(node, ast.Call):
                self._check_call_sink(node, tainted, emit, func_name)

    def _check_call_sink(self, node: ast.Call, tainted: set, emit, func_name: str) -> None:
        callee = call_name(node)
        arg_values = list(node.args) + [kw.value for kw in node.keywords]
        any_tainted = any(self._tainted(value, tainted) for value in arg_values)
        if callee in LOG_METHODS and isinstance(node.func, ast.Attribute):
            if any_tainted:
                emit(node, f"secret-derived value reaches logging call .{callee}() in {func_name}()")
        elif callee == "print" and any_tainted:
            emit(node, f"secret-derived value reaches print() in {func_name}()")
        elif callee in TRACER_METHODS and isinstance(node.func, ast.Attribute):
            if any_tainted:
                emit(node, f"secret-derived value reaches tracer .{callee}() attributes in {func_name}()")
        elif callee in METRIC_METHODS and isinstance(node.func, ast.Attribute):
            if any(self._tainted(kw.value, tainted) for kw in node.keywords):
                emit(node, f"secret-derived value used as a metrics label in .{callee}() in {func_name}()")
        elif callee in STRINGIFIERS and any_tainted:
            emit(node, f"secret-derived value stringified via {callee}() in {func_name}()")
        elif callee == "hex" or (
            isinstance(node.func, ast.Attribute) and node.func.attr == "hex"
        ):
            if isinstance(node.func, ast.Attribute) and self._tainted(node.func.value, tainted):
                emit(node, f"secret-derived value stringified via .hex() in {func_name}()")

    # -- structural rule: dataclass auto-repr -------------------------------------

    def _check_dataclass_repr(self, node: ast.ClassDef, emit) -> None:
        dataclass_call = None
        is_dataclass = False
        for name, call in decorator_names(node):
            if name == "dataclass":
                is_dataclass = True
                dataclass_call = call
        if not is_dataclass:
            return
        if dataclass_call is not None and _keyword_is_false(dataclass_call, "repr"):
            return
        for member in node.body:
            if isinstance(member, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if member.name == "__repr__":
                    return
        for member in node.body:
            if not isinstance(member, ast.AnnAssign) or not isinstance(
                member.target, ast.Name
            ):
                continue
            field_name = member.target.id
            if field_name not in SECRET_FIELDS:
                continue
            if _field_repr_disabled(member.value):
                continue
            emit(
                member,
                f"dataclass {node.name} auto-generates a __repr__ that prints "
                f"secret field {field_name!r}; add repr=False or a custom __repr__",
            )


def _nested_bodies(statement) -> list:
    bodies = []
    for attr in ("body", "orelse", "finalbody"):
        block = getattr(statement, attr, None)
        if isinstance(block, list) and block and isinstance(block[0], ast.stmt):
            bodies.append(block)
    for handler in getattr(statement, "handlers", ()):
        bodies.append(handler.body)
    return bodies


def _keyword_is_false(call: ast.Call, name: str) -> bool:
    for keyword in call.keywords:
        if keyword.arg == name and isinstance(keyword.value, ast.Constant):
            return keyword.value.value is False
    return False


def _field_repr_disabled(value) -> bool:
    return (
        isinstance(value, ast.Call)
        and call_name(value) == "field"
        and _keyword_is_false(value, "repr")
    )
