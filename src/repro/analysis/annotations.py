"""Invariant annotations product code carries for the lint pass + sanitizer.

These decorators are the single source of truth for the project's invariant
surfaces.  They do double duty:

* **Statically**, the checkers under :mod:`repro.analysis.checkers` read them
  *syntactically* (no imports of the scanned code): ``@secret`` seeds the
  taint sources of the secret-hygiene pass, ``@loop_owned`` +
  ``@executor_side`` define the thread-confinement rule, ``@hot_path`` marks
  the zero-copy datapath, and ``@scalar_reference`` registers the scalar twin
  the fast/scalar parity checker demands.
* **At runtime**, ``@loop_owned`` arms a thread-ownership assert under
  ``REPRO_SANITIZE=1`` (see :mod:`repro.analysis.sanitizer`); every other
  decorator is a zero-cost registration (the wrapped function is returned
  unchanged, so there is no call overhead on the hot paths they mark).

This module must stay stdlib-only: :mod:`repro.crypto`, :mod:`repro.hw`, and
:mod:`repro.core` import it at module load.
"""

from __future__ import annotations

import functools

from repro.analysis import sanitizer

__all__ = [
    "EXECUTOR_SIDE",
    "HOT_PATHS",
    "LOOP_OWNED",
    "SCALAR_REFERENCES",
    "SECRET_SOURCES",
    "executor_side",
    "hot_path",
    "loop_owned",
    "scalar_reference",
    "secret",
]

#: Qualified names of functions whose return value is secret material.
SECRET_SOURCES: set = set()

#: Qualified names of methods that only the owning (event-loop) thread may call.
LOOP_OWNED: set = set()

#: Qualified names of functions that run on executor threads (the job body).
EXECUTOR_SIDE: set = set()

#: Qualified names of zero-copy hot-path functions (no ``bytes()`` copies).
HOT_PATHS: set = set()

#: Fast-path qualified name -> the scalar reference implementation's name.
SCALAR_REFERENCES: dict = {}


def secret(func):
    """Mark a function whose return value is key/plaintext secret material.

    Seeds the secret-hygiene taint pass: any value derived from a call to a
    ``@secret`` source may not flow into logging, span/mark attributes,
    metric labels, exception messages, or string formatting.
    """
    SECRET_SOURCES.add(func.__qualname__)
    return func


def loop_owned(method):
    """Mark a method as callable only from the thread that owns the object.

    The confinement checker forbids calls to loop-owned methods from
    ``@executor_side`` code; under ``REPRO_SANITIZE=1`` the wrapper binds the
    object to its first calling thread and raises
    :class:`~repro.analysis.sanitizer.SanitizerError` on any cross-thread
    call.  When the sanitizer is off the only cost is one global read.
    """
    LOOP_OWNED.add(method.__qualname__)

    @functools.wraps(method)
    def guarded(self, *args, **kwargs):
        if sanitizer.enabled():
            sanitizer.assert_owner(self, method.__name__)
        return method(self, *args, **kwargs)

    guarded.__wrapped_loop_owned__ = method
    return guarded


def executor_side(func):
    """Mark a function as running on an executor thread (the job body).

    Inside an executor-side function the confinement checker flags any call
    to a ``@loop_owned`` method and any mutation of scheduler state.
    """
    EXECUTOR_SIDE.add(func.__qualname__)
    return func


def hot_path(func):
    """Mark a batched-datapath function that must not copy its buffers.

    The aliasing checker forbids ``bytes()`` / ``.copy()`` / ``.tobytes()`` /
    copying ``np.array`` calls inside (suppressible on declared scalar
    fallbacks), and forbids writes to arrays whose memoryviews were exported.
    """
    HOT_PATHS.add(func.__qualname__)
    return func


def scalar_reference(target: str):
    """Register the scalar reference implementation of a fast-path entry point.

    ``target`` names the scalar twin -- a bare name resolves in the same
    module/class, a dotted ``module.path:name`` anywhere in the project.  The
    parity checker requires every public ``*_many`` / ``*_array`` entry point
    to carry this decorator, to resolve, and to be exercised by a test.
    """

    def register(func):
        SCALAR_REFERENCES[func.__qualname__] = target
        return func

    return register
