"""Finding reporters: human-readable text and machine-readable JSON."""

from __future__ import annotations

import json
from typing import List

from repro.analysis.findings import Finding


def render_text(findings: List[Finding], files_scanned: int) -> str:
    """grep-able ``path:line:col: checker: message`` lines plus a summary."""
    lines = [finding.render() for finding in findings]
    fresh = sum(1 for f in findings if not f.baselined)
    baselined = len(findings) - fresh
    summary = (
        f"{files_scanned} file(s) scanned: "
        f"{fresh} finding(s), {baselined} baselined"
    )
    lines.append(summary)
    return "\n".join(lines)


def render_json(findings: List[Finding], files_scanned: int) -> str:
    """Stable JSON document (the CI lint job uploads this as an artifact)."""
    payload = {
        "files_scanned": files_scanned,
        "findings": [finding.to_dict() for finding in findings],
        "counts": {
            "total": len(findings),
            "fresh": sum(1 for f in findings if not f.baselined),
            "baselined": sum(1 for f in findings if f.baselined),
        },
    }
    return json.dumps(payload, indent=2)
