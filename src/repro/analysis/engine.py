"""The lint engine: source model, checker protocol, suppression, and runner.

The engine is deliberately small: it parses every target file once, gives
each checker a *collect* pass over the whole project (so cross-file facts
like "which methods are ``@loop_owned``" exist before any file is judged),
then a *check* pass that yields :class:`~repro.analysis.findings.Finding`
objects.  Checkers never import the code they scan -- all project knowledge
is syntactic, which is what lets the fixture tests feed them purpose-built
bad files.

Suppression: a trailing ``# lint: allow[checker-id]`` comment on the finding
line accepts that line's findings for the named checker(s)
(comma-separated, ``*`` for all).  Accepted-but-unfixed findings belong in
the baseline file instead (:mod:`repro.analysis.baseline`).
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import Iterable, Iterator, Optional

from repro.analysis.findings import Finding

SUPPRESS_RE = re.compile(r"#\s*lint:\s*allow\[([^\]]+)\]")

#: Attribute names the AST prepass hangs scope information on.
_SCOPE_ATTR = "_lint_scope"
_QUALNAME_ATTR = "_lint_qualname"


class SourceFile:
    """One parsed source file plus the lint-side view of it."""

    def __init__(self, path: str, text: str):
        self.path = path
        self.text = text
        self.tree = ast.parse(text, filename=path)
        self.lines = text.splitlines()
        self.module = _module_name(path)
        #: line number -> set of checker ids allowed on that line.
        self.suppressions: dict = {}
        for lineno, line in enumerate(self.lines, start=1):
            match = SUPPRESS_RE.search(line)
            if match:
                ids = {part.strip() for part in match.group(1).split(",")}
                self.suppressions.setdefault(lineno, set()).update(ids)
        _annotate_scopes(self.tree)

    def suppressed(self, checker_id: str, line: int) -> bool:
        allowed = self.suppressions.get(line, ())
        return checker_id in allowed or "*" in allowed

    def scope_of(self, node: ast.AST) -> str:
        """Qualname of the function/class enclosing ``node`` ('' at top level)."""
        return getattr(node, _SCOPE_ATTR, "")

    def qualname(self, node: ast.AST) -> str:
        """Qualname of a def/class node itself."""
        return getattr(node, _QUALNAME_ATTR, getattr(node, "name", ""))

    def functions(self) -> Iterator[ast.AST]:
        """Every (sync or async) function definition in the file."""
        for node in ast.walk(self.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield node

    def classes(self) -> Iterator[ast.ClassDef]:
        for node in ast.walk(self.tree):
            if isinstance(node, ast.ClassDef):
                yield node


class Project:
    """Everything the checkers may know: parsed files plus the test corpus."""

    def __init__(self, files: list, tests_text: str = ""):
        self.files = files
        #: module name -> set of def/class qualnames defined there.
        self.defs: dict = {}
        for file in files:
            names = self.defs.setdefault(self.module_key(file), set())
            for node in ast.walk(file.tree):
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                    names.add(file.qualname(node))
        #: Concatenated text of the test corpus ('' when none was given) --
        #: the parity checker greps it for fast-path entry-point names.
        self.tests_text = tests_text

    @staticmethod
    def module_key(file: SourceFile) -> str:
        return file.module

    def defines(self, module: str, qualname: str) -> bool:
        return qualname in self.defs.get(module, ())


class Checker:
    """Base checker: a two-phase visitor over the project."""

    id = "checker"

    def collect(self, file: SourceFile, project: Project) -> None:
        """Phase 1: gather cross-file facts (annotations, registries)."""

    def check(self, file: SourceFile, project: Project) -> Iterable[Finding]:
        """Phase 2: judge one file; yield findings."""
        return ()

    def finding(
        self, file: SourceFile, node: ast.AST, message: str
    ) -> Finding:
        return Finding(
            checker=self.id,
            path=file.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
            symbol=file.scope_of(node),
        )


def decorator_names(node) -> list:
    """The decorators of a def/class as ``(name, call_node_or_None)`` pairs.

    ``@secret`` yields ``("secret", None)``; ``@scalar_reference("x")``
    yields ``("scalar_reference", <Call>)``; dotted decorators use their
    final attribute name.
    """
    names = []
    for decorator in getattr(node, "decorator_list", ()):
        target, call = decorator, None
        if isinstance(target, ast.Call):
            call = target
            target = target.func
        if isinstance(target, ast.Attribute):
            names.append((target.attr, call))
        elif isinstance(target, ast.Name):
            names.append((target.id, call))
    return names


def call_name(node: ast.Call) -> str:
    """The bare callee name of a call (attribute calls use the final attr)."""
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return ""


def dotted_source(node: ast.AST) -> str:
    """Best-effort dotted rendering of a Name/Attribute chain ('' otherwise)."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


def _annotate_scopes(tree: ast.AST) -> None:
    """One prepass stamping every node with its enclosing def/class qualname."""

    def visit(node: ast.AST, scope: str) -> None:
        is_scope = isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        )
        if is_scope:
            qualname = f"{scope}.{node.name}" if scope else node.name
            setattr(node, _QUALNAME_ATTR, qualname)
            setattr(node, _SCOPE_ATTR, scope)
            scope = qualname
        else:
            setattr(node, _SCOPE_ATTR, scope)
        for child in ast.iter_child_nodes(node):
            visit(child, scope)

    visit(tree, "")


def _module_name(path: str) -> str:
    """Dotted module name for fingerprints ('repro.core.sealing' style).

    Files outside a ``repro`` package root (fixtures) use their stem, so
    fixture findings are stable however the test suite is laid out.
    """
    parts = Path(path).with_suffix("").parts
    if "repro" in parts:
        return ".".join(parts[parts.index("repro"):])
    return parts[-1]


def iter_source_files(paths: Iterable[str]) -> Iterator[str]:
    """Expand files/directories into a sorted, de-duplicated list of .py files."""
    seen = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            candidates = sorted(path.rglob("*.py"))
        else:
            candidates = [path]
        for candidate in candidates:
            if candidate.suffix == ".py" and candidate not in seen:
                seen.add(candidate)
                yield str(candidate)


def load_project(paths: Iterable[str], tests_dir: Optional[str] = None) -> Project:
    """Parse every target file (and slurp the test corpus) into a Project.

    Unparseable files raise: the lint pass runs on code the test suite
    already imports, so a syntax error is a real failure, not a lint finding.
    """
    files = [
        SourceFile(path, Path(path).read_text(encoding="utf-8"))
        for path in iter_source_files(paths)
    ]
    tests_text = ""
    if tests_dir is not None and Path(tests_dir).is_dir():
        tests_text = "\n".join(
            Path(path).read_text(encoding="utf-8")
            for path in iter_source_files([tests_dir])
        )
    return Project(files, tests_text)


def run_checkers(project: Project, checkers: list) -> list:
    """Two-phase run; returns non-suppressed findings sorted by location."""
    for checker in checkers:
        for file in project.files:
            checker.collect(file, project)
    findings = []
    for checker in checkers:
        for file in project.files:
            for finding in checker.check(file, project):
                if not file.suppressed(finding.checker, finding.line):
                    findings.append(finding)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.checker))
    return findings
