"""CLI entry point: ``python -m repro.analysis [paths...]``.

Exit status is 0 when every finding is baselined (or there are none) and 1
when fresh findings exist, so the CI lint job can gate on it directly.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.analysis.baseline import apply_baseline, load_baseline, save_baseline
from repro.analysis.checkers import default_checkers
from repro.analysis.engine import load_project, run_checkers
from repro.analysis.reporters import render_json, render_text

DEFAULT_BASELINE = "analysis-baseline.json"
DEFAULT_TESTS_DIR = "tests"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Project invariant linter (secret hygiene, thread "
        "confinement, zero-copy aliasing, fast/scalar parity).",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to scan (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help=f"baseline file of accepted findings "
        f"(default: {DEFAULT_BASELINE} when it exists)",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="accept every current finding into the baseline file and exit 0",
    )
    parser.add_argument(
        "--tests-dir",
        default=None,
        help=f"test corpus for the parity checker "
        f"(default: {DEFAULT_TESTS_DIR}/ when it exists; 'none' disables)",
    )
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)

    baseline_path = args.baseline
    if baseline_path is None and Path(DEFAULT_BASELINE).is_file():
        baseline_path = DEFAULT_BASELINE

    tests_dir = args.tests_dir
    if tests_dir == "none":
        tests_dir = None
    elif tests_dir is None and Path(DEFAULT_TESTS_DIR).is_dir():
        tests_dir = DEFAULT_TESTS_DIR

    project = load_project(args.paths, tests_dir=tests_dir)
    findings = run_checkers(project, default_checkers())

    if args.write_baseline:
        target = baseline_path or DEFAULT_BASELINE
        save_baseline(target, findings)
        print(f"wrote {len(findings)} finding(s) to {target}")
        return 0

    accepted = load_baseline(baseline_path) if baseline_path else set()
    findings = apply_baseline(findings, accepted)

    report = (render_json if args.format == "json" else render_text)(
        findings, files_scanned=len(project.files)
    )
    print(report)
    return 1 if any(not f.baselined for f in findings) else 0


if __name__ == "__main__":
    sys.exit(main())
