"""Result records produced by the simulation harness."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs.stats import summarize


@dataclass(frozen=True)
class TimingRecord:
    """Baseline-vs-shielded timing for one workload under one Shield configuration."""

    workload: str
    configuration: str
    baseline_cycles: float
    shielded_cycles: float

    @property
    def normalized_time(self) -> float:
        """Shielded execution time normalized to the insecure baseline (>= ~1)."""
        return self.shielded_cycles / self.baseline_cycles

    @property
    def overhead_percent(self) -> float:
        """Overhead as a percentage (the Table 2 convention)."""
        return 100.0 * (self.normalized_time - 1.0)


@dataclass(frozen=True)
class FunctionalRecord:
    """Outcome of a functional baseline-vs-shielded comparison."""

    workload: str
    outputs_match: bool
    baseline_bytes_read: int
    baseline_bytes_written: int
    shield_dram_bytes_read: int
    shield_dram_bytes_written: int
    buffer_hit_rate: float


@dataclass
class ExperimentResult:
    """A named experiment (one table or figure) and its rows/series."""

    experiment_id: str
    description: str
    rows: list = field(default_factory=list)
    metadata: dict = field(default_factory=dict)

    def add_row(self, **fields) -> None:
        self.rows.append(dict(fields))

    def summarize_column(self, column: str) -> dict:
        """Count/total/min/mean/max/p50/p95/p99 of one numeric row column.

        Uses the shared percentile math in :mod:`repro.obs.stats` (the same
        semantics as the metrics histograms and ``trace-report``): rows
        missing the column are skipped; no numeric rows yields the empty
        summary (``count`` 0, the rest ``None``).
        """
        values = [
            row[column]
            for row in self.rows
            if isinstance(row.get(column), (int, float)) and not isinstance(row.get(column), bool)
        ]
        return summarize(values)
