"""Plain-text rendering of experiment results (the rows the paper reports)."""

from __future__ import annotations

from repro.sim.results import ExperimentResult


def format_value(value) -> str:
    """Render one cell: floats get sensible precision, everything else str()."""
    if isinstance(value, float):
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)


def format_table(rows: list, columns: list | None = None) -> str:
    """Render a list of row dictionaries as an aligned text table."""
    if not rows:
        return "(no rows)"
    columns = columns or list(rows[0].keys())
    rendered = [[format_value(row.get(column, "")) for column in columns] for row in rows]
    widths = [
        max(len(str(column)), *(len(line[i]) for line in rendered))
        for i, column in enumerate(columns)
    ]
    header = "  ".join(str(column).ljust(widths[i]) for i, column in enumerate(columns))
    separator = "  ".join("-" * widths[i] for i in range(len(columns)))
    body = "\n".join(
        "  ".join(line[i].ljust(widths[i]) for i in range(len(columns))) for line in rendered
    )
    return "\n".join([header, separator, body])


def render_column_summaries(result: ExperimentResult, columns: list) -> str:
    """Render count/p50/p95/p99 summary rows for numeric experiment columns.

    The math is :func:`repro.obs.stats.summarize` via
    :meth:`~repro.sim.results.ExperimentResult.summarize_column` -- the same
    percentile semantics the metrics histograms and ``trace-report`` use.
    """
    rows = []
    for column in columns:
        summary = result.summarize_column(column)
        if summary["count"] == 0:
            continue
        rows.append(
            {
                "column": column,
                "count": summary["count"],
                "mean": summary["mean"],
                "p50": summary["p50"],
                "p95": summary["p95"],
                "p99": summary["p99"],
                "max": summary["max"],
            }
        )
    if not rows:
        return "(no numeric columns)"
    return format_table(rows)


def render_experiment(result: ExperimentResult) -> str:
    """Render a full experiment: title, rows, and metadata footnotes."""
    lines = [f"== {result.experiment_id}: {result.description} =="]
    lines.append(format_table(result.rows))
    if result.metadata:
        lines.append("")
        for key, value in result.metadata.items():
            lines.append(f"  {key}: {format_value(value) if not isinstance(value, dict) else value}")
    return "\n".join(lines)


def print_experiment(result: ExperimentResult) -> None:
    """Print an experiment to stdout (used by the benchmark harness)."""
    print()
    print(render_experiment(result))
