"""Plain-text rendering of experiment results (the rows the paper reports)."""

from __future__ import annotations

from repro.sim.results import ExperimentResult


def format_value(value) -> str:
    """Render one cell: floats get sensible precision, everything else str()."""
    if isinstance(value, float):
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)


def format_table(rows: list, columns: list | None = None) -> str:
    """Render a list of row dictionaries as an aligned text table."""
    if not rows:
        return "(no rows)"
    columns = columns or list(rows[0].keys())
    rendered = [[format_value(row.get(column, "")) for column in columns] for row in rows]
    widths = [
        max(len(str(column)), *(len(line[i]) for line in rendered))
        for i, column in enumerate(columns)
    ]
    header = "  ".join(str(column).ljust(widths[i]) for i, column in enumerate(columns))
    separator = "  ".join("-" * widths[i] for i in range(len(columns)))
    body = "\n".join(
        "  ".join(line[i].ljust(widths[i]) for i in range(len(columns))) for line in rendered
    )
    return "\n".join([header, separator, body])


def render_experiment(result: ExperimentResult) -> str:
    """Render a full experiment: title, rows, and metadata footnotes."""
    lines = [f"== {result.experiment_id}: {result.description} =="]
    lines.append(format_table(result.rows))
    if result.metadata:
        lines.append("")
        for key, value in result.metadata.items():
            lines.append(f"  {key}: {format_value(value) if not isinstance(value, dict) else value}")
    return "\n".join(lines)


def print_experiment(result: ExperimentResult) -> None:
    """Print an experiment to stdout (used by the benchmark harness)."""
    print()
    print(render_experiment(result))
