"""Synthetic large-scale traces for shard-scale replay experiments.

The hand-written traces in :mod:`repro.sim.cloud` are a dozen events --
enough to pin scheduling semantics, useless for validating a sharding layer.
This generator produces 10^5-10^6-job traces with the statistical structure
cloud schedulers actually face:

* **Arrival processes** -- homogeneous Poisson (exponential inter-arrivals),
  a diurnal sinusoid-modulated Poisson (load peaks and troughs), or a
  heavy-tailed Pareto renewal process (bursts and lulls; the tail exponent
  keeps the mean rate finite so traces stay comparable across processes).
* **Zipf tenant popularity** -- a few tenants dominate, a long tail barely
  shows up; this is what makes warm-Shield affinity and weighted fair-share
  interesting at scale.
* **Session structure** -- each tenant cycles over a small pool of sessions,
  so repeated-session arrivals exist for the affinity machinery to exploit
  (and the shard router keeps each session's stream on one shard).
* **A small workload pool** -- events draw profiles/configs from the three
  paper accelerators, so the simulator's per-``(profile, config)`` pricing
  cache works at scale exactly as it does in the small traces.

Everything is driven by one :class:`random.Random` seed: the same seed
yields byte-identical traces on every platform, so benchmark gates and
property tests replay deterministically.
"""

from __future__ import annotations

import bisect
import math
import random

from repro.errors import SimulationError
from repro.sim.cloud import TraceEvent

__all__ = [
    "ARRIVAL_PROCESSES",
    "default_profile_pool",
    "generate_trace",
]

#: Supported arrival processes.
ARRIVAL_PROCESSES = ("poisson", "diurnal", "heavy_tailed")

#: Pareto tail exponent for ``heavy_tailed`` inter-arrivals.  1.5 gives
#: infinite variance (real burstiness) but a finite mean, so the scale factor
#: below can normalize the process to the requested mean rate.
PARETO_ALPHA = 1.5

#: Period of the ``diurnal`` rate modulation, in modelled seconds.
DIURNAL_PERIOD_S = 86_400.0


def default_profile_pool() -> list:
    """``(profile, shield_config)`` pairs from the three paper accelerators.

    Imported lazily (accelerators pull in the crypto stack) and built once
    per call; reusing the returned pool across traces maximizes the
    simulator's pricing-cache hit rate, since the cache keys on object
    identity.
    """
    from repro.accelerators import (
        AffineTransformAccelerator,
        MatMulAccelerator,
        VectorAddAccelerator,
    )

    pool = []
    for accelerator in (
        VectorAddAccelerator(256 * 1024),
        MatMulAccelerator(128),
        AffineTransformAccelerator(128),
    ):
        config = (
            accelerator.paper_shield_config()
            if hasattr(accelerator, "paper_shield_config")
            else accelerator.build_shield_config()
        )
        pool.append((accelerator.profile(), config))
    return pool


def _zipf_cumulative(n: int, s: float) -> list:
    """Cumulative Zipf(s) weights over ranks 1..n (for bisect sampling)."""
    cumulative = []
    total = 0.0
    for rank in range(1, n + 1):
        total += 1.0 / rank**s
        cumulative.append(total)
    return cumulative


def generate_trace(
    num_jobs: int,
    seed: int = 0,
    arrival: str = "poisson",
    rate_jobs_per_s: float = 50.0,
    num_tenants: int = 100,
    sessions_per_tenant: int = 4,
    zipf_s: float = 1.1,
    diurnal_amplitude: float = 0.8,
    priority_levels: int = 10,
    profile_pool: list | None = None,
) -> list:
    """Generate a ``num_jobs``-event :class:`~repro.sim.cloud.TraceEvent` list.

    ``rate_jobs_per_s`` is the *mean* arrival rate for every process;
    ``zipf_s`` shapes tenant popularity (higher = more skew);
    ``diurnal_amplitude`` in [0, 1) scales the sinusoid for the ``diurnal``
    process.  Priorities are uniform over ``range(priority_levels)`` and
    fair-share weights cycle over 1/2/4 by tenant rank, so the priority and
    weighted-fair policies see real differentiation (a trace where every job
    is identical cannot distinguish policies -- the bug the seed's
    ``BENCH_sched.json`` policy table had).
    """
    if num_jobs < 1:
        raise SimulationError("a generated trace needs at least one job")
    if arrival not in ARRIVAL_PROCESSES:
        raise SimulationError(
            f"unknown arrival process {arrival!r} (choose from {ARRIVAL_PROCESSES})"
        )
    if rate_jobs_per_s <= 0:
        raise SimulationError("rate_jobs_per_s must be positive")
    if not 0 <= diurnal_amplitude < 1:
        raise SimulationError("diurnal_amplitude must be in [0, 1)")
    rng = random.Random(seed)
    pool = profile_pool if profile_pool is not None else default_profile_pool()
    tenants = [f"tenant-{index:04d}" for index in range(num_tenants)]
    sessions = [
        [f"{tenant}-s{index}" for index in range(sessions_per_tenant)]
        for tenant in tenants
    ]
    weights = [float(2 ** (index % 3)) for index in range(num_tenants)]
    zipf = _zipf_cumulative(num_tenants, zipf_s)
    zipf_total = zipf[-1]
    # Mean inter-arrival of the Pareto renewal process is scale * a/(a-1);
    # solve for scale so the heavy-tailed trace matches the Poisson mean rate.
    pareto_scale = (PARETO_ALPHA - 1.0) / (PARETO_ALPHA * rate_jobs_per_s)
    two_pi_over_period = 2.0 * math.pi / DIURNAL_PERIOD_S
    now = 0.0
    trace = []
    for _ in range(num_jobs):
        if arrival == "poisson":
            now += rng.expovariate(rate_jobs_per_s)
        elif arrival == "diurnal":
            # Inhomogeneous Poisson via local-rate exponentials: accurate as
            # long as inter-arrivals are short against the 24 h period.
            local_rate = rate_jobs_per_s * (
                1.0 + diurnal_amplitude * math.sin(two_pi_over_period * now)
            )
            now += rng.expovariate(local_rate)
        else:  # heavy_tailed
            now += pareto_scale * rng.paretovariate(PARETO_ALPHA)
        tenant_index = bisect.bisect_left(zipf, rng.random() * zipf_total)
        profile, config = pool[rng.randrange(len(pool))]
        trace.append(
            TraceEvent(
                arrival_s=now,
                tenant=tenants[tenant_index],
                profile=profile,
                shield_config=config,
                session_id=sessions[tenant_index][rng.randrange(sessions_per_tenant)],
                priority=rng.randrange(priority_levels),
                weight=weights[tenant_index],
            )
        )
    return trace
