"""Export experiment results to CSV/JSON for plotting outside the harness."""

from __future__ import annotations

import csv
import io
import json

from repro.sim.results import ExperimentResult


def experiment_to_csv(result: ExperimentResult) -> str:
    """Render an experiment's rows as CSV text (header from the first row)."""
    if not result.rows:
        return ""
    buffer = io.StringIO()
    columns = list(result.rows[0].keys())
    writer = csv.DictWriter(buffer, fieldnames=columns)
    writer.writeheader()
    for row in result.rows:
        writer.writerow({key: row.get(key, "") for key in columns})
    return buffer.getvalue()


def experiment_to_json(result: ExperimentResult) -> str:
    """Render an experiment (rows + metadata) as a JSON document."""
    return json.dumps(
        {
            "experiment_id": result.experiment_id,
            "description": result.description,
            "rows": result.rows,
            "metadata": _jsonable(result.metadata),
        },
        indent=2,
        sort_keys=True,
    )


def write_experiment(result: ExperimentResult, path: str) -> None:
    """Write an experiment to ``path`` (.csv or .json by extension)."""
    if path.endswith(".json"):
        payload = experiment_to_json(result)
    else:
        payload = experiment_to_csv(result)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(payload)


def _jsonable(value):
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, bytes):
        return value.hex()
    return value
