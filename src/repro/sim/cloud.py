"""Multi-tenant workload replay through the analytical timing model.

The functional :class:`~repro.cloud.service.ShieldCloudService` moves real
bytes; this module answers the capacity-planning questions -- how does a
board fleet behave under heavy mixed-tenant traffic?  A trace is a list of
:class:`TraceEvent` arrivals (tenant, workload profile, Shield config); the
:class:`CloudSimulator` replays it against an N-board fleet with the **same
scheduling core the functional service uses** -- the policy zoo and
warm-affinity placement rule of :mod:`repro.cloud.policies` -- pricing each
job's service time with :class:`~repro.core.timing.TimingModel` plus a fixed
per-load Shield setup cost (partial reconfiguration + Load-Key delivery).
With affinity enabled, a job placed on a board whose previous job belonged to
the same session is a *warm hit* and the load cost is zero -- so a
repeated-tenant trace pays one reconfiguration instead of N.  The result
reports per-job wait/service/turnaround times, warm hits, board utilization,
per-tenant fairness, and makespan, and renders/exports like every other
experiment.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

import repro.obs as obs_api
from repro.analysis.annotations import hot_path
from repro.obs.tracing import SPAN, ObsEvent
from repro.cloud.policies import BoardIndex, JobRequest, make_policy
from repro.core.config import ShieldConfig
from repro.core.timing import TimingModel, WorkloadProfile
from repro.errors import SimulationError
from repro.obs.stats import percentile
from repro.sim.results import ExperimentResult

#: Default board clock used to convert model cycles to seconds (AWS F1).
DEFAULT_CLOCK_HZ = 250e6

#: Modelled cost of loading a tenant's Shield onto a board between jobs
#: (partial reconfiguration dominates; cf. Section 6.1's 6.2 s on F1).
DEFAULT_SHIELD_LOAD_SECONDS = 6.2


@dataclass(frozen=True)
class TraceEvent:
    """One tenant job arrival in a mixed workload trace."""

    arrival_s: float
    tenant: str
    profile: WorkloadProfile
    shield_config: ShieldConfig
    #: Affinity key: jobs of the same session can share a warm Shield.
    #: Defaults to the tenant (one session per tenant).
    session_id: str | None = None
    #: Scheduling metadata for the priority / fair-share policies.
    priority: int = 0
    weight: float = 1.0

    @property
    def workload(self) -> str:
        return self.profile.name

    @property
    def session(self) -> str:
        return self.session_id or self.tenant


@dataclass(frozen=True)
class CloudJobRecord:
    """Scheduling outcome for one replayed job."""

    tenant: str
    workload: str
    board: int
    arrival_s: float
    start_s: float
    finish_s: float
    #: True when the board already held the session's Shield (load cost 0).
    warm: bool = False
    #: Shield load seconds actually paid by this job.
    load_s: float = 0.0

    @property
    def wait_s(self) -> float:
        return self.start_s - self.arrival_s

    @property
    def service_s(self) -> float:
        return self.finish_s - self.start_s

    @property
    def turnaround_s(self) -> float:
        return self.finish_s - self.arrival_s


@dataclass
class ReplayStats:
    """Aggregates of one replay, cheap enough for million-job traces.

    ``waits`` keeps the raw per-job wait seconds so a multi-shard driver can
    merge shards and compute *global* tail percentiles; everything else is a
    scalar or a small per-board dict.
    """

    jobs: int
    makespan_s: float
    #: Per-job wait seconds, dispatch order.
    waits: list = field(default_factory=list)
    #: board id -> seconds the board spent serving (load + execute).
    board_busy_s: dict = field(default_factory=dict)
    warm_hits: int = 0
    #: Integral of active board count over modelled time (board-seconds) --
    #: the utilization denominator even when an autoscaler resized the fleet.
    capacity_board_seconds: float = 0.0
    #: Board count when the replay finished (equals the start count unless an
    #: autoscaler resized the fleet).
    final_boards: int = 0
    #: ``(modelled_time_s, new_board_count)`` autoscaler decisions.
    scale_events: list = field(default_factory=list)

    @property
    def shield_loads(self) -> int:
        return self.jobs - self.warm_hits

    @property
    def affinity_hit_rate(self) -> float:
        return self.warm_hits / self.jobs if self.jobs else 0.0

    @property
    def utilization(self) -> float:
        busy = sum(self.board_busy_s.values())
        capacity = self.capacity_board_seconds
        return busy / capacity if capacity else 0.0

    def wait_percentile(self, q: float) -> float:
        return percentile(self.waits, q)


class CloudSimulator:
    """Replays a multi-tenant trace over an N-board fleet using the timing model.

    ``policy`` and ``affinity`` mirror
    :class:`~repro.cloud.service.ShieldCloudService` exactly -- both import
    the implementation from :mod:`repro.cloud.policies`, so the simulator's
    capacity plan and the functional service's execution can never diverge on
    scheduling semantics.
    """

    def __init__(
        self,
        num_boards: int = 2,
        model: TimingModel | None = None,
        clock_hz: float = DEFAULT_CLOCK_HZ,
        shield_load_seconds: float = DEFAULT_SHIELD_LOAD_SECONDS,
        policy="fifo",
        affinity: bool = True,
        obs=None,
    ):
        """``obs`` is the observability handle the replay publishes lifecycle
        events into (default: the process-wide :func:`repro.obs.current` at
        construction time).  Events are stamped with *modelled* timestamps but
        use exactly the per-job schema the functional service emits, so the
        two streams are directly diffable via
        :func:`repro.obs.lifecycle_signature`."""
        if num_boards < 1:
            raise SimulationError("the simulated fleet needs at least one board")
        self.num_boards = num_boards
        self.model = model or TimingModel()
        self.clock_hz = clock_hz
        self.shield_load_seconds = shield_load_seconds
        self.policy = policy
        self.affinity = bool(affinity)
        self.obs = obs if obs is not None else obs_api.current()

    # -- pricing ------------------------------------------------------------------

    def execution_seconds(self, event: TraceEvent) -> float:
        """Modelled shielded-execution time of one job (no load cost)."""
        cycles = self.model.shielded(event.profile, event.shield_config).total_cycles
        return cycles / self.clock_hz

    def service_seconds(self, event: TraceEvent, warm: bool = False) -> float:
        """Modelled on-board time: Shield load (zero on a warm hit) + execution."""
        load = 0.0 if warm else self.shield_load_seconds
        return load + self.execution_seconds(event)

    # -- replay -------------------------------------------------------------------

    def replay(self, trace: list, autoscaler=None) -> list:
        """Replay the trace through the shared policy + affinity placement core.

        Event-driven: arrivals join the indexed policy queue at their arrival
        time; whenever a board is free and the queue is non-empty, the policy
        picks the next job in O(log n) and the incremental
        :class:`~repro.cloud.policies.BoardIndex` places it -- preferring a
        board whose last job belonged to the same session (warm, load cost
        zero).  Free boards are ranked in release order (seeded by board
        index), the timed analogue of the functional scheduler's longest-idle
        rotation, so placements are deterministic, selection-identical to the
        pre-indexed linear scans, and match the functional fleet wherever
        time permits a comparison.

        ``autoscaler`` is an optional queue-depth-driven controller (see
        :class:`~repro.cloud.shard.QueueDepthAutoscaler`): it is consulted as
        modelled time advances and may grow the fleet with cold boards or
        drain idle ones; ``None`` keeps the fleet fixed at zero overhead.
        """
        rows: list = []
        self._replay(trace, autoscaler, rows)
        return [
            CloudJobRecord(
                tenant=event.tenant,
                workload=event.profile.name,
                board=board,
                arrival_s=event.arrival_s,
                start_s=start,
                finish_s=finish,
                warm=warm,
                load_s=load,
            )
            for event, board, start, finish, warm, load in rows
        ]

    def replay_stats(self, trace: list, autoscaler=None) -> "ReplayStats":
        """Replay without materializing per-job records: aggregates only.

        The shard-scale driver replays 10^5-10^6-job traces where building a
        :class:`CloudJobRecord` per job dominates the runtime; this path
        accumulates waits, per-board busy time, warm hits, and the capacity
        integral inline and returns one :class:`ReplayStats`.
        """
        return self._replay(trace, autoscaler, None)

    @hot_path
    def _replay(self, trace: list, autoscaler, rows) -> "ReplayStats":
        """The dispatch loop shared by :meth:`replay` and :meth:`replay_stats`.

        When ``rows`` is a list, one raw ``(event, board, start, finish,
        warm, load)`` tuple is appended per job; aggregates are accumulated
        either way.  Tracing costs nothing when the tracer is disabled: the
        enabled check is hoisted out of the loop and the untraced path does
        no per-job observability work at all.
        """
        policy = make_policy(self.policy)
        queue = policy.make_queue()
        tracer = self.obs.tracer
        traced = tracer.enabled
        affinity = self.affinity
        load_cost = self.shield_load_seconds
        # seq is the *arrival-order* position (ties broken by trace index), so
        # FIFO -- and every policy's tie-break -- is first-come-first-served
        # even when the caller's trace list is not sorted by arrival.
        order = sorted(range(len(trace)), key=lambda i: (trace[i].arrival_s, i))
        events = [trace[i] for i in order]
        arrival_times = [event.arrival_s for event in events]
        num_events = len(events)
        next_arrival = 0
        resident: dict = {}
        boards = BoardIndex(range(self.num_boards), resident=resident)
        next_board = self.num_boards
        active_boards = self.num_boards
        busy: list = []  # (finish_s, board) min-heap
        admitted: set = set()
        # The modelled service time of a profile/config pair never changes
        # mid-replay; generated traces draw events from a small workload
        # pool, so pricing is one TimingModel evaluation per distinct pair.
        cost_cache: dict = {}
        # Aggregates (always accumulated -- they are three ops per job).
        waits: list = []
        board_busy: dict = {}
        warm_hits = 0
        capacity_s = 0.0
        scale_events: list = []
        now = 0.0
        while True:
            while next_arrival < num_events and arrival_times[next_arrival] <= now:
                event = events[next_arrival]
                session = event.session_id or event.tenant
                if traced and session not in admitted:
                    # First arrival of a session stands in for tenant
                    # admission (the functional service admits before any job
                    # is submitted, so modelled admission is instantaneous).
                    admitted.add(session)
                    tracer.record_span(
                        "admit", event.arrival_s, 0.0,
                        tenant=event.tenant, session=session,
                    )
                cost_key = (id(event.profile), id(event.shield_config))
                cost = cost_cache.get(cost_key)
                if cost is None:
                    cost_cache[cost_key] = cost = self.execution_seconds(event)
                queue.push(
                    JobRequest(
                        key=f"trace-{order[next_arrival]}",
                        tenant=event.tenant,
                        session_id=session,
                        seq=next_arrival,
                        priority=event.priority,
                        weight=event.weight,
                        cost_estimate=cost,
                    ),
                    event,
                )
                next_arrival += 1
            if autoscaler is not None:
                target = autoscaler.target_boards(now, len(queue), active_boards)
                if target > active_boards:
                    for _ in range(target - active_boards):
                        boards.add_board(next_board)
                        next_board += 1
                    active_boards = target
                    scale_events.append((now, target))
                elif target < active_boards:
                    # Drain semantics: only idle boards retire (longest idle
                    # first); busy boards finish their jobs and a later
                    # consult shrinks further once they fall idle.
                    before = active_boards
                    for name in boards.free_names[: before - target]:
                        boards.discard(name)
                        active_boards -= 1
                    if active_boards != before:
                        scale_events.append((now, active_boards))
            while len(queue) and len(boards):
                request, event = queue.pop()
                session = request.session_id
                board = boards.place(session, affinity)
                warm = affinity and resident[board] == session
                load = 0.0 if warm else load_cost
                finish = now + load + request.cost_estimate
                heapq.heappush(busy, (finish, board))
                resident[board] = session if affinity else None
                policy.record_service(request)
                if traced:
                    self._emit_job_events(
                        tracer, request, event, board, now, load, finish, warm
                    )
                if warm:
                    warm_hits += 1
                waits.append(now - event.arrival_s)
                board_busy[board] = board_busy.get(board, 0.0) + (finish - now)
                if rows is not None:
                    rows.append((event, board, now, finish, warm, load))
            # Nothing placeable: advance time to the next arrival or finish,
            # releasing boards in deterministic (finish, board-index) order.
            if next_arrival < num_events:
                frontier = arrival_times[next_arrival]
                if busy and busy[0][0] < frontier:
                    frontier = busy[0][0]
            elif busy:
                frontier = busy[0][0]
            else:
                break
            if frontier > now:
                capacity_s += active_boards * (frontier - now)
                now = frontier
            while busy and busy[0][0] <= now:
                boards.release(heapq.heappop(busy)[1])
        return ReplayStats(
            jobs=len(waits),
            makespan_s=now,
            waits=waits,
            board_busy_s=board_busy,
            warm_hits=warm_hits,
            capacity_board_seconds=capacity_s,
            final_boards=active_boards,
            scale_events=scale_events,
        )

    def _emit_job_events(
        self, tracer, request, event, board, start, load, finish, warm
    ) -> None:
        """Publish one placed job's lifecycle with modelled timestamps.

        The span names, ordering, and attribution mirror what the functional
        service records while actually executing the job; data-movement
        stages the timing model does not price separately (``place``,
        ``input_seal``, ``download``, ``output_unseal``) are emitted with
        zero duration so the stream still covers every lifecycle stage.
        """
        t, s, j = event.tenant, event.session, request.key
        b = f"board-{board}"
        arrival, loaded = event.arrival_s, start + load
        execute_s = finish - start - load
        # Events are built positionally in one batched append rather than
        # through tracer.record_span: eight spans per job on the replay hot
        # path is exactly where the <=15% enabled-overhead budget is won or
        # lost.
        tracer.events.extend([
            ObsEvent(arrival, SPAN, "queue", start - arrival, t, s, j, b),
            ObsEvent(start, SPAN, "place", 0.0, t, s, j, b),
            ObsEvent(start, SPAN, "shield_load", load, t, s, j, b, {"warm": warm}),
            ObsEvent(loaded, SPAN, "input_seal", 0.0, t, s, j, b),
            ObsEvent(loaded, SPAN, "execute", execute_s, t, s, j, b),
            ObsEvent(finish, SPAN, "download", 0.0, t, s, j, b),
            ObsEvent(finish, SPAN, "output_unseal", 0.0, t, s, j, b),
            ObsEvent(
                arrival, SPAN, "job", finish - arrival, t, s, j, b,
                {"warm": warm, "completed": True},
            ),
        ])

    def replay_experiment(
        self, trace: list, experiment_id: str = "cloud-trace"
    ) -> ExperimentResult:
        """Replay and package the outcome as a renderable/exportable experiment."""
        records = self.replay(trace)
        if not records:
            raise SimulationError("cannot replay an empty trace")
        makespan = max(r.finish_s for r in records)
        busy = sum(r.service_s for r in records)
        warm_hits = sum(1 for r in records if r.warm)
        waits = [r.wait_s for r in records]
        tenant_fairness = {}
        for record in records:
            entry = tenant_fairness.setdefault(record.tenant, {"jobs": 0, "busy_s": 0.0})
            entry["jobs"] += 1
            entry["busy_s"] += record.service_s
        for entry in tenant_fairness.values():
            entry["busy_s"] = round(entry["busy_s"], 3)
            entry["service_share"] = round(entry["busy_s"] / busy, 3) if busy else 0.0
        result = ExperimentResult(
            experiment_id=experiment_id,
            description=(
                f"{len(records)} jobs from "
                f"{len({r.tenant for r in records})} tenants on "
                f"{self.num_boards} boards "
                f"({make_policy(self.policy).name} policy, "
                f"affinity {'on' if self.affinity else 'off'})"
            ),
            metadata={
                "num_boards": self.num_boards,
                "policy": make_policy(self.policy).name,
                "affinity": self.affinity,
                "makespan_s": round(makespan, 3),
                "board_utilization": round(busy / (self.num_boards * makespan), 3),
                "mean_wait_s": round(sum(waits) / len(records), 3),
                "wait_p50_s": round(percentile(waits, 50.0), 3),
                "wait_p99_s": round(percentile(waits, 99.0), 3),
                "shield_loads": len(records) - warm_hits,
                "affinity_hits": warm_hits,
                "affinity_hit_rate": round(warm_hits / len(records), 3),
                "tenant_fairness": tenant_fairness,
            },
        )
        for record in records:
            result.add_row(
                tenant=record.tenant,
                workload=record.workload,
                board=record.board,
                warm=record.warm,
                arrival_s=round(record.arrival_s, 3),
                wait_s=round(record.wait_s, 3),
                load_s=round(record.load_s, 3),
                service_s=round(record.service_s, 3),
                turnaround_s=round(record.turnaround_s, 3),
            )
        return result


def default_mixed_trace(jobs_per_tenant: int = 3, arrival_gap_s: float = 2.0) -> list:
    """A deterministic mixed-tenant trace over three paper workloads.

    Three tenants (vector add, matmul, affine) interleave their arrivals so
    that the fleet sees alternating streaming- and random-access traffic --
    the NanoZone-style many-tenant pressure the cloud layer exists to absorb.
    """
    from repro.accelerators import (
        AffineTransformAccelerator,
        MatMulAccelerator,
        VectorAddAccelerator,
    )

    def paired_config(accelerator):
        # Profiles reference the paper-scale region names when one exists.
        if hasattr(accelerator, "paper_shield_config"):
            return accelerator.paper_shield_config()
        return accelerator.build_shield_config()

    tenants = [
        ("tenant-vadd", VectorAddAccelerator(256 * 1024)),
        ("tenant-matmul", MatMulAccelerator(128)),
        ("tenant-affine", AffineTransformAccelerator(128)),
    ]
    trace = []
    for round_index in range(jobs_per_tenant):
        for tenant_index, (tenant, accelerator) in enumerate(tenants):
            trace.append(
                TraceEvent(
                    arrival_s=(round_index * len(tenants) + tenant_index) * arrival_gap_s,
                    tenant=tenant,
                    profile=accelerator.profile(),
                    shield_config=paired_config(accelerator),
                )
            )
    return trace


def repeated_tenant_trace(num_jobs: int = 8, arrival_gap_s: float = 1.0) -> list:
    """One tenant submitting ``num_jobs`` back-to-back jobs.

    The warm-affinity showcase: without affinity every job pays the ~6.2 s
    Shield load; with affinity the fleet pays it once per board the session
    touches, so makespan collapses from N reconfigurations to one.
    """
    from repro.accelerators import VectorAddAccelerator

    accelerator = VectorAddAccelerator(256 * 1024)
    profile = accelerator.profile()
    config = (
        accelerator.paper_shield_config()
        if hasattr(accelerator, "paper_shield_config")
        else accelerator.build_shield_config()
    )
    return [
        TraceEvent(
            arrival_s=index * arrival_gap_s,
            tenant="tenant-repeat",
            profile=profile,
            shield_config=config,
        )
        for index in range(num_jobs)
    ]


def cloud_trace_experiment(
    num_boards: int = 2, policy="fifo", affinity: bool = True
) -> ExperimentResult:
    """The CLI-facing experiment: replay the default mixed trace on a fleet."""
    simulator = CloudSimulator(num_boards=num_boards, policy=policy, affinity=affinity)
    return simulator.replay_experiment(default_mixed_trace())
