"""Multi-tenant workload replay through the analytical timing model.

The functional :class:`~repro.cloud.service.ShieldCloudService` moves real
bytes; this module answers the capacity-planning questions -- how does a
board fleet behave under heavy mixed-tenant traffic?  A trace is a list of
:class:`TraceEvent` arrivals (tenant, workload profile, Shield config); the
:class:`CloudSimulator` replays it against an N-board fleet in FIFO arrival
order on the earliest-available board (the timed analogue of the functional
scheduler's round-robin over free boards), pricing each
job's service time with :class:`~repro.core.timing.TimingModel` plus a
fixed per-load Shield setup cost (partial reconfiguration + Load-Key
delivery).  The result reports per-job wait/service/turnaround times, board
utilization, and makespan, and renders/exports like every other experiment.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import ShieldConfig
from repro.core.timing import TimingModel, WorkloadProfile
from repro.errors import SimulationError
from repro.sim.results import ExperimentResult

#: Default board clock used to convert model cycles to seconds (AWS F1).
DEFAULT_CLOCK_HZ = 250e6

#: Modelled cost of loading a tenant's Shield onto a board between jobs
#: (partial reconfiguration dominates; cf. Section 6.1's 6.2 s on F1).
DEFAULT_SHIELD_LOAD_SECONDS = 6.2


@dataclass(frozen=True)
class TraceEvent:
    """One tenant job arrival in a mixed workload trace."""

    arrival_s: float
    tenant: str
    profile: WorkloadProfile
    shield_config: ShieldConfig

    @property
    def workload(self) -> str:
        return self.profile.name


@dataclass(frozen=True)
class CloudJobRecord:
    """Scheduling outcome for one replayed job."""

    tenant: str
    workload: str
    board: int
    arrival_s: float
    start_s: float
    finish_s: float

    @property
    def wait_s(self) -> float:
        return self.start_s - self.arrival_s

    @property
    def service_s(self) -> float:
        return self.finish_s - self.start_s

    @property
    def turnaround_s(self) -> float:
        return self.finish_s - self.arrival_s


class CloudSimulator:
    """Replays a multi-tenant trace over an N-board fleet using the timing model."""

    def __init__(
        self,
        num_boards: int = 2,
        model: TimingModel | None = None,
        clock_hz: float = DEFAULT_CLOCK_HZ,
        shield_load_seconds: float = DEFAULT_SHIELD_LOAD_SECONDS,
    ):
        if num_boards < 1:
            raise SimulationError("the simulated fleet needs at least one board")
        self.num_boards = num_boards
        self.model = model or TimingModel()
        self.clock_hz = clock_hz
        self.shield_load_seconds = shield_load_seconds

    # -- replay -------------------------------------------------------------------

    def service_seconds(self, event: TraceEvent) -> float:
        """Modelled on-board time of one job: Shield load + shielded execution."""
        cycles = self.model.shielded(event.profile, event.shield_config).total_cycles
        return self.shield_load_seconds + cycles / self.clock_hz

    def replay(self, trace: list) -> list:
        """Schedule the trace FIFO-by-arrival on the first free board."""
        records: list[CloudJobRecord] = []
        board_free = [0.0] * self.num_boards
        for event in sorted(trace, key=lambda e: e.arrival_s):
            board = min(range(self.num_boards), key=lambda i: board_free[i])
            start = max(event.arrival_s, board_free[board])
            finish = start + self.service_seconds(event)
            board_free[board] = finish
            records.append(
                CloudJobRecord(
                    tenant=event.tenant,
                    workload=event.workload,
                    board=board,
                    arrival_s=event.arrival_s,
                    start_s=start,
                    finish_s=finish,
                )
            )
        return records

    def replay_experiment(
        self, trace: list, experiment_id: str = "cloud-trace"
    ) -> ExperimentResult:
        """Replay and package the outcome as a renderable/exportable experiment."""
        records = self.replay(trace)
        if not records:
            raise SimulationError("cannot replay an empty trace")
        makespan = max(r.finish_s for r in records)
        busy = sum(r.service_s for r in records)
        result = ExperimentResult(
            experiment_id=experiment_id,
            description=(
                f"{len(records)} jobs from "
                f"{len({r.tenant for r in records})} tenants on "
                f"{self.num_boards} boards"
            ),
            metadata={
                "num_boards": self.num_boards,
                "makespan_s": round(makespan, 3),
                "board_utilization": round(busy / (self.num_boards * makespan), 3),
                "mean_wait_s": round(sum(r.wait_s for r in records) / len(records), 3),
            },
        )
        for record in records:
            result.add_row(
                tenant=record.tenant,
                workload=record.workload,
                board=record.board,
                arrival_s=round(record.arrival_s, 3),
                wait_s=round(record.wait_s, 3),
                service_s=round(record.service_s, 3),
                turnaround_s=round(record.turnaround_s, 3),
            )
        return result


def default_mixed_trace(jobs_per_tenant: int = 3, arrival_gap_s: float = 2.0) -> list:
    """A deterministic mixed-tenant trace over three paper workloads.

    Three tenants (vector add, matmul, affine) interleave their arrivals so
    that the fleet sees alternating streaming- and random-access traffic --
    the NanoZone-style many-tenant pressure the cloud layer exists to absorb.
    """
    from repro.accelerators import (
        AffineTransformAccelerator,
        MatMulAccelerator,
        VectorAddAccelerator,
    )

    def paired_config(accelerator):
        # Profiles reference the paper-scale region names when one exists.
        if hasattr(accelerator, "paper_shield_config"):
            return accelerator.paper_shield_config()
        return accelerator.build_shield_config()

    tenants = [
        ("tenant-vadd", VectorAddAccelerator(256 * 1024)),
        ("tenant-matmul", MatMulAccelerator(128)),
        ("tenant-affine", AffineTransformAccelerator(128)),
    ]
    trace = []
    for round_index in range(jobs_per_tenant):
        for tenant_index, (tenant, accelerator) in enumerate(tenants):
            trace.append(
                TraceEvent(
                    arrival_s=(round_index * len(tenants) + tenant_index) * arrival_gap_s,
                    tenant=tenant,
                    profile=accelerator.profile(),
                    shield_config=paired_config(accelerator),
                )
            )
    return trace


def cloud_trace_experiment(num_boards: int = 2) -> ExperimentResult:
    """The CLI-facing experiment: replay the default mixed trace on a fleet."""
    simulator = CloudSimulator(num_boards=num_boards)
    return simulator.replay_experiment(default_mixed_trace())
