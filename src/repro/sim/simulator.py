"""Simulation harnesses: functional (bit-exact) and analytical (timing).

Two complementary harnesses drive the experiments:

* :class:`FunctionalSimulator` runs an accelerator model twice -- once against
  bare device memory and once behind a fully provisioned Shield -- and checks
  that the outputs are identical while collecting Shield statistics.  This is
  the correctness backbone of the test suite and examples.
* :class:`TimingSimulator` evaluates the calibrated analytical model over a
  workload profile and a Shield configuration, producing the normalized
  execution times reported in Figures 5-6 and Table 2.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache

from repro.accelerators.base import DirectMemoryAdapter, ShieldMemoryAdapter
from repro.attestation.data_owner import DataOwner
from repro.core.config import ShieldConfig
from repro.core.shield import Shield
from repro.core.timing import TimingModel, WorkloadProfile
from repro.crypto.rsa import RsaPrivateKey
from repro.hw.board import BoardModel, FpgaBoard, make_board
from repro.sim.results import FunctionalRecord, TimingRecord


@lru_cache(maxsize=1)
def _test_shield_private_key() -> RsaPrivateKey:
    """A deterministic Shield Encryption Key shared by lightweight harness runs.

    Generating RSA keys is by far the slowest primitive in pure Python, so the
    functional harness derives one fixed key per process; the full workflow
    (:func:`repro.workflow.deploy_accelerator`) still exercises per-vendor keys.
    """
    return RsaPrivateKey.from_seed(b"shef-functional-harness", bits=1024)


@dataclass
class ProvisionedTestShield:
    """A board + Shield + Data Owner trio ready for functional runs."""

    board: FpgaBoard
    shield: Shield
    data_owner: DataOwner = field(repr=False)
    shield_config: ShieldConfig

    @property
    def shield_memory(self) -> ShieldMemoryAdapter:
        return ShieldMemoryAdapter(self.shield)


def build_test_shield(
    shield_config: ShieldConfig,
    board_model: BoardModel | str = BoardModel.AWS_F1,
    owner_seed: int = 11,
) -> ProvisionedTestShield:
    """Stand up a provisioned Shield without the full boot/attestation ceremony.

    Used by tests and the functional simulator where the subject under test is
    the Shield datapath itself; the end-to-end ceremony is covered separately
    by the workflow tests.
    """
    shield_config.validate()
    board = make_board(board_model)
    private_key = _test_shield_private_key()
    shield = Shield(shield_config, board.shell, board.on_chip_memory, private_key)
    data_owner = DataOwner(seed=owner_seed)
    data_owner.generate_data_key(shield_config.shield_id)
    load_key = data_owner.wrap_load_key(
        private_key.public_key.encode(), shield_config.shield_id
    )
    shield.provision_load_key(load_key.wrapped_key)
    return ProvisionedTestShield(
        board=board, shield=shield, data_owner=data_owner, shield_config=shield_config
    )


def outputs_equal(a: dict, b: dict) -> bool:
    """Deep-compare two accelerator output dicts (numpy-array aware)."""
    import numpy as np

    if a.keys() != b.keys():
        return False
    for key in a:
        left, right = a[key], b[key]
        if isinstance(left, np.ndarray) or isinstance(right, np.ndarray):
            if not np.array_equal(np.asarray(left), np.asarray(right)):
                return False
        elif isinstance(left, dict) and isinstance(right, dict):
            if not outputs_equal(left, right):
                return False
        elif left != right:
            return False
    return True


def run_unshielded_baseline(
    accelerator,
    shield_config: ShieldConfig,
    inputs: dict,
    board_model: BoardModel | str = BoardModel.AWS_F1,
    **params,
):
    """Run an accelerator directly against bare device memory.

    Stages plaintext inputs at their region base addresses on a fresh board
    and executes through :class:`DirectMemoryAdapter` -- the insecure
    reference every shielded run (functional simulator, cloud demo) is
    compared against.
    """
    board = make_board(board_model)
    for region_name, plaintext in inputs.items():
        board.device_memory.write(
            shield_config.region(region_name).base_address
            if shield_config.regions
            else 0,
            plaintext,
        )
    return accelerator.run(DirectMemoryAdapter(board.device_memory), **params)


class FunctionalSimulator:
    """Runs accelerators with and without the Shield and compares results."""

    def __init__(self, board_model: BoardModel | str = BoardModel.AWS_F1):
        self.board_model = board_model

    def stage_shielded_inputs(self, harness: ProvisionedTestShield, inputs: dict) -> None:
        """Seal inputs with the Data Encryption Key and DMA them into device DRAM."""
        for region_name, plaintext in inputs.items():
            staged = harness.data_owner.seal_input(
                harness.shield_config,
                region_name,
                plaintext,
                shield_id=harness.shield_config.shield_id,
            )
            region = harness.shield_config.region(region_name)
            harness.board.shell.host_dma_write(region.base_address, staged.flat_ciphertext())
            for chunk in staged.sealed_chunks:
                harness.board.shell.host_dma_write(
                    harness.shield_config.tag_address(region, chunk.chunk_index), chunk.tag
                )

    def run_comparison(self, accelerator, shield_config: ShieldConfig | None = None, **params):
        """Run baseline and shielded executions; return (record, baseline, shielded)."""
        shield_config = shield_config or accelerator.build_shield_config()

        # Baseline: plaintext inputs in a fresh device memory, direct access.
        inputs = accelerator.prepare_inputs(**{k: v for k, v in params.items() if k == "seed"})
        baseline_result = run_unshielded_baseline(
            accelerator, shield_config, inputs, self.board_model, **params
        )

        # Shielded: sealed inputs, Shield-mediated access.
        harness = build_test_shield(shield_config, self.board_model)
        self.stage_shielded_inputs(harness, inputs)
        shielded_result = accelerator.run(harness.shield_memory, **params)
        harness.shield.flush()

        stats = harness.shield.stats()
        outputs_match = outputs_equal(baseline_result.outputs, shielded_result.outputs)
        hit_total = stats.buffer_hits + stats.buffer_misses
        record = FunctionalRecord(
            workload=accelerator.name,
            outputs_match=outputs_match,
            baseline_bytes_read=baseline_result.bytes_read,
            baseline_bytes_written=baseline_result.bytes_written,
            shield_dram_bytes_read=stats.dram_bytes_read,
            shield_dram_bytes_written=stats.dram_bytes_written,
            buffer_hit_rate=stats.buffer_hits / hit_total if hit_total else 0.0,
        )
        return record, baseline_result, shielded_result



class TimingSimulator:
    """Evaluates the analytical timing model for workload/configuration pairs."""

    def __init__(self, model: TimingModel | None = None):
        self.model = model or TimingModel()

    def run(
        self, profile: WorkloadProfile, shield_config: ShieldConfig, configuration_label: str
    ) -> TimingRecord:
        baseline = self.model.baseline(profile).total_cycles
        shielded = self.model.shielded(profile, shield_config).total_cycles
        return TimingRecord(
            workload=profile.name,
            configuration=configuration_label,
            baseline_cycles=baseline,
            shielded_cycles=shielded,
        )

    def sweep(self, profiles_and_configs) -> list:
        """Run a list of (profile, config, label) tuples."""
        return [self.run(profile, config, label) for profile, config, label in profiles_and_configs]
