"""Experiment harness: functional and timing simulators plus per-figure experiments."""

from repro.sim.cloud import (
    CloudJobRecord,
    CloudSimulator,
    ReplayStats,
    TraceEvent,
    cloud_trace_experiment,
    default_mixed_trace,
    repeated_tenant_trace,
)
from repro.sim.experiments import (
    FIGURE5_SIZES_KB,
    FIGURE6_CONFIGS,
    TABLE2_DESIGNS,
    ablation_buffer_size,
    ablation_chunk_size,
    ablation_replay_protection,
    boot_latency_experiment,
    figure5_experiment,
    figure6_experiment,
    matmul_companion_experiment,
    table1_experiment,
    table2_experiment,
    table3_experiment,
)
from repro.sim.reporting import format_table, print_experiment, render_experiment
from repro.sim.results import ExperimentResult, FunctionalRecord, TimingRecord
from repro.sim.traces import default_profile_pool, generate_trace
from repro.sim.simulator import (
    FunctionalSimulator,
    ProvisionedTestShield,
    TimingSimulator,
    build_test_shield,
    outputs_equal,
    run_unshielded_baseline,
)

__all__ = [
    "CloudJobRecord",
    "CloudSimulator",
    "ReplayStats",
    "TraceEvent",
    "default_profile_pool",
    "generate_trace",
    "cloud_trace_experiment",
    "default_mixed_trace",
    "repeated_tenant_trace",
    "FIGURE5_SIZES_KB",
    "FIGURE6_CONFIGS",
    "TABLE2_DESIGNS",
    "ablation_buffer_size",
    "ablation_chunk_size",
    "ablation_replay_protection",
    "boot_latency_experiment",
    "figure5_experiment",
    "figure6_experiment",
    "matmul_companion_experiment",
    "table1_experiment",
    "table2_experiment",
    "table3_experiment",
    "format_table",
    "print_experiment",
    "render_experiment",
    "ExperimentResult",
    "FunctionalRecord",
    "TimingRecord",
    "FunctionalSimulator",
    "ProvisionedTestShield",
    "TimingSimulator",
    "build_test_shield",
    "outputs_equal",
    "run_unshielded_baseline",
]
