"""One entry point per table and figure of the paper's evaluation.

Each function returns an :class:`~repro.sim.results.ExperimentResult` whose
rows mirror the rows/series of the corresponding table or figure.  The
benchmark suite under ``benchmarks/`` calls these functions and prints them
with :mod:`repro.sim.reporting`; ``EXPERIMENTS.md`` records the paper-reported
values next to the model's output.
"""

from __future__ import annotations

from repro.accelerators.affine import AffineTransformAccelerator
from repro.accelerators.bitcoin import BitcoinAccelerator
from repro.accelerators.convolution import ConvolutionAccelerator
from repro.accelerators.digit_recognition import DigitRecognitionAccelerator
from repro.accelerators.dnnweaver import DnnWeaverAccelerator
from repro.accelerators.matmul import MatMulAccelerator
from repro.accelerators.sdp import SdpStorageNodeAccelerator
from repro.accelerators.vector_add import VectorAddAccelerator
from repro.boot.process import F1_BITSTREAM_LOAD_SECONDS, TYPICAL_VM_BOOT_SECONDS
from repro.core.area import shield_utilization, table1_rows
from repro.core.merkle import merkle_extra_dram_bytes
from repro.hw.board import ULTRA96_PROFILE
from repro.sim.results import ExperimentResult
from repro.sim.simulator import TimingSimulator

# The four AES-engine configurations swept in Figure 6.
FIGURE6_CONFIGS = (
    ("AES-128/16x", dict(aes_key_bits=128, sbox_parallelism=16)),
    ("AES-256/16x", dict(aes_key_bits=256, sbox_parallelism=16)),
    ("AES-128/4x", dict(aes_key_bits=128, sbox_parallelism=4)),
    ("AES-256/4x", dict(aes_key_bits=256, sbox_parallelism=4)),
)

# Figure 5 sweeps the input vector size from 8 KB to 80 MB (log scale).
FIGURE5_SIZES_KB = (8, 80, 800, 8_000, 80_000)

# Table 2's five SDP Shield designs: (#AES engines, S-box parallelism, MAC, #MAC engines).
TABLE2_DESIGNS = (
    ("4x Eng / 4x / HMAC", dict(num_aes_engines=4, sbox_parallelism=4, mac_algorithm="HMAC", num_mac_engines=1)),
    ("4x Eng / 16x / HMAC", dict(num_aes_engines=4, sbox_parallelism=16, mac_algorithm="HMAC", num_mac_engines=1)),
    ("4x Eng / 16x / PMAC", dict(num_aes_engines=4, sbox_parallelism=16, mac_algorithm="PMAC", num_mac_engines=4)),
    ("8x Eng / 16x / PMAC", dict(num_aes_engines=8, sbox_parallelism=16, mac_algorithm="PMAC", num_mac_engines=8)),
    ("16x Eng / 16x / PMAC", dict(num_aes_engines=16, sbox_parallelism=16, mac_algorithm="PMAC", num_mac_engines=16)),
)

_FIGURE6_ACCELERATORS = (
    ("convolution", ConvolutionAccelerator, "STR (batched)"),
    ("digit_recognition", DigitRecognitionAccelerator, "STR"),
    ("affine", AffineTransformAccelerator, "RA"),
    ("dnnweaver", DnnWeaverAccelerator, "STR+RA"),
    ("bitcoin", BitcoinAccelerator, "REG"),
)


def _paper_config(accelerator, **variant):
    """The paper-scale Shield config for an accelerator (falls back to the default)."""
    if hasattr(accelerator, "paper_shield_config"):
        return accelerator.paper_shield_config(**variant)
    return accelerator.build_shield_config(**variant)


# ---------------------------------------------------------------------------
# Section 6.1: secure-boot latency.
# ---------------------------------------------------------------------------


def boot_latency_experiment() -> ExperimentResult:
    """End-to-end secure-boot latency on the Ultra96 profile vs. the paper's references."""
    from repro.boot.manufacturer import Manufacturer
    from repro.boot.process import install_security_kernel, perform_secure_boot
    from repro.hw.board import BoardModel, make_board

    board = make_board(BoardModel.ULTRA96, serial="ultra96-boot-bench")
    Manufacturer(seed=3).provision_device(board)
    install_security_kernel(board)
    boot = perform_secure_boot(board)

    result = ExperimentResult(
        experiment_id="section-6.1",
        description="Secure boot latency, power-on to bitstream loading (Ultra96 profile)",
    )
    for phase, seconds in boot.phase_seconds.items():
        result.add_row(phase=phase, seconds=seconds)
    result.metadata = {
        "total_seconds": boot.total_seconds,
        "paper_total_seconds": 5.1,
        "vm_boot_reference_seconds": TYPICAL_VM_BOOT_SECONDS,
        "f1_bitstream_load_reference_seconds": F1_BITSTREAM_LOAD_SECONDS,
        "ultra96_clock_hz": ULTRA96_PROFILE.clock_hz,
    }
    return result


# ---------------------------------------------------------------------------
# Table 1: Shield component utilization.
# ---------------------------------------------------------------------------


def table1_experiment() -> ExperimentResult:
    """Per-component Shield resource usage (reproduces Table 1 directly)."""
    result = ExperimentResult(
        experiment_id="table-1",
        description="Shield component utilization on AWS F1",
    )
    for name, row in table1_rows().items():
        result.add_row(
            component=name,
            bram=row["BRAM"],
            lut=row["LUT"],
            reg=row["REG"],
            lut_percent=row["utilization"]["LUT"],
            reg_percent=row["utilization"]["REG"],
        )
    return result


# ---------------------------------------------------------------------------
# Figure 5: vector-add throughput overhead vs input size.
# ---------------------------------------------------------------------------


def figure5_experiment(sizes_kb=FIGURE5_SIZES_KB) -> ExperimentResult:
    """Normalized vector-add execution time vs vector size for AES/4x and AES/16x."""
    simulator = TimingSimulator()
    result = ExperimentResult(
        experiment_id="figure-5",
        description="Vector add throughput overhead across Shield configurations",
    )
    for label, sbox in (("AES/4x", 4), ("AES/16x", 16)):
        accelerator = VectorAddAccelerator()
        config = accelerator.build_shield_config(aes_key_bits=128, sbox_parallelism=sbox)
        for size_kb in sizes_kb:
            profile = accelerator.profile(vector_bytes=size_kb * 1024)
            record = simulator.run(profile, config, label)
            result.add_row(
                configuration=label,
                input_kb=size_kb,
                normalized_time=record.normalized_time,
            )
    return result


def matmul_companion_experiment(dimension: int = 512) -> ExperimentResult:
    """The Section 6.2.2 remark: matmul overhead stays near 1.26x for AES/4x."""
    simulator = TimingSimulator()
    accelerator = MatMulAccelerator(dimension=dimension)
    result = ExperimentResult(
        experiment_id="section-6.2.2-matmul",
        description="Matrix multiply overhead (compute hides encryption latency)",
    )
    for label, sbox in (("AES/4x", 4), ("AES/16x", 16)):
        config = accelerator.build_shield_config(aes_key_bits=128, sbox_parallelism=sbox)
        record = simulator.run(accelerator.profile(dimension), config, label)
        result.add_row(configuration=label, normalized_time=record.normalized_time)
    result.metadata["paper_max_overhead"] = 1.26
    return result


# ---------------------------------------------------------------------------
# Table 2: SDP overhead across Shield designs.
# ---------------------------------------------------------------------------


def table2_experiment() -> ExperimentResult:
    """SDP steady-state overhead for the five engine configurations of Table 2."""
    simulator = TimingSimulator()
    accelerator = SdpStorageNodeAccelerator()
    profile = accelerator.profile()
    paper_percent = (298, 297, 59, 20, 20)
    result = ExperimentResult(
        experiment_id="table-2",
        description="SDP performance overhead across Shield designs (1 MB files, 4 KB auth blocks)",
    )
    for (label, variant), paper in zip(TABLE2_DESIGNS, paper_percent):
        config = accelerator.build_shield_config(aes_key_bits=128, **variant)
        record = simulator.run(profile, config, label)
        result.add_row(
            design=label,
            overhead_percent=record.overhead_percent,
            paper_overhead_percent=paper,
        )
    sdp_area = shield_utilization(
        accelerator.build_shield_config(
            aes_key_bits=128, num_aes_engines=8, sbox_parallelism=16,
            mac_algorithm="PMAC", num_mac_engines=8,
        )
    )
    result.metadata["sdp_area_percent"] = sdp_area
    result.metadata["paper_sdp_area_percent"] = {"BRAM": 4.3, "LUT": 5.0, "REG": 2.5}
    return result


# ---------------------------------------------------------------------------
# Figure 6: per-accelerator overheads across AES configurations.
# ---------------------------------------------------------------------------


def figure6_experiment() -> ExperimentResult:
    """Normalized execution time of the five Figure 6 accelerators."""
    simulator = TimingSimulator()
    result = ExperimentResult(
        experiment_id="figure-6",
        description="Execution time of workloads across Shield configurations",
    )
    for name, accelerator_cls, characteristics in _FIGURE6_ACCELERATORS:
        accelerator = accelerator_cls()
        profile = accelerator.profile()
        for label, variant in FIGURE6_CONFIGS:
            config = _paper_config(accelerator, **variant)
            record = simulator.run(profile, config, label)
            result.add_row(
                workload=name,
                access=characteristics,
                configuration=label,
                normalized_time=record.normalized_time,
            )
        if name == "dnnweaver":
            # The PMAC optimization the paper applies on top of AES-128/16x.
            config = accelerator.build_shield_config(
                aes_key_bits=128, sbox_parallelism=16, pmac_weights=True
            )
            pmac_profile = accelerator.profile(pmac_weights=True)
            record = simulator.run(pmac_profile, config, "AES-128/16x-PMAC")
            result.add_row(
                workload=name,
                access=characteristics,
                configuration="AES-128/16x-PMAC",
                normalized_time=record.normalized_time,
            )
    result.metadata["paper_ranges"] = {
        "convolution": (1.20, 1.35),
        "digit_recognition": (1.85, 3.15),
        "affine": (1.41, 2.22),
        "dnnweaver": (3.20, 3.83),
        "dnnweaver_pmac": 2.31,
        "bitcoin": (1.0, 1.05),
    }
    return result


# ---------------------------------------------------------------------------
# Table 3: inclusive resource utilization of the largest Shield configurations.
# ---------------------------------------------------------------------------


def table3_experiment() -> ExperimentResult:
    """Per-accelerator Shield area for the largest (AES/16x) configuration."""
    paper = {
        "convolution": {"BRAM": 2.9, "LUT": 11.0, "REG": 5.2},
        "digit_recognition": {"BRAM": 0.71, "LUT": 3.3, "REG": 1.4},
        "affine": {"BRAM": 2.1, "LUT": 11.0, "REG": 5.2},
        "dnnweaver": {"BRAM": 3.1, "LUT": 7.1, "REG": 3.5},
        "bitcoin": {"BRAM": 0.0, "LUT": 1.4, "REG": 0.42},
    }
    result = ExperimentResult(
        experiment_id="table-3",
        description="Inclusive Shield resource utilization for the largest configuration",
    )
    for name, accelerator_cls, _ in _FIGURE6_ACCELERATORS:
        accelerator = accelerator_cls()
        config = _paper_config(accelerator, aes_key_bits=128, sbox_parallelism=16)
        utilization = shield_utilization(config)
        result.add_row(
            workload=name,
            bram_percent=utilization["BRAM"],
            lut_percent=utilization["LUT"],
            reg_percent=utilization["REG"],
            paper_bram_percent=paper[name]["BRAM"],
            paper_lut_percent=paper[name]["LUT"],
            paper_reg_percent=paper[name]["REG"],
        )
    return result


# ---------------------------------------------------------------------------
# Ablations called out in DESIGN.md.
# ---------------------------------------------------------------------------


def ablation_replay_protection(num_chunks: int = 16_384) -> ExperimentResult:
    """ShEF's on-chip counters vs the Bonsai Merkle baseline (extra DRAM bytes per access)."""
    result = ExperimentResult(
        experiment_id="ablation-replay",
        description="Replay protection: on-chip counters vs Bonsai Merkle tree",
    )
    result.add_row(scheme="shef_counters", extra_dram_bytes_per_access=0.0,
                   on_chip_bytes=4 * num_chunks)
    for arity in (4, 8, 16):
        result.add_row(
            scheme=f"merkle_arity_{arity}",
            extra_dram_bytes_per_access=merkle_extra_dram_bytes(num_chunks, arity=arity),
            on_chip_bytes=32,
        )
    return result


def ablation_chunk_size(chunk_sizes=(64, 256, 512, 1024, 4096, 16384)) -> ExperimentResult:
    """Effect of C_mem on DNNWeaver-style streaming traffic (tag overhead vs MAC latency)."""
    simulator = TimingSimulator()
    result = ExperimentResult(
        experiment_id="ablation-chunk-size",
        description="Chunk size (C_mem) sweep for the DNNWeaver weight stream",
    )
    for chunk in chunk_sizes:
        accelerator = DnnWeaverAccelerator()
        config = accelerator.build_shield_config(aes_key_bits=128, sbox_parallelism=16)
        # Rebuild the weights region with the swept chunk size.
        regions = []
        for region in config.regions:
            if region.name == "weights":
                regions.append(
                    type(region)(
                        name=region.name, base_address=region.base_address,
                        size_bytes=-(-region.size_bytes // chunk) * chunk,
                        chunk_size=chunk, engine_set=region.engine_set,
                        access_pattern=region.access_pattern,
                    )
                )
            else:
                regions.append(region)
        config.regions = regions
        config.tag_base_address = None
        profile = accelerator.profile()
        record = simulator.run(profile, config, f"cmem-{chunk}")
        result.add_row(chunk_size=chunk, normalized_time=record.normalized_time)
    return result


def ablation_buffer_size(buffer_sizes=(0, 4096, 16384, 65536, 262144)) -> ExperimentResult:
    """Effect of the on-chip buffer on the DNNWeaver feature-map region."""
    simulator = TimingSimulator()
    result = ExperimentResult(
        experiment_id="ablation-buffer",
        description="On-chip buffer sweep for the DNNWeaver feature-map engine set",
    )
    for buffer_bytes in buffer_sizes:
        accelerator = DnnWeaverAccelerator()
        config = accelerator.build_shield_config(aes_key_bits=128, sbox_parallelism=16)
        engine_sets = []
        for engine_set in config.engine_sets:
            if engine_set.name == "fmaps":
                engine_sets.append(
                    type(engine_set)(
                        name=engine_set.name, num_aes_engines=engine_set.num_aes_engines,
                        sbox_parallelism=engine_set.sbox_parallelism,
                        aes_key_bits=engine_set.aes_key_bits,
                        mac_algorithm=engine_set.mac_algorithm,
                        num_mac_engines=engine_set.num_mac_engines,
                        buffer_bytes=buffer_bytes,
                    )
                )
            else:
                engine_sets.append(engine_set)
        config.engine_sets = engine_sets
        profile = accelerator.profile()
        record = simulator.run(profile, config, f"buffer-{buffer_bytes}")
        result.add_row(buffer_bytes=buffer_bytes, normalized_time=record.normalized_time)
    return result
