"""The untrusted host-proxied channel between remote parties and the FPGA.

Every message of the attestation protocol travels through the host CPU, which
ShEF does not trust (Figure 1: the red arrows).  :class:`HostProxiedChannel`
models that path as a pair of message queues with optional adversary hooks: an
attacker-controlled host can observe, drop, reorder, replay, or rewrite
messages.  The protocol's security rests entirely on the cryptography layered
on top, which the attack tests exercise through exactly these hooks.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Optional

from repro.errors import ProtocolError


@dataclass
class ChannelStats:
    """Message counters for one direction of the channel."""

    delivered: int = 0
    dropped: int = 0
    tampered: int = 0


class HostProxiedChannel:
    """A bidirectional, adversary-observable message channel."""

    def __init__(self, name: str = "host-channel"):
        self.name = name
        self._queues: dict[str, deque] = {"to_device": deque(), "to_remote": deque()}
        self.stats = ChannelStats()
        self.transcript: list = []
        self._tamper_hook: Optional[Callable[[str, bytes], Optional[bytes]]] = None

    def install_tamper_hook(
        self, hook: Callable[[str, bytes], Optional[bytes]]
    ) -> None:
        """Install an adversary callback.

        The hook receives ``(direction, message)`` and returns the (possibly
        modified) message, or ``None`` to drop it.
        """
        self._tamper_hook = hook

    def send(self, direction: str, message: bytes) -> None:
        """Send a message in ``direction`` (``"to_device"`` or ``"to_remote"``)."""
        if direction not in self._queues:
            raise ProtocolError(f"unknown channel direction {direction!r}")
        original = bytes(message)
        if self._tamper_hook is not None:
            modified = self._tamper_hook(direction, original)
            if modified is None:
                self.stats.dropped += 1
                return
            if modified != original:
                self.stats.tampered += 1
            original = modified
        self.transcript.append((direction, original))
        self._queues[direction].append(original)
        self.stats.delivered += 1

    def receive(self, direction: str) -> bytes:
        """Receive the next message in ``direction``; raises if none is pending."""
        if direction not in self._queues:
            raise ProtocolError(f"unknown channel direction {direction!r}")
        queue = self._queues[direction]
        if not queue:
            raise ProtocolError(f"no pending message in direction {direction!r}")
        return queue.popleft()

    def pending(self, direction: str) -> int:
        return len(self._queues[direction])
