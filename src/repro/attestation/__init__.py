"""Remote attestation: the Figure 3 protocol and its three parties.

The IP Vendor packages accelerators and verifies attestation reports, the Data
Owner generates Data Encryption Keys and wraps them into Load Keys, and the
protocol module orchestrates the message exchange with the on-FPGA Security
Kernel over an untrusted host-proxied channel.
"""

from repro.attestation.channel import ChannelStats, HostProxiedChannel
from repro.attestation.data_owner import DataOwner, StagedRegionData
from repro.attestation.ip_vendor import (
    IpVendor,
    PackagedAccelerator,
    PendingAttestation,
    VendorSession,
)
from repro.attestation.messages import (
    AttestationChallenge,
    AttestationReport,
    AttestationResult,
    EncryptedKeyDelivery,
    LoadKeyDelivery,
    SignedAttestationReport,
)
from repro.attestation.protocol import AttestationOutcome, run_remote_attestation

__all__ = [
    "ChannelStats",
    "HostProxiedChannel",
    "DataOwner",
    "StagedRegionData",
    "IpVendor",
    "PackagedAccelerator",
    "PendingAttestation",
    "VendorSession",
    "AttestationChallenge",
    "AttestationReport",
    "AttestationResult",
    "EncryptedKeyDelivery",
    "LoadKeyDelivery",
    "SignedAttestationReport",
    "AttestationOutcome",
    "run_remote_attestation",
]
