"""The IP Vendor role: accelerator packaging and the attestation verifier.

The IP Vendor develops the accelerator in a secure environment, wraps it with
the Shield, provisions the Bitstream Encryption Key and the Shield Encryption
Key, and distributes only the *encrypted* bitstream (Figure 2, steps 3-4).  At
deployment time the vendor runs the verification side of the remote
attestation protocol (Figure 3): it challenges the Security Kernel with a
nonce and ephemeral Verification Key, validates the returned report against
the Manufacturer's certificate authority and its own whitelist of Security
Kernel hashes, and only then releases the Bitstream Key over the freshly
established session channel.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.attestation.messages import (
    AttestationChallenge,
    EncryptedKeyDelivery,
    SignedAttestationReport,
)
from repro.boot.certificates import Certificate, verify_binding, verify_certificate_with_key
from repro.crypto.authenc import AuthenticatedCipher
from repro.crypto.drbg import HmacDrbg
from repro.crypto.ecc import (
    EcPrivateKey,
    EcPublicKey,
    derive_session_key,
    ecdsa_verify,
)
from repro.crypto.keys import BitstreamKey, ShieldEncryptionKeyPair
from repro.crypto.rsa import RsaPrivateKey
from repro.errors import AttestationError
from repro.hw.bitstream import Bitstream, EncryptedBitstream, encrypt_bitstream


@dataclass
class PackagedAccelerator:
    """An accelerator design packaged for distribution."""

    name: str
    encrypted_bitstream: EncryptedBitstream
    expected_bitstream_hash: bytes
    shield_config: dict
    accelerator_spec: dict


@dataclass
class PendingAttestation:
    """The verifier's state between challenge and report."""

    nonce: bytes
    verification_key: EcPrivateKey
    accelerator_name: str


@dataclass
class VendorSession:
    """An established, attested session with one Security Kernel."""

    accelerator_name: str
    device_serial: str
    session_cipher: AuthenticatedCipher = field(repr=False, default=None)
    nonce: bytes = b""
    attestation_public_key: bytes = b""


class IpVendor:
    """An IP Vendor: packages accelerators and attests devices before key release."""

    def __init__(self, name: str, seed: int = 7, shield_key_bits: int = 1024):
        self.name = name
        self._rng = HmacDrbg(seed.to_bytes(8, "big"), b"ip-vendor:" + name.encode("utf-8"))
        self.shield_key_pair = ShieldEncryptionKeyPair(
            RsaPrivateKey.from_seed(
                self._rng.generate(32), bits=shield_key_bits, label=f"shield-key-{name}"
            )
        )
        self.bitstream_key = BitstreamKey(self._rng.generate(32))
        self._trusted_kernel_hashes: set[bytes] = set()
        self._packaged: dict[str, PackagedAccelerator] = {}

    # -- development-time steps ---------------------------------------------------

    @property
    def shield_public_key_encoding(self) -> bytes:
        """The public Shield Encryption Key, published to Data Owners."""
        return self.shield_key_pair.public_key.encode()

    def trust_security_kernel(self, kernel_binary_hash: bytes) -> None:
        """Add a Security Kernel measurement to the public whitelist."""
        self._trusted_kernel_hashes.add(bytes(kernel_binary_hash))

    @property
    def trusted_kernel_hashes(self) -> set:
        return set(self._trusted_kernel_hashes)

    def package_accelerator(
        self,
        name: str,
        accelerator_spec: dict,
        shield_config: dict,
        resources: Optional[dict] = None,
    ) -> PackagedAccelerator:
        """Wrap an accelerator with the Shield and produce the encrypted bitstream."""
        bitstream = Bitstream(
            accelerator_name=name,
            vendor=self.name,
            accelerator_spec=dict(accelerator_spec),
            shield_config=dict(shield_config),
            shield_private_key_blob=self.shield_key_pair.private_key.encode(),
            resources=dict(resources or {}),
        )
        encrypted = encrypt_bitstream(
            bitstream, self.bitstream_key.material, iv=self._rng.generate(12)
        )
        packaged = PackagedAccelerator(
            name=name,
            encrypted_bitstream=encrypted,
            expected_bitstream_hash=encrypted.measurement(),
            shield_config=dict(shield_config),
            accelerator_spec=dict(accelerator_spec),
        )
        self._packaged[name] = packaged
        return packaged

    def packaged(self, name: str) -> PackagedAccelerator:
        try:
            return self._packaged[name]
        except KeyError:
            raise AttestationError(f"no packaged accelerator named {name!r}") from None

    # -- attestation (verifier side) -------------------------------------------------

    def begin_attestation(self, accelerator_name: str) -> tuple:
        """Step 2 of Figure 3: generate a nonce and an ephemeral Verification Key."""
        if accelerator_name not in self._packaged:
            raise AttestationError(f"no packaged accelerator named {accelerator_name!r}")
        nonce = self._rng.generate(32)
        verification_key = EcPrivateKey.generate(self._rng)
        challenge = AttestationChallenge(
            nonce=nonce,
            verification_public_key=verification_key.public_key.encode(),
        )
        pending = PendingAttestation(
            nonce=nonce,
            verification_key=verification_key,
            accelerator_name=accelerator_name,
        )
        return challenge, pending

    def verify_report(
        self,
        pending: PendingAttestation,
        signed_report: SignedAttestationReport,
        device_certificate: Certificate,
        manufacturer_root_key: EcPublicKey,
    ) -> VendorSession:
        """Step 5 of Figure 3: authenticate the attestation report.

        Checks, in order: the device certificate chains to the Manufacturer's
        CA; sigma_SecKrnl was signed by the certified device key over (kernel
        hash, Attestation public key); the kernel hash is whitelisted; the
        report was signed by the Attestation key; the nonce is fresh; the
        bitstream hash matches the distributed package; and sigma_SessionKey
        proves the kernel holds the same session key we derive.
        """
        report = signed_report.report

        # 1. Device certificate chains to the Manufacturer.
        try:
            verify_certificate_with_key(device_certificate, manufacturer_root_key)
        except Exception as exc:
            raise AttestationError(
                "device certificate does not chain to the trusted manufacturer"
            ) from exc
        device_public_key = device_certificate.subject_public_key()
        if report.device_serial and report.device_serial != device_certificate.subject:
            raise AttestationError("attestation report names a different device serial")

        # 2. sigma_SecKrnl binds (kernel hash, Attestation key) under the device key.
        if not verify_binding(
            device_public_key,
            report.kernel_certificate_signature,
            report.kernel_hash,
            report.attestation_public_key,
        ):
            raise AttestationError("sigma_SecKrnl was not produced by a legitimate device")

        # 3. The Security Kernel measurement is whitelisted.
        if report.kernel_hash not in self._trusted_kernel_hashes:
            raise AttestationError("unrecognized Security Kernel measurement")

        # 4. The report itself is signed by the Attestation key.
        attestation_public_key = EcPublicKey.decode(report.attestation_public_key)
        if not ecdsa_verify(
            attestation_public_key, report.canonical_bytes(), signed_report.report_signature
        ):
            raise AttestationError("attestation report signature is invalid")

        # 5. Nonce freshness.
        if report.nonce != pending.nonce:
            raise AttestationError("attestation nonce mismatch (possible replay)")

        # 6. The encrypted bitstream staged on the device is the one we shipped.
        expected = self._packaged[pending.accelerator_name].expected_bitstream_hash
        if report.encrypted_bitstream_hash != expected:
            raise AttestationError("the staged bitstream is not the distributed one")

        # 7. Session key agreement + sigma_SessionKey.
        session_key = derive_session_key(pending.verification_key, attestation_public_key)
        if not ecdsa_verify(
            attestation_public_key,
            b"shef-session-key" + session_key,
            signed_report.session_key_signature,
        ):
            raise AttestationError("session key signature is invalid (possible MITM)")

        return VendorSession(
            accelerator_name=pending.accelerator_name,
            device_serial=report.device_serial,
            session_cipher=AuthenticatedCipher(session_key, "HMAC"),
            nonce=pending.nonce,
            attestation_public_key=report.attestation_public_key,
        )

    def provision_bitstream_key(self, session: VendorSession) -> EncryptedKeyDelivery:
        """Step 6 of Figure 3: send the Bitstream Key sealed under the Session Key."""
        message = session.session_cipher.seal(
            self._rng.generate(12),
            self.bitstream_key.material,
            associated_data=b"bitstream-key" + session.nonce,
        )
        return EncryptedKeyDelivery(sealed_payload=message.serialize())
