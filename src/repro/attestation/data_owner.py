"""The Data Owner role: key generation, data sealing, and result recovery.

The Data Owner rents the FPGA, chooses which IP Vendor to attest against, and
-- once attestation succeeds -- provisions a fresh Data Encryption Key for
each Shield by wrapping it against the IP Vendor's public Shield Encryption
Key (the *Load Key*, Figure 3 step 8).  All sensitive data is sealed on the
Data Owner's machine with the Data Encryption Key, in exactly the chunked
format the Shield's engine sets use, before it ever touches the untrusted host
or device DRAM; results come back the same way.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.attestation.messages import LoadKeyDelivery
from repro.core.config import RegionConfig, ShieldConfig
from repro.core.register_interface import RegisterChannelClient
from repro.core.sealing import RegionSealer, SealedChunk
from repro.crypto.drbg import HmacDrbg
from repro.crypto.keys import DataEncryptionKey
from repro.crypto.rsa import RsaPublicKey, rsa_encrypt
from repro.errors import AttestationError


@dataclass
class StagedRegionData:
    """Sealed input data for one region, ready for the host to DMA."""

    region: RegionConfig
    sealed_chunks: list = field(default_factory=list)
    plaintext_length: int = 0

    def flat_ciphertext(self) -> bytes:
        """Concatenated ciphertext in region order (what the host writes to DRAM)."""
        return b"".join(chunk.ciphertext for chunk in self.sealed_chunks)

    def tags(self) -> list:
        return [chunk.tag for chunk in self.sealed_chunks]


class DataOwner:
    """A Data Owner with a key ring of per-Shield Data Encryption Keys."""

    def __init__(self, name: str = "data-owner", seed: int = 11):
        self.name = name
        self._rng = HmacDrbg(seed.to_bytes(8, "big"), b"data-owner:" + name.encode("utf-8"))
        self._data_keys: dict[str, DataEncryptionKey] = {}

    # -- key management ----------------------------------------------------------------

    def generate_data_key(self, shield_id: str = "shield0", bits: int = 256) -> DataEncryptionKey:
        """Generate (and remember) a fresh Data Encryption Key for one Shield."""
        key = DataEncryptionKey(self._rng.generate(bits // 8))
        self._data_keys[shield_id] = key
        return key

    def data_key(self, shield_id: str = "shield0") -> DataEncryptionKey:
        try:
            return self._data_keys[shield_id]
        except KeyError:
            raise AttestationError(
                f"no Data Encryption Key generated for Shield {shield_id!r}"
            ) from None

    def wrap_load_key(
        self, shield_public_key_encoding: bytes, shield_id: str = "shield0"
    ) -> LoadKeyDelivery:
        """Wrap the Data Encryption Key against the Shield's public key (the Load Key)."""
        public_key = RsaPublicKey.decode(shield_public_key_encoding)
        wrapped = rsa_encrypt(public_key, self.data_key(shield_id).material, self._rng)
        return LoadKeyDelivery(wrapped_key=wrapped, shield_id=shield_id)

    # -- data sealing ----------------------------------------------------------------------

    def _sealer(self, shield_config: ShieldConfig, region_name: str, shield_id: str) -> RegionSealer:
        region = shield_config.region(region_name)
        engine_config = shield_config.engine_set(region.engine_set)
        return RegionSealer(self.data_key(shield_id).material, region, engine_config)

    def seal_input(
        self,
        shield_config: ShieldConfig,
        region_name: str,
        plaintext: bytes,
        shield_id: str = "shield0",
    ) -> StagedRegionData:
        """Seal input data for one region in the Shield's on-DRAM format."""
        sealer = self._sealer(shield_config, region_name, shield_id)
        chunks = sealer.seal_region_data(plaintext)
        return StagedRegionData(
            region=shield_config.region(region_name),
            sealed_chunks=chunks,
            plaintext_length=len(plaintext),
        )

    def unseal_output(
        self,
        shield_config: ShieldConfig,
        region_name: str,
        sealed_chunks: list,
        length: int | None = None,
        shield_id: str = "shield0",
    ) -> bytes:
        """Verify and decrypt output chunks fetched back from device memory."""
        sealer = self._sealer(shield_config, region_name, shield_id)
        return sealer.unseal_region_data(sealed_chunks, length)

    def unseal_output_with_versions(
        self,
        shield_config: ShieldConfig,
        region_name: str,
        sealed_chunks: list,
        versions: list,
        length: int | None = None,
        shield_id: str = "shield0",
    ) -> bytes:
        """Unseal output chunks whose write versions are known (replay-protected regions)."""
        sealer = self._sealer(shield_config, region_name, shield_id)
        return sealer.unseal_region_data(sealed_chunks, length, versions)

    # -- register channel -----------------------------------------------------------------------

    def register_channel(
        self, shield_config: ShieldConfig, shield_id: str = "shield0"
    ) -> RegisterChannelClient:
        """A client that seals register commands under this Shield's Data Encryption Key."""
        return RegisterChannelClient(
            self.data_key(shield_id).material, shield_config.register_interface
        )

    @staticmethod
    def sealed_chunks_from_device(
        shield_config: ShieldConfig,
        region_name: str,
        ciphertext: bytes,
        tags: list,
        offset_chunks: int = 0,
    ) -> list:
        """Rebuild :class:`SealedChunk` objects from raw ciphertext + tags read back via DMA.

        ``offset_chunks`` is the region-relative index of the first downloaded
        chunk (what :meth:`ShefHostRuntime.download_region` was called with).
        Chunk indices must be rebuilt from the same offset: the MAC binds each
        chunk's absolute address and its IV encodes the chunk index, so a
        partial download labelled from 0 would fail verification.
        """
        region = shield_config.region(region_name)
        chunk_size = region.chunk_size
        chunks = []
        for index, tag in enumerate(tags):
            piece = ciphertext[index * chunk_size : (index + 1) * chunk_size]
            chunks.append(
                SealedChunk(chunk_index=offset_chunks + index, ciphertext=piece, tag=tag)
            )
        return chunks
