"""Orchestration of the full remote-attestation handshake (Figure 3).

``run_remote_attestation`` drives the message exchange between an IP Vendor's
verification server, the Security Kernel on the FPGA, and the Data Owner, with
every message crossing an untrusted :class:`~repro.attestation.channel.HostProxiedChannel`.
On success the Security Kernel holds the Bitstream Key, the Data Owner holds a
fresh Data Encryption Key and the Load Key that will provision it into the
Shield, and the caller receives an :class:`AttestationOutcome` summarizing the
session.  The Security Kernel is passed in duck-typed (any object exposing
``handle_challenge`` / ``receive_bitstream_key``) so this module stays free of
hardware dependencies.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.attestation.channel import HostProxiedChannel
from repro.attestation.data_owner import DataOwner
from repro.attestation.ip_vendor import IpVendor, VendorSession
from repro.attestation.messages import (
    AttestationChallenge,
    EncryptedKeyDelivery,
    LoadKeyDelivery,
    SignedAttestationReport,
)
from repro.boot.certificates import Certificate
from repro.crypto.ecc import EcPublicKey
from repro.errors import AttestationError


@dataclass
class AttestationOutcome:
    """Result of a completed attestation run."""

    vendor_session: VendorSession
    load_key: LoadKeyDelivery
    shield_public_key: bytes
    transcript_length: int


def run_remote_attestation(
    ip_vendor: IpVendor,
    data_owner: DataOwner,
    security_kernel,
    accelerator_name: str,
    device_certificate: Certificate,
    manufacturer_root_key: EcPublicKey,
    channel: HostProxiedChannel | None = None,
    shield_id: str = "shield0",
) -> AttestationOutcome:
    """Run the Figure 3 protocol end to end over an untrusted channel.

    Raises :class:`AttestationError` if any verification step fails or if the
    adversary controlling the channel tampered with a message in a detectable
    way (dropped messages surface as :class:`~repro.errors.ProtocolError`).
    """
    channel = channel or HostProxiedChannel()

    # 1-2. The IP Vendor issues a challenge; the host forwards it to the device.
    challenge, pending = ip_vendor.begin_attestation(accelerator_name)
    channel.send("to_device", challenge.serialize())
    delivered_challenge = AttestationChallenge.deserialize(channel.receive("to_device"))

    # 3-4. The Security Kernel produces a signed report; the host forwards it back.
    signed_report = security_kernel.handle_challenge(delivered_challenge)
    channel.send("to_remote", signed_report.serialize())
    delivered_report = SignedAttestationReport.deserialize(channel.receive("to_remote"))

    # 5. The IP Vendor authenticates the report against the Manufacturer CA.
    session = ip_vendor.verify_report(
        pending, delivered_report, device_certificate, manufacturer_root_key
    )

    # 6. The Bitstream Key crosses the untrusted host sealed under the session key.
    key_delivery = ip_vendor.provision_bitstream_key(session)
    channel.send("to_device", key_delivery.serialize())
    delivered_key = EncryptedKeyDelivery.deserialize(channel.receive("to_device"))
    security_kernel.receive_bitstream_key(delivered_key)

    # 7-8. The Data Owner obtains the Shield public key from the vendor and
    # wraps a fresh Data Encryption Key into the Load Key.
    shield_public_key = ip_vendor.shield_public_key_encoding
    data_owner.generate_data_key(shield_id)
    load_key = data_owner.wrap_load_key(shield_public_key, shield_id)
    channel.send("to_device", load_key.serialize())
    delivered_load_key = LoadKeyDelivery.deserialize(channel.receive("to_device"))

    if delivered_load_key.shield_id != shield_id:
        raise AttestationError("Load Key was redirected to a different Shield")

    return AttestationOutcome(
        vendor_session=session,
        load_key=delivered_load_key,
        shield_public_key=shield_public_key,
        transcript_length=len(channel.transcript),
    )
