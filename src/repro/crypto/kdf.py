"""Key-derivation functions: HKDF (RFC 5869) and a simple counter-mode KDF.

The SPB firmware derives the Attestation Key pair from a signature over the
Security Kernel hash (Section 4 of the paper, "uses the resulting value to
seed a key generator"); HKDF is the key generator in this reproduction.  The
Shield also derives per-region sub-keys from the Data Encryption Key so that
two engine sets never share an (IV, key) pair.
"""

from __future__ import annotations

from repro.analysis.annotations import secret
from repro.crypto.mac import hmac_sha256


@secret
def hkdf_extract(salt: bytes, input_key_material: bytes) -> bytes:
    """HKDF-Extract: return a 32-byte pseudo-random key."""
    if not salt:
        salt = b"\x00" * 32
    return hmac_sha256(salt, input_key_material)


@secret
def hkdf_expand(pseudo_random_key: bytes, info: bytes, length: int) -> bytes:
    """HKDF-Expand: derive ``length`` bytes of output keying material."""
    if length > 255 * 32:
        raise ValueError("HKDF-Expand output too long")
    output = b""
    previous = b""
    counter = 1
    while len(output) < length:
        previous = hmac_sha256(pseudo_random_key, previous + info + bytes([counter]))
        output += previous
        counter += 1
    return output[:length]


@secret
def hkdf(
    input_key_material: bytes,
    length: int,
    salt: bytes = b"",
    info: bytes = b"",
) -> bytes:
    """Full HKDF (extract then expand)."""
    return hkdf_expand(hkdf_extract(salt, input_key_material), info, length)


@secret
def derive_subkey(master_key: bytes, label: str, length: int = 32) -> bytes:
    """Derive a named sub-key from ``master_key`` (used for per-region keys)."""
    return hkdf(master_key, length, salt=b"shef-subkey", info=label.encode("utf-8"))
