"""Vectorized AES-CTR: the Shield's crypto fast path.

:class:`~repro.crypto.aes.AES` transforms one 16-byte block per Python call,
which makes the functional datapath the bottleneck of every large simulation.
This module evaluates the *same* cipher over a whole batch of blocks at once
with numpy: the state becomes an ``(n_blocks, 16)`` uint8 array, S-box and
GF(2^8) multiplications become table lookups, and ShiftRows becomes a fixed
column permutation.  A 4 KiB chunk is 256 blocks in one pass; a 1 MiB region
is 65,536.

The implementation reuses the scalar cipher's key schedule verbatim, so the
output is byte-for-byte identical to :func:`repro.crypto.modes.ctr_transform`
for every key size, IV, length, and initial counter -- a property the
differential-conformance suite (``tests/crypto/test_fast_path_equivalence``)
checks continuously.  Only CTR mode is provided: it is the only mode on the
Shield's per-chunk hot path, and it needs just the forward block transform.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.annotations import hot_path, scalar_reference
from repro.crypto.aes import AES, BLOCK_SIZE, INV_SBOX, SBOX, _MUL2, _MUL3
from repro.errors import CryptoError

__all__ = [
    "VectorAes",
    "fast_ctr_keystream",
    "fast_ctr_transform",
    "fast_ctr_transform_many",
]

# Lookup tables as numpy arrays (shared, read-only).
_SBOX_NP = np.array(SBOX, dtype=np.uint8)
_INV_SBOX_NP = np.array(INV_SBOX, dtype=np.uint8)
_MUL2_NP = np.array(_MUL2, dtype=np.uint8)
_MUL3_NP = np.array(_MUL3, dtype=np.uint8)

# The scalar cipher keeps its state row-major (``state[4r + c]``) while blocks
# are column-major (``block[4c + r]``); the 4x4 transpose converts between the
# two and is its own inverse.
_TRANSPOSE = np.array([4 * c + r for r in range(4) for c in range(4)], dtype=np.intp)

# ShiftRows in state layout: row r rotates left by r.
_SHIFT_ROWS = np.array(
    [4 * r + ((c + r) % 4) for r in range(4) for c in range(4)], dtype=np.intp
)


class VectorAes:
    """Batched AES forward transform sharing the scalar cipher's key schedule."""

    def __init__(self, cipher: AES | bytes):
        if not isinstance(cipher, AES):
            cipher = AES(cipher)
        self.rounds = cipher.rounds
        # Round keys converted once into state layout: (rounds + 1, 16) uint8.
        self._round_keys = np.array(cipher._round_keys, dtype=np.uint8)[:, _TRANSPOSE]

    # -- block batch transform ----------------------------------------------------

    def encrypt_blocks(self, blocks: np.ndarray) -> np.ndarray:
        """Encrypt an ``(n, 16)`` uint8 array of blocks; returns the same shape."""
        if blocks.ndim != 2 or blocks.shape[1] != BLOCK_SIZE:
            raise CryptoError("encrypt_blocks expects an (n, 16) array")
        state = blocks[:, _TRANSPOSE] ^ self._round_keys[0]
        for round_index in range(1, self.rounds):
            state = _SBOX_NP[state]
            state = state[:, _SHIFT_ROWS]
            state = self._mix_columns(state)
            state ^= self._round_keys[round_index]
        state = _SBOX_NP[state]
        state = state[:, _SHIFT_ROWS]
        state ^= self._round_keys[self.rounds]
        return state[:, _TRANSPOSE]

    @staticmethod
    def _mix_columns(state: np.ndarray) -> np.ndarray:
        s = state.reshape(-1, 4, 4)
        a0, a1, a2, a3 = s[:, 0, :], s[:, 1, :], s[:, 2, :], s[:, 3, :]
        out = np.empty_like(s)
        out[:, 0, :] = _MUL2_NP[a0] ^ _MUL3_NP[a1] ^ a2 ^ a3
        out[:, 1, :] = a0 ^ _MUL2_NP[a1] ^ _MUL3_NP[a2] ^ a3
        out[:, 2, :] = a0 ^ a1 ^ _MUL2_NP[a2] ^ _MUL3_NP[a3]
        out[:, 3, :] = _MUL3_NP[a0] ^ a1 ^ a2 ^ _MUL2_NP[a3]
        return out.reshape(-1, 16)

    # -- CTR mode -----------------------------------------------------------------

    def _counter_blocks(self, ivs: np.ndarray, counters: np.ndarray) -> np.ndarray:
        """Assemble ``iv || counter`` blocks from (n, 12) IVs and n counters."""
        blocks = np.empty((len(counters), BLOCK_SIZE), dtype=np.uint8)
        blocks[:, :12] = ivs
        # Match the scalar path: the 32-bit counter wraps modulo 2^32.
        blocks[:, 12:] = (
            (counters & 0xFFFFFFFF).astype(">u4").view(np.uint8).reshape(-1, 4)
        )
        return blocks

    def keystream(self, iv: bytes, length: int, initial_counter: int = 0) -> np.ndarray:
        """``length`` bytes of CTR keystream as a uint8 array."""
        if len(iv) != 12:
            raise CryptoError("CTR IV must be 12 bytes (96 bits)")
        num_blocks = -(-length // BLOCK_SIZE)
        if num_blocks == 0:
            return np.empty(0, dtype=np.uint8)
        counters = initial_counter + np.arange(num_blocks, dtype=np.uint64)
        ivs = np.broadcast_to(np.frombuffer(iv, dtype=np.uint8), (num_blocks, 12))
        stream = self.encrypt_blocks(self._counter_blocks(ivs, counters))
        return stream.reshape(-1)[:length]

    def ctr_transform(self, iv: bytes, data: bytes, initial_counter: int = 0) -> bytes:
        """Encrypt or decrypt ``data`` in CTR mode (the operation is symmetric)."""
        if not data:
            return b""
        stream = self.keystream(iv, len(data), initial_counter)
        return (np.frombuffer(data, dtype=np.uint8) ^ stream).tobytes()

    @hot_path
    @scalar_reference("repro.crypto.modes:ctr_transform")
    def ctr_transform_array(
        self, ivs: np.ndarray, data: np.ndarray, initial_counter: int = 0
    ) -> np.ndarray:
        """CTR-transform an ``(n, chunk_len)`` uint8 array under ``(n, 12)`` IVs.

        The zero-copy entry point behind :meth:`ctr_transform_many`: input and
        output stay numpy arrays end-to-end, so a whole-region seal allocates
        one keystream and one output buffer instead of one ``bytes`` object
        per chunk.
        """
        if ivs.ndim != 2 or ivs.shape[1] != 12:
            raise CryptoError("ctr_transform_array expects an (n, 12) IV array")
        if data.ndim != 2 or data.shape[0] != ivs.shape[0]:
            raise CryptoError("ctr_transform_array needs one IV per chunk row")
        num_chunks, chunk_len = data.shape
        if num_chunks == 0 or chunk_len == 0:
            return np.empty_like(data)
        blocks_per_chunk = -(-chunk_len // BLOCK_SIZE)
        counters = initial_counter + np.tile(
            np.arange(blocks_per_chunk, dtype=np.uint64), num_chunks
        )
        iv_blocks = np.repeat(ivs, blocks_per_chunk, axis=0)
        stream = self.encrypt_blocks(self._counter_blocks(iv_blocks, counters))
        stream = stream.reshape(num_chunks, blocks_per_chunk * BLOCK_SIZE)[:, :chunk_len]
        return data ^ stream

    @scalar_reference("repro.crypto.modes:ctr_transform")
    def ctr_transform_many(
        self, ivs: list, datas: list, initial_counter: int = 0
    ) -> list:
        """CTR-transform many equal-length chunks in one cipher pass.

        This is the whole-region batch path: with ``k`` chunks of ``m`` blocks
        each, all ``k * m`` counter blocks go through :meth:`encrypt_blocks`
        together, so sealing a full region costs one numpy pipeline instead of
        ``k`` separate calls.
        """
        if len(ivs) != len(datas):
            raise CryptoError("ctr_transform_many needs one IV per chunk")
        if not datas:
            return []
        chunk_len = len(datas[0])
        if any(len(d) != chunk_len for d in datas):
            raise CryptoError("ctr_transform_many requires equal-length chunks")
        if chunk_len == 0:
            return [b"" for _ in datas]
        if any(len(iv) != 12 for iv in ivs):
            raise CryptoError("CTR IV must be 12 bytes (96 bits)")
        num_chunks = len(datas)
        iv_array = np.frombuffer(b"".join(ivs), dtype=np.uint8).reshape(num_chunks, 12)
        data_array = np.frombuffer(b"".join(datas), dtype=np.uint8).reshape(
            num_chunks, chunk_len
        )
        out = self.ctr_transform_array(iv_array, data_array, initial_counter)
        return [row.tobytes() for row in out]


# -- module-level conveniences (mirror repro.crypto.modes signatures) --------------


def fast_ctr_keystream(
    cipher: AES | VectorAes, iv: bytes, length: int, initial_counter: int = 0
) -> bytes:
    """Drop-in vectorized equivalent of :func:`repro.crypto.modes.ctr_keystream`."""
    vector = cipher if isinstance(cipher, VectorAes) else VectorAes(cipher)
    return vector.keystream(iv, length, initial_counter).tobytes()


def fast_ctr_transform(
    cipher: AES | VectorAes, iv: bytes, data: bytes, initial_counter: int = 0
) -> bytes:
    """Drop-in vectorized equivalent of :func:`repro.crypto.modes.ctr_transform`."""
    vector = cipher if isinstance(cipher, VectorAes) else VectorAes(cipher)
    return vector.ctr_transform(iv, data, initial_counter)


@scalar_reference("repro.crypto.modes:ctr_transform")
def fast_ctr_transform_many(
    cipher: AES | VectorAes, ivs: list, datas: list, initial_counter: int = 0
) -> list:
    """Batch :func:`fast_ctr_transform` over equal-length chunks."""
    vector = cipher if isinstance(cipher, VectorAes) else VectorAes(cipher)
    return vector.ctr_transform_many(ivs, datas, initial_counter)
