"""Vectorized multi-message MACs: the Shield's authentication fast path.

PR 1 vectorized AES-CTR, which moved the functional hot path's bottleneck to
the scalar per-chunk MAC over the pure-Python SHA-256 -- exactly the
authentication bottleneck the paper removes in Sections 6.2.3-6.2.4 by
swapping HMAC for parallelizable PMAC.  This module removes it in simulation
space: all chunk MACs of a region are computed in one numpy pass.

The batched primitives are byte-identical to their scalar references in
:mod:`repro.crypto.mac` / :mod:`repro.crypto.hashes`:

* :func:`sha256_many` runs the FIPS 180-4 compression schedule over an
  ``(n_messages, n_blocks * 16)`` word array of equal-length messages: the
  eight working variables become ``(n,)`` uint32 arrays, so one Python-level
  round updates every message at once.  All chunk-MAC messages of a region
  are equal-length (22-byte context + ``chunk_size`` ciphertext), which is
  what makes the region seal/unseal path a single batch.
* :class:`BatchedMac` holds the per-key setup (HMAC key pads, or the AES key
  schedule plus PMAC/CMAC subkeys) and tags whole batches: HMAC as one
  batched inner pass over the messages plus one batched outer pass over the
  32-byte inner digests; PMAC's independent masked-block encryptions as one
  ``(n * blocks, 16)`` :meth:`~repro.crypto.fastaes.VectorAes.encrypt_blocks`
  batch (the parallelism the Shield's PMAC engines exploit in hardware);
  CMAC sequential per message but with all messages' CBC chains in lock-step.

:class:`BatchedMac` groups messages by length, so callers may hand over
ragged batches; the module-level ``fast_*_many`` conveniences mirror the
scalar signatures and :func:`fast_mac_many` dispatches by algorithm name
just like :func:`repro.crypto.mac.compute_mac`.
"""

from __future__ import annotations

import struct

import numpy as np

from repro.analysis.annotations import hot_path, scalar_reference
from repro.crypto.aes import AES, BLOCK_SIZE
from repro.crypto.fastaes import VectorAes
from repro.crypto.hashes import _INITIAL_STATE, _K, SHA256
from repro.crypto.mac import _cmac_subkeys, _double, hmac_key_pads
from repro.errors import CryptoError

__all__ = [
    "sha256_many",
    "sha256_many_array",
    "BatchedMac",
    "fast_hmac_sha256_many",
    "fast_aes_pmac_many",
    "fast_aes_cmac_many",
    "fast_mac_many",
]

_K_NP = np.array(_K, dtype=np.uint32)
_STATE_NP = np.array(_INITIAL_STATE, dtype=np.uint32)


def _rotr(values: np.ndarray, amount: int) -> np.ndarray:
    """Rotate every uint32 lane right by ``amount`` (1 <= amount <= 31)."""
    return (values >> np.uint32(amount)) | (values << np.uint32(32 - amount))


def _compress_many(state: list, words: np.ndarray) -> None:
    """One SHA-256 compression round over an ``(n, 16)`` uint32 block batch."""
    n = words.shape[0]
    w = np.empty((64, n), dtype=np.uint32)
    w[:16] = words.T
    for i in range(16, 64):
        x15, x2 = w[i - 15], w[i - 2]
        s0 = _rotr(x15, 7) ^ _rotr(x15, 18) ^ (x15 >> np.uint32(3))
        s1 = _rotr(x2, 17) ^ _rotr(x2, 19) ^ (x2 >> np.uint32(10))
        w[i] = w[i - 16] + s0 + w[i - 7] + s1

    a, b, c, d, e, f, g, h = state
    for i in range(64):
        s1 = _rotr(e, 6) ^ _rotr(e, 11) ^ _rotr(e, 25)
        ch = (e & f) ^ (~e & g)
        temp1 = h + s1 + ch + _K_NP[i] + w[i]
        s0 = _rotr(a, 2) ^ _rotr(a, 13) ^ _rotr(a, 22)
        maj = (a & b) ^ (a & c) ^ (b & c)
        temp2 = s0 + maj
        h = g
        g = f
        f = e
        e = d + temp1
        d = c
        c = b
        b = a
        a = temp1 + temp2

    for index, value in enumerate((a, b, c, d, e, f, g, h)):
        state[index] = state[index] + value


@hot_path
@scalar_reference("repro.crypto.hashes:sha256")
def sha256_many_array(messages: np.ndarray) -> np.ndarray:
    """SHA-256 over an ``(n, length)`` uint8 message array in one pass.

    The zero-copy core behind :func:`sha256_many`: one padded working array
    serves the whole batch (no per-message ``bytes`` concatenation), and the
    ``(n, 32)`` digest array comes back without per-row copies.
    """
    if messages.ndim != 2:
        raise CryptoError("sha256_many_array expects an (n, length) array")
    n, length = messages.shape
    if n == 0:
        return np.empty((0, 32), dtype=np.uint8)
    # FIPS 180-4 padding is a function of the length only, so one padded
    # buffer (a single allocation) serves the whole batch.
    suffix = np.frombuffer(
        b"\x80" + b"\x00" * ((55 - length) % 64) + struct.pack(">Q", length * 8),
        dtype=np.uint8,
    )
    padded = np.empty((n, length + len(suffix)), dtype=np.uint8)
    padded[:, :length] = messages
    padded[:, length:] = suffix
    words = padded.view(">u4").astype(np.uint32)
    state = [np.full(n, value, dtype=np.uint32) for value in _STATE_NP]
    for block in range(words.shape[1] // 16):
        _compress_many(state, words[:, block * 16 : (block + 1) * 16])
    return np.stack(state, axis=1).astype(">u4").view(np.uint8).reshape(n, 32)


@scalar_reference("repro.crypto.hashes:sha256")
def sha256_many(messages: list) -> list:
    """SHA-256 of many *equal-length* messages in one vectorized pass.

    Returns one 32-byte digest per message, bit-compatible with
    :class:`repro.crypto.hashes.SHA256`.  Raises :class:`CryptoError` on a
    ragged batch -- mixed lengths are the callers' job
    (:class:`BatchedMac` groups by length before descending here).
    """
    if not messages:
        return []
    length = len(messages[0])
    if any(len(message) != length for message in messages):
        raise CryptoError("sha256_many requires equal-length messages")
    n = len(messages)
    array = np.empty((n, length), dtype=np.uint8)
    for index, message in enumerate(messages):
        array[index] = np.frombuffer(message, dtype=np.uint8)
    digests = sha256_many_array(array)
    return [row.tobytes() for row in digests]


class BatchedMac:
    """Prepared multi-message MAC state for one (algorithm, key) pair.

    Construction performs the per-key setup once -- the HMAC key pads, or the
    AES key schedule, :class:`VectorAes` round-key tables, and PMAC/CMAC
    subkeys -- so an engine that tags many batches under the same key
    (:class:`~repro.core.engines.MacEngine` keeps one instance) does not pay
    it on every call.
    """

    def __init__(self, algorithm: str, key: bytes):
        if algorithm not in ("HMAC", "PMAC", "CMAC"):
            raise CryptoError(f"unknown MAC algorithm {algorithm!r}")
        self.algorithm = algorithm
        if algorithm == "HMAC":
            self._i_key_pad, self._o_key_pad = hmac_key_pads(key)
        else:
            cipher = AES(key)
            self._vector = VectorAes(cipher)
            if algorithm == "PMAC":
                l_value = int.from_bytes(
                    cipher.encrypt_block(b"\x00" * BLOCK_SIZE), "big"
                )
                l_inv = _double(_double(l_value))
                self._l_inv_np = np.frombuffer(l_inv.to_bytes(16, "big"), dtype=np.uint8)
                # The PMAC offset sequence L, 2L, 4L... is key-only state; it
                # is grown lazily to the longest message seen and reused.
                self._offsets = np.empty((0, BLOCK_SIZE), dtype=np.uint8)
                self._next_offset = l_value
            else:
                self._k1, self._k2 = _cmac_subkeys(cipher)

    # -- public API ---------------------------------------------------------------

    @scalar_reference("repro.crypto.mac:compute_mac")
    def tag_many(self, messages: list) -> list:
        """Tag a batch (possibly ragged); one scalar-identical tag per message."""
        if not messages:
            return []
        groups: dict = {}
        for index, message in enumerate(messages):
            groups.setdefault(len(message), []).append(index)
        tags: list = [None] * len(messages)
        for length, indices in groups.items():
            array = np.empty((len(indices), length), dtype=np.uint8)
            for row, index in enumerate(indices):
                array[row] = np.frombuffer(messages[index], dtype=np.uint8)
            batch = self.tag_many_array(array)
            for index, tag in zip(indices, batch):
                tags[index] = tag.tobytes()
        return tags

    @hot_path
    @scalar_reference("repro.crypto.mac:compute_mac")
    def tag_many_array(self, messages: np.ndarray) -> np.ndarray:
        """Tag an equal-length ``(n, length)`` uint8 batch; returns ``(n, tag)``.

        The zero-copy entry point the region sealer's chunk-MAC path uses: the
        message batch stays one numpy buffer end-to-end and the tags come back
        as one array (32-byte rows for HMAC, 16 for PMAC/CMAC) instead of
        ``n`` separate ``bytes`` objects.
        """
        if messages.ndim != 2:
            raise CryptoError("tag_many_array expects an (n, length) array")
        if messages.shape[0] == 0:
            return np.empty((0, 32 if self.algorithm == "HMAC" else BLOCK_SIZE), dtype=np.uint8)
        compute = getattr(self, f"_{self.algorithm.lower()}_equal_length")
        return compute(np.ascontiguousarray(messages, dtype=np.uint8))

    # -- per-algorithm equal-length batches ------------------------------------------

    def _hmac_equal_length(self, messages: np.ndarray) -> np.ndarray:
        n, length = messages.shape
        inner_input = np.empty((n, 64 + length), dtype=np.uint8)
        inner_input[:, :64] = np.frombuffer(self._i_key_pad, dtype=np.uint8)
        inner_input[:, 64:] = messages
        inner = sha256_many_array(inner_input)
        outer_input = np.empty((n, 64 + 32), dtype=np.uint8)
        outer_input[:, :64] = np.frombuffer(self._o_key_pad, dtype=np.uint8)
        outer_input[:, 64:] = inner
        return sha256_many_array(outer_input)

    def _pmac_offsets(self, count: int) -> np.ndarray:
        while len(self._offsets) < count:
            grown = np.empty(
                (max(count, 2 * len(self._offsets)), BLOCK_SIZE), dtype=np.uint8
            )
            grown[: len(self._offsets)] = self._offsets
            offset = self._next_offset
            for i in range(len(self._offsets), len(grown)):
                grown[i] = np.frombuffer(offset.to_bytes(16, "big"), dtype=np.uint8)
                offset = _double(offset)
            self._offsets = grown
            self._next_offset = offset
        return self._offsets[:count]

    def _pmac_equal_length(self, message_array: np.ndarray) -> np.ndarray:
        vector = self._vector
        n, length = message_array.shape
        full_blocks, remainder = divmod(length, BLOCK_SIZE)
        last_full = full_blocks - (1 if remainder == 0 and full_blocks > 0 else 0)

        if last_full:
            offsets = self._pmac_offsets(last_full)
            blocks = message_array[:, : last_full * BLOCK_SIZE].reshape(
                n, last_full, BLOCK_SIZE
            )
            encrypted = vector.encrypt_blocks(
                (blocks ^ offsets[None, :, :]).reshape(n * last_full, BLOCK_SIZE)
            ).reshape(n, last_full, BLOCK_SIZE)
            sigma = np.bitwise_xor.reduce(encrypted, axis=1)
        else:
            sigma = np.zeros((n, BLOCK_SIZE), dtype=np.uint8)

        if remainder == 0 and full_blocks > 0:
            final = message_array[:, (full_blocks - 1) * BLOCK_SIZE :]
            sigma = sigma ^ final ^ self._l_inv_np
        else:
            padded = np.zeros((n, BLOCK_SIZE), dtype=np.uint8)
            padded[:, :remainder] = message_array[:, full_blocks * BLOCK_SIZE :]
            padded[:, remainder] = 0x80
            sigma = sigma ^ padded

        return vector.encrypt_blocks(np.ascontiguousarray(sigma))

    def _cmac_equal_length(self, message_array: np.ndarray) -> np.ndarray:
        vector = self._vector
        n, length = message_array.shape
        if length and length % BLOCK_SIZE == 0:
            padded = message_array
            last_mask = self._k1
        else:
            padded = np.zeros(
                (n, (length // BLOCK_SIZE + 1) * BLOCK_SIZE), dtype=np.uint8
            )
            padded[:, :length] = message_array
            padded[:, length] = 0x80
            last_mask = self._k2
        num_blocks = padded.shape[1] // BLOCK_SIZE
        blocks = padded.reshape(n, num_blocks, BLOCK_SIZE)

        state = np.zeros((n, BLOCK_SIZE), dtype=np.uint8)
        mask = np.frombuffer(last_mask, dtype=np.uint8)
        for index in range(num_blocks):
            block = blocks[:, index, :]
            if index == num_blocks - 1:
                block = block ^ mask
            state = vector.encrypt_blocks(np.ascontiguousarray(state ^ block))
        return state


# -- module-level conveniences (mirror repro.crypto.mac signatures) ----------------


@scalar_reference("repro.crypto.mac:hmac_sha256")
def fast_hmac_sha256_many(key: bytes, messages: list) -> list:
    """Batched :func:`repro.crypto.mac.hmac_sha256`; one 32-byte tag per message."""
    return BatchedMac("HMAC", key).tag_many(messages)


@scalar_reference("repro.crypto.mac:aes_pmac")
def fast_aes_pmac_many(key: bytes, messages: list) -> list:
    """Batched :func:`repro.crypto.mac.aes_pmac`; one 16-byte tag per message."""
    return BatchedMac("PMAC", key).tag_many(messages)


@scalar_reference("repro.crypto.mac:aes_cmac")
def fast_aes_cmac_many(key: bytes, messages: list) -> list:
    """Batched :func:`repro.crypto.mac.aes_cmac`; one 16-byte tag per message."""
    return BatchedMac("CMAC", key).tag_many(messages)


@scalar_reference("repro.crypto.mac:compute_mac")
def fast_mac_many(algorithm: str, key: bytes, messages: list) -> list:
    """Batched :func:`repro.crypto.mac.compute_mac` by algorithm name."""
    return BatchedMac(algorithm, key).tag_many(messages)
