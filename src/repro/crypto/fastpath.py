"""Process-wide switch for the vectorized crypto fast path.

The Shield's functional model ships two interchangeable AES-CTR datapaths:

* the *scalar reference* (:mod:`repro.crypto.aes` + :mod:`repro.crypto.modes`),
  a byte-at-a-time pure-Python implementation that mirrors FIPS-197 and is the
  ground truth for every conformance test, and
* the *vectorized fast path* (:mod:`repro.crypto.fastaes`), a numpy
  implementation that batches every block of a chunk (or of a whole region)
  through the cipher in one pass and produces byte-identical output.

Which path an :class:`~repro.core.engines.AesEngine` takes is decided per
engine by ``EngineSetConfig.fast_crypto`` and, when the config leaves it
unset, by this module's process-wide default.  The default can be flipped for
a whole run (``set_fast_path(True)``), scoped with the :func:`fast_path`
context manager (what the differential tests use), or pre-seeded via the
``REPRO_FAST_CRYPTO`` environment variable.
"""

from __future__ import annotations

import os
from contextlib import contextmanager

_TRUTHY = ("1", "true", "yes", "on")

_enabled: bool = os.environ.get("REPRO_FAST_CRYPTO", "").strip().lower() in _TRUTHY


def fast_path_enabled() -> bool:
    """Whether engines without an explicit config flag use the vectorized path."""
    return _enabled


def set_fast_path(enabled: bool) -> bool:
    """Set the process-wide default; returns the previous value."""
    global _enabled
    previous = _enabled
    _enabled = bool(enabled)
    return previous


@contextmanager
def fast_path(enabled: bool = True):
    """Scope the process-wide default to a ``with`` block."""
    previous = set_fast_path(enabled)
    try:
        yield
    finally:
        set_fast_path(previous)
